"""WAN tuning: watch the semijoin/full-join crossover move with bandwidth.

Run with::

    python examples/wan_tuning.py

Builds a two-site join (a small filtered probe against a large remote
table) and sweeps the remote link's bandwidth. At low bandwidth the
cost-gated semijoin (bind join) wins by shipping keys instead of tuples;
at high bandwidth full shipping wins because the extra round trips cost
more than the saved bytes. The mediator's `auto` mode should track the
better strategy across the sweep — the crossover experiment of DESIGN.md
(F1) in miniature.
"""

from repro import (
    GlobalInformationSystem,
    MemorySource,
    NetworkLink,
    PlannerOptions,
    SQLiteSource,
)
from repro.catalog.schema import schema_from_pairs

QUERY = "SELECT p.tag, b.payload FROM probe p JOIN big b ON p.k = b.k"


def build(bandwidth: float) -> GlobalInformationSystem:
    gis = GlobalInformationSystem()
    probe = MemorySource("probe_site")
    # 1500 distinct probe keys against 2000 on the remote side: the semijoin
    # only filters out a quarter of the big table, and the key list needs
    # three IN batches — so its extra round trips must pay for themselves,
    # which they do only while bytes are expensive.
    probe.add_table(
        "probe",
        schema_from_pairs("probe", [("k", "INT"), ("tag", "TEXT")]),
        [(i % 1500, f"tag{i}") for i in range(3000)],
    )
    big = SQLiteSource("big_site")
    big.load_table(
        "big",
        schema_from_pairs("big", [("k", "INT"), ("payload", "TEXT")]),
        [(i % 2000, "#" * 60) for i in range(5000)],
    )
    gis.register_source("probe_site", probe, link=NetworkLink(5.0, 10_000_000.0))
    gis.register_source("big_site", big, link=NetworkLink(25.0, bandwidth))
    gis.register_table("probe", source="probe_site")
    gis.register_table("big", source="big_site")
    gis.analyze()
    return gis


def simulated_ms(gis: GlobalInformationSystem, options: PlannerOptions) -> float:
    gis.network.reset()
    result = gis.query(QUERY, options)
    return result.metrics.simulated_ms


def main() -> None:
    print(f"{'bandwidth':>12} | {'full join':>10} | {'semijoin':>10} | "
          f"{'auto':>10} | auto chose")
    print("-" * 66)
    for bandwidth in (10e3, 30e3, 100e3, 300e3, 1e6, 3e6, 10e6, 100e6):
        gis = build(bandwidth)
        full = simulated_ms(gis, PlannerOptions(semijoin="off"))
        semi = simulated_ms(gis, PlannerOptions(semijoin="force"))
        auto = simulated_ms(gis, PlannerOptions(semijoin="auto"))
        planned = gis.plan(QUERY, PlannerOptions(semijoin="auto"))
        from repro.core.logical import RemoteQueryOp

        chose_semi = any(
            isinstance(n, RemoteQueryOp) and n.bind is not None
            for n in planned.distributed.walk()
        )
        label = "semijoin" if chose_semi else "full join"
        print(
            f"{bandwidth/1000:9.0f}KB/s | {full:8.1f}ms | {semi:8.1f}ms | "
            f"{auto:8.1f}ms | {label}"
        )
    print()
    print("Expected shape: semijoin wins at the top of the table (slow WAN),")
    print("full shipping wins at the bottom, and `auto` tracks the winner.")


if __name__ == "__main__":
    main()

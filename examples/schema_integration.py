"""Schema integration: renames, horizontal partitions, vertical splits.

Run with::

    python examples/schema_integration.py

Shows the three classic integration patterns a 1989 GIS had to solve:

1. **name/representation conflicts** — the same entity under different
   native names and column spellings, fixed by table/column mappings;
2. **horizontal partitioning** — one logical table range-partitioned over
   autonomous sites, reunified by a UNION ALL integration view;
3. **vertical partitioning** — one logical entity whose attributes live on
   two systems, reunified by a join view.
"""

from repro import (
    GlobalInformationSystem,
    MemorySource,
    NetworkLink,
    SQLiteSource,
)
from repro.catalog.schema import schema_from_pairs


def main() -> None:
    gis = GlobalInformationSystem()

    # ------------------------------------------------------------------
    # 1. Name conflicts: the EU subsidiary calls things differently.
    # ------------------------------------------------------------------
    eu = SQLiteSource("eu_branch")
    eu.load_table(
        "KUNDEN",  # German ERP: customers table
        schema_from_pairs(
            "KUNDEN", [("KNR", "INT"), ("KNAME", "TEXT"), ("UMSATZ", "FLOAT")]
        ),
        [(1, "Weber GmbH", 1200.0), (2, "Rossi SpA", 900.0)],
    )
    us = MemorySource("us_branch")
    us.add_table(
        "customers",
        schema_from_pairs(
            "customers", [("cust_no", "INT"), ("cust_name", "TEXT"), ("revenue", "FLOAT")]
        ),
        [(10, "Acme Corp", 3100.0), (11, "Globex Inc", 450.0)],
    )
    gis.register_source("eu_branch", eu, link=NetworkLink(45.0))
    gis.register_source("us_branch", us, link=NetworkLink(15.0))

    # Map both native vocabularies onto one global vocabulary.
    gis.register_table(
        "eu_customers",
        source="eu_branch",
        remote_table="KUNDEN",
        column_map={"cust_no": "KNR", "cust_name": "KNAME", "revenue": "UMSATZ"},
    )
    gis.register_table(
        "us_customers", source="us_branch", remote_table="customers"
    )

    # ------------------------------------------------------------------
    # 2. Horizontal integration: one global customer table.
    # ------------------------------------------------------------------
    gis.create_view(
        "all_customers",
        "SELECT cust_no, cust_name, revenue, 'EU' AS branch FROM eu_customers "
        "UNION ALL "
        "SELECT cust_no, cust_name, revenue, 'US' AS branch FROM us_customers",
    )
    print("=== all_customers (horizontal integration view) ===")
    print(gis.query(
        "SELECT branch, COUNT(*) AS n, SUM(revenue) AS total "
        "FROM all_customers GROUP BY branch ORDER BY branch"
    ).format_table())
    print()

    # ------------------------------------------------------------------
    # 3. Vertical integration: shipping details live on a third system.
    # ------------------------------------------------------------------
    logistics = MemorySource("logistics")
    logistics.add_table(
        "shipping",
        schema_from_pairs(
            "shipping", [("cust_no", "INT"), ("carrier", "TEXT"), ("days", "INT")]
        ),
        [(1, "SeaFreight", 21), (2, "AirCargo", 3), (10, "Rail", 9)],
    )
    gis.register_source("logistics", logistics, link=NetworkLink(10.0))
    gis.register_table("shipping", source="logistics")

    gis.create_view(
        "customer_profile",
        "SELECT a.cust_no, a.cust_name, a.branch, s.carrier, s.days "
        "FROM all_customers a LEFT JOIN shipping s ON a.cust_no = s.cust_no",
    )
    print("=== customer_profile (vertical integration over the view) ===")
    print(gis.query(
        "SELECT cust_name, branch, carrier, days FROM customer_profile "
        "ORDER BY cust_name"
    ).format_table())
    print()

    # The mediator still pushes work below the views where it can.
    print("=== decomposition of a filtered view query ===")
    print(gis.explain(
        "SELECT cust_name FROM all_customers WHERE revenue > 1000"
    ))


if __name__ == "__main__":
    main()

"""Writing your own wrapper: federate an application log file.

Run with::

    python examples/custom_adapter.py

Implements a minimal :class:`repro.Adapter` over a plain text log — the
kind of "component information system" a 1989 federation actually faced:
no query language at all, just a file you can read. The wrapper:

* parses log lines into rows on scan;
* declares a small capability envelope (filters, no projection), reusing
  the mediator's fragment interpreter for local evaluation;
* then joins the log against a CRM table living on another source.

See docs/writing_adapters.md for the full contract.
"""

import datetime
from typing import Any, Dict, Iterator, Optional, Tuple

from repro import (
    Adapter,
    GlobalInformationSystem,
    MemorySource,
    NetworkLink,
    SourceCapabilities,
)
from repro.catalog.schema import TableSchema, schema_from_pairs
from repro.core.fragments import Fragment, interpret_plan
from repro.core.logical import ScanOp

LOG_LINES = """\
1989-02-06 09:12:01 WARN  user=2 login failed
1989-02-06 09:12:09 INFO  user=2 login ok
1989-02-06 10:03:44 INFO  user=1 report generated
1989-02-06 11:47:13 ERROR user=3 payment bounced
1989-02-07 08:30:00 INFO  user=1 login ok
1989-02-07 09:00:21 ERROR user=2 payment bounced
1989-02-07 16:55:37 WARN  user=4 quota exceeded
""".splitlines()


class LogFileSource(Adapter):
    """A wrapper over parsed log lines.

    The 'native system' can only hand over lines; the wrapper parses them
    and — because it controls a little local compute — also evaluates
    simple predicates via the mediator's fragment interpreter, keeping
    the noise off the network.
    """

    SCHEMA = schema_from_pairs(
        "events",
        [
            ("day", "DATE"),
            ("time_of_day", "TEXT"),
            ("level", "TEXT"),
            ("user_id", "INT"),
            ("message", "TEXT"),
        ],
    )

    def __init__(self, name: str, lines) -> None:
        super().__init__(name)
        self._lines = list(lines)

    def tables(self) -> Dict[str, TableSchema]:
        return {"events": self.SCHEMA}

    def capabilities(self) -> SourceCapabilities:
        return SourceCapabilities(
            filters=True,
            predicate_ops=frozenset(
                {"=", "<>", "<", "<=", ">", ">=", "AND", "OR", "NOT", "LIKE"}
            ),
            projection=False,
            limit=True,
            page_rows=256,
        )

    def scan(self, native_table: str) -> Iterator[Tuple[Any, ...]]:
        self._native_schema(native_table)  # uniform unknown-table error
        for line in self._lines:
            day, time_of_day, level, user_field, *message = line.split()
            yield (
                datetime.date.fromisoformat(day),
                time_of_day,
                level,
                int(user_field.split("=", 1)[1]),
                " ".join(message),
            )

    def row_count(self, native_table: str) -> Optional[int]:
        return len(self._lines)

    def execute(self, fragment: Fragment) -> Iterator[Tuple[Any, ...]]:
        def provide(scan: ScanOp) -> Iterator[Tuple[Any, ...]]:
            assert scan.table.mapping is not None
            return self.scan(scan.table.mapping.remote_table)

        return interpret_plan(fragment.plan, provide)


def main() -> None:
    gis = GlobalInformationSystem()
    gis.register_source(
        "applog", LogFileSource("applog", LOG_LINES), link=NetworkLink(12.0)
    )
    gis.register_table("events", source="applog")

    crm = MemorySource("crm")
    crm.add_table(
        "users",
        schema_from_pairs("users", [("uid", "INT"), ("uname", "TEXT")]),
        [(1, "Alice"), (2, "Bob"), (3, "Cara"), (4, "Dan")],
    )
    gis.register_source("crm", crm, link=NetworkLink(20.0))
    gis.register_table("users", source="crm")
    gis.analyze()

    print("=== errors and warnings per user (log ⋈ CRM) ===")
    result = gis.query(
        """
        SELECT u.uname, e.level, COUNT(*) AS n
        FROM events e JOIN users u ON e.user_id = u.uid
        WHERE e.level <> 'INFO'
        GROUP BY u.uname, e.level
        ORDER BY u.uname, e.level
        """
    )
    print(result.format_table())
    print()
    print("=== how much was pushed into the wrapper ===")
    print(gis.explain("SELECT user_id FROM events WHERE level = 'ERROR'"))


if __name__ == "__main__":
    main()

"""Quickstart: federate two departmental systems and query them as one.

Run with::

    python examples/quickstart.py

Demonstrates the minimal GIS workflow: register sources, publish tables
into the global schema, ANALYZE, query, and inspect the distributed plan.
"""

from repro import (
    GlobalInformationSystem,
    MemorySource,
    NetworkLink,
    SQLiteSource,
)
from repro.catalog.schema import schema_from_pairs


def build_federation() -> GlobalInformationSystem:
    # --- the CRM: a departmental record manager (in-memory wrapper) -------
    crm = MemorySource("crm")
    crm.add_table(
        "customers",
        schema_from_pairs(
            "customers",
            [("id", "INT"), ("name", "TEXT"), ("region", "TEXT"), ("since", "DATE")],
        ),
        [
            (1, "Alice Anders", "EU", "1987-04-01"),
            (2, "Bob Bauer", "US", "1988-01-15"),
            (3, "Cara Chen", "EU", "1989-02-06"),
            (4, "Dan Diaz", "APAC", "1986-11-30"),
        ],
    )

    # --- the ERP: a relational DBMS (SQLite wrapper, full SQL pushdown) ---
    erp = SQLiteSource("erp")
    erp.load_table(
        "ORDERS",
        schema_from_pairs(
            "orders",
            [("oid", "INT"), ("cust_id", "INT"), ("total", "FLOAT"), ("odate", "DATE")],
        ),
        [
            (100, 1, 250.0, "1989-01-02"),
            (101, 1, 80.0, "1989-02-10"),
            (102, 2, 500.0, "1989-03-05"),
            (103, 3, 20.0, "1989-01-20"),
            (104, 3, 999.0, "1989-04-01"),
            (105, 4, 10.0, "1989-05-12"),
        ],
    )

    # --- the mediator ------------------------------------------------------
    gis = GlobalInformationSystem()
    gis.register_source("crm", crm, link=NetworkLink(latency_ms=25))
    gis.register_source("erp", erp, link=NetworkLink(latency_ms=40))
    gis.register_table("customers", source="crm")
    gis.register_table("orders", source="erp", remote_table="ORDERS")
    gis.analyze()  # gather statistics through the wrappers
    return gis


def main() -> None:
    gis = build_federation()

    sql = """
        SELECT c.name, COUNT(*) AS orders, SUM(o.total) AS revenue
        FROM customers c JOIN orders o ON c.id = o.cust_id
        WHERE o.total > 50
        GROUP BY c.name
        ORDER BY revenue DESC
    """
    result = gis.query(sql)

    print("=== result ===")
    print(result.format_table())
    print()
    print("=== transfer metrics ===")
    print(result.metrics.summary())
    print()
    print("=== how the mediator decomposed the query ===")
    print(gis.explain(sql))


if __name__ == "__main__":
    main()

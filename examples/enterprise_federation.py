"""Enterprise federation: analytics across six heterogeneous systems.

Run with::

    python examples/enterprise_federation.py

Uses the TPC-H-lite workload — reference data in memory, CRM and ERP in
SQLite, warehouse lineitems in another SQLite, a CSV parts archive, a
paginated supplier web service, and a key-value profile store — then runs
cross-source analytics and compares the optimized mediator against the
naive ship-everything baseline.
"""

from repro import NAIVE_OPTIONS
from repro.workloads import build_federation

REPORTS = [
    (
        "Revenue by customer segment (3 sources: crm ⋈ erp ⋈ wms)",
        """
        SELECT c.c_segment, SUM(l.l_price * l.l_qty) AS revenue
        FROM customers c
        JOIN orders o ON c.c_id = o.o_cust_id
        JOIN lineitems l ON o.o_id = l.l_order_id
        GROUP BY c.c_segment ORDER BY revenue DESC
        """,
    ),
    (
        "Top parts by shipped quantity (archive CSV ⋈ warehouse)",
        """
        SELECT p.p_name, p.p_category, SUM(l.l_qty) AS shipped
        FROM parts p JOIN lineitems l ON p.p_id = l.l_part_id
        GROUP BY p.p_name, p.p_category ORDER BY shipped DESC LIMIT 5
        """,
    ),
    (
        "High-rated suppliers in Europe (web service ⋈ refdata)",
        """
        SELECT s.s_name, n.n_name
        FROM suppliers s JOIN nations n ON s.s_nation_id = n.n_id
        JOIN regions r ON n.n_region_id = r.r_id
        WHERE s.s_rating >= 4 AND r.r_name = 'EUROPE'
        ORDER BY s.s_name LIMIT 10
        """,
    ),
    (
        "Platinum customers and their balances (key-value ⋈ crm)",
        """
        SELECT c.c_name, c.c_balance
        FROM customers c JOIN profiles p ON c.c_id = p.u_cust_id
        WHERE p.u_tier = 'PLATINUM' AND c.c_balance > 5000
        ORDER BY c.c_balance DESC
        """,
    ),
    (
        "Biggest order per status with revenue share (window functions)",
        """
        SELECT o_status, o_id, o_total,
               ROW_NUMBER() OVER (PARTITION BY o_status
                                  ORDER BY o_total DESC) AS rn,
               o_total / SUM(o_total) OVER (PARTITION BY o_status) AS share
        FROM orders
        ORDER BY o_status, rn
        LIMIT 8
        """,
    ),
]


def main() -> None:
    print("Building the federation (6 sources, 8 tables)...")
    federation = build_federation(scale=1.0, seed=42)
    gis = federation.gis
    print(f"  row counts: {federation.row_counts}")
    print()

    for title, sql in REPORTS:
        print(f"=== {title} ===")
        result = gis.query(sql)
        print(result.format_table(max_rows=8))
        print(f"  [{result.metrics.summary()}]")
        print()

    # Optimized vs naive mediator on the heaviest report.
    sql = REPORTS[0][1]
    smart = gis.query(sql)
    naive = gis.query(sql, NAIVE_OPTIONS)
    print("=== optimized vs ship-everything mediator (same result rows) ===")
    print(
        f"  optimized: {smart.metrics.rows_shipped:6d} rows, "
        f"{smart.metrics.bytes_shipped:10.0f} bytes, "
        f"{smart.metrics.simulated_ms:8.1f} ms simulated network"
    )
    print(
        f"  naive:     {naive.metrics.rows_shipped:6d} rows, "
        f"{naive.metrics.bytes_shipped:10.0f} bytes, "
        f"{naive.metrics.simulated_ms:8.1f} ms simulated network"
    )
    factor = naive.metrics.simulated_ms / max(smart.metrics.simulated_ms, 1e-9)
    print(f"  speedup on simulated WAN: {factor:.1f}x")


if __name__ == "__main__":
    main()

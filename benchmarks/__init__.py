"""Experiment benchmarks — one module per table/figure in DESIGN.md."""

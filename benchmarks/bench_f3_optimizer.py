"""F3 — optimizer cost: DP vs greedy planning time and plan quality (Figure 3).

Chain joins of 2→10 relations. Series: per-strategy planning time (ms,
wall) and the ratio of greedy's estimated result cost to DP's. Expected
shape: DP planning time grows exponentially in region size while greedy
stays polynomial; greedy's plan quality stays close to DP's on chains
(ratio ≈ 1), which is exactly why `auto` switches to greedy above
``dp_limit``.
"""

import time

from repro import (
    GlobalInformationSystem,
    MemorySource,
    PlannerOptions,
)
from repro.catalog.schema import schema_from_pairs

from .common import emit, format_row

MAX_TABLES = 10
WIDTHS = (8, 12, 12, 14, 12)


def build_chain_gis(tables: int) -> GlobalInformationSystem:
    """t0 ← t1 ← ... ← tn chain with varied sizes (seeded pattern)."""
    gis = GlobalInformationSystem()
    source = MemorySource("mem")
    sizes = [50 + (i * 37) % 400 for i in range(tables)]
    for index in range(tables):
        schema = schema_from_pairs(
            f"t{index}", [("id", "INT"), ("next_id", "INT"), ("v", "INT")]
        )
        rows = [
            (k, k % sizes[(index + 1) % tables], k * 3) for k in range(sizes[index])
        ]
        source.add_table(f"t{index}", schema, rows)
    gis.register_source("mem", source)
    for index in range(tables):
        gis.register_table(f"t{index}", source="mem")
    gis.analyze(histogram_buckets=8)
    return gis


def chain_sql(tables: int) -> str:
    joins = " ".join(
        f"JOIN t{i} ON t{i-1}.next_id = t{i}.id" for i in range(1, tables)
    )
    return f"SELECT COUNT(*) FROM t0 {joins}"


def plan_time_ms(gis, sql, strategy, repeats=3):
    options = PlannerOptions(join_strategy=strategy, dp_limit=MAX_TABLES)
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        gis.plan(sql, options)
        best = min(best, (time.perf_counter() - started) * 1000.0)
    return best


def test_f3_planning_time_and_quality(benchmark):
    lines = [
        format_row(
            ("joins", "dp ms", "greedy ms", "canonical ms", "dp subsets"),
            WIDTHS,
        ),
        "-" * 66,
    ]
    dp_times = {}
    greedy_times = {}
    for tables in range(2, MAX_TABLES + 1):
        gis = build_chain_gis(tables)
        sql = chain_sql(tables)
        dp_ms = plan_time_ms(gis, sql, "dp")
        greedy_ms = plan_time_ms(gis, sql, "greedy")
        canonical_ms = plan_time_ms(gis, sql, "canonical")
        planned = gis.plan(sql, PlannerOptions(join_strategy="dp", dp_limit=MAX_TABLES))
        dp_times[tables] = dp_ms
        greedy_times[tables] = greedy_ms
        lines.append(
            format_row(
                (
                    tables - 1,
                    dp_ms,
                    greedy_ms,
                    canonical_ms,
                    planned.ordering_stats.subsets_enumerated,
                ),
                WIDTHS,
            )
        )
    emit("f3_optimizer", "F3: planning cost vs join count", lines)

    # Shape: DP's cost explodes relative to greedy as regions grow.
    small_ratio = dp_times[4] / max(greedy_times[4], 1e-6)
    large_ratio = dp_times[MAX_TABLES] / max(greedy_times[MAX_TABLES], 1e-6)
    assert large_ratio > small_ratio
    assert dp_times[MAX_TABLES] > 5 * greedy_times[MAX_TABLES]

    # Quality: greedy matches DP's answer (correctness) and, on chains,
    # produces plans of comparable executed cost.
    gis = build_chain_gis(8)
    sql = chain_sql(8)
    answers = set()
    shipped = {}
    for strategy in ("dp", "greedy"):
        gis.network.reset()
        result = gis.query(
            sql, PlannerOptions(join_strategy=strategy, dp_limit=MAX_TABLES)
        )
        answers.add(result.rows[0][0])
        shipped[strategy] = gis.network.total.simulated_ms
    assert len(answers) == 1
    assert shipped["greedy"] <= shipped["dp"] * 1.5

    gis = build_chain_gis(8)
    benchmark(
        lambda: gis.plan(
            chain_sql(8), PlannerOptions(join_strategy="dp", dp_limit=MAX_TABLES)
        )
    )

"""S1 — multi-tenant serving: QPS, tail latency, and plan-cache effect.

Four tenants hammer one query server concurrently, each cycling through
the eight-query federated workload with varying literals (same shapes,
different values — the plan cache's target case). Reported:

* sustained QPS and client-observed p50/p95/p99 latency,
* plan-cache hit rate across the run (acceptance: > 90 %),
* cold vs warm planning time per query shape.

Results go to ``benchmarks/results/s1_serving.txt`` (human) and
``benchmarks/results/BENCH_S1.json`` (machine-readable). Run directly::

    python benchmarks/bench_s1_serving.py
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time
from typing import Any, Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.serve import QueryServer, ServeClient, ServerConfig  # noqa: E402
from repro.workloads import WORKLOAD_QUERIES, build_federation  # noqa: E402

from common import emit, format_row  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
JSON_PATH = os.path.join(RESULTS_DIR, "BENCH_S1.json")

TENANTS = 4
ROUNDS = 5
WIDTHS = (26, 9, 9, 9)


def percentile(sorted_values: List[float], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(len(sorted_values) * fraction))
    return sorted_values[index]


def main() -> int:
    federation = build_federation(scale=0.5, seed=11)
    gis = federation.gis
    gis.plan_cache.capacity = 128

    # Cold planning cost per shape, measured before any cache warmup.
    cold_planning: Dict[str, float] = {}
    for name, sql in WORKLOAD_QUERIES:
        cold_planning[name] = gis.query(sql).metrics.planning_ms
    gis.plan_cache.invalidate()
    baseline = gis.plan_cache.stats()

    server = QueryServer(gis, ServerConfig(max_workers=TENANTS))
    host, port = server.start_background()

    latencies_ms: List[float] = []
    warm_planning: Dict[str, List[float]] = {name: [] for name, _ in WORKLOAD_QUERIES}
    errors: List[str] = []
    lock = threading.Lock()

    def tenant_worker(tenant: str) -> None:
        try:
            with ServeClient(host, port, tenant=tenant) as client:
                for _round in range(ROUNDS):
                    for name, sql in WORKLOAD_QUERIES:
                        started = time.perf_counter()
                        result = client.query(sql)
                        elapsed = (time.perf_counter() - started) * 1000.0
                        with lock:
                            latencies_ms.append(elapsed)
                            warm_planning[name].append(
                                result.metrics["planning_ms"]
                            )
        except Exception as exc:  # pragma: no cover - hard gate below
            with lock:
                errors.append(f"{tenant}: {exc!r}")

    started = time.perf_counter()
    threads = [
        threading.Thread(target=tenant_worker, args=(f"tenant{i}",))
        for i in range(TENANTS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started
    server.stop_background()

    assert not errors, errors[:3]
    total = len(latencies_ms)
    assert total == TENANTS * ROUNDS * len(WORKLOAD_QUERIES)

    stats = gis.plan_cache.stats()
    lookups = (
        stats["hits"] + stats["misses"] + stats["fallbacks"]
        - (baseline["hits"] + baseline["misses"] + baseline["fallbacks"])
    )
    hits = stats["hits"] - baseline["hits"]
    hit_rate = hits / lookups if lookups else 0.0

    latencies_ms.sort()
    qps = total / wall_s
    p50 = percentile(latencies_ms, 0.50)
    p95 = percentile(latencies_ms, 0.95)
    p99 = percentile(latencies_ms, 0.99)

    per_query = []
    lines = [
        f"tenants={TENANTS} rounds={ROUNDS} queries={total} "
        f"wall={wall_s:.2f}s",
        f"QPS {qps:.1f} | p50 {p50:.1f} ms | p95 {p95:.1f} ms | "
        f"p99 {p99:.1f} ms",
        f"plan cache: {hits}/{lookups} hits ({hit_rate:.1%}), "
        f"{stats['entries']} entries, {stats['fallbacks']} fallbacks",
        "",
        format_row(("query", "cold ms", "warm ms", "speedup"), WIDTHS),
    ]
    for name, _sql in WORKLOAD_QUERIES:
        samples = warm_planning[name]
        warm = sum(samples) / len(samples) if samples else 0.0
        cold = cold_planning[name]
        speedup = cold / warm if warm else 0.0
        per_query.append(
            {
                "query": name,
                "cold_planning_ms": round(cold, 3),
                "warm_planning_ms": round(warm, 3),
                "planning_speedup": round(speedup, 1),
            }
        )
        lines.append(
            format_row((name, cold, warm, f"{speedup:.1f}x"), WIDTHS)
        )

    # Hard gates: the acceptance criteria for the serving tier.
    assert hit_rate > 0.90, f"plan-cache hit rate {hit_rate:.1%} <= 90%"
    mean_warm = sum(sum(v) for v in warm_planning.values()) / total
    mean_cold = sum(cold_planning.values()) / len(cold_planning)
    assert mean_warm < mean_cold, "warm planning not cheaper than cold"
    lines.append("")
    lines.append("gates: hit-rate>90% OK, warm<cold planning OK")

    payload: Dict[str, Any] = {
        "benchmark": "S1 multi-tenant serving",
        "tenants": TENANTS,
        "rounds": ROUNDS,
        "queries_total": total,
        "wall_s": round(wall_s, 3),
        "qps": round(qps, 1),
        "latency_ms": {
            "p50": round(p50, 2),
            "p95": round(p95, 2),
            "p99": round(p99, 2),
        },
        "plan_cache": {
            "hits": hits,
            "lookups": lookups,
            "hit_rate": round(hit_rate, 4),
            "entries": stats["entries"],
            "fallbacks": stats["fallbacks"],
        },
        "per_query": per_query,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(JSON_PATH, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")

    emit("s1_serving", "S1: multi-tenant serving (4 tenants, plan cache)", lines)
    print(f"wrote {JSON_PATH}")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""F1 — semijoin reduction vs full-relation shipping vs bandwidth (Figure 1).

A two-site equi-join with a moderately selective probe side, swept across
remote-link bandwidth. Series: simulated network time for (a) full
shipping, (b) forced semijoin, (c) the cost-gated `auto` mode. Expected
shape: semijoin wins at low bandwidth (bytes dominate), full shipping wins
at high bandwidth (round trips dominate), a crossover in between, and
`auto` tracking the winner everywhere.
"""

from repro import (
    GlobalInformationSystem,
    MemorySource,
    NetworkLink,
    PlannerOptions,
    SQLiteSource,
)
from repro.catalog.schema import schema_from_pairs
from repro.core.logical import RemoteQueryOp

from .common import emit, format_row

QUERY = "SELECT p.tag, b.payload FROM probe p JOIN big b ON p.k = b.k"
BANDWIDTHS = [10e3, 30e3, 100e3, 300e3, 1e6, 3e6, 10e6, 100e6]
WIDTHS = (12, 12, 12, 12, 11)


def build(bandwidth: float) -> GlobalInformationSystem:
    gis = GlobalInformationSystem()
    probe = MemorySource("probe_site")
    probe.add_table(
        "probe",
        schema_from_pairs("probe", [("k", "INT"), ("tag", "TEXT")]),
        [(i % 1500, f"tag{i}") for i in range(3000)],
    )
    big = SQLiteSource("big_site")
    big.load_table(
        "big",
        schema_from_pairs("big", [("k", "INT"), ("payload", "TEXT")]),
        [(i % 2000, "#" * 60) for i in range(5000)],
    )
    gis.register_source("probe_site", probe, link=NetworkLink(5.0, 10_000_000.0))
    gis.register_source("big_site", big, link=NetworkLink(25.0, bandwidth))
    gis.register_table("probe", source="probe_site")
    gis.register_table("big", source="big_site")
    gis.analyze()
    return gis


def simulated_ms(gis, options):
    gis.network.reset()
    return gis.query(QUERY, options).metrics.simulated_ms


def auto_choice(gis):
    planned = gis.plan(QUERY, PlannerOptions(semijoin="auto"))
    bound = any(
        isinstance(n, RemoteQueryOp) and n.bind is not None
        for n in planned.distributed.walk()
    )
    return "semijoin" if bound else "full"


def test_f1_semijoin_bandwidth_crossover(benchmark):
    lines = [
        format_row(("bandwidth", "full ms", "semijoin ms", "auto ms", "auto chose"), WIDTHS),
        "-" * 70,
    ]
    series = []
    for bandwidth in BANDWIDTHS:
        gis = build(bandwidth)
        full = simulated_ms(gis, PlannerOptions(semijoin="off"))
        semi = simulated_ms(gis, PlannerOptions(semijoin="force"))
        auto = simulated_ms(gis, PlannerOptions(semijoin="auto"))
        choice = auto_choice(gis)
        series.append((bandwidth, full, semi, auto, choice))
        lines.append(
            format_row(
                (f"{bandwidth/1000:.0f}KB/s", full, semi, auto, choice), WIDTHS
            )
        )
    emit("f1_semijoin", "F1: semijoin vs full shipping across bandwidth", lines)

    # Shape assertions.
    low = series[0]
    high = series[-1]
    assert low[2] < low[1], "semijoin must win on a slow WAN"
    assert high[1] < high[2], "full shipping must win on a fast link"
    choices = [row[4] for row in series]
    assert "semijoin" in choices and "full" in choices, "a crossover must exist"
    # `auto` must track (or tie) the better strategy everywhere.
    for _, full, semi, auto, _ in series:
        assert auto <= min(full, semi) * 1.01

    # Wall-clock of the semijoin execution at the slow-link point.
    gis = build(30e3)
    benchmark(lambda: gis.query(QUERY, PlannerOptions(semijoin="force")))

"""CI benchmark smoke: batch executor must match and beat row mode.

Runs the T5 end-to-end workload twice over the TPC-H-lite federation —
once batch-at-a-time (default ``batch_size=1024``) and once row-at-a-time
(``batch_size=1``) — and fails the build when:

* any query's rows differ between the modes (bit-identical requirement),
* any query's simulated-network accounting differs (messages, rows or
  bytes shipped — the page-granular charging invariant), or
* the batch-mode workload is slower overall than row mode (ratio < 1.0).

The workload-level speedup ratio is written to
``benchmarks/results/batch_smoke.txt``. Run directly::

    python benchmarks/batch_smoke.py
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import PlannerOptions  # noqa: E402
from repro.workloads import WORKLOAD_QUERIES, build_federation  # noqa: E402

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "batch_smoke.txt"
)
SCALE = 2.0
REPEATS = 2

BATCH = PlannerOptions()  # default batch_size=1024
ROW = PlannerOptions(batch_size=1)


def run_workload(gis, options):
    """Total best-of-N wall ms plus per-query (rows, network) snapshots."""
    total_ms = 0.0
    snapshots = []
    for name, sql in WORKLOAD_QUERIES:
        best_ms, snapshot = float("inf"), None
        for _ in range(REPEATS):
            gis.network.reset()
            started = time.perf_counter()
            result = gis.query(sql, options)
            elapsed = (time.perf_counter() - started) * 1000.0
            best_ms = min(best_ms, elapsed)
            net = result.metrics.network
            snapshot = (
                result.rows,
                net.rows_shipped,
                net.messages,
                net.bytes_shipped,
            )
        total_ms += best_ms
        snapshots.append((name, snapshot))
    return total_ms, snapshots


def main() -> int:
    print(f"building TPC-H-lite federation (scale {SCALE})...")
    gis = build_federation(scale=SCALE, seed=42).gis

    batch_ms, batch_runs = run_workload(gis, BATCH)
    row_ms, row_runs = run_workload(gis, ROW)

    failures = []
    for (name, batch_snap), (_, row_snap) in zip(batch_runs, row_runs):
        batch_rows, b_shipped, b_messages, b_bytes = batch_snap
        row_rows, r_shipped, r_messages, r_bytes = row_snap
        if batch_rows != row_rows:
            failures.append(f"{name}: result rows differ between modes")
        if (b_shipped, b_messages, b_bytes) != (r_shipped, r_messages, r_bytes):
            failures.append(
                f"{name}: network accounting differs "
                f"(batch {b_shipped}r/{b_messages}m/{b_bytes:.0f}B vs "
                f"row {r_shipped}r/{r_messages}m/{r_bytes:.0f}B)"
            )

    ratio = row_ms / batch_ms if batch_ms > 0 else float("inf")
    lines = [
        "== batch smoke: T5 workload, batch vs row mode ==",
        f"batch mode (1024): {batch_ms:.1f} ms",
        f"row mode (1):      {row_ms:.1f} ms",
        f"speedup ratio:     {ratio:.2f}x",
        f"queries checked:   {len(batch_runs)} (rows + network identical)",
        "",
    ]
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as handle:
        handle.write("\n".join(lines))
    print("\n".join(lines))

    if failures:
        print("FAIL: batch/row mismatches:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if ratio < 1.0:
        print(
            f"FAIL: batch mode slower than row mode ({ratio:.2f}x)",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

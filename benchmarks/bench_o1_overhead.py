"""O1 — observability overhead on the hot executor path.

Instrumentation that is *off* must be free, or nobody leaves it compiled
in. The executor's disabled path goes through falsy shared singletons
(``NULL_SPAN`` / no-op instruments), so the per-page and per-operator hooks
collapse to attribute loads and dropped calls.

Measured on the F4 P1 workload (``scan → filter → project`` over a 60k-row
scan-only source — mediator-side per-row work dominates, the worst case for
fixed per-query instrumentation):

* baseline — default mediator, observability constructed but fully off
  (this *is* the shipped default; the disabled path under test);
* metrics on — registry armed, per-query fold of counters/histograms;
* tracing on — spans for every phase, operator, and fragment page events;
* tracing + metrics — both.

Reported per config: best-of-N wall ms and overhead vs baseline. The
acceptance bar is metrics-on (observability armed but not tracing) within
5% of baseline; a disabled-path microbench (ns/op of the null primitives)
substantiates that "off" costs nanoseconds per call site.
"""

import time

from repro import GlobalInformationSystem, MemorySource, NetworkLink, Observability
from repro.catalog.schema import schema_from_pairs
from repro.obs import MetricsRegistry, NULL_SPAN, NULL_TRACER
from repro.sources.base import SourceCapabilities

from .common import emit, format_row

ITEM_ROWS = 60_000
REPEATS = 5
WIDTHS = (18, 10, 12, 9)

P1 = "SELECT k, val * 2.0 FROM items WHERE val > 400.0"

CONFIGS = [
    ("baseline (off)", lambda: Observability()),
    ("metrics on", lambda: Observability(metrics=True)),
    ("tracing on", lambda: Observability(trace=True)),
    ("trace + metrics", lambda: Observability(trace=True, metrics=True)),
]


def build(observability) -> GlobalInformationSystem:
    gis = GlobalInformationSystem(observability=observability)
    store = MemorySource("store", capabilities=SourceCapabilities.scan_only())
    store.add_table(
        "items",
        schema_from_pairs(
            "items", [("k", "INT"), ("grp", "INT"), ("val", "FLOAT"),
                      ("tag", "TEXT")],
        ),
        [
            (i, i % 64, float((i * 7919) % 1000), f"t{i % 97}")
            for i in range(ITEM_ROWS)
        ],
    )
    gis.register_source("store", store, link=NetworkLink(1.0, 100e6))
    gis.register_table("items", source="store")
    gis.analyze()
    return gis


def measure(gis) -> float:
    """Best-of-N wall ms for P1 (span buffer cleared between runs)."""
    best_ms = float("inf")
    for _ in range(REPEATS):
        gis.obs.clear_spans()
        started = time.perf_counter()
        gis.query(P1)
        best_ms = min(best_ms, (time.perf_counter() - started) * 1000.0)
    return best_ms


def null_primitive_ns() -> list:
    """ns/op of the disabled-path primitives the executor calls when off."""
    registry = MetricsRegistry(enabled=False)
    counter = registry.counter("x")
    cases = [
        ("NULL_SPAN.event(...)", lambda: NULL_SPAN.event("page", rows=1024)),
        ("tracer.child(NULL, ...)",
         lambda: NULL_TRACER.child(NULL_SPAN, "fragment:x", "fragment")),
        ("null counter.inc()", lambda: counter.inc(7)),
    ]
    loops = 200_000
    lines = []
    for label, fn in cases:
        started = time.perf_counter()
        for _ in range(loops):
            fn()
        per_op = (time.perf_counter() - started) / loops * 1e9
        lines.append(f"  {label:<28s} {per_op:6.0f} ns/op")
    return lines


def test_o1_observability_overhead(benchmark):
    lines = [
        format_row(("config", "wall ms", "rows/sec", "vs base"), WIDTHS),
        "-" * 56,
    ]
    results = {}
    for label, make_obs in CONFIGS:
        gis = build(make_obs())
        wall_ms = measure(gis)
        results[label] = wall_ms
        base = results["baseline (off)"]
        lines.append(
            format_row(
                (label, wall_ms, f"{ITEM_ROWS / (wall_ms / 1000.0):,.0f}",
                 f"{(wall_ms / base - 1.0) * 100.0:+.1f}%"),
                WIDTHS,
            )
        )
    lines.append("")
    lines.append("disabled-path primitives:")
    lines.extend(null_primitive_ns())
    emit("o1_overhead", "O1: observability overhead on F4 P1", lines)

    # Acceptance bar: armed-but-not-tracing observability stays within 5%
    # of the disabled baseline on the hot path (best-of-N keeps CI noise
    # down; the typical delta is ~0%).
    base = results["baseline (off)"]
    assert results["metrics on"] <= base * 1.05, (
        f"metrics-on overhead exceeded 5% "
        f"({results['metrics on'] / base - 1.0:+.1%})"
    )

    benchmark(lambda: build(Observability()).query(P1))

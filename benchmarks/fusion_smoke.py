"""CI benchmark smoke: fused/morsel engine must match the row oracle.

Runs the T5 end-to-end workload twice over the TPC-H-lite federation —
once on the full new execution stack (typed column vectors + fused
scan pipelines + a 4-worker morsel pool) and once on the row-kernel
oracle (``vectorize=False`` with every new knob off) — and fails the
build when:

* any query's rows differ between the engines (bit-identical
  requirement: typed vectors, fusion, and morsels are execution
  strategies, never semantics), or
* any query's simulated-network accounting differs (messages, rows or
  bytes shipped — pages are sized by logical row width, so typed
  storage must not change a single charged byte), or
* the fused stack is pathologically slower than the oracle (< 0.5x).

The perf floor is deliberately loose: T5 pushes most work down to the
sources, so mediator-side kernels barely run and the engines land
within noise of each other (the per-query morsel-pool spin-up alone is
a few percent here). The ≥ 5x kernel-path bar lives in F6
(``bench_f6_typed_fusion.py``), where the work is mediator-side; this
smoke exists to catch semantic drift, not to measure speed.

The workload-level speedup ratio is written to
``benchmarks/results/fusion_smoke.txt``. Run directly::

    python benchmarks/fusion_smoke.py
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import PlannerOptions  # noqa: E402
from repro.workloads import WORKLOAD_QUERIES, build_federation  # noqa: E402

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "fusion_smoke.txt"
)
SCALE = 2.0
REPEATS = 2

#: Full stack: typed columns + fusion are the defaults; add morsels.
FUSED = PlannerOptions(morsel_workers=4)
#: Row-kernel oracle: every vectorization-era knob off.
ORACLE = PlannerOptions(
    vectorize=False, typed_columns=False, fuse=False, morsel_workers=1
)


def run_workload(gis, options):
    """Total best-of-N wall ms plus per-query (rows, network) snapshots."""
    total_ms = 0.0
    snapshots = []
    for name, sql in WORKLOAD_QUERIES:
        best_ms, snapshot = float("inf"), None
        for _ in range(REPEATS):
            gis.network.reset()
            started = time.perf_counter()
            result = gis.query(sql, options)
            elapsed = (time.perf_counter() - started) * 1000.0
            best_ms = min(best_ms, elapsed)
            net = result.metrics.network
            snapshot = (
                result.rows,
                net.rows_shipped,
                net.messages,
                net.bytes_shipped,
            )
        total_ms += best_ms
        snapshots.append((name, snapshot))
    return total_ms, snapshots


def main() -> int:
    print(f"building TPC-H-lite federation (scale {SCALE})...")
    gis = build_federation(scale=SCALE, seed=42).gis

    fused_ms, fused_runs = run_workload(gis, FUSED)
    oracle_ms, oracle_runs = run_workload(gis, ORACLE)

    failures = []
    for (name, fused_snap), (_, oracle_snap) in zip(fused_runs, oracle_runs):
        fused_rows, f_shipped, f_messages, f_bytes = fused_snap
        oracle_rows, o_shipped, o_messages, o_bytes = oracle_snap
        if fused_rows != oracle_rows:
            failures.append(f"{name}: result rows differ from the row oracle")
        if (f_shipped, f_messages, f_bytes) != (o_shipped, o_messages, o_bytes):
            failures.append(
                f"{name}: network accounting differs "
                f"(fused {f_shipped}r/{f_messages}m/{f_bytes:.0f}B vs "
                f"oracle {o_shipped}r/{o_messages}m/{o_bytes:.0f}B)"
            )

    ratio = oracle_ms / fused_ms if fused_ms > 0 else float("inf")
    lines = [
        "== fusion smoke: T5 workload, typed+fused+morsel4 vs row oracle ==",
        f"fused stack (typed+fused, 4 morsel workers): {fused_ms:.1f} ms",
        f"row-kernel oracle (all knobs off):           {oracle_ms:.1f} ms",
        f"speedup ratio:     {ratio:.2f}x",
        f"queries checked:   {len(fused_runs)} (rows + network identical)",
        "",
    ]
    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as handle:
        handle.write("\n".join(lines))
    print("\n".join(lines))

    if failures:
        print("FAIL: fused/oracle mismatches:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    if ratio < 0.5:
        print(
            f"FAIL: fused stack pathologically slower than the row oracle "
            f"({ratio:.2f}x)",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

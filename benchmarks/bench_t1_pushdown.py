"""T1 — predicate+projection pushdown vs ship-everything (Table 1).

Sweeps filter selectivity on the `orders` table (SQLite source) and
compares the optimized mediator against the scans-only baseline: rows
shipped, simulated network time, and the speedup factor. The expected
shape: the pushdown win grows roughly as 1/selectivity, flattening out as
selectivity approaches 1 (where both plans ship everything).
"""

import pytest

from repro import PlannerOptions
from repro.workloads import build_federation

from .common import emit, format_row

#: (label, WHERE clause) pairs with decreasing selectivity on o_total
#: (o_total is skewed toward small values in [5, 5000]).
SWEEP = [
    ("~0.1%", "o_total > 4950"),
    ("~1%", "o_total > 4500"),
    ("~5%", "o_total > 3400"),
    ("~25%", "o_total > 1300"),
    ("~50%", "o_total > 450"),
    ("100%", "o_total > 0"),
]

WIDTHS = (8, 10, 10, 12, 12, 9)


@pytest.fixture(scope="module")
def federation():
    # Large enough that payload bytes (not per-message latency) dominate the
    # simulated WAN cost — the regime the pushdown claim is about.
    return build_federation(scale=10.0, seed=42)


def _measure(gis, sql, options):
    gis.network.reset()
    result = gis.query(sql, options)
    return result


def test_t1_pushdown_vs_ship_everything(federation, benchmark):
    gis = federation.gis
    total_rows = federation.row_counts["orders"]
    smart_options = PlannerOptions()
    naive_options = PlannerOptions(pushdown="scans-only", rewrites=False)

    lines = [
        format_row(
            ("sel", "pushdown", "ship-all", "pushdown", "ship-all", "speedup"),
            WIDTHS,
        ),
        format_row(
            ("", "rows", "rows", "net ms", "net ms", ""), WIDTHS
        ),
        "-" * 72,
    ]
    speedups = []
    for label, where in SWEEP:
        sql = f"SELECT o_id, o_total FROM orders WHERE {where}"
        smart = _measure(gis, sql, smart_options)
        naive = _measure(gis, sql, naive_options)
        assert sorted(smart.rows) == sorted(naive.rows)
        speedup = naive.metrics.simulated_ms / max(smart.metrics.simulated_ms, 1e-9)
        speedups.append((label, speedup, smart.metrics.rows_shipped))
        lines.append(
            format_row(
                (
                    label,
                    smart.metrics.rows_shipped,
                    naive.metrics.rows_shipped,
                    smart.metrics.simulated_ms,
                    naive.metrics.simulated_ms,
                    f"{speedup:.1f}x",
                ),
                WIDTHS,
            )
        )
    emit("t1_pushdown", "T1: pushdown vs ship-everything (selectivity sweep)", lines)

    # Shape assertions: the baseline always ships the whole table; the
    # pushdown win shrinks monotonically as selectivity grows.
    assert speedups[0][1] > speedups[-1][1]
    assert speedups[0][1] > 3.0, "high-selectivity pushdown should win big"
    assert speedups[-1][1] == pytest.approx(1.0, abs=0.35)
    assert speedups[0][2] < total_rows * 0.05

    # Wall-clock benchmark of the representative selective query.
    benchmark(
        lambda: gis.query(
            "SELECT o_id, o_total FROM orders WHERE o_total > 4500",
            smart_options,
        )
    )

"""T3 — capability heterogeneity: pushdown degree per source class (Table 3).

The same table (10k rows) is replicated onto five wrapper classes — SQLite
(full SQL), memory (filter/project/aggregate), REST (simple filters +
limit), CSV (scan only), key-value (key lookups only) — and the same three
queries run against each replica. Reported per (source, query): rows
shipped and simulated time. Expected shape: rows shipped ordered
SQLite ≤ memory ≤ REST ≤ CSV for the filter and aggregate queries, with
the KV source winning only on key lookups.
"""

import pytest

from repro import (
    CsvSource,
    GlobalInformationSystem,
    KeyValueSource,
    MemorySource,
    NetworkLink,
    SQLiteSource,
)
from repro.catalog.schema import schema_from_pairs

from .common import emit, format_row

ROWS = 10_000
SCHEMA = schema_from_pairs(
    "events",
    [("eid", "INT"), ("kind", "TEXT"), ("value", "FLOAT"), ("flag", "INT")],
)
WIDTHS = (10, 22, 10, 12)

QUERIES = {
    "filter": "SELECT eid, value FROM {table} WHERE value > 950.0",
    "aggregate": "SELECT kind, COUNT(*), AVG(value) FROM {table} GROUP BY kind",
    "key-lookup": "SELECT value FROM {table} WHERE eid = 4242",
}


def generate_rows():
    return [
        (i, f"k{i % 7}", float((i * 37) % 1000), i % 2) for i in range(ROWS)
    ]


@pytest.fixture(scope="module")
def gis(tmp_path_factory):
    rows = generate_rows()
    gis = GlobalInformationSystem()
    link = NetworkLink(20.0, 1_000_000.0)

    sqlite_source = SQLiteSource("sql_site")
    sqlite_source.load_table("events", SCHEMA, rows)
    gis.register_source("sql_site", sqlite_source, link=link)
    gis.register_table("events_sql", source="sql_site", remote_table="events")

    memory_source = MemorySource("mem_site")
    memory_source.add_table("events", SCHEMA, rows)
    gis.register_source("mem_site", memory_source, link=link)
    gis.register_table("events_mem", source="mem_site", remote_table="events")

    rest_source = RestSourceFactory(rows)
    gis.register_source("rest_site", rest_source, link=link)
    gis.register_table("events_rest", source="rest_site", remote_table="events")

    csv_dir = str(tmp_path_factory.mktemp("t3csv"))
    CsvSource.write_table(csv_dir, "events", SCHEMA, rows)
    csv_source = CsvSource("csv_site", csv_dir, {"events": SCHEMA})
    gis.register_source("csv_site", csv_source, link=link)
    gis.register_table("events_csv", source="csv_site", remote_table="events")

    kv_source = KeyValueSource("kv_site")
    kv_source.add_table("events", SCHEMA, "eid", rows)
    gis.register_source("kv_site", kv_source, link=link)
    gis.register_table("events_kv", source="kv_site", remote_table="events")

    gis.analyze()
    return gis


def RestSourceFactory(rows):
    from repro import RestSource

    source = RestSource("rest_site", page_rows=500)
    source.add_table("events", SCHEMA, rows)
    return source


SOURCES = [
    ("sqlite", "events_sql"),
    ("memory", "events_mem"),
    ("rest", "events_rest"),
    ("csv", "events_csv"),
    ("keyvalue", "events_kv"),
]


def test_t3_pushdown_degree_per_source_class(gis, benchmark):
    lines = [
        format_row(("query", "source", "rows", "net ms"), WIDTHS),
        "-" * 60,
    ]
    shipped = {}
    for query_name, template in QUERIES.items():
        answers = set()
        for source_label, table in SOURCES:
            sql = template.format(table=table)
            gis.network.reset()
            result = gis.query(sql)
            answers.add(tuple(sorted(map(repr, result.rows))))
            shipped[(query_name, source_label)] = result.metrics.rows_shipped
            lines.append(
                format_row(
                    (
                        query_name,
                        source_label,
                        result.metrics.rows_shipped,
                        result.metrics.simulated_ms,
                    ),
                    WIDTHS,
                )
            )
        assert len(answers) == 1, f"replicas disagree on {query_name}"
    emit("t3_capabilities", "T3: pushdown degree per source class", lines)

    # Shape assertions: the capability ladder orders shipped volume.
    assert shipped[("filter", "sqlite")] == shipped[("filter", "memory")]
    assert shipped[("filter", "memory")] == shipped[("filter", "rest")]
    assert shipped[("filter", "rest")] < shipped[("filter", "csv")]
    assert shipped[("filter", "csv")] <= ROWS and shipped[("filter", "kv".replace("kv", "keyvalue"))] == ROWS
    assert shipped[("aggregate", "sqlite")] < shipped[("aggregate", "rest")]
    assert shipped[("aggregate", "memory")] < shipped[("aggregate", "csv")]
    # Key lookup: KV and SQLite ship one row; CSV ships everything.
    assert shipped[("key-lookup", "keyvalue")] == 1
    assert shipped[("key-lookup", "sqlite")] == 1
    assert shipped[("key-lookup", "csv")] == ROWS

    benchmark(lambda: gis.query(QUERIES["aggregate"].format(table="events_sql")))

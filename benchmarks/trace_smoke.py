"""CI smoke: end-to-end tracing over a real parallel federated query.

Runs one aggregation over the F2 scale-out substrate (``orders``
range-partitioned across 4 SQLite sources) with the parallel fragment
scheduler and tracing enabled, then fails the build unless:

* the mediator phases (parse, analyze, rewrite, plan, execute) all appear
  as spans parented under the query root,
* every operator in the physical plan produced an ``operator`` span under
  the execute phase,
* each of the 4 partition fragments produced a ``fragment`` span that is
  parented under the execute phase but was *recorded on a scheduler worker
  thread* (the cross-thread propagation invariant), and
* the exported Chrome ``trace_event`` file is valid JSON whose X/M/i
  events carry the required keys and internally-consistent span ids.

The span tree is written to ``benchmarks/results/trace_smoke.txt``.
Run directly::

    python benchmarks/trace_smoke.py
"""

from __future__ import annotations

import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import PlannerOptions  # noqa: E402
from repro.obs import format_span_tree  # noqa: E402
from repro.workloads.tpch_lite import build_partitioned_orders  # noqa: E402

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "trace_smoke.txt"
)
PARTITIONS = 4
SQL = (
    "SELECT o_status, COUNT(*), SUM(o_total) FROM orders_all "
    "WHERE o_total > 100.0 GROUP BY o_status ORDER BY o_status"
)
PHASES = {"phase:parse", "phase:analyze", "phase:rewrite",
          "phase:plan", "phase:execute"}


def fail(message: str) -> None:
    sys.stderr.write(f"trace smoke FAILED: {message}\n")
    sys.exit(1)


def validate_chrome_file(path: str) -> int:
    with open(path) as handle:
        document = json.load(handle)
    events = document.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("exported trace has no traceEvents")
    span_ids = set()
    for event in events:
        if not {"name", "ph", "pid", "tid"} <= set(event):
            fail(f"event missing required keys: {event}")
        if event["ph"] not in {"M", "X", "i"}:
            fail(f"unexpected event phase {event['ph']!r}")
        if event["ph"] == "X":
            if event["ts"] < 0 or event["dur"] < 0:
                fail(f"negative timestamp in {event}")
            span_ids.add(event["args"]["span_id"])
    for event in events:
        if event["ph"] == "X" and "parent_id" in event["args"]:
            if event["args"]["parent_id"] not in span_ids:
                fail(f"dangling parent_id in {event}")
    return len(events)


def main() -> None:
    out = os.path.join(tempfile.mkdtemp(prefix="gis-trace-"), "trace.json")
    federation = build_partitioned_orders(PARTITIONS, rows_per_partition=200)
    gis = federation.gis
    gis.obs.trace_path = out
    gis.obs.tracer.enable()

    result = gis.query(SQL, PlannerOptions(max_parallel_fragments=PARTITIONS))
    if not result.rows:
        fail("query returned no rows")

    spans = gis.obs.spans
    by_name = {}
    for span in spans:
        by_name.setdefault(span.name, []).append(span)

    roots = by_name.get("query", [])
    if len(roots) != 1:
        fail(f"expected exactly one query root span, got {len(roots)}")
    root = roots[0]

    missing = PHASES - {
        s.name for s in spans if s.parent_id == root.span_id
    }
    if missing:
        fail(f"mediator phases missing from trace: {sorted(missing)}")

    (execute,) = by_name["phase:execute"]
    operators = [s for s in spans if s.category == "operator"]
    if not operators:
        fail("no operator spans recorded")
    if any(s.parent_id != execute.span_id for s in operators):
        fail("operator span not parented under phase:execute")

    fragments = [s for s in spans if s.category == "fragment"]
    if len(fragments) < PARTITIONS:
        fail(f"expected >= {PARTITIONS} fragment spans, got {len(fragments)}")
    for span in fragments:
        if span.parent_id != execute.span_id:
            fail(f"fragment span {span.name} not parented under execute")
        if span.attributes.get("mode") == "parallel" and (
            span.thread_name == execute.thread_name
        ):
            fail(f"parallel fragment {span.name} ran on the mediator thread")
    workers = {
        s.thread_name for s in fragments
        if s.attributes.get("mode") == "parallel"
    }
    if not workers:
        fail("no fragment ran under the parallel scheduler")

    n_events = validate_chrome_file(out)

    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    summary = (
        f"{len(spans)} spans ({len(fragments)} fragments on "
        f"{len(workers)} worker threads), {n_events} Chrome events\n\n"
        + format_span_tree(spans)
        + "\n"
    )
    with open(RESULTS_PATH, "w") as handle:
        handle.write(summary)
    print(summary)
    print("trace smoke OK")


if __name__ == "__main__":
    main()

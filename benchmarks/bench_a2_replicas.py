"""A2 (ablation) — replica (site) selection under link asymmetry.

A table is replicated on two sources whose links differ; the sweep varies
the slow link's bandwidth. Series: simulated time with cost-based replica
selection vs always-primary. Expected shape: the gap grows as the primary
link degrades, and selection never loses (it can always fall back to the
primary).
"""

from repro import (
    GlobalInformationSystem,
    NetworkLink,
    PlannerOptions,
    SQLiteSource,
)
from repro.catalog.schema import schema_from_pairs

from .common import emit, format_row

SCHEMA = schema_from_pairs(
    "items", [("id", "INT"), ("grp", "INT"), ("payload", "TEXT")]
)
ROWS = [(i, i % 10, "x" * 40) for i in range(4000)]
SQL = "SELECT id, payload FROM items WHERE grp < 5"

PRIMARY_BANDWIDTHS = [2_000_000.0, 500_000.0, 100_000.0, 20_000.0]
REPLICA_LINK = NetworkLink(15.0, 1_000_000.0)
WIDTHS = (14, 12, 12, 9)


def build(primary_bandwidth):
    gis = GlobalInformationSystem()
    primary = SQLiteSource("site_a")
    primary.load_table("items", SCHEMA, ROWS)
    replica = SQLiteSource("site_b")
    replica.load_table("items", SCHEMA, ROWS)
    gis.register_source(
        "site_a", primary, link=NetworkLink(25.0, primary_bandwidth)
    )
    gis.register_source("site_b", replica, link=REPLICA_LINK)
    gis.register_table("items", source="site_a")
    gis.register_replica("items", source="site_b")
    gis.analyze()
    return gis


def simulated(gis, options):
    gis.network.reset()
    return gis.query(SQL, options).metrics.simulated_ms


def test_a2_replica_selection(benchmark):
    lines = [
        format_row(("primary link", "cost ms", "primary ms", "speedup"), WIDTHS),
        "-" * 54,
    ]
    gaps = []
    for bandwidth in PRIMARY_BANDWIDTHS:
        gis = build(bandwidth)
        with_selection = simulated(gis, PlannerOptions(replicas="cost"))
        primary_only = simulated(gis, PlannerOptions(replicas="primary"))
        speedup = primary_only / max(with_selection, 1e-9)
        gaps.append(speedup)
        lines.append(
            format_row(
                (
                    f"{bandwidth/1000:.0f}KB/s",
                    with_selection,
                    primary_only,
                    f"{speedup:.1f}x",
                ),
                WIDTHS,
            )
        )
    emit("a2_replicas", "A2: cost-based replica selection vs always-primary", lines)

    # Shape: selection never loses and the win grows as the primary degrades.
    assert all(g >= 0.99 for g in gaps)
    assert gaps[-1] > gaps[0]
    assert gaps[-1] > 3.0

    gis = build(100_000.0)
    benchmark(lambda: gis.query(SQL))

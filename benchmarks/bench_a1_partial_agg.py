"""A1 (ablation) — partial aggregation over horizontal partitions.

DESIGN.md calls out local/global aggregation as an ablatable design choice:
an aggregate over a UNION ALL of N partitions can ship raw rows and
aggregate at the mediator, or ship one row per (branch × group). This
bench sweeps the partition count and reports both configurations. Expected
shape: rows shipped collapse from O(total rows) to O(partitions × groups),
and the win grows with data volume.
"""

from repro import PlannerOptions
from repro.workloads import build_partitioned_orders

from .common import emit, format_row

SQL = (
    "SELECT o_status, COUNT(*), SUM(o_total), AVG(o_total) "
    "FROM orders_all GROUP BY o_status"
)
PARTITIONS = [2, 4, 8]
ROWS_PER_PARTITION = 1000
WIDTHS = (10, 14, 14, 12, 12, 9)


def test_a1_partial_aggregation_ablation(benchmark):
    lines = [
        format_row(
            ("sources", "partial rows", "plain rows", "partial ms", "plain ms", "speedup"),
            WIDTHS,
        ),
        "-" * 84,
    ]
    ratios = []
    for count in PARTITIONS:
        federation = build_partitioned_orders(
            count, ROWS_PER_PARTITION, seed=5, bandwidth=100_000.0
        )
        gis = federation.gis

        gis.network.reset()
        partial = gis.query(SQL, PlannerOptions(partial_aggregation=True))
        gis.network.reset()
        plain = gis.query(SQL, PlannerOptions(partial_aggregation=False))
        def normalized(rows):
            return sorted(
                tuple(round(v, 5) if isinstance(v, float) else v for v in row)
                for row in rows
            )

        # Summation order differs between the two plans; compare to 1e-5.
        assert normalized(partial.rows) == normalized(plain.rows)

        speedup = plain.metrics.simulated_ms / max(partial.metrics.simulated_ms, 1e-9)
        ratios.append(
            plain.metrics.rows_shipped / max(partial.metrics.rows_shipped, 1)
        )
        lines.append(
            format_row(
                (
                    count,
                    partial.metrics.rows_shipped,
                    plain.metrics.rows_shipped,
                    partial.metrics.simulated_ms,
                    plain.metrics.simulated_ms,
                    f"{speedup:.1f}x",
                ),
                WIDTHS,
            )
        )
    emit("a1_partial_agg", "A1: partial aggregation over partitions (ablation)", lines)

    # Shape: every configuration ships orders of magnitude fewer rows.
    assert min(ratios) > 50

    federation = build_partitioned_orders(4, ROWS_PER_PARTITION, seed=5)
    benchmark(
        lambda: federation.gis.query(SQL, PlannerOptions(partial_aggregation=True))
    )

"""T4 — statistics ablation: histograms vs the uniform assumption (Table 4).

A Zipf-skewed column is probed with point and range predicates under
estimators configured with (a) no statistics at all, (b) statistics without
histograms (uniform/NDV model), (c) equi-depth histograms at several bucket
counts. Reported metric: the **Q-error** of the cardinality estimate
(max(est/true, true/est)). Expected shape: histograms cut Q-error by an
order of magnitude on hot keys, and more buckets help until they saturate.
"""

from repro import GlobalInformationSystem, MemorySource
from repro.catalog.schema import schema_from_pairs
from repro.core.analyzer import Analyzer
from repro.core.cardinality import Estimator
from repro.core.rewriter import rewrite
from repro.sql.parser import parse_select
from repro.workloads.generator import DataGenerator

from .common import emit, format_row

ROWS = 20_000
WIDTHS = (26, 14, 10, 10)

PREDICATES = [
    ("hot key (k = 1)", "k = 1"),
    ("cold key (k = 180)", "k = 180"),
    ("narrow range (k < 3)", "k < 3"),
    ("wide range (k < 100)", "k < 100"),
    ("tail range (k >= 150)", "k >= 150"),
]

BUCKET_CONFIGS = [0, 8, 32, 128]  # 0 = stats without histograms


def build_gis(histogram_buckets: int) -> GlobalInformationSystem:
    generator = DataGenerator(7)
    rows = [(i, generator.zipf_index(200, 1.3) + 1) for i in range(ROWS)]
    gis = GlobalInformationSystem()
    source = MemorySource("mem")
    schema = schema_from_pairs("skewed", [("id", "INT"), ("k", "INT")])
    source.add_table("skewed", schema, rows)
    gis.register_source("mem", source)
    gis.register_table("skewed", source="mem")
    gis.analyze(histogram_buckets=histogram_buckets)
    return gis, rows


def true_count(rows, predicate):
    key = lambda r: r[1]
    if predicate == "k = 1":
        return sum(1 for r in rows if key(r) == 1)
    if predicate == "k = 180":
        return sum(1 for r in rows if key(r) == 180)
    if predicate == "k < 3":
        return sum(1 for r in rows if key(r) < 3)
    if predicate == "k < 100":
        return sum(1 for r in rows if key(r) < 100)
    if predicate == "k >= 150":
        return sum(1 for r in rows if key(r) >= 150)
    raise AssertionError(predicate)


def estimate(gis, predicate, use_histograms=True):
    plan = rewrite(
        Analyzer(gis.catalog).bind_statement(
            parse_select(f"SELECT id FROM skewed WHERE {predicate}")
        )
    )
    estimator = Estimator(gis.catalog, use_histograms=use_histograms)
    return estimator.estimate_rows(plan)


def q_error(estimated, truth):
    estimated = max(estimated, 0.5)
    truth = max(truth, 0.5)
    return max(estimated / truth, truth / estimated)


def test_t4_histogram_ablation(benchmark):
    lines = [
        format_row(("predicate", "config", "q-error", "est"), WIDTHS),
        "-" * 66,
    ]
    per_config_worst = {}
    for buckets in BUCKET_CONFIGS:
        gis, rows = build_gis(histogram_buckets=max(buckets, 1))
        label = "uniform/ndv" if buckets == 0 else f"hist-{buckets}"
        worst = 1.0
        for name, predicate in PREDICATES:
            truth = true_count(rows, predicate)
            estimated = estimate(gis, predicate, use_histograms=buckets > 0)
            error = q_error(estimated, truth)
            worst = max(worst, error)
            lines.append(
                format_row((name, label, error, f"{estimated:.0f}"), WIDTHS)
            )
        per_config_worst[label] = worst
        lines.append("-" * 66)
    emit("t4_stats", "T4: cardinality Q-error, uniform vs equi-depth histograms", lines)

    # Shape: any histogram beats the uniform assumption on worst-case error,
    # and more buckets never hurt much.
    assert per_config_worst["hist-32"] < per_config_worst["uniform/ndv"] / 2
    assert per_config_worst["hist-128"] <= per_config_worst["hist-8"] * 1.5

    gis, _ = build_gis(histogram_buckets=32)
    benchmark(lambda: estimate(gis, "k < 100"))

"""CI catalog smoke: crash-recover the mediator, results must not move.

Scripted crash drill, each step a hard gate:

* **warm run** — build a two-source federation from a declarative config
  with the catalog journal on, run a mixed workload, record every result
  and every plan;
* **lifecycle mid-workload** — alter a table, refresh statistics, and
  bump a source epoch so the journal carries real lifecycle traffic, not
  just the initial registrations;
* **crash + recover** — throw the mediator away and rebuild from the
  same config with ``recover_on_start``; the journal must replay to a
  catalog whose plans (``EXPLAIN`` text) are byte-identical and whose
  query results are bit-identical (values *and* Python types) to the
  pre-crash run;
* **epoch monotonicity** — no source epoch, schema version, or the
  global catalog epoch may move backwards across the restart, so cached
  artifacts from the previous life can never be mistaken for fresh.

The scenario table is written to ``benchmarks/results/catalog_smoke.txt``.
Run directly::

    python benchmarks/catalog_smoke.py
"""

from __future__ import annotations

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import build_from_config  # noqa: E402

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "catalog_smoke.txt"
)

ROWS = 1_000
REGIONS = ("east", "west", "north", "south")

WORKLOAD = [
    "SELECT COUNT(*) FROM customers",
    "SELECT region, COUNT(*), SUM(score) FROM customers GROUP BY region",
    "SELECT name, total FROM customers, orders "
    "WHERE id = cid AND total > 300 AND region = 'east'",
    "SELECT oid, total FROM big_orders WHERE total > 800",
]


def make_config(journal_path: str) -> dict:
    customers = [
        (i, f"name-{i}", REGIONS[i % len(REGIONS)], float(i % 97))
        for i in range(ROWS)
    ]
    orders = [
        (10_000 + i, i % ROWS, float((i * 37) % 1000)) for i in range(ROWS)
    ]
    return {
        "sources": {
            "crm": {
                "type": "memory",
                "tables": {
                    "CUSTOMERS": {
                        "columns": [
                            ["id", "INT"], ["name", "TEXT"],
                            ["region", "TEXT"], ["score", "FLOAT"],
                        ],
                        "rows": [list(row) for row in customers],
                    }
                },
                "link": {"latency_ms": 20, "bandwidth_bytes_per_s": 1e6},
            },
            "erp": {
                "type": "sqlite",
                "tables": {
                    "ORDERS": {
                        "columns": [
                            ["oid", "INT"], ["cid", "INT"], ["total", "FLOAT"],
                        ],
                        "rows": [list(row) for row in orders],
                    }
                },
                "link": {"latency_ms": 30, "bandwidth_bytes_per_s": 2e6},
            },
        },
        "tables": [
            {"name": "customers", "source": "crm", "remote_table": "CUSTOMERS"},
            {"name": "orders", "source": "erp", "remote_table": "ORDERS"},
        ],
        "views": {
            "big_orders": "SELECT oid, cid, total FROM orders WHERE total > 500"
        },
        "analyze": True,
        "plan_cache_size": 32,
        "result_cache_size": 8,
        "cache": {"fragment_bytes": 1 << 22},
        "catalog": {
            "journal": journal_path,
            "snapshot_interval": 16,
            "recover_on_start": True,
        },
    }


def bit_identical(warm_rows, recovered_rows):
    if sorted(warm_rows) != sorted(recovered_rows):
        return False
    return all(
        type(a) is type(b)
        for wr, cr in zip(sorted(warm_rows), sorted(recovered_rows))
        for a, b in zip(wr, cr)
    )


def main() -> int:
    lines = ["== catalog smoke: crash recovery must not move results =="]
    failures = []

    with tempfile.TemporaryDirectory() as tmp:
        config = make_config(os.path.join(tmp, "catalog.jsonl"))

        # -- warm life: workload + real lifecycle traffic ------------------
        warm = build_from_config(config)
        warm.notify_source_changed("crm")
        warm.analyze(["customers"])
        warm_results = {sql: warm.query(sql) for sql in WORKLOAD}
        warm_plans = {sql: warm.explain(sql) for sql in WORKLOAD}
        pre_epochs = warm.catalog.versions.snapshot()
        pre_catalog_epoch = warm.catalog.versions.catalog_epoch
        journal_seq = warm.catalog_journal.position()["seq"]
        lines.append(
            f"warm run:        {len(WORKLOAD)} queries, "
            f"journal at seq {journal_seq}, "
            f"catalog epoch {pre_catalog_epoch}"
        )

        # -- crash + recover ----------------------------------------------
        recovered = build_from_config(config)
        report = recovered.catalog_recovery or {}
        lines.append(
            f"recovery:        replayed {report.get('records_replayed', 0)} "
            f"record(s), snapshot_used={report.get('snapshot_used')}, "
            f"errors={len(report.get('errors', []))}"
        )
        if not report.get("recovered") or report.get("errors"):
            failures.append(f"recovery did not complete cleanly: {report}")

        # -- plans byte-identical, results bit-identical -------------------
        plan_drift = [
            sql for sql in WORKLOAD
            if recovered.explain(sql) != warm_plans[sql]
        ]
        result_drift = []
        for sql in WORKLOAD:
            result = recovered.query(sql)
            twin = warm_results[sql]
            if (
                result.column_names != twin.column_names
                or not bit_identical(result.rows, twin.rows)
            ):
                result_drift.append(sql)
        lines.append(
            f"plan identity:   {len(WORKLOAD) - len(plan_drift)}/"
            f"{len(WORKLOAD)} plans byte-identical after replay"
        )
        lines.append(
            f"result identity: {len(WORKLOAD) - len(result_drift)}/"
            f"{len(WORKLOAD)} results bit-identical after replay"
        )
        if plan_drift:
            failures.append(f"plans drifted after recovery: {plan_drift}")
        if result_drift:
            failures.append(f"results drifted after recovery: {result_drift}")

        # -- version clocks never move backwards ---------------------------
        post_epochs = recovered.catalog.versions.snapshot()
        regressions = [
            source for source, epoch in pre_epochs.items()
            if post_epochs.get(source, 0) < epoch
        ]
        post_catalog_epoch = recovered.catalog.versions.catalog_epoch
        lines.append(
            f"epoch monotone:  catalog epoch {pre_catalog_epoch} -> "
            f"{post_catalog_epoch}, source epochs {pre_epochs} -> "
            f"{post_epochs}"
        )
        if regressions:
            failures.append(f"source epochs regressed: {regressions}")
        if post_catalog_epoch < pre_catalog_epoch:
            failures.append("global catalog epoch regressed across restart")
    lines.append("")

    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as handle:
        handle.write("\n".join(lines))
    print("\n".join(lines))

    if failures:
        print("FAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

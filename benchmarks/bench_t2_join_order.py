"""T2 — cost-based join ordering vs canonical order (Table 2).

Chain and star joins of 3-6 relations, phrased in a deliberately bad
textual order (largest table first). Reports, per query shape and
strategy: rows shipped, total rows flowing through mediator joins, and
simulated network time. Expected shape: DP ≤ greedy ≤ canonical on
intermediate work, with DP and greedy usually tied on these sizes.
"""

import pytest

from repro import PlannerOptions
from repro.workloads import build_federation

from .common import emit, format_row

#: Query shapes with the big tables named FIRST so canonical order suffers.
SHAPES = [
    (
        "chain-3",
        """SELECT COUNT(*) FROM lineitems l
           JOIN orders o ON l.l_order_id = o.o_id
           JOIN customers c ON o.o_cust_id = c.c_id
           WHERE c.c_balance > 8000""",
    ),
    (
        "chain-4",
        """SELECT COUNT(*) FROM lineitems l
           JOIN orders o ON l.l_order_id = o.o_id
           JOIN customers c ON o.o_cust_id = c.c_id
           JOIN nations n ON c.c_nation_id = n.n_id
           WHERE n.n_name = 'FRANCE'""",
    ),
    (
        "star-4",
        """SELECT COUNT(*) FROM lineitems l
           JOIN parts p ON l.l_part_id = p.p_id
           JOIN suppliers s ON l.l_supplier_id = s.s_id
           JOIN orders o ON l.l_order_id = o.o_id
           WHERE p.p_price > 700 AND s.s_rating = 5""",
    ),
    (
        "snowflake-5",
        """SELECT COUNT(*) FROM lineitems l
           JOIN orders o ON l.l_order_id = o.o_id
           JOIN customers c ON o.o_cust_id = c.c_id
           JOIN nations n ON c.c_nation_id = n.n_id
           JOIN regions r ON n.n_region_id = r.r_id
           WHERE r.r_name = 'EUROPE' AND c.c_segment = 'MACHINERY'""",
    ),
]

STRATEGIES = ["dp", "greedy", "canonical"]
WIDTHS = (12, 10, 12, 12, 12)


@pytest.fixture(scope="module")
def federation():
    return build_federation(scale=2.0, seed=42)


def measure(gis, sql, strategy):
    gis.network.reset()
    result = gis.query(sql, PlannerOptions(join_strategy=strategy))
    return result


def test_t2_join_ordering_strategies(federation, benchmark):
    gis = federation.gis
    lines = [
        format_row(("shape", "strategy", "rows", "net ms", "answer"), WIDTHS),
        "-" * 66,
    ]
    shipped = {}
    for shape, sql in SHAPES:
        answers = set()
        for strategy in STRATEGIES:
            result = measure(gis, sql, strategy)
            answers.add(result.rows[0][0])
            shipped[(shape, strategy)] = result.metrics.simulated_ms
            lines.append(
                format_row(
                    (
                        shape,
                        strategy,
                        result.metrics.rows_shipped,
                        result.metrics.simulated_ms,
                        result.rows[0][0],
                    ),
                    WIDTHS,
                )
            )
        assert len(answers) == 1, f"strategies disagree on {shape}"
    emit("t2_join_order", "T2: join-order strategies (chain/star/snowflake)", lines)

    # Shape: cost-based ordering must never lose to canonical, and must win
    # clearly somewhere.
    wins = 0
    for shape, _ in SHAPES:
        assert shipped[(shape, "dp")] <= shipped[(shape, "canonical")] * 1.05
        if shipped[(shape, "dp")] < shipped[(shape, "canonical")] * 0.8:
            wins += 1
    assert wins >= 1, "DP should beat canonical clearly on at least one shape"

    benchmark(lambda: measure(gis, SHAPES[3][1], "dp"))

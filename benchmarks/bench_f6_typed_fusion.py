"""F6 — typed columns + operator fusion + morsels vs the row engine.

The full new execution stack measured on the F5 workload (same
scan-only federation, same three pipelines — every filter, join, and
aggregate runs mediator-side):

* ``row engine`` — ``vectorize=False`` with typed columns and fusion
  off, executing row-at-a-time (``batch_size=1``): the tuple-at-a-time
  engine every vectorized-execution paper baselines against, and the
  bit-identical equivalence oracle;
* ``row kernels @1024`` — the same row-compiled closures looped over
  1024-row pages (PR 4's batch dataflow without columnar kernels);
* ``columnar`` — vectorized kernels on object vectors (the PR 5
  engine: ``typed_columns=False, fuse=False``);
* ``typed`` — plus ``array``-backed int64/double column vectors;
* ``typed+fused`` — plus Filter/Project chains fused into a single
  pipeline operator (the full stack at defaults);
* ``typed+fused+morsel4`` — plus a 4-worker morsel pool (reported for
  the trajectory; under CPython's GIL thread morsels are a correctness
  architecture, not a speedup — see ``core/morsels.py``).

Acceptance: the full stack must beat the row engine by ≥ 5x on every
pipeline, with bit-identical rows across all modes. The ratio against
row kernels at the same batch size is reported alongside so the
kernel-level gain stays visible (F5 tracks it in isolation).

Emits ``results/f6_typed_fusion.txt`` and machine-readable
``results/BENCH_F6.json``.
"""

import time

from repro import PlannerOptions

from .bench_f5_columnar import P1, P2, P3, build
from .common import emit, emit_json, format_row

REPEATS = 3
WIDTHS = (22, 10, 9)

#: (mode name, options). The first entry is the oracle/baseline.
MODES = [
    ("row engine (batch=1)", dict(
        vectorize=False, typed_columns=False, fuse=False, batch_size=1)),
    ("row kernels @1024", dict(
        vectorize=False, typed_columns=False, fuse=False)),
    ("columnar", dict(typed_columns=False, fuse=False)),
    ("typed", dict(typed_columns=True, fuse=False)),
    ("typed+fused", dict(typed_columns=True, fuse=True)),
    ("typed+fused+morsel4", dict(
        typed_columns=True, fuse=True, morsel_workers=4)),
]

FULL_STACK = "typed+fused"
PIPELINES = [
    ("P1 scan-filter-project", P1),
    ("P2 filter-join-aggregate", P2),
    ("P3 wide aggregate", P3),
]


def measure(gis, sql, mode_options, repeats=REPEATS):
    """Best-of-N wall ms and result rows for one (query, mode)."""
    options = PlannerOptions(**mode_options)
    best_ms, rows = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = gis.query(sql, options)
        best_ms = min(best_ms, (time.perf_counter() - started) * 1000.0)
        rows = result.rows
    return best_ms, rows


def run():
    gis = build()
    lines = []
    report = []
    speedups = {}
    for title, sql in PIPELINES:
        lines.append(f"-- {title} --")
        lines.append(format_row(("mode", "wall ms", "vs row"), WIDTHS))
        lines.append("-" * 46)
        oracle_ms = None
        oracle_rows = None
        modes_json = []
        for mode, mode_options in MODES:
            # The row-at-a-time baseline drives 60k single-row pages;
            # one repeat is representative and keeps the bench quick.
            repeats = 1 if mode_options.get("batch_size") == 1 else REPEATS
            wall_ms, rows = measure(gis, sql, mode_options, repeats)
            if oracle_ms is None:
                oracle_ms, oracle_rows = wall_ms, rows
            assert rows == oracle_rows, (
                f"{title} [{mode}]: rows diverged from the row-engine oracle"
            )
            ratio = oracle_ms / wall_ms
            if mode == FULL_STACK:
                speedups[title] = ratio
            lines.append(
                format_row((mode, f"{wall_ms:.1f}", f"{ratio:.1f}x"), WIDTHS)
            )
            modes_json.append(
                {
                    "mode": mode,
                    "wall_ms": round(wall_ms, 1),
                    "speedup_vs_row_engine": round(ratio, 2),
                }
            )
        lines.append("")
        report.append({"pipeline": title, "modes": modes_json})
    lines.append(
        "full stack = typed columns + fusion at the default batch size;"
    )
    lines.append(
        "row engine = vectorize=False at batch_size=1 (tuple-at-a-time)."
    )
    emit("f6_typed_fusion", "F6: typed pages + fusion vs the row engine",
         lines)
    emit_json(
        "BENCH_F6",
        {
            "benchmark": "F6 typed columns + fusion + morsels",
            "baseline": "row engine (vectorize=False, batch_size=1)",
            "full_stack": FULL_STACK,
            "acceptance_min_speedup": 5.0,
            "full_stack_speedups": {
                title: round(ratio, 2) for title, ratio in speedups.items()
            },
            "pipelines": report,
        },
    )
    return speedups


def test_f6_full_stack_speedup(benchmark):
    speedups = run()
    for title, ratio in speedups.items():
        assert ratio >= 5.0, (
            f"full stack must be >= 5x the row engine on {title} "
            f"(got {ratio:.1f}x)"
        )
    gis = build()
    benchmark(lambda: gis.query(P2))


if __name__ == "__main__":  # PYTHONPATH=src python -m benchmarks.bench_f6_typed_fusion
    import sys

    speedups = run()
    failed = {t: r for t, r in speedups.items() if r < 5.0}
    if failed:
        print(f"FAIL: full stack below 5x on {failed}", file=sys.stderr)
        sys.exit(1)
    print("OK")

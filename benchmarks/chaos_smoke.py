"""CI chaos smoke: resilience invariants on a three-source federation.

Four scripted scenarios, each a hard gate:

* **zero-overhead** — an armed-but-empty fault plan must leave rows and
  simulated-network accounting bit-identical to the fault-free baseline
  (and is timed, so the injector's cost when idle stays visible);
* **dead source** — with one of three sources down, ``fail`` mode must
  raise a typed, attributed error and ``partial`` mode must answer with
  ``complete=False`` naming exactly that source;
* **flapping recovery** — a source failing every call until
  ``recover_after`` heals must fail queries first and then recover, with
  the injector's counters agreeing;
* **deadline abort** — a hung source under a 50 ms deadline must raise
  ``QueryTimeoutError`` promptly instead of hanging the query.

The scenario table is written to ``benchmarks/results/chaos_smoke.txt``.
Run directly::

    python benchmarks/chaos_smoke.py
"""

from __future__ import annotations

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import (  # noqa: E402
    FaultPlan,
    FaultSpec,
    GlobalInformationSystem,
    MemorySource,
    PlannerOptions,
    QueryTimeoutError,
    SourceError,
)
from repro.catalog.schema import schema_from_pairs  # noqa: E402

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "chaos_smoke.txt"
)

SOURCES = ("alpha", "beta", "gamma")
ROWS_EACH = 500
SCHEMA = schema_from_pairs("t", [("a", "INT"), ("src", "TEXT")])
SQL = (
    "SELECT a, src FROM t_alpha UNION ALL "
    "SELECT a, src FROM t_beta UNION ALL "
    "SELECT a, src FROM t_gamma"
)


class SlowSource(MemorySource):
    """Answers, but only after a real-time stall (a hung WAN peer)."""

    def __init__(self, name, stall_s):
        super().__init__(name)
        self.stall_s = stall_s

    def execute(self, fragment):
        time.sleep(self.stall_s)
        yield from super().execute(fragment)


def build(slow=None, retries=0, faults=None):
    gis = GlobalInformationSystem(fragment_retries=retries, faults=faults)
    for name in SOURCES:
        if slow is not None and name == slow:
            source = SlowSource(name, stall_s=2.0)
        else:
            source = MemorySource(name, page_rows=64)
        source.add_table(
            f"t_{name}", SCHEMA, [(i, name) for i in range(ROWS_EACH)]
        )
        gis.register_source(name, source)
        gis.register_table(f"t_{name}", source=name)
    return gis


def timed(action):
    started = time.perf_counter()
    value = action()
    return value, (time.perf_counter() - started) * 1000.0


def scenario_zero_overhead(lines, failures):
    gis = build()
    baseline, base_ms = timed(lambda: gis.query(SQL))
    armed, armed_ms = timed(
        lambda: gis.query(SQL, PlannerOptions(faults=FaultPlan()))
    )
    identical = (
        armed.rows == baseline.rows
        and armed.metrics.network.messages == baseline.metrics.network.messages
        and armed.metrics.network.bytes_shipped
        == baseline.metrics.network.bytes_shipped
        and armed.metrics.simulated_ms == baseline.metrics.simulated_ms
    )
    lines.append(
        f"zero-overhead:   baseline {base_ms:.1f} ms, armed {armed_ms:.1f} ms, "
        f"accounting {'identical' if identical else 'DIFFERS'}"
    )
    if not identical:
        failures.append("armed-but-empty fault plan changed rows or accounting")


def scenario_dead_source(lines, failures):
    plan = FaultPlan.of(beta=FaultSpec(fail_connect=10_000))
    gis = build(retries=1, faults=plan)
    try:
        gis.query(SQL)
    except SourceError as exc:
        if exc.source_name != "beta":
            failures.append(f"dead-source error blamed {exc.source_name!r}")
        lines.append(f"dead source:     fail mode -> {type(exc).__name__}"
                     f" on '{exc.source_name}'")
    else:
        failures.append("dead source did not fail the query in 'fail' mode")
        return
    result = gis.query(SQL, PlannerOptions(on_source_failure="partial"))
    expected = ROWS_EACH * (len(SOURCES) - 1)
    honest = (
        not result.complete
        and list(result.excluded_sources) == ["beta"]
        and len(result.rows) == expected
    )
    lines.append(
        f"                 partial mode -> complete={result.complete}, "
        f"excluded={sorted(result.excluded_sources)}, "
        f"{len(result.rows)}/{ROWS_EACH * len(SOURCES)} rows"
    )
    if not honest:
        failures.append("partial mode did not degrade honestly")


def scenario_flapping_recovery(lines, failures):
    plan = FaultPlan.of(gamma=FaultSpec(fail_every=1, recover_after=2))
    gis = build(faults=plan)
    failed = 0
    for _ in range(2):
        try:
            gis.query(SQL)
        except SourceError:
            failed += 1
    try:
        result = gis.query(SQL)
    except SourceError:
        failures.append("flapping source did not recover after K failures")
        return
    snap = gis.fault_injector.snapshot()["gamma"]
    lines.append(
        f"flapping:        {failed} failed queries, then recovered "
        f"({len(result.rows)} rows; injector saw "
        f"{snap.failures} failures / {snap.calls} calls)"
    )
    if failed != 2 or snap.failures != 2:
        failures.append("flapping schedule did not match recover_after=2")


def scenario_deadline_abort(lines, failures):
    gis = build(slow="beta")
    options = PlannerOptions(deadline_ms=50.0, max_parallel_fragments=4)
    try:
        _, elapsed_ms = timed(lambda: gis.query(SQL, options))
    except QueryTimeoutError as exc:
        lines.append(
            f"deadline:        aborted with {type(exc).__name__} "
            f"(budget {exc.budget_ms:.0f} ms, elapsed {exc.elapsed_ms:.0f} ms, "
            f"waiting on {exc.source_name!r})"
        )
        if exc.elapsed_ms > 1_500.0:
            failures.append("deadline abort was not prompt")
        return
    failures.append(
        f"hung source did not trip the deadline (finished in {elapsed_ms:.0f} ms)"
    )


def main() -> int:
    lines = ["== chaos smoke: scripted faults on a 3-source federation =="]
    failures = []
    scenario_zero_overhead(lines, failures)
    scenario_dead_source(lines, failures)
    scenario_flapping_recovery(lines, failures)
    scenario_deadline_abort(lines, failures)
    lines.append("")

    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as handle:
        handle.write("\n".join(lines))
    print("\n".join(lines))

    if failures:
        print("FAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""R2 — tail tolerance: hedged fetches vs a straggling primary.

One table lives on ``primary`` with a bit-identical replica on
``backup``. A seeded straggler fault makes a fraction of the primary's
calls stall in **real** wall-clock before every page — the classic
fat-tail federation, where median queries are fine and the p99 is
whatever the slow replica is doing. The same workload (same per-query
fault seeds, so the *same* queries straggle) runs twice:

* **unhedged** — fetches ride out every stall;
* **hedged** — when the first page misses the hedge delay, a duplicate
  fetch races on ``backup`` and the first stream to produce wins.

Reported per mode: wall-clock p50/p95/p99/max, stall counts, and the
hedge ledger (launched/won/cancelled, duplicate rows). Hard gates:

* every run, in both modes, returns rows **bit-identical** to the
  fault-free baseline (hedging may never change an answer);
* hedged p99 is at least **2x** better than unhedged p99;
* hedge traffic is honestly charged: duplicate rows appear under
  ``hedges_rows_shipped`` and in the backup's network ledger.

Results go to ``benchmarks/results/bench_r2_tail.txt`` (human) and
``benchmarks/results/BENCH_R2.json`` (machine-readable). Run directly::

    python benchmarks/bench_r2_tail.py            # full workload
    python benchmarks/bench_r2_tail.py --smoke    # CI-sized stalls
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Any, Dict, List

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import (  # noqa: E402
    FaultPlan,
    FaultSpec,
    GlobalInformationSystem,
    MemorySource,
    PlannerOptions,
)
from repro.catalog.schema import schema_from_pairs  # noqa: E402

from common import emit, emit_json, format_row  # noqa: E402

SQL = "SELECT a, b FROM t ORDER BY a"
SEED = 2100
WIDTHS = (10, 9, 9, 9, 9, 9)


def build_federation(rows: int, page_rows: int) -> GlobalInformationSystem:
    schema = schema_from_pairs("t", [("a", "INT"), ("b", "TEXT")])
    data = [(i, f"v{i}") for i in range(rows)]
    gis = GlobalInformationSystem()
    primary = MemorySource("primary", page_rows=page_rows)
    primary.add_table("t", schema, data)
    backup = MemorySource("backup", page_rows=page_rows)
    backup.add_table("t_copy", schema, data)
    gis.register_source("primary", primary)
    gis.register_source("backup", backup)
    gis.register_table("t", source="primary")
    gis.register_replica("t", source="backup", remote_table="t_copy")
    return gis


def query_plan(index: int, straggle_ms: float, straggle_rate: float) -> FaultPlan:
    # One seed per query index: whether query #i straggles is a fixed,
    # replayable fact shared by both modes — the hedged and unhedged
    # runs face the *same* sequence of slow queries.
    return FaultPlan.of(
        seed=SEED + index,
        primary=FaultSpec(
            straggle_ms=straggle_ms, straggle_rate=straggle_rate
        ),
    )


def percentile(sorted_ms: List[float], fraction: float) -> float:
    """Nearest-rank percentile over an already-sorted sample."""
    if not sorted_ms:
        return 0.0
    rank = max(1, int(round(fraction * len(sorted_ms) + 0.5)))
    return sorted_ms[min(rank, len(sorted_ms)) - 1]


def run_mode(
    hedged: bool,
    *,
    queries: int,
    straggle_ms: float,
    straggle_rate: float,
    hedge_delay_ms: float,
    rows: int,
    page_rows: int,
    baseline: List[tuple],
) -> Dict[str, Any]:
    gis = build_federation(rows, page_rows)
    latencies: List[float] = []
    hedge_totals = {"launched": 0, "won": 0, "cancelled": 0, "rows": 0}
    for index in range(queries):
        options = PlannerOptions(
            faults=query_plan(index, straggle_ms, straggle_rate),
            replicas="primary",
            hedge_fragments=hedged,
            hedge_delay_ms=hedge_delay_ms,
        )
        started = time.perf_counter()
        result = gis.query(SQL, options)
        latencies.append((time.perf_counter() - started) * 1000.0)
        assert result.rows == baseline, (
            f"{'hedged' if hedged else 'unhedged'} query {index} returned "
            "rows that differ from the fault-free baseline"
        )
        net = result.metrics.network
        hedge_totals["launched"] += net.hedges_launched
        hedge_totals["won"] += net.hedges_won
        hedge_totals["cancelled"] += net.hedges_cancelled
        hedge_totals["rows"] += net.hedges_rows_shipped
    ledger = gis.network.per_source()
    ordered = sorted(latencies)
    return {
        "mode": "hedged" if hedged else "unhedged",
        "queries": queries,
        "p50_ms": round(percentile(ordered, 0.50), 2),
        "p95_ms": round(percentile(ordered, 0.95), 2),
        "p99_ms": round(percentile(ordered, 0.99), 2),
        "max_ms": round(ordered[-1], 2),
        "mean_ms": round(sum(latencies) / len(latencies), 2),
        "hedges_launched": hedge_totals["launched"],
        "hedges_won": hedge_totals["won"],
        "hedges_cancelled": hedge_totals["cancelled"],
        "hedges_rows_shipped": hedge_totals["rows"],
        "backup_rows_shipped": int(
            getattr(ledger.get("backup"), "rows", 0) or 0
        ),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized run: fewer queries, shorter stalls",
    )
    args = parser.parse_args()

    if args.smoke:
        queries, straggle_ms, rows, page_rows = 12, 40.0, 240, 48
    else:
        queries, straggle_ms, rows, page_rows = 30, 120.0, 480, 60
    straggle_rate = 0.25
    hedge_delay_ms = max(10.0, straggle_ms / 4.0)

    baseline = build_federation(rows, page_rows).query(SQL).rows
    assert len(baseline) == rows

    common = dict(
        queries=queries,
        straggle_ms=straggle_ms,
        straggle_rate=straggle_rate,
        hedge_delay_ms=hedge_delay_ms,
        rows=rows,
        page_rows=page_rows,
        baseline=baseline,
    )
    unhedged = run_mode(False, **common)
    hedged = run_mode(True, **common)

    # -- hard gates -------------------------------------------------------
    assert unhedged["hedges_launched"] == 0, unhedged
    assert hedged["hedges_launched"] > 0, (
        "straggler workload never triggered a hedge", hedged
    )
    assert hedged["hedges_won"] > 0, hedged
    assert hedged["hedges_rows_shipped"] > 0, hedged
    assert hedged["backup_rows_shipped"] >= hedged["hedges_rows_shipped"], (
        "hedge traffic missing from the backup's network ledger", hedged
    )
    p99_ratio = (
        unhedged["p99_ms"] / hedged["p99_ms"] if hedged["p99_ms"] else 0.0
    )
    assert p99_ratio >= 2.0, (
        f"hedging cut p99 only {p99_ratio:.2f}x "
        f"(unhedged {unhedged['p99_ms']}ms vs hedged {hedged['p99_ms']}ms)"
    )

    # -- report -----------------------------------------------------------
    lines = [
        f"workload: {queries} queries, straggle {straggle_ms:.0f}ms at "
        f"rate {straggle_rate:.0%} on primary, hedge delay "
        f"{hedge_delay_ms:.0f}ms{' [smoke]' if args.smoke else ''}",
        "",
        format_row(
            ("mode", "p50 ms", "p95 ms", "p99 ms", "max ms", "mean ms"),
            WIDTHS,
        ),
        format_row(("-" * w for w in WIDTHS), WIDTHS),
    ]
    for row in (unhedged, hedged):
        lines.append(
            format_row(
                (
                    row["mode"],
                    f"{row['p50_ms']:.1f}",
                    f"{row['p95_ms']:.1f}",
                    f"{row['p99_ms']:.1f}",
                    f"{row['max_ms']:.1f}",
                    f"{row['mean_ms']:.1f}",
                ),
                WIDTHS,
            )
        )
    lines += [
        "",
        f"hedges: {hedged['hedges_launched']} launched, "
        f"{hedged['hedges_won']} won, "
        f"{hedged['hedges_cancelled']} cancelled, "
        f"{hedged['hedges_rows_shipped']} duplicate rows charged",
        f"p99 improvement: {p99_ratio:.1f}x (gate: >= 2x)",
        "rows: bit-identical to the fault-free baseline in "
        f"all {2 * queries} runs",
    ]
    emit("bench_r2_tail", "R2 — tail tolerance: hedged vs unhedged", lines)

    emit_json(
        "BENCH_R2",
        {
            "bench": "R2",
            "title": "tail tolerance: hedged fetches vs straggling primary",
            "smoke": args.smoke,
            "workload": {
                "queries": queries,
                "rows": rows,
                "page_rows": page_rows,
                "straggle_ms": straggle_ms,
                "straggle_rate": straggle_rate,
                "hedge_delay_ms": hedge_delay_ms,
                "seed": SEED,
            },
            "unhedged": unhedged,
            "hedged": hedged,
            "p99_improvement_x": round(p99_ratio, 2),
            "rows_bit_identical": True,
        },
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

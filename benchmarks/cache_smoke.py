"""CI cache smoke: semantic-cache answers must be free and identical.

Three scripted scenarios, each a hard gate:

* **warm == cold** — the same query served from the fragment cache must
  return exactly the cold rows (values and Python types) while shipping
  zero fragment bytes over the simulated network;
* **subsumed == cold** — a narrower predicate answered from a cached
  superset (with the mediator-side residual filter) must match its own
  cold execution bit-identically, again with zero bytes shipped;
* **invalidation** — after ``notify_source_changed`` the next query must
  go back to the source (bytes shipped again) instead of serving the
  stale entry.

The scenario table is written to ``benchmarks/results/cache_smoke.txt``.
Run directly::

    python benchmarks/cache_smoke.py
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import GlobalInformationSystem, MemorySource  # noqa: E402
from repro.catalog.schema import schema_from_pairs  # noqa: E402

RESULTS_PATH = os.path.join(
    os.path.dirname(__file__), "results", "cache_smoke.txt"
)

ROWS = 2_000
SUPERSET = "SELECT id, region, amount FROM orders WHERE amount >= 50"
SUBSUMED = (
    "SELECT id, region, amount FROM orders "
    "WHERE amount >= 50 AND amount < 200 AND region = 'east'"
)
REGIONS = ("east", "west", "north", "south")


def build(fragment_cache_bytes=0):
    gis = GlobalInformationSystem(fragment_cache_bytes=fragment_cache_bytes)
    source = MemorySource("warehouse", page_rows=128)
    schema = schema_from_pairs(
        "orders",
        [("id", "INT"), ("region", "TEXT"), ("amount", "FLOAT")],
    )
    rows = [
        (
            i,
            REGIONS[i % len(REGIONS)],
            None if i % 7 == 0 else float(i % 400),
        )
        for i in range(ROWS)
    ]
    source.add_table("orders", schema, rows)
    gis.register_source("warehouse", source)
    gis.register_table("orders", source="warehouse")
    return gis


def bit_identical(warm_rows, cold_rows):
    if warm_rows != cold_rows:
        return False
    return all(
        type(a) is type(b)
        for wr, cr in zip(warm_rows, cold_rows)
        for a, b in zip(wr, cr)
    )


def scenario_warm_equals_cold(gis, oracle, lines, failures):
    cold = oracle.query(SUPERSET)
    fill = gis.query(SUPERSET)
    warm = gis.query(SUPERSET)
    net = warm.metrics.network
    ok = (
        bit_identical(warm.rows, cold.rows)
        and fill.metrics.network.bytes_shipped > 0
        and net.bytes_shipped == 0
        and net.fragment_cache_hits == 1
    )
    lines.append(
        f"warm == cold:    {len(warm.rows)} rows, "
        f"{fill.metrics.network.bytes_shipped:.0f} bytes cold -> "
        f"{net.bytes_shipped:.0f} warm, "
        f"{net.fragment_cache_hits} cache hit(s)"
    )
    if not ok:
        failures.append("warm repeat was not a free, bit-identical replay")


def scenario_subsumed_equals_cold(gis, oracle, lines, failures):
    cold = oracle.query(SUBSUMED)
    warm = gis.query(SUBSUMED)
    net = warm.metrics.network
    ok = (
        bit_identical(warm.rows, cold.rows)
        and net.bytes_shipped == 0
        and net.fragment_cache_hits == 1
    )
    lines.append(
        f"subsumed == cold: {len(warm.rows)} rows from the cached "
        f"superset, {net.bytes_shipped:.0f} bytes shipped, "
        f"{net.fragment_cache_hits} cache hit(s)"
    )
    if not ok:
        failures.append(
            "subsumed probe was not answered free and bit-identically"
        )


def scenario_invalidation(gis, lines, failures):
    gis.notify_source_changed("warehouse")
    refetched = gis.query(SUPERSET)
    net = refetched.metrics.network
    lines.append(
        f"invalidation:    epoch bump -> {net.bytes_shipped:.0f} bytes "
        f"re-shipped, {net.fragment_cache_misses} miss(es)"
    )
    if net.bytes_shipped == 0:
        failures.append("stale entry served after notify_source_changed")


def main() -> int:
    lines = ["== cache smoke: semantic fragment cache invariants =="]
    failures = []
    gis = build(fragment_cache_bytes=8_000_000)
    oracle = build(fragment_cache_bytes=0)
    scenario_warm_equals_cold(gis, oracle, lines, failures)
    scenario_subsumed_equals_cold(gis, oracle, lines, failures)
    scenario_invalidation(gis, lines, failures)
    lines.append("")

    os.makedirs(os.path.dirname(RESULTS_PATH), exist_ok=True)
    with open(RESULTS_PATH, "w") as handle:
        handle.write("\n".join(lines))
    print("\n".join(lines))

    if failures:
        print("FAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""F5 — columnar vectorized kernels vs row-tuple batch engine (Table 7).

Same scan-only federation as F4 (every filter, projection, join, and
aggregate compensated mediator-side, above the exchange), comparing the
two expression engines at fixed batch sizes:

* ``vectorize=False`` — the PR 2 row-kernel engine: compiled per-row
  closures looped over each page (kept in-tree as the baseline and as
  the equivalence oracle);
* ``vectorize=True`` — columnar kernels: one tight loop per column per
  expression node over the page's column vectors.

Pipelines:

* P1 ``scan → filter → project`` — the pure kernel path;
* P2 ``scan → filter → hash join → aggregate`` — stateful operators;
* P3 wide aggregate — eight accumulators over grouped columns, the
  column-wise accumulation path.

Reported per pipeline: wall milliseconds for each engine at batch sizes
1 and 1024, and the columnar/row speedup per batch size. At
``batch_size=1`` pages are single rows and vectorization cannot help
(the interesting claim is that it does not *hurt* much); at the default
1024 the acceptance bar is ≥ 1.5x on P1. Results are asserted identical
across every engine/batch combination.
"""

import time

from repro import (
    GlobalInformationSystem,
    MemorySource,
    NetworkLink,
    PlannerOptions,
)
from repro.catalog.schema import schema_from_pairs
from repro.sources.base import SourceCapabilities

from .common import emit, emit_json, format_row

ITEM_ROWS = 60_000
DIM_ROWS = 64
BATCH_SIZES = [1, 1024]
REPEATS = 3
WIDTHS = (7, 12, 12, 9)

P1 = "SELECT k, val * 2.0 FROM items WHERE val > 400.0"
P2 = (
    "SELECT d.label, COUNT(*), SUM(i.val) FROM items i "
    "JOIN dims d ON i.grp = d.g WHERE i.val > 250.0 "
    "GROUP BY d.label ORDER BY d.label"
)
P3 = (
    "SELECT grp, COUNT(*), SUM(val), MIN(val), MAX(val), AVG(val), "
    "SUM(k), MIN(k), MAX(k) FROM items GROUP BY grp ORDER BY grp"
)


def build() -> GlobalInformationSystem:
    gis = GlobalInformationSystem()
    store = MemorySource("store", capabilities=SourceCapabilities.scan_only())
    store.add_table(
        "items",
        schema_from_pairs(
            "items", [("k", "INT"), ("grp", "INT"), ("val", "FLOAT"),
                      ("tag", "TEXT")],
        ),
        [
            (i, i % DIM_ROWS, float((i * 7919) % 1000), f"t{i % 97}")
            for i in range(ITEM_ROWS)
        ],
    )
    ref = MemorySource("ref", capabilities=SourceCapabilities.scan_only())
    ref.add_table(
        "dims",
        schema_from_pairs("dims", [("g", "INT"), ("label", "TEXT")]),
        [(g, f"group-{g:02d}") for g in range(DIM_ROWS)],
    )
    gis.register_source("store", store, link=NetworkLink(1.0, 100e6))
    gis.register_source("ref", ref, link=NetworkLink(1.0, 100e6))
    gis.register_table("items", source="store")
    gis.register_table("dims", source="ref")
    gis.analyze()
    return gis


def measure(gis, sql, batch_size, vectorize):
    """Best-of-N wall ms and the result rows (for cross-engine checks).

    Typed columns and fusion are pinned OFF on both sides: F5 isolates
    the expression-kernel comparison (row closures vs columnar loops)
    exactly as it did before those knobs existed. The full new stack is
    measured by F6 (``bench_f6_typed_fusion.py``).
    """
    options = PlannerOptions(
        batch_size=batch_size,
        vectorize=vectorize,
        typed_columns=False,
        fuse=False,
    )
    best_ms, rows = float("inf"), None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = gis.query(sql, options)
        elapsed = (time.perf_counter() - started) * 1000.0
        if elapsed < best_ms:
            best_ms = elapsed
        rows = result.rows
    return best_ms, rows


def sweep(gis, title, sql, lines):
    lines.append(f"-- {title} --")
    lines.append(
        format_row(("batch", "row ms", "columnar ms", "speedup"), WIDTHS)
    )
    lines.append("-" * 44)
    speedups = {}
    baseline_rows = None
    for batch_size in BATCH_SIZES:
        row_ms, row_rows = measure(gis, sql, batch_size, vectorize=False)
        col_ms, col_rows = measure(gis, sql, batch_size, vectorize=True)
        if baseline_rows is None:
            baseline_rows = row_rows
        assert row_rows == baseline_rows, "rows must not depend on the engine"
        assert col_rows == baseline_rows, "rows must not depend on the engine"
        speedups[batch_size] = row_ms / col_ms
        lines.append(
            format_row(
                (batch_size, f"{row_ms:.1f}", f"{col_ms:.1f}",
                 f"{speedups[batch_size]:.2f}x"),
                WIDTHS,
            )
        )
    return speedups


def test_f5_columnar_speedup(benchmark):
    gis = build()
    lines = []
    p1 = sweep(gis, "P1: scan-filter-project", P1, lines)
    lines.append("")
    p2 = sweep(gis, "P2: scan-filter-join-aggregate", P2, lines)
    lines.append("")
    p3 = sweep(gis, "P3: wide aggregate (8 accumulators)", P3, lines)
    emit("f5_columnar", "F5: columnar kernels vs row-kernel engine", lines)
    emit_json(
        "BENCH_F5",
        {
            "benchmark": "F5 columnar kernels vs row-kernel engine",
            "item_rows": ITEM_ROWS,
            "batch_sizes": BATCH_SIZES,
            "pipelines": [
                {
                    "pipeline": name,
                    "speedup_by_batch": {
                        str(batch): round(ratio, 2)
                        for batch, ratio in speedups.items()
                    },
                }
                for name, speedups in [("P1", p1), ("P2", p2), ("P3", p3)]
            ],
        },
    )

    # Acceptance bar: vectorization must beat the row-kernel engine by
    # >= 1.5x on the pure kernel path at the default batch size.
    assert p1[1024] >= 1.5, (
        f"columnar must be >= 1.5x the row engine on P1 at batch=1024 "
        f"(got {p1[1024]:.2f}x)"
    )
    # Stateful pipelines must not regress under vectorization.
    assert p2[1024] >= 1.0
    assert p3[1024] >= 1.0

    # Wall-clock of the default columnar P1 run for the benchmark table.
    benchmark(lambda: gis.query(P1))

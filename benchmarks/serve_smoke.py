"""CI serve smoke: the query service under concurrent mixed clients.

Five scripted scenarios, each a hard gate:

* **fidelity** — concurrent tenants' results over the wire must be
  bit-identical to direct ``Mediator.query()`` calls for the same SQL;
* **overload** — a tenant flooding past its admission queue must get
  typed, retryable ``ServerOverloadedError`` backpressure, with the
  queue never exceeding its bound;
* **fault passthrough** — an injected source fault with partial-results
  mode on must come back ``complete=False`` naming the failed source,
  and the partial answer must not poison any cache;
* **async protocol** — SUBMIT/STATUS/FETCH must page a result down
  correctly, dates intact;
* **clean shutdown** — stopping the server must leak no threads.

The scenario table is written to ``benchmarks/results/serve_smoke.txt``.
Run directly::

    python benchmarks/serve_smoke.py
"""

from __future__ import annotations

import datetime
import os
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import MemorySource, NetworkLink  # noqa: E402
from repro.catalog.schema import schema_from_pairs  # noqa: E402
from repro.errors import ServerOverloadedError  # noqa: E402
from repro.serve import (  # noqa: E402
    QueryServer,
    ServeClient,
    ServerConfig,
    TenantConfig,
)
from repro.workloads import build_federation  # noqa: E402

from common import emit  # noqa: E402


class SlowSource(MemorySource):
    """Real wall-clock latency per fragment (a congested WAN peer)."""

    def __init__(self, name, delay_s):
        super().__init__(name)
        self.delay_s = delay_s

    def execute(self, fragment):
        time.sleep(self.delay_s)
        yield from super().execute(fragment)

    def execute_pages(self, fragment, page_rows):
        time.sleep(self.delay_s)
        yield from super().execute_pages(fragment, page_rows)

SQL_MIX = [
    "SELECT COUNT(*) FROM orders",
    "SELECT c_segment, COUNT(*) FROM customers GROUP BY c_segment",
    "SELECT o_id, o_total FROM orders WHERE o_total > 1000 LIMIT 20",
]


def main() -> int:
    threads_before = set(threading.enumerate())
    lines = []

    federation = build_federation(scale=0.25, seed=3)
    gis = federation.gis
    gis.plan_cache.capacity = 64
    sql_mix = list(SQL_MIX)

    slow = SlowSource("slowsrc", delay_s=0.05)
    slow.add_table(
        "events",
        schema_from_pairs("events", [("eid", "INT"), ("val", "FLOAT")]),
        [(i, i * 1.5) for i in range(40)],
    )
    gis.register_source("slowsrc", slow, link=NetworkLink(5.0, 1_000_000.0))
    gis.register_table("events", source="slowsrc")

    config = ServerConfig(
        max_workers=4,
        tenants={
            "flood": TenantConfig(name="flood", max_concurrent=1, max_queued=2),
        },
    )
    server = QueryServer(gis, config)
    host, port = server.start_background()

    # -- fidelity under concurrency ----------------------------------------
    expected = {sql: [tuple(r) for r in gis.query(sql).rows] for sql in sql_mix}
    mismatches: list = []

    def worker(tenant: str) -> None:
        with ServeClient(host, port, tenant=tenant) as client:
            for _ in range(4):
                for sql in sql_mix:
                    remote = client.query(sql)
                    if sorted(remote.rows) != sorted(expected[sql]):
                        mismatches.append((tenant, sql))

    workers = [
        threading.Thread(target=worker, args=(f"t{i}",)) for i in range(3)
    ]
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    assert not mismatches, mismatches[:3]
    lines.append("fidelity      3 tenants x 12 queries  bit-identical  OK")

    # -- overload backpressure ---------------------------------------------
    rejections = 0
    accepted = []
    with ServeClient(host, port, tenant="flood") as flood:
        for _ in range(10):
            try:
                accepted.append(flood.submit("SELECT eid, val FROM events"))
            except ServerOverloadedError as exc:
                rejections += 1
                assert exc.retryable and exc.tenant == "flood"
                assert exc.limit == 2
        stats = flood.stats()["tenants"]["flood"]
        assert stats["queued"] <= 2, stats
        for query_id in accepted:
            flood.fetch_all(query_id, timeout=120)
    assert rejections > 0, "flood never saw backpressure"
    lines.append(
        f"overload      10 submits, quota 1/2     "
        f"{rejections} typed rejections  OK"
    )

    # -- injected fault + partial results ----------------------------------
    victim = gis.catalog.table("customers").mapping.source
    with ServeClient(host, port, tenant="t0") as client:
        partial = client.query(
            sql_mix[1],
            partial=True,
            faults={"sources": {victim: {"fail_connect": 10, "permanent": True}}},
        )
        assert not partial.complete
        assert victim in partial.excluded_sources
        healthy = client.query(sql_mix[1])
        assert healthy.complete and healthy.rows, "fault leaked past request"
    lines.append(
        f"fault         {victim} down, partial=on   "
        f"complete=False, isolated  OK"
    )

    # -- async submit/status/fetch -----------------------------------------
    with ServeClient(host, port, tenant="t1") as client:
        query_id = client.submit("SELECT o_id, o_date FROM orders LIMIT 30")
        result = client.fetch_all(query_id, page_size=7)
        assert len(result.rows) == 30
        assert isinstance(result.rows[0][1], datetime.date)
        status = client.status(query_id)
        assert status["state"] == "done" and status["row_count"] == 30
    lines.append("async         submit/fetch 30 rows    paged, dates OK  OK")

    # -- clean shutdown -----------------------------------------------------
    server.stop_background()
    time.sleep(0.2)
    leaked = [
        thread
        for thread in set(threading.enumerate()) - threads_before
        if thread.is_alive()
    ]
    assert not leaked, [thread.name for thread in leaked]
    lines.append("shutdown      stop_background()       no leaked threads  OK")

    emit("serve_smoke", "serve smoke: multi-tenant query service", lines)
    return 0


if __name__ == "__main__":
    sys.exit(main())

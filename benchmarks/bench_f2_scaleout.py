"""F2 — scale-out over horizontally partitioned sources (Figure 2).

A fixed 2000-row `orders` table is range-partitioned over 1→8 SQLite
sources behind a UNION ALL view; an aggregate query with a pushed filter
runs against each configuration.

Two sections:

* **simulated** — sequential virtual time (sum of per-source transfers — a
  single-threaded mediator) vs parallel virtual time (critical path — what
  a mediator issuing fragments concurrently would see). Deterministic on
  any machine.
* **measured** — *real* wall-clock execution with 50 ms of injected
  per-fragment latency, sequential engine vs the fragment scheduler
  (``max_parallel_fragments=8``). This exercises the actual worker
  threads, bounded queues, and concurrent SQLite access; rows must be
  bit-identical and the 4- and 8-partition configurations must clear a 2×
  speedup.

Expected shape: both parallel series fall near-linearly with partition
count until per-message latency floors them; sequential stays roughly
flat (same bytes, more messages / same sleeps, serialized).
"""

import time

from repro.core.planner import PlannerOptions
from repro.workloads import build_partitioned_orders

from .common import emit, format_row

TOTAL_ROWS = 2000
PARTITIONS = [1, 2, 4, 8]
# A row-returning query: every configuration ships the same filtered rows,
# isolating the transfer-parallelism effect. (A fully pushable aggregate
# would make the 1-source case degenerate — the source computes it alone —
# which is the *pushdown* story, not the scale-out story.)
SQL = "SELECT o_id, o_total FROM orders_all WHERE o_total > 500"
WIDTHS = (10, 12, 14, 14, 10)

#: Injected real latency per fragment fetch in the measured section.
INJECTED_DELAY_S = 0.05

PARALLEL_OPTIONS = PlannerOptions(max_parallel_fragments=8)


class LatencyInjectedAdapter:
    """Delegating wrapper that sleeps before serving each fragment,
    modeling a real slow link so wall-clock parallelism is observable."""

    def __init__(self, inner, delay_s=INJECTED_DELAY_S):
        self._inner = inner
        self._delay_s = delay_s

    def __getattr__(self, item):
        return getattr(self._inner, item)

    def execute(self, fragment):
        time.sleep(self._delay_s)
        yield from self._inner.execute(fragment)


def test_f2_scaleout_over_partitions(benchmark):
    lines = [
        "-- simulated virtual clock --",
        format_row(
            ("sources", "rows", "sequential ms", "parallel ms", "speedup"),
            WIDTHS,
        ),
        "-" * 68,
    ]
    series = []
    answers = set()
    for count in PARTITIONS:
        federation = build_partitioned_orders(
            count, TOTAL_ROWS // count, seed=42, latency_ms=20.0,
            bandwidth=200_000.0,
        )
        gis = federation.gis
        gis.network.reset()
        result = gis.query(SQL)
        answers.add(tuple(sorted(result.rows)))
        sequential = gis.network.total.simulated_ms
        parallel = gis.network.parallel_elapsed_ms()
        series.append((count, sequential, parallel))
        lines.append(
            format_row(
                (
                    count,
                    result.metrics.rows_shipped,
                    sequential,
                    parallel,
                    f"{series[0][2] / parallel:.1f}x" if parallel else "-",
                ),
                WIDTHS,
            )
        )

    # -- measured wall clock: the scheduler actually running threads -------
    lines += [
        "",
        f"-- measured wall clock ({INJECTED_DELAY_S * 1000:.0f} ms injected "
        "per-fragment latency, 8 workers) --",
        format_row(
            ("sources", "rows", "sequential ms", "parallel ms", "speedup"),
            WIDTHS,
        ),
        "-" * 68,
    ]
    measured = []
    for count in PARTITIONS:
        federation = build_partitioned_orders(
            count, TOTAL_ROWS // count, seed=42,
            adapter_wrapper=LatencyInjectedAdapter,
        )
        gis = federation.gis
        started = time.perf_counter()
        seq_result = gis.query(SQL)
        seq_ms = (time.perf_counter() - started) * 1000.0
        started = time.perf_counter()
        par_result = gis.query(SQL, PARALLEL_OPTIONS)
        par_ms = (time.perf_counter() - started) * 1000.0
        # The acceptance bar: parallel execution is bit-identical.
        assert par_result.rows == seq_result.rows
        answers.add(tuple(sorted(par_result.rows)))
        measured.append((count, seq_ms, par_ms))
        lines.append(
            format_row(
                (
                    count,
                    par_result.metrics.rows_shipped,
                    seq_ms,
                    par_ms,
                    f"{seq_ms / par_ms:.1f}x" if par_ms else "-",
                ),
                WIDTHS,
            )
        )
    emit("f2_scaleout", "F2: scale-out over horizontal partitions", lines)

    # All configurations (simulated and measured) compute the same answer.
    assert len(answers) == 1

    # Shape: simulated parallel time decreases monotonically with partitions
    # and the 8-way configuration achieves a real speedup over one source.
    parallel_times = [row[2] for row in series]
    assert all(a >= b for a, b in zip(parallel_times, parallel_times[1:]))
    assert parallel_times[0] / parallel_times[-1] > 2.0

    # Measured: with latency injected, real concurrent execution beats the
    # sequential engine by >2x at 4 and 8 partitions.
    for count, seq_ms, par_ms in measured:
        if count >= 4:
            assert seq_ms / par_ms > 2.0, (
                f"{count} partitions: expected >2x wall-clock speedup, got "
                f"{seq_ms / par_ms:.2f}x ({seq_ms:.0f} ms -> {par_ms:.0f} ms)"
            )

    federation = build_partitioned_orders(4, TOTAL_ROWS // 4, seed=42)
    benchmark(lambda: federation.gis.query(SQL))

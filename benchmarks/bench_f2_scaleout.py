"""F2 — scale-out over horizontally partitioned sources (Figure 2).

A fixed 2000-row `orders` table is range-partitioned over 1→8 SQLite
sources behind a UNION ALL view; an aggregate query with a pushed filter
runs against each configuration. Reported series: sequential simulated
time (sum of per-source transfers — a single-threaded mediator) and
parallel simulated time (critical path — per-source max, what a mediator
issuing fragments concurrently would see). Expected shape: parallel time
falls near-linearly with partition count until per-message latency floors
it; sequential time stays roughly flat (same bytes, more messages).
"""

import pytest

from repro.workloads import build_partitioned_orders

from .common import emit, format_row

TOTAL_ROWS = 2000
PARTITIONS = [1, 2, 4, 8]
# A row-returning query: every configuration ships the same filtered rows,
# isolating the transfer-parallelism effect. (A fully pushable aggregate
# would make the 1-source case degenerate — the source computes it alone —
# which is the *pushdown* story, not the scale-out story.)
SQL = "SELECT o_id, o_total FROM orders_all WHERE o_total > 500"
WIDTHS = (10, 12, 14, 14, 10)


def test_f2_scaleout_over_partitions(benchmark):
    lines = [
        format_row(
            ("sources", "rows", "sequential ms", "parallel ms", "speedup"),
            WIDTHS,
        ),
        "-" * 68,
    ]
    series = []
    answers = set()
    for count in PARTITIONS:
        federation = build_partitioned_orders(
            count, TOTAL_ROWS // count, seed=42, latency_ms=20.0,
            bandwidth=200_000.0,
        )
        gis = federation.gis
        gis.network.reset()
        result = gis.query(SQL)
        answers.add(tuple(sorted(result.rows)))
        sequential = gis.network.total.simulated_ms
        parallel = gis.network.parallel_elapsed_ms()
        series.append((count, sequential, parallel))
        lines.append(
            format_row(
                (
                    count,
                    result.metrics.rows_shipped,
                    sequential,
                    parallel,
                    f"{series[0][2] / parallel:.1f}x" if parallel else "-",
                ),
                WIDTHS,
            )
        )
    emit("f2_scaleout", "F2: scale-out over horizontal partitions", lines)

    # All configurations compute the same answer.
    assert len(answers) == 1

    # Shape: parallel time decreases monotonically with partitions and the
    # 8-way configuration achieves a real speedup over the single source.
    parallel_times = [row[2] for row in series]
    assert all(a >= b for a, b in zip(parallel_times, parallel_times[1:]))
    assert parallel_times[0] / parallel_times[-1] > 2.0

    federation = build_partitioned_orders(4, TOTAL_ROWS // 4, seed=42)
    benchmark(lambda: federation.gis.query(SQL))

"""T5 — end-to-end federated workload: optimized vs naive mediator (Table 5).

Eight analytics queries spanning all six sources of the TPC-H-lite
federation, each run through the fully optimized mediator and through the
naive baseline (no rewrites, canonical join order, ship-everything, no
semijoins). Reported per query: rows shipped and simulated network time
for both, plus the speedup. Expected shape: the optimized mediator wins on
every query, with the largest factors on selective single-source queries
and key-lookup joins.
"""

import pytest

from repro import NAIVE_OPTIONS, PlannerOptions
from repro.workloads import build_federation

from .common import emit, format_row

from repro.workloads import WORKLOAD_QUERIES

QUERIES = [
    (f"Q{i+1} {name.replace('_', ' ')}", sql)
    for i, (name, sql) in enumerate(WORKLOAD_QUERIES)
]

WIDTHS = (22, 10, 10, 11, 11, 9)


@pytest.fixture(scope="module")
def federation():
    # Big enough that payload bytes dominate per-message latency.
    return build_federation(scale=8.0, seed=42)


def run(gis, sql, options):
    gis.network.reset()
    return gis.query(sql, options)


def test_t5_endtoend_workload(federation, benchmark):
    gis = federation.gis
    smart_options = PlannerOptions()
    lines = [
        format_row(
            ("query", "opt rows", "nv rows", "opt ms", "nv ms", "speedup"),
            WIDTHS,
        ),
        "-" * 84,
    ]
    speedups = []
    for name, sql in QUERIES:
        smart = run(gis, sql, smart_options)
        naive = run(gis, sql, NAIVE_OPTIONS)
        assert sorted(map(repr, smart.rows)) == sorted(map(repr, naive.rows)), name
        speedup = naive.metrics.simulated_ms / max(smart.metrics.simulated_ms, 1e-9)
        speedups.append(speedup)
        lines.append(
            format_row(
                (
                    name,
                    smart.metrics.rows_shipped,
                    naive.metrics.rows_shipped,
                    smart.metrics.simulated_ms,
                    naive.metrics.simulated_ms,
                    f"{speedup:.1f}x",
                ),
                WIDTHS,
            )
        )
    geo_mean = 1.0
    for s in speedups:
        geo_mean *= s
    geo_mean **= 1.0 / len(speedups)
    lines.append("-" * 84)
    lines.append(f"geometric-mean speedup: {geo_mean:.2f}x")
    emit("t5_endtoend", "T5: end-to-end workload, optimized vs naive mediator", lines)

    # Shape: optimized never loses, wins overall, and wins big somewhere.
    assert all(s >= 0.95 for s in speedups)
    assert geo_mean > 2.0
    assert max(speedups) > 5.0

    benchmark(lambda: run(gis, QUERIES[3][1], smart_options))

"""Shared helpers for the experiment benchmarks.

Every experiment emits its table/series both to stdout and to
``benchmarks/results/<name>.txt`` so the regenerated numbers survive the
pytest run (EXPERIMENTS.md records them). Experiments that feed the
cross-PR perf trajectory additionally emit a machine-readable
``benchmarks/results/BENCH_<ID>.json`` via :func:`emit_json` — same
schema style as ``BENCH_S1.json``: a flat object of headline numbers
plus nested per-query/per-mode breakdowns.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, title: str, lines: Iterable[str]) -> str:
    """Print an experiment table and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join([f"== {title} ==", *lines, ""])
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text)
    print()
    print(text)
    return text


def emit_json(name: str, payload: Dict[str, Any]) -> str:
    """Persist a machine-readable result as ``results/<name>.json``.

    ``name`` is the file stem (``BENCH_F6`` → ``BENCH_F6.json``); floats
    should be pre-rounded by the caller so diffs stay readable. Returns
    the path written.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"[json] {path}")
    return path


def format_row(cells: Sequence[object], widths: Sequence[int]) -> str:
    """Right-align numeric-looking cells into fixed-width columns."""
    rendered: List[str] = []
    for cell, width in zip(cells, widths):
        if isinstance(cell, float):
            rendered.append(f"{cell:>{width}.1f}")
        else:
            rendered.append(f"{str(cell):>{width}}")
    return " | ".join(rendered)

"""Shared helpers for the experiment benchmarks.

Every experiment emits its table/series both to stdout and to
``benchmarks/results/<name>.txt`` so the regenerated numbers survive the
pytest run (EXPERIMENTS.md records them).
"""

from __future__ import annotations

import os
from typing import Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(name: str, title: str, lines: Iterable[str]) -> str:
    """Print an experiment table and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    text = "\n".join([f"== {title} ==", *lines, ""])
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text)
    print()
    print(text)
    return text


def format_row(cells: Sequence[object], widths: Sequence[int]) -> str:
    """Right-align numeric-looking cells into fixed-width columns."""
    rendered: List[str] = []
    for cell, width in zip(cells, widths):
        if isinstance(cell, float):
            rendered.append(f"{cell:>{width}.1f}")
        else:
            rendered.append(f"{str(cell):>{width}}")
    return " | ".join(rendered)

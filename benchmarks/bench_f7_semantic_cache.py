"""F7 — semantic fragment cache: cold vs warm vs subsumed-warm.

A single-source federation (8 000 orders rows, NULL-bearing ``amount``)
runs a small analytical workload — each query issued ``REPEATS`` times,
the dashboard-style access pattern a semantic cache exists for — under
two configurations:

* **cache off** — every query ships its fragment over the simulated
  network (``fragment_cache_bytes=0``, the default);
* **cache on** — the first (superset) query fills the fragment cache;
  the exact repeat replays it and every narrower probe is answered by
  predicate subsumption plus a mediator-side residual filter, so the
  warm half of the workload ships **zero** fragment bytes.

Every warm answer is checked bit-identical (rows and Python types)
against the cache-off oracle, so the bytes saved are never bought with
wrong answers.

Acceptance: total bytes shipped with the cache on must be ≥ 5x lower
than with it off.

Emits ``results/f7_semantic_cache.txt`` and machine-readable
``results/BENCH_F7.json``.
"""

from __future__ import annotations

import time

from repro import GlobalInformationSystem, MemorySource
from repro.catalog.schema import schema_from_pairs

from .common import emit, emit_json, format_row

ROWS = 8_000
REPEATS = 3
WIDTHS = (34, 10, 12, 9, 6)
CACHE_BYTES = 32_000_000

#: The cache-filling query: one pushed fragment covering every probe.
SUPERSET = (
    "SELECT id, region, amount FROM orders WHERE amount >= 100"
)

#: (label, sql) — each probe's pushed predicate is implied by the
#: superset's, so a warm cache answers all of them without the source.
PROBES = [
    ("exact repeat", SUPERSET),
    ("narrower range",
     "SELECT id, region, amount FROM orders WHERE amount >= 250"),
    ("closed range",
     "SELECT id, region, amount FROM orders "
     "WHERE amount >= 100 AND amount < 400"),
    ("range + equality",
     "SELECT id, region, amount FROM orders "
     "WHERE amount >= 100 AND region = 'east'"),
    ("BETWEEN",
     "SELECT id, region, amount FROM orders "
     "WHERE amount BETWEEN 150 AND 300"),
    ("IN-list",
     "SELECT id, region, amount FROM orders "
     "WHERE amount >= 100 AND region IN ('north', 'south')"),
]

REGIONS = ("east", "west", "north", "south")


def build(fragment_cache_bytes=0):
    gis = GlobalInformationSystem(fragment_cache_bytes=fragment_cache_bytes)
    source = MemorySource("warehouse", page_rows=256)
    schema = schema_from_pairs(
        "orders",
        [("id", "INT"), ("region", "TEXT"), ("amount", "FLOAT")],
    )
    rows = [
        (
            i,
            REGIONS[i % len(REGIONS)],
            # Every 7th amount is NULL so subsumption is exercised on a
            # NULL-bearing column, same as the correctness suite.
            None if i % 7 == 0 else float(i % 500),
        )
        for i in range(ROWS)
    ]
    source.add_table("orders", schema, rows)
    gis.register_source("warehouse", source)
    gis.register_table("orders", source="warehouse")
    return gis


def measure(gis, sql, repeats=REPEATS):
    """Best-of-N wall ms, total bytes over all runs, and the last result.

    Bytes are summed across every repeat — the workload model is a
    dashboard re-issuing each query ``REPEATS`` times, which is the
    access pattern a semantic cache exists for.
    """
    best_ms, result, total_bytes = float("inf"), None, 0.0
    for _ in range(repeats):
        started = time.perf_counter()
        result = gis.query(sql)
        best_ms = min(best_ms, (time.perf_counter() - started) * 1000.0)
        total_bytes += result.metrics.network.bytes_shipped
    return best_ms, total_bytes, result


def run():
    cold_gis = build(fragment_cache_bytes=0)
    warm_gis = build(fragment_cache_bytes=CACHE_BYTES)

    # Fill: the superset query runs on both mediators; with the cache
    # on only the first run ships, the repeats replay.
    cold_fill_ms, cold_fill_bytes, cold_fill = measure(cold_gis, SUPERSET)
    warm_fill_ms, warm_fill_bytes, warm_fill = measure(warm_gis, SUPERSET)
    assert warm_fill.rows == cold_fill.rows, "fill rows diverged"
    fill_bytes = cold_fill.metrics.network.bytes_shipped

    lines = [
        format_row(
            ("query", "wall ms", "bytes", "vs cold", "mode"), WIDTHS
        ),
        "-" * 80,
        format_row(
            ("fill: " + SUPERSET[:27], cold_fill_ms,
             f"{fill_bytes:.0f}", "1.0x", "cold"),
            WIDTHS,
        ),
    ]

    probes_json = []
    bytes_off = cold_fill_bytes
    bytes_on = warm_fill_bytes
    for label, sql in PROBES:
        cold_ms, cold_bytes, cold = measure(cold_gis, sql)
        warm_ms, warm_bytes, warm = measure(warm_gis, sql)
        net = warm.metrics.network
        assert warm.rows == cold.rows, f"{label}: rows diverged from oracle"
        assert all(
            type(a) is type(b)
            for wr, cr in zip(warm.rows, cold.rows)
            for a, b in zip(wr, cr)
        ), f"{label}: value types diverged from oracle"
        assert warm_bytes == 0, (
            f"{label}: warm probe shipped {warm_bytes} bytes"
        )
        assert net.fragment_cache_hits == 1, (
            f"{label}: expected a fragment cache hit"
        )
        bytes_off += cold_bytes
        bytes_on += warm_bytes
        mode = "exact" if sql == SUPERSET else "subsumed"
        speedup = cold_ms / warm_ms if warm_ms > 0 else float("inf")
        lines.append(
            format_row(
                (label, warm_ms,
                 f"{cold.metrics.network.bytes_shipped:.0f} -> 0",
                 f"{speedup:.1f}x", mode),
                WIDTHS,
            )
        )
        probes_json.append(
            {
                "probe": label,
                "mode": mode,
                "rows": len(warm.rows),
                "cold_bytes": round(cold.metrics.network.bytes_shipped, 1),
                "warm_bytes": round(net.bytes_shipped, 1),
                "cold_wall_ms": round(cold_ms, 2),
                "warm_wall_ms": round(warm_ms, 2),
                "bytes_saved": round(net.fragment_cache_bytes_saved, 1),
            }
        )

    reduction = bytes_off / bytes_on if bytes_on else float("inf")
    reduction_label = (
        f"{reduction:.1f}x" if bytes_on else "inf (zero warm bytes)"
    )
    lines.append("")
    lines.append(
        f"workload bytes shipped: cache off {bytes_off:.0f}, "
        f"cache on {bytes_on:.0f} ({reduction_label} reduction)"
    )
    stats = warm_gis.fragment_cache.stats()
    lines.append(
        f"cache: {stats['entries']} entr(ies), {stats['bytes']:.0f} bytes, "
        f"{stats['hits']} hit(s) ({stats['subsumed_hits']} subsumed), "
        f"{stats['misses']} miss(es)"
    )
    emit("f7_semantic_cache",
         "F7: semantic fragment cache, cold vs warm vs subsumed", lines)
    emit_json(
        "BENCH_F7",
        {
            "benchmark": "F7 semantic fragment cache",
            "rows": ROWS,
            "repeats_per_query": REPEATS,
            "acceptance_min_bytes_reduction": 5.0,
            "workload_bytes_cache_off": round(bytes_off, 1),
            "workload_bytes_cache_on": round(bytes_on, 1),
            "bytes_reduction": (
                round(reduction, 2) if bytes_on else None
            ),
            "fill_bytes": round(fill_bytes, 1),
            "fill_wall_ms": round(cold_fill_ms, 2),
            "cache_stats": {
                "entries": stats["entries"],
                "bytes": round(stats["bytes"], 1),
                "hits": stats["hits"],
                "subsumed_hits": stats["subsumed_hits"],
                "misses": stats["misses"],
            },
            "probes": probes_json,
        },
    )
    return bytes_off, bytes_on


def test_f7_bytes_reduction():
    bytes_off, bytes_on = run()
    # Warm probes ship nothing, so only the fill contributes; the
    # workload-level reduction must still clear the 5x acceptance bar.
    assert bytes_off >= 5.0 * max(bytes_on, 1.0), (
        f"semantic cache must cut workload bytes >= 5x "
        f"(off {bytes_off:.0f}, on {bytes_on:.0f})"
    )


if __name__ == "__main__":  # PYTHONPATH=src python -m benchmarks.bench_f7_semantic_cache
    import sys

    bytes_off, bytes_on = run()
    if bytes_off < 5.0 * max(bytes_on, 1.0):
        print(
            f"FAIL: bytes reduction below 5x "
            f"(off {bytes_off:.0f}, on {bytes_on:.0f})",
            file=sys.stderr,
        )
        sys.exit(1)
    print("OK")

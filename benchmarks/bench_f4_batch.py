"""F4 — batch-at-a-time vs row-at-a-time executor throughput (Table 6).

Two mediator-side pipelines over a scan-only source (so every filter,
projection, join, and aggregate is compensated *above* the exchange, where
the batch executor lives), swept across the ``batch_size`` knob:

* P1 ``scan → filter → project`` — the pure kernel path;
* P2 ``scan → filter → hash join → aggregate`` — stateful operators.

Reported per batch size: wall milliseconds and mediator throughput in
rows/second (input rows / wall time), plus the speedup over row-at-a-time
(``batch_size=1``). Expected shape: throughput climbs steeply from 1 to
~1k rows per batch as per-row Python dispatch amortizes, then flattens —
the acceptance bar is ≥ 2x on P1 at the default 1024. Results are
identical at every size (asserted), so the sweep isolates raw executor
overhead.
"""

import time

from repro import (
    GlobalInformationSystem,
    MemorySource,
    NetworkLink,
    PlannerOptions,
)
from repro.catalog.schema import schema_from_pairs
from repro.sources.base import SourceCapabilities

from .common import emit, format_row

ITEM_ROWS = 60_000
DIM_ROWS = 64
BATCH_SIZES = [1, 64, 1024, 8192]
REPEATS = 3
WIDTHS = (10, 10, 12, 9)

P1 = "SELECT k, val * 2.0 FROM items WHERE val > 400.0"
P2 = (
    "SELECT d.label, COUNT(*), SUM(i.val) FROM items i "
    "JOIN dims d ON i.grp = d.g WHERE i.val > 250.0 "
    "GROUP BY d.label ORDER BY d.label"
)


def build() -> GlobalInformationSystem:
    gis = GlobalInformationSystem()
    store = MemorySource("store", capabilities=SourceCapabilities.scan_only())
    store.add_table(
        "items",
        schema_from_pairs(
            "items", [("k", "INT"), ("grp", "INT"), ("val", "FLOAT"),
                      ("tag", "TEXT")],
        ),
        [
            (i, i % DIM_ROWS, float((i * 7919) % 1000), f"t{i % 97}")
            for i in range(ITEM_ROWS)
        ],
    )
    ref = MemorySource("ref", capabilities=SourceCapabilities.scan_only())
    ref.add_table(
        "dims",
        schema_from_pairs("dims", [("g", "INT"), ("label", "TEXT")]),
        [(g, f"group-{g:02d}") for g in range(DIM_ROWS)],
    )
    gis.register_source("store", store, link=NetworkLink(1.0, 100e6))
    gis.register_source("ref", ref, link=NetworkLink(1.0, 100e6))
    gis.register_table("items", source="store")
    gis.register_table("dims", source="ref")
    gis.analyze()
    return gis


def measure(gis, sql, batch_size):
    """Best-of-N wall ms and the result rows (for cross-size checks)."""
    options = PlannerOptions(batch_size=batch_size)
    best_ms, rows = float("inf"), None
    for _ in range(REPEATS):
        started = time.perf_counter()
        result = gis.query(sql, options)
        elapsed = (time.perf_counter() - started) * 1000.0
        if elapsed < best_ms:
            best_ms = elapsed
        rows = result.rows
    return best_ms, rows


def sweep(gis, title, sql, lines):
    lines.append(f"-- {title} --")
    lines.append(
        format_row(("batch", "wall ms", "rows/sec", "speedup"), WIDTHS)
    )
    lines.append("-" * 48)
    throughputs = {}
    baseline_rows = None
    for batch_size in BATCH_SIZES:
        wall_ms, rows = measure(gis, sql, batch_size)
        if baseline_rows is None:
            baseline_rows = rows
        else:
            assert rows == baseline_rows, "results must not depend on batch size"
        rows_per_s = ITEM_ROWS / (wall_ms / 1000.0)
        throughputs[batch_size] = rows_per_s
        lines.append(
            format_row(
                (batch_size, wall_ms, f"{rows_per_s:,.0f}",
                 f"{rows_per_s / throughputs[BATCH_SIZES[0]]:.2f}x"),
                WIDTHS,
            )
        )
    return throughputs


def test_f4_batch_throughput(benchmark):
    gis = build()
    lines = []
    p1 = sweep(gis, "P1: scan-filter-project", P1, lines)
    lines.append("")
    p2 = sweep(gis, "P2: scan-filter-join-aggregate", P2, lines)
    emit("f4_batch", "F4: executor throughput vs batch size", lines)

    # Acceptance bar: batching must at least double P1 throughput.
    assert p1[1024] >= 2.0 * p1[1], (
        f"batch=1024 must be >= 2x row-at-a-time on P1 "
        f"(got {p1[1024] / p1[1]:.2f}x)"
    )
    # The stateful pipeline must not regress under batching.
    assert p2[1024] >= p2[1]

    # Wall-clock of the default-batch-size P1 run for the benchmark table.
    benchmark(lambda: gis.query(P1))

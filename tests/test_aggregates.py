"""Aggregate accumulators and NULL-aware sorting."""

import pytest

from repro.core.aggregates import make_accumulator, sort_rows
from repro.core.logical import AggregateCall
from repro.datatypes import DataType
from repro.errors import ExecutionError
from repro.sql import ast


def lit(value, dtype=DataType.INTEGER):
    return ast.Literal(value, dtype)


def run(call, values):
    accumulator = make_accumulator(call)
    for value in values:
        accumulator.add(value)
    return accumulator.result()


ARG = lit(0)  # accumulators never evaluate the argument expression


class TestAccumulators:
    def test_count_star_counts_everything(self):
        assert run(AggregateCall("COUNT", None), [1, None, 3]) == 3

    def test_count_ignores_nulls(self):
        assert run(AggregateCall("COUNT", ARG), [1, None, 3]) == 2

    def test_count_empty_is_zero(self):
        assert run(AggregateCall("COUNT", ARG), []) == 0

    def test_sum(self):
        assert run(AggregateCall("SUM", ARG), [1, 2, None, 3]) == 6

    def test_sum_empty_is_null(self):
        assert run(AggregateCall("SUM", ARG), []) is None
        assert run(AggregateCall("SUM", ARG), [None, None]) is None

    def test_sum_preserves_int(self):
        assert isinstance(run(AggregateCall("SUM", ARG), [1, 2]), int)

    def test_avg(self):
        assert run(AggregateCall("AVG", ARG), [1, 2, None, 3]) == pytest.approx(2.0)

    def test_avg_empty_is_null(self):
        assert run(AggregateCall("AVG", ARG), [None]) is None

    def test_min_max(self):
        assert run(AggregateCall("MIN", ARG), [5, 1, None, 3]) == 1
        assert run(AggregateCall("MAX", ARG), [5, 1, None, 3]) == 5

    def test_min_max_strings(self):
        assert run(AggregateCall("MIN", ARG), ["pear", "apple"]) == "apple"

    def test_distinct_sum(self):
        assert run(AggregateCall("SUM", ARG, distinct=True), [2, 2, 3, None]) == 5

    def test_distinct_count(self):
        assert run(AggregateCall("COUNT", ARG, distinct=True), [1, 1, 2, None]) == 2

    def test_star_only_valid_for_count(self):
        with pytest.raises(ExecutionError):
            make_accumulator(AggregateCall("SUM", None))

    def test_unknown_function(self):
        with pytest.raises(ExecutionError):
            make_accumulator(AggregateCall("MEDIAN", ARG))


class TestSortRows:
    def test_single_key_ascending(self):
        rows = [(3,), (1,), (2,)]
        assert sort_rows(rows, [lambda r: r[0]], [True]) == [(1,), (2,), (3,)]

    def test_single_key_descending(self):
        rows = [(3,), (1,), (2,)]
        assert sort_rows(rows, [lambda r: r[0]], [False]) == [(3,), (2,), (1,)]

    def test_nulls_last_ascending(self):
        rows = [(None,), (1,), (None,), (0,)]
        ordered = sort_rows(rows, [lambda r: r[0]], [True])
        assert ordered == [(0,), (1,), (None,), (None,)]

    def test_nulls_first_descending(self):
        rows = [(None,), (1,), (0,)]
        ordered = sort_rows(rows, [lambda r: r[0]], [False])
        assert ordered == [(None,), (1,), (0,)]

    def test_multi_key_mixed_directions(self):
        rows = [("a", 1), ("a", 2), ("b", 1), ("b", 3)]
        ordered = sort_rows(
            rows, [lambda r: r[0], lambda r: r[1]], [True, False]
        )
        assert ordered == [("a", 2), ("a", 1), ("b", 3), ("b", 1)]

    def test_stability(self):
        rows = [("x", 1), ("y", 1), ("z", 1)]
        ordered = sort_rows(rows, [lambda r: r[1]], [True])
        assert ordered == rows

    def test_original_list_untouched(self):
        rows = [(2,), (1,)]
        sort_rows(rows, [lambda r: r[0]], [True])
        assert rows == [(2,), (1,)]

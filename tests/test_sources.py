"""Source adapters: loading, scanning, fragment execution, autonomy checks."""

import datetime
import os

import pytest

from repro import (
    Catalog,
    CsvSource,
    KeyValueSource,
    MemorySource,
    RestSource,
    SourceCapabilities,
    SQLiteSource,
    TableMapping,
)
from repro.catalog.schema import schema_from_pairs
from repro.core.analyzer import Analyzer
from repro.core.fragments import Fragment
from repro.core.logical import FilterOp, LimitOp, ScanOp
from repro.errors import (
    CapabilityError,
    DuplicateObjectError,
    SourceError,
)
from repro.sql.parser import parse_select

SCHEMA = schema_from_pairs(
    "items",
    [("id", "INT"), ("name", "TEXT"), ("price", "FLOAT"), ("added", "DATE"),
     ("active", "BOOLEAN")],
)
ROWS = [
    (1, "anvil", 10.5, "1989-01-01", True),
    (2, "bolt", 0.2, "1989-02-01", False),
    (3, "crate", 5.0, "1989-03-01", True),
    (4, "drill", 99.9, None, True),
]


def catalog_for(adapter, source_name, remote="items", column_map=None):
    catalog = Catalog()
    catalog.register_source(source_name, adapter)
    catalog.register_table(
        "items", SCHEMA, TableMapping(source_name, remote, column_map or {})
    )
    return catalog


def scan_fragment(catalog, source_name):
    plan = Analyzer(catalog).bind_statement(parse_select("SELECT * FROM items"))
    scan = [n for n in plan.walk() if isinstance(n, ScanOp)][0]
    return Fragment(source_name, scan)


def filter_fragment(catalog, source_name, sql):
    from repro.core.rewriter import rewrite

    plan = rewrite(Analyzer(catalog).bind_statement(parse_select(sql)))
    # Find the deepest Filter(Scan) subtree.
    for node in plan.walk():
        if isinstance(node, FilterOp) and isinstance(node.child, ScanOp):
            return Fragment(source_name, node)
    raise AssertionError("no Filter(Scan) in plan")


class TestMemorySource:
    def test_add_and_scan_with_coercion(self):
        source = MemorySource("m")
        source.add_table("items", SCHEMA, ROWS)
        rows = list(source.scan("items"))
        assert rows[0][3] == datetime.date(1989, 1, 1)
        assert rows[0][4] is True
        assert source.row_count("items") == 4

    def test_row_arity_checked(self):
        source = MemorySource("m")
        with pytest.raises(SourceError):
            source.add_table("items", SCHEMA, [(1, "x")])

    def test_duplicate_table_rejected(self):
        source = MemorySource("m")
        source.add_table("items", SCHEMA, [])
        with pytest.raises(DuplicateObjectError):
            source.add_table("items", SCHEMA, [])

    def test_extend_table(self):
        source = MemorySource("m")
        source.add_table("items", SCHEMA, ROWS[:2])
        source.extend_table("items", ROWS[2:])
        assert source.row_count("items") == 4

    def test_executes_filter_fragment(self):
        source = MemorySource("m")
        source.add_table("items", SCHEMA, ROWS)
        catalog = catalog_for(source, "m")
        fragment = filter_fragment(
            catalog, "m", "SELECT * FROM items WHERE price > 1.0"
        )
        rows = list(source.execute(fragment))
        assert len(rows) == 3

    def test_join_fragment_rejected(self):
        source = MemorySource("m")
        source.add_table("items", SCHEMA, ROWS)
        catalog = catalog_for(source, "m")
        plan = Analyzer(catalog).bind_statement(
            parse_select("SELECT 1 FROM items a JOIN items b ON a.id = b.id")
        )
        from repro.core.logical import JoinOp

        join = [n for n in plan.walk() if isinstance(n, JoinOp)][0]
        with pytest.raises(CapabilityError):
            list(source.execute(Fragment("m", join)))

    def test_unknown_table(self):
        source = MemorySource("m")
        with pytest.raises(CapabilityError):
            list(source.scan("ghost"))

    def test_column_map_reordering(self):
        # Native table stores columns in a different order / naming.
        native = schema_from_pairs(
            "NATIVE", [("PRICE", "FLOAT"), ("ID", "INT"), ("NM", "TEXT"),
                       ("ADDED", "DATE"), ("ACT", "BOOLEAN")]
        )
        source = MemorySource("m")
        source.add_table(
            "NATIVE",
            native,
            [(10.5, 1, "anvil", "1989-01-01", True)],
        )
        catalog = catalog_for(
            source,
            "m",
            remote="NATIVE",
            column_map={"id": "ID", "name": "NM", "price": "PRICE",
                        "added": "ADDED", "active": "ACT"},
        )
        fragment = scan_fragment(catalog, "m")
        rows = list(source.execute(fragment))
        assert rows == [(1, "anvil", 10.5, datetime.date(1989, 1, 1), True)]


class TestSQLiteSource:
    def make(self):
        source = SQLiteSource("s")
        source.load_table("items", SCHEMA, ROWS)
        return source

    def test_scan_normalizes_native_values(self):
        source = self.make()
        rows = list(source.scan("items"))
        assert rows[0][3] == datetime.date(1989, 1, 1)
        assert rows[0][4] is True and rows[1][4] is False
        assert rows[3][3] is None

    def test_row_count(self):
        assert self.make().row_count("items") == 4

    def test_fragment_compiles_and_runs(self):
        source = self.make()
        catalog = catalog_for(source, "s")
        fragment = filter_fragment(
            catalog, "s", "SELECT * FROM items WHERE active = TRUE AND price < 50"
        )
        sql = source.compile_fragment(fragment)
        assert "WHERE" in sql
        rows = list(source.execute(fragment))
        assert {r[1] for r in rows} == {"anvil", "crate"}

    def test_date_predicate_pushdown(self):
        source = self.make()
        catalog = catalog_for(source, "s")
        fragment = filter_fragment(
            catalog, "s", "SELECT * FROM items WHERE added >= DATE '1989-02-01'"
        )
        rows = list(source.execute(fragment))
        assert {r[0] for r in rows} == {2, 3}

    def test_bad_fragment_surfaces_source_error(self):
        source = self.make()
        catalog = catalog_for(source, "s")
        fragment = scan_fragment(catalog, "s")
        source.connection.execute("DROP TABLE items")
        with pytest.raises(SourceError, match="s"):
            list(source.execute(fragment))

    def test_declare_existing_table(self):
        source = SQLiteSource("s")
        source.connection.execute("CREATE TABLE raw (a INTEGER)")
        source.connection.execute("INSERT INTO raw VALUES (7)")
        source.declare_table("raw", schema_from_pairs("raw", [("a", "INT")]))
        assert list(source.scan("raw")) == [(7,)]

    def test_duplicate_load_rejected(self):
        source = self.make()
        with pytest.raises(DuplicateObjectError):
            source.load_table("items", SCHEMA, [])

    def test_full_sql_capabilities(self):
        caps = self.make().capabilities()
        assert caps.joins and caps.aggregation and caps.sort and caps.limit
        assert caps.in_list_max > 0


class TestCsvSource:
    def make(self, tmp_path):
        CsvSource.write_table(str(tmp_path), "items", SCHEMA, ROWS)
        return CsvSource("c", str(tmp_path), {"items": SCHEMA})

    def test_write_and_scan_roundtrip(self, tmp_path):
        source = self.make(tmp_path)
        rows = list(source.scan("items"))
        assert rows[0] == (1, "anvil", 10.5, datetime.date(1989, 1, 1), True)
        assert rows[3][3] is None  # empty field is NULL

    def test_scan_only_capabilities(self, tmp_path):
        caps = self.make(tmp_path).capabilities()
        assert not caps.filters and not caps.projection

    def test_filter_fragment_rejected(self, tmp_path):
        source = self.make(tmp_path)
        catalog = catalog_for(source, "c")
        fragment = filter_fragment(
            catalog, "c", "SELECT * FROM items WHERE price > 1"
        )
        with pytest.raises(CapabilityError):
            list(source.execute(fragment))

    def test_scan_fragment_executes(self, tmp_path):
        source = self.make(tmp_path)
        catalog = catalog_for(source, "c")
        rows = list(source.execute(scan_fragment(catalog, "c")))
        assert len(rows) == 4

    def test_missing_file(self, tmp_path):
        source = CsvSource("c", str(tmp_path), {"items": SCHEMA})
        with pytest.raises(SourceError, match="missing file"):
            list(source.scan("items"))

    def test_header_column_subset_check(self, tmp_path):
        path = os.path.join(str(tmp_path), "items.csv")
        with open(path, "w") as handle:
            handle.write("id,name\n1,anvil\n")
        source = CsvSource("c", str(tmp_path), {"items": SCHEMA})
        with pytest.raises(SourceError, match="lacks column"):
            list(source.scan("items"))

    def test_header_order_independent(self, tmp_path):
        path = os.path.join(str(tmp_path), "items.csv")
        with open(path, "w") as handle:
            handle.write("active,price,name,id,added\ntrue,1.5,bolt,9,1989-05-05\n")
        source = CsvSource("c", str(tmp_path), {"items": SCHEMA})
        rows = list(source.scan("items"))
        assert rows == [(9, "bolt", 1.5, datetime.date(1989, 5, 5), True)]


class TestKeyValueSource:
    def make(self):
        source = KeyValueSource("k")
        source.add_table("items", SCHEMA, "id", ROWS)
        return source

    def test_lookup(self):
        source = self.make()
        rows = list(source.lookup("items", [2, 3, 42]))
        assert {r[0] for r in rows} == {2, 3}

    def test_duplicate_keys_rejected(self):
        source = KeyValueSource("k")
        with pytest.raises(SourceError, match="duplicate key"):
            source.add_table("items", SCHEMA, "id", [ROWS[0], ROWS[0]])

    def test_null_key_rejected(self):
        source = KeyValueSource("k")
        with pytest.raises(SourceError, match="non-null"):
            source.add_table(
                "items", SCHEMA, "id", [(None, "x", 1.0, None, True)]
            )

    def test_capabilities_declare_key(self):
        caps = self.make().capabilities()
        assert caps.key_equality_only == {"items": "id"}

    def test_key_equality_fragment(self):
        source = self.make()
        catalog = catalog_for(source, "k")
        fragment = filter_fragment(
            catalog, "k", "SELECT * FROM items WHERE id = 3"
        )
        rows = list(source.execute(fragment))
        assert [r[0] for r in rows] == [3]

    def test_key_in_list_fragment(self):
        source = self.make()
        catalog = catalog_for(source, "k")
        fragment = filter_fragment(
            catalog, "k", "SELECT * FROM items WHERE id IN (1, 4, 99)"
        )
        rows = list(source.execute(fragment))
        assert sorted(r[0] for r in rows) == [1, 4]

    def test_non_key_filter_rejected(self):
        source = self.make()
        catalog = catalog_for(source, "k")
        fragment = filter_fragment(
            catalog, "k", "SELECT * FROM items WHERE price > 1"
        )
        with pytest.raises(CapabilityError):
            list(source.execute(fragment))

    def test_full_scan_allowed(self):
        source = self.make()
        catalog = catalog_for(source, "k")
        rows = list(source.execute(scan_fragment(catalog, "k")))
        assert len(rows) == 4


class TestRestSource:
    def make(self):
        source = RestSource("r", page_rows=2)
        source.add_table("items", SCHEMA, ROWS)
        return source

    def test_filter_and_limit_fragment(self):
        source = self.make()
        catalog = catalog_for(source, "r")
        from repro.core.rewriter import rewrite

        plan = rewrite(
            Analyzer(catalog).bind_statement(
                parse_select("SELECT * FROM items WHERE price >= 5 LIMIT 1")
            )
        )
        # Locate the Limit(Filter(Scan)) or Filter(Scan) shape.
        target = None
        for node in plan.walk():
            if isinstance(node, LimitOp):
                target = node
                break
        assert target is not None
        rows = list(source.execute(Fragment("r", target)))
        assert len(rows) == 1
        assert source.request_log[-1].limit == 1

    def test_pagination_recorded(self):
        source = self.make()
        catalog = catalog_for(source, "r")
        list(source.execute(scan_fragment(catalog, "r")))
        assert source.request_log[-1].pages == 2  # 4 rows / 2 per page

    def test_like_predicate_rejected(self):
        source = self.make()
        catalog = catalog_for(source, "r")
        fragment = filter_fragment(
            catalog, "r", "SELECT * FROM items WHERE name LIKE 'a%'"
        )
        with pytest.raises(CapabilityError):
            list(source.execute(fragment))

    def test_or_predicate_rejected(self):
        source = self.make()
        catalog = catalog_for(source, "r")
        fragment = filter_fragment(
            catalog, "r", "SELECT * FROM items WHERE id = 1 OR id = 2"
        )
        with pytest.raises(CapabilityError):
            list(source.execute(fragment))


class TestCapabilityDataclass:
    def test_restricted_copy(self):
        caps = SourceCapabilities.full_sql()
        weaker = caps.restricted(joins=False, in_list_max=0)
        assert caps.joins and not weaker.joins
        assert weaker.aggregation  # untouched fields preserved

    def test_scan_only_envelope(self):
        caps = SourceCapabilities.scan_only(page_rows=128)
        assert not caps.filters and caps.page_rows == 128

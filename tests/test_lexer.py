"""Tokenizer behavior: token classes, positions, comments, errors."""

import pytest

from repro.errors import ParseError
from repro.sql.lexer import Lexer, TokenType


def tokens_of(sql):
    return [t for t in Lexer(sql).tokenize() if t.type != TokenType.EOF]


def kinds_of(sql):
    return [t.type for t in tokens_of(sql)]


class TestBasicTokens:
    def test_keywords_are_case_insensitive(self):
        for text in ("select", "SELECT", "SeLeCt"):
            (token,) = tokens_of(text)
            assert token.type == TokenType.KEYWORD
            assert token.value == "SELECT"

    def test_identifier_preserves_case(self):
        (token,) = tokens_of("CamelCase")
        assert token.type == TokenType.IDENTIFIER
        assert token.value == "CamelCase"

    def test_identifier_with_underscore_and_digits(self):
        (token,) = tokens_of("_tab_1x")
        assert token.value == "_tab_1x"

    def test_integer_literal(self):
        (token,) = tokens_of("12345")
        assert token.type == TokenType.INTEGER
        assert token.value == 12345

    def test_float_literal(self):
        (token,) = tokens_of("3.25")
        assert token.type == TokenType.FLOAT
        assert token.value == 3.25

    def test_float_scientific_notation(self):
        (token,) = tokens_of("1.5e3")
        assert token.type == TokenType.FLOAT
        assert token.value == 1500.0

    def test_float_negative_exponent(self):
        (token,) = tokens_of("2E-2")
        assert token.value == pytest.approx(0.02)

    def test_trailing_dot_float(self):
        (token,) = tokens_of("7.")
        assert token.type == TokenType.FLOAT
        assert token.value == 7.0

    def test_string_literal(self):
        (token,) = tokens_of("'hello'")
        assert token.type == TokenType.STRING
        assert token.value == "hello"

    def test_string_with_doubled_quote_escape(self):
        (token,) = tokens_of("'it''s'")
        assert token.value == "it's"

    def test_empty_string_literal(self):
        (token,) = tokens_of("''")
        assert token.value == ""

    def test_quoted_identifier(self):
        (token,) = tokens_of('"Select"')
        assert token.type == TokenType.IDENTIFIER
        assert token.value == "Select"

    def test_quoted_identifier_with_escape(self):
        (token,) = tokens_of('"a""b"')
        assert token.value == 'a"b'


class TestOperators:
    @pytest.mark.parametrize(
        "text,expected",
        [("<>", "<>"), ("!=", "<>"), ("<=", "<="), (">=", ">="), ("||", "||"),
         ("=", "="), ("<", "<"), (">", ">"), ("+", "+"), ("-", "-"),
         ("*", "*"), ("/", "/"), ("%", "%")],
    )
    def test_operator_tokens(self, text, expected):
        (token,) = tokens_of(text)
        assert token.type == TokenType.OPERATOR
        assert token.value == expected

    def test_adjacent_operators_split_greedily(self):
        values = [t.value for t in tokens_of("a<=b")]
        assert values == ["a", "<=", "b"]

    def test_punctuation(self):
        values = [t.value for t in tokens_of("(a, b.c)")]
        assert values == ["(", "a", ",", "b", ".", "c", ")"]


class TestCommentsAndWhitespace:
    def test_line_comment_is_skipped(self):
        values = [t.value for t in tokens_of("1 -- comment here\n2")]
        assert values == [1, 2]

    def test_block_comment_is_skipped(self):
        values = [t.value for t in tokens_of("1 /* multi\nline */ 2")]
        assert values == [1, 2]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(ParseError):
            tokens_of("1 /* oops")

    def test_newlines_advance_line_numbers(self):
        tokens = tokens_of("a\nbb\n  c")
        assert [(t.line, t.column) for t in tokens] == [(1, 1), (2, 1), (3, 3)]


class TestErrors:
    def test_unterminated_string_raises(self):
        with pytest.raises(ParseError):
            tokens_of("'abc")

    def test_unterminated_quoted_identifier_raises(self):
        with pytest.raises(ParseError):
            tokens_of('"abc')

    def test_empty_quoted_identifier_raises(self):
        with pytest.raises(ParseError):
            tokens_of('""')

    def test_unexpected_character_raises_with_position(self):
        with pytest.raises(ParseError) as info:
            tokens_of("a @ b")
        assert info.value.column == 3

    def test_eof_token_is_appended(self):
        all_tokens = Lexer("x").tokenize()
        assert all_tokens[-1].type == TokenType.EOF

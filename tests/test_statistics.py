"""Statistics and equi-depth histograms, including hypothesis properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog.schema import schema_from_pairs
from repro.catalog.statistics import (
    ColumnStatistics,
    EquiDepthHistogram,
    TableStatistics,
)
from repro.datatypes import DataType


class TestHistogramBasics:
    def test_build_empty_returns_none(self):
        assert EquiDepthHistogram.build([]) is None
        assert EquiDepthHistogram.build([None, None]) is None

    def test_single_value(self):
        histogram = EquiDepthHistogram.build([5, 5, 5])
        assert histogram.selectivity_eq(5) == pytest.approx(1.0)
        assert histogram.selectivity_eq(6) == 0.0

    def test_uniform_eq(self):
        histogram = EquiDepthHistogram.build(list(range(100)), buckets=10)
        assert histogram.selectivity_eq(50) == pytest.approx(0.01, abs=0.01)

    def test_le_monotone(self):
        histogram = EquiDepthHistogram.build(list(range(100)), buckets=8)
        previous = -1.0
        for value in range(0, 100, 7):
            current = histogram.selectivity_le(value)
            assert current >= previous
            previous = current

    def test_range_estimate(self):
        histogram = EquiDepthHistogram.build(list(range(1000)), buckets=16)
        estimate = histogram.selectivity_range(100, 300)
        assert estimate == pytest.approx(0.2, abs=0.05)

    def test_skew_eq_accuracy(self):
        # 90% of values are 0; a histogram must see that.
        values = [0] * 900 + list(range(1, 101))
        histogram = EquiDepthHistogram.build(values, buckets=16)
        assert histogram.selectivity_eq(0) > 0.5

    def test_bucket_count_capped_by_data(self):
        histogram = EquiDepthHistogram.build([1, 2, 3], buckets=64)
        assert histogram.bucket_count <= 3

    def test_text_histogram(self):
        histogram = EquiDepthHistogram.build(list("abcdefghij"))
        assert histogram.selectivity_le("e") >= 0.4


class TestHistogramProperties:
    @settings(max_examples=60)
    @given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=300))
    def test_le_bounds(self, values):
        histogram = EquiDepthHistogram.build(values, buckets=8)
        for probe in (-2000, 0, 2000):
            assert 0.0 <= histogram.selectivity_le(probe) <= 1.0

    @given(st.lists(st.integers(-50, 50), min_size=1, max_size=200))
    def test_le_of_max_is_one(self, values):
        histogram = EquiDepthHistogram.build(values, buckets=8)
        assert histogram.selectivity_le(max(values)) == pytest.approx(1.0)

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=200))
    def test_le_below_min_is_zero(self, values):
        histogram = EquiDepthHistogram.build(values, buckets=8)
        assert histogram.selectivity_le(min(values) - 1) == 0.0

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=200))
    def test_eq_close_to_truth(self, values):
        histogram = EquiDepthHistogram.build(values, buckets=len(set(values)))
        probe = values[0]
        truth = values.count(probe) / len(values)
        assert histogram.selectivity_eq(probe) == pytest.approx(truth, abs=0.35)

    @given(st.lists(st.integers(), min_size=1, max_size=100))
    def test_total_rows_preserved(self, values):
        histogram = EquiDepthHistogram.build(values, buckets=7)
        assert histogram.total_rows == len(values)


class TestColumnStatistics:
    def test_from_values_basic(self):
        stats = ColumnStatistics.from_values(
            [1, 2, 2, None, 5], DataType.INTEGER
        )
        assert stats.null_fraction == pytest.approx(0.2)
        assert stats.distinct_count == 3
        assert stats.min_value == 1 and stats.max_value == 5

    def test_text_width_measured(self):
        stats = ColumnStatistics.from_values(["ab", "abcd"], DataType.TEXT)
        assert stats.avg_width == pytest.approx(3.0)

    def test_histograms_disabled_with_zero_buckets(self):
        stats = ColumnStatistics.from_values([1, 2, 3], DataType.INTEGER, 0)
        assert stats.histogram is None

    def test_empty_column(self):
        stats = ColumnStatistics.from_values([], DataType.INTEGER)
        assert stats.null_fraction == 0.0
        assert stats.min_value is None


class TestTableStatistics:
    def test_from_rows(self):
        schema = schema_from_pairs("t", [("a", "INT"), ("name", "TEXT")])
        stats = TableStatistics.from_rows(
            schema, [(1, "xx"), (2, "yyyy"), (3, None)]
        )
        assert stats.row_count == 3
        assert stats.column("A").distinct_count == 3
        assert stats.column("name").null_fraction == pytest.approx(1 / 3)
        assert stats.column("ghost") is None

    def test_average_row_width(self):
        schema = schema_from_pairs("t", [("a", "INT"), ("name", "TEXT")])
        stats = TableStatistics.from_rows(schema, [(1, "abcd")])
        # 8 bytes for the INT plus measured text width 4.
        assert stats.average_row_width(schema) == pytest.approx(12.0)

"""Replica (site) selection: cheapest copy wins, results never change."""

import pytest

from repro import (
    CsvSource,
    GlobalInformationSystem,
    MemorySource,
    NetworkLink,
    PlannerOptions,
    SQLiteSource,
)
from repro.catalog.schema import schema_from_pairs
from repro.core.logical import RemoteQueryOp
from repro.errors import CatalogError, UnknownObjectError

from .conftest import assert_same_rows

SCHEMA = schema_from_pairs(
    "items", [("id", "INT"), ("grp", "INT"), ("payload", "TEXT")]
)
ROWS = [(i, i % 10, "x" * 40) for i in range(2000)]


def build_gis(primary_link, replica_link, replica_source=None):
    gis = GlobalInformationSystem()
    primary = SQLiteSource("site_a")
    primary.load_table("items", SCHEMA, ROWS)
    gis.register_source("site_a", primary, link=primary_link)
    if replica_source is None:
        replica_source = SQLiteSource("site_b")
        replica_source.load_table("items", SCHEMA, ROWS)
    gis.register_source("site_b", replica_source, link=replica_link)
    gis.register_table("items", source="site_a")
    gis.register_replica("items", source="site_b")
    gis.analyze()
    return gis


def chosen_sources(gis, sql, options=None):
    planned = gis.plan(sql, options)
    return {
        n.source_name for n in planned.distributed.walk()
        if isinstance(n, RemoteQueryOp)
    }


SLOW = NetworkLink(30.0, 50_000.0)
FAST = NetworkLink(10.0, 5_000_000.0)


class TestSelection:
    def test_faster_replica_chosen(self):
        gis = build_gis(primary_link=SLOW, replica_link=FAST)
        assert chosen_sources(gis, "SELECT id FROM items") == {"site_b"}

    def test_primary_kept_when_faster(self):
        gis = build_gis(primary_link=FAST, replica_link=SLOW)
        assert chosen_sources(gis, "SELECT id FROM items") == {"site_a"}

    def test_primary_mode_ignores_replicas(self):
        gis = build_gis(primary_link=SLOW, replica_link=FAST)
        assert chosen_sources(
            gis, "SELECT id FROM items", PlannerOptions(replicas="primary")
        ) == {"site_a"}

    def test_capability_beats_raw_bandwidth_when_selective(self, tmp_path):
        # The replica is a scan-only CSV on a fast link; the primary is a
        # filter-capable SQLite on a slower one. With a selective filter the
        # SQLite copy ships far fewer rows and must win.
        CsvSource.write_table(str(tmp_path), "items", SCHEMA, ROWS)
        csv_replica = CsvSource("site_b", str(tmp_path), {"items": SCHEMA})
        gis = build_gis(
            primary_link=NetworkLink(20.0, 500_000.0),
            replica_link=NetworkLink(20.0, 1_000_000.0),
            replica_source=csv_replica,
        )
        assert chosen_sources(gis, "SELECT id FROM items WHERE id = 7") == {
            "site_a"
        }
        # ...but an unselective scan goes to the faster link.
        assert chosen_sources(gis, "SELECT id FROM items") == {"site_b"}

    def test_decisions_recorded(self):
        gis = build_gis(primary_link=SLOW, replica_link=FAST)
        planned = gis.plan("SELECT id FROM items")
        assert planned.replica_decisions
        assert "site_b" in planned.replica_decisions[0]

    def test_self_join_each_scan_chooses(self):
        gis = build_gis(primary_link=SLOW, replica_link=FAST)
        sources = chosen_sources(
            gis,
            "SELECT a.id FROM items a JOIN items b ON a.id = b.grp",
        )
        # Both scans pick the fast site; the join co-locates and pushes.
        assert sources == {"site_b"}


class TestCorrectness:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT COUNT(*) FROM items",
            "SELECT grp, COUNT(*) FROM items GROUP BY grp",
            "SELECT id FROM items WHERE grp = 3 AND id < 100",
        ],
    )
    def test_same_rows_regardless_of_replica(self, sql):
        replicated = build_gis(primary_link=SLOW, replica_link=FAST)
        plain = build_gis(primary_link=SLOW, replica_link=FAST)
        with_replica = replicated.query(sql)
        primary_only = plain.query(sql, PlannerOptions(replicas="primary"))
        assert_same_rows(with_replica.rows, primary_only.rows)

    def test_replica_actually_reduces_simulated_time(self):
        gis = build_gis(primary_link=SLOW, replica_link=FAST)
        gis.network.reset()
        fast = gis.query("SELECT payload FROM items")
        gis.network.reset()
        slow = gis.query(
            "SELECT payload FROM items", PlannerOptions(replicas="primary")
        )
        assert fast.metrics.simulated_ms < slow.metrics.simulated_ms / 5


class TestRegistrationValidation:
    def test_replica_requires_known_source(self):
        gis = GlobalInformationSystem()
        source = MemorySource("m")
        source.add_table("items", SCHEMA, [])
        gis.register_source("m", source)
        gis.register_table("items", source="m")
        with pytest.raises(UnknownObjectError):
            gis.register_replica("items", source="ghost")

    def test_replica_schema_must_cover_columns(self):
        gis = GlobalInformationSystem()
        full = MemorySource("full")
        full.add_table("items", SCHEMA, [])
        narrow = MemorySource("narrow")
        narrow.add_table(
            "items", schema_from_pairs("items", [("id", "INT")]), []
        )
        gis.register_source("full", full)
        gis.register_source("narrow", narrow)
        gis.register_table("items", source="full")
        with pytest.raises(CatalogError, match="lacks column"):
            gis.register_replica("items", source="narrow")

    def test_replica_on_view_rejected(self):
        gis = GlobalInformationSystem()
        source = MemorySource("m")
        source.add_table("items", SCHEMA, [])
        gis.register_source("m", source)
        gis.register_table("items", source="m")
        gis.create_view("v", "SELECT id FROM items")
        with pytest.raises(CatalogError):
            gis.register_replica("v", source="m")

    def test_replica_with_column_map(self):
        gis = GlobalInformationSystem()
        primary = MemorySource("p")
        primary.add_table("items", SCHEMA, ROWS[:10])
        alt_schema = schema_from_pairs(
            "ALT", [("I", "INT"), ("G", "INT"), ("P", "TEXT")]
        )
        replica = MemorySource("r")
        replica.add_table("ALT", alt_schema, ROWS[:10])
        gis.register_source("p", primary, link=SLOW)
        gis.register_source("r", replica, link=FAST)
        gis.register_table("items", source="p")
        gis.register_replica(
            "items", source="r", remote_table="ALT",
            column_map={"id": "I", "grp": "G", "payload": "P"},
        )
        gis.analyze()
        result = gis.query("SELECT id, grp FROM items WHERE id = 3")
        assert result.rows == [(3, 3)]
        assert chosen_sources(gis, "SELECT id FROM items") == {"r"}

class TestReplicaInterplay:
    def test_semijoin_binds_against_chosen_replica(self):
        # The bind join must send its key batches to the replica the
        # selector picked, not the primary.
        from repro import MemorySource, PlannerOptions
        from repro.core.logical import RemoteQueryOp

        gis = build_gis(primary_link=SLOW, replica_link=FAST)
        probe = MemorySource("probe")
        probe.add_table(
            "probe", schema_from_pairs("probe", [("k", "INT")]),
            [(1,), (2,), (3,)],
        )
        gis.register_source("probe", probe, link=FAST)
        gis.register_table("probe", source="probe")
        gis.analyze(tables=["probe"])
        sql = "SELECT p.k, i.payload FROM probe p JOIN items i ON p.k = i.id"
        planned = gis.plan(sql, PlannerOptions(semijoin="force"))
        bound = [
            n for n in planned.distributed.walk()
            if isinstance(n, RemoteQueryOp) and n.bind is not None
        ]
        assert bound and bound[0].source_name == "site_b"
        result = gis.query(sql, PlannerOptions(semijoin="force"))
        assert sorted(r[0] for r in result.rows) == [1, 2, 3]

    def test_partial_aggregation_on_replicated_partitions(self):
        # Replica selection and partial aggregation compose: each branch
        # aggregates at whichever copy is cheapest.
        gis = build_gis(primary_link=SLOW, replica_link=FAST)
        result = gis.query(
            "SELECT grp, COUNT(*) FROM items GROUP BY grp ORDER BY grp"
        )
        assert len(result.rows) == 10
        assert all(count == 200 for _, count in result.rows)

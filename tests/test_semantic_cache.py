"""Semantic fragment cache + materialized views (repro.cache).

The load-bearing invariants:

* a cached answer — exact or subsumed — is **bit-identical** (rows and
  value types) to cold execution and ships **zero** fragment bytes;
* subsumption is sound for equality, closed/open ranges, conjunctions,
  and NULL-bearing columns (3VL: range predicates never select NULLs);
* **partial results never enter the cache**, and a source-epoch bump
  mid-flight can never admit (or serve) pre-bump pages.
"""

from __future__ import annotations

import pytest

from repro import (
    GlobalInformationSystem,
    MemorySource,
    NetworkLink,
    PlannerOptions,
)
from repro.cache import FragmentCache, SourceEpochs
from repro.catalog.schema import schema_from_pairs
from repro.core.physical import ExchangeExec
from repro.errors import CatalogError, ExecutionError, ParseError
from repro.sources.faults import FaultPlan, FaultSpec
from repro.sql.parser import parse_utility

ROWS = [
    # NULL-bearing score/region columns on purpose.
    (i, f"name{i}", ("east" if i % 2 else "west") if i % 7 else None,
     float(i) if i % 5 else None)
    for i in range(1, 121)
]


def make_gis(fragment_cache_bytes=1_000_000, **kwargs):
    gis = GlobalInformationSystem(
        fragment_cache_bytes=fragment_cache_bytes, **kwargs
    )
    crm = MemorySource("crm")
    crm.add_table(
        "customers",
        schema_from_pairs(
            "customers",
            [("id", "INT"), ("name", "TEXT"), ("region", "TEXT"),
             ("score", "FLOAT")],
        ),
        ROWS,
    )
    gis.register_source("crm", crm, link=NetworkLink(20.0, 1_000_000.0))
    gis.register_table("customers", source="crm")
    return gis


def assert_bit_identical(result, oracle):
    assert result.column_names == oracle.column_names
    assert sorted(result.rows) == sorted(oracle.rows)
    by_key = {row: row for row in oracle.rows}
    for row in result.rows:
        twin = by_key[row]
        for a, b in zip(row, twin):
            assert type(a) is type(b), (row, twin)


# ---------------------------------------------------------------------------
# exact + subsumed hits
# ---------------------------------------------------------------------------


def test_exact_hit_ships_zero_bytes_and_is_bit_identical():
    gis = make_gis()
    sql = "SELECT id, score FROM customers WHERE score > 10"
    cold = gis.query(sql)
    assert cold.metrics.bytes_shipped > 0
    warm = gis.query(sql)
    assert warm.metrics.bytes_shipped == 0.0
    assert warm.metrics.network.fragment_cache_hits == 1
    assert warm.metrics.network.fragment_cache_bytes_saved == pytest.approx(
        cold.metrics.bytes_shipped
    )
    assert_bit_identical(warm, cold)
    stats = gis.fragment_cache.stats()
    assert stats["hits"] == 1 and stats["admissions"] == 1


SUPERSET = "SELECT id, region, score FROM customers WHERE score >= 10"

SUBSUMED_PROBES = [
    # open range inside a closed one
    "SELECT id, score FROM customers WHERE score > 50",
    # closed range, both ends
    "SELECT id, region, score FROM customers WHERE score >= 20 AND score <= 90",
    # equality inside the range
    "SELECT id FROM customers WHERE score = 33",
    # BETWEEN sugar
    "SELECT score FROM customers WHERE score BETWEEN 15 AND 30",
    # conjunction adding a constraint on another shipped column
    "SELECT id, region FROM customers WHERE score > 10 AND region = 'east'",
    # IN-list inside the range
    "SELECT id, score FROM customers WHERE score IN (12, 14, 16) AND score >= 10",
    # redundant IS NOT NULL on a range-constrained NULL-bearing column
    "SELECT id, score FROM customers WHERE score > 25 AND score IS NOT NULL",
]


@pytest.mark.parametrize("probe", SUBSUMED_PROBES)
def test_subsumed_probe_matches_oracle_with_zero_bytes(probe):
    gis = make_gis()
    gis.query(SUPERSET)
    result = gis.query(probe)
    oracle = make_gis(fragment_cache_bytes=0).query(probe)
    assert result.metrics.bytes_shipped == 0.0, probe
    assert result.metrics.network.fragment_cache_hits == 1
    assert_bit_identical(result, oracle)
    assert gis.fragment_cache.stats()["subsumed_hits"] == 1


NOT_SUBSUMED_PROBES = [
    # wider range
    "SELECT id, score FROM customers WHERE score >= 5",
    # boundary widening: cached `>= 10` does not contain `> 9`
    "SELECT id, score FROM customers WHERE score > 9",
    # needs a column the cached fragment did not ship
    "SELECT id, name FROM customers WHERE score > 50",
    # NULL rows were filtered out of the cached result (3VL)
    "SELECT id, score FROM customers WHERE score IS NULL",
    # unconstrained scan
    "SELECT id, score FROM customers",
]


@pytest.mark.parametrize("probe", NOT_SUBSUMED_PROBES)
def test_non_subsumed_probe_goes_to_the_source(probe):
    gis = make_gis()
    gis.query(SUPERSET)
    result = gis.query(probe)
    oracle = make_gis(fragment_cache_bytes=0).query(probe)
    assert result.metrics.bytes_shipped > 0, probe
    assert_bit_identical(result, oracle)


def test_unfiltered_scan_subsumes_null_probes():
    """A cached full scan contains the NULL rows, so IS NULL is servable."""
    gis = make_gis()
    gis.query("SELECT id, score FROM customers")
    for probe in (
        "SELECT id, score FROM customers WHERE score IS NULL",
        "SELECT id, score FROM customers WHERE score IS NOT NULL",
        "SELECT id FROM customers WHERE score < 40",
    ):
        result = gis.query(probe)
        oracle = make_gis(fragment_cache_bytes=0).query(probe)
        assert result.metrics.bytes_shipped == 0.0, probe
        assert_bit_identical(result, oracle)


def test_strict_boundary_subsumption_is_exact():
    gis = make_gis()
    gis.query("SELECT id, score FROM customers WHERE score > 10")
    # `>= 10` includes score == 10 which the cached entry filtered out.
    probe = "SELECT id, score FROM customers WHERE score >= 10"
    result = gis.query(probe)
    assert result.metrics.bytes_shipped > 0
    assert_bit_identical(
        result, make_gis(fragment_cache_bytes=0).query(probe)
    )


def test_typed_and_plain_replays_match_their_oracles():
    for typed in (True, False):
        options = PlannerOptions(typed_columns=typed)
        gis = make_gis()
        gis.query(SUPERSET, options)
        probe = "SELECT id, score FROM customers WHERE score > 40"
        warm = gis.query(probe, options)
        oracle = make_gis(fragment_cache_bytes=0).query(probe, options)
        assert warm.metrics.bytes_shipped == 0.0
        assert_bit_identical(warm, oracle)


def test_parallel_scheduler_fills_then_replays():
    options = PlannerOptions(max_parallel_fragments=4)
    gis = make_gis()
    cold = gis.query(SUPERSET, options)
    assert cold.metrics.bytes_shipped > 0
    warm = gis.query(SUPERSET, options)
    assert warm.metrics.bytes_shipped == 0.0
    assert_bit_identical(warm, cold)


# ---------------------------------------------------------------------------
# budget, eviction, invalidation
# ---------------------------------------------------------------------------


def test_lru_eviction_respects_byte_budget():
    gis = make_gis()
    baseline = gis.query(SUPERSET).metrics.bytes_shipped
    gis.fragment_cache.clear()
    small = make_gis(fragment_cache_bytes=int(baseline) + 8)
    small.query(SUPERSET)
    small.query("SELECT id, name, region, score FROM customers")
    stats = small.fragment_cache.stats()
    assert stats["bytes"] <= stats["budget_bytes"] or stats["entries"] == 1
    assert stats["evictions"] + stats["rejected_oversize"] >= 1


def test_notify_source_changed_invalidates_fragments():
    gis = make_gis()
    gis.query(SUPERSET)
    assert gis.query(SUPERSET).metrics.bytes_shipped == 0.0
    gis.notify_source_changed("crm")
    post = gis.query(SUPERSET)
    assert post.metrics.bytes_shipped > 0
    assert len(gis.fragment_cache) == 1  # refilled on the new epoch


def test_zero_budget_disables_the_cache():
    gis = make_gis(fragment_cache_bytes=0)
    gis.query(SUPERSET)
    warm = gis.query(SUPERSET)
    assert warm.metrics.bytes_shipped > 0
    assert not gis.fragment_cache.enabled
    with pytest.raises(ValueError):
        FragmentCache(-1, SourceEpochs())


# ---------------------------------------------------------------------------
# chaos: partial results and mid-flight epoch bumps
# ---------------------------------------------------------------------------


def test_partial_results_are_never_admitted():
    plan = FaultPlan.of(seed=3, crm=FaultSpec(fail_after_pages=1))
    options = PlannerOptions(on_source_failure="partial", faults=plan)
    gis = make_gis()
    degraded = gis.query(SUPERSET, options)
    assert not degraded.complete
    stats = gis.fragment_cache.stats()
    assert stats["admissions"] == 0
    # The next (healthy) run must go to the source and see all rows.
    healthy = gis.query(SUPERSET)
    assert healthy.metrics.bytes_shipped > 0
    assert_bit_identical(
        healthy, make_gis(fragment_cache_bytes=0).query(SUPERSET)
    )


def test_failed_query_admits_nothing():
    plan = FaultPlan.of(seed=3, crm=FaultSpec(fail_connect=10))
    gis = make_gis()
    with pytest.raises(Exception):
        gis.query(SUPERSET, PlannerOptions(faults=plan))
    assert gis.fragment_cache.stats()["admissions"] == 0


def test_midflight_epoch_bump_rejects_admission():
    gis = make_gis()
    planned = gis.plan(SUPERSET)
    exchange = next(
        op for op in planned.physical.walk() if isinstance(op, ExchangeExec)
    )
    ctx = gis._execution_context(None)
    decision = gis.fragment_cache.begin(exchange, ctx)
    assert decision is not None and decision.fill is not None
    filled = decision.fill(iter([[(1, "e", 10.0)], [(2, "w", 20.0)]]))
    next(filled)  # first page in flight...
    gis.source_epochs.bump("crm")  # ...the source moves...
    for _ in filled:  # ...and the stream still finishes cleanly
        pass
    stats = gis.fragment_cache.stats()
    assert stats["admissions"] == 0
    assert stats["rejected_stale"] == 1
    assert not gis.fragment_cache.would_serve(exchange.fragment)


def test_abandoned_fill_is_not_admitted():
    gis = make_gis()
    planned = gis.plan(SUPERSET)
    exchange = next(
        op for op in planned.physical.walk() if isinstance(op, ExchangeExec)
    )
    ctx = gis._execution_context(None)
    decision = gis.fragment_cache.begin(exchange, ctx)
    filled = decision.fill(iter([[(1, "e", 10.0)], [(2, "w", 20.0)]]))
    next(filled)
    filled.close()  # consumer abandoned mid-stream (LIMIT, error, deadline)
    assert gis.fragment_cache.stats()["admissions"] == 0


# ---------------------------------------------------------------------------
# materialized views
# ---------------------------------------------------------------------------


def test_materialized_view_serves_with_zero_network():
    gis = make_gis()
    status = gis.query(
        "CREATE MATERIALIZED VIEW east5 WITH STALENESS 60000 AS "
        "SELECT id, score FROM customers WHERE region = 'east' AND score > 5"
    )
    assert "created" in status.rows[0][0]
    result = gis.query("SELECT COUNT(*) FROM east5")
    assert result.metrics.network.materialized_view_hits == 1
    assert result.metrics.bytes_shipped == 0.0
    oracle = make_gis(fragment_cache_bytes=0).query(
        "SELECT COUNT(*) FROM customers "
        "WHERE region = 'east' AND score > 5"
    )
    assert result.scalar() == oracle.scalar()


def test_materialized_view_staleness_and_refresh():
    gis = make_gis()
    gis.query(
        "CREATE MATERIALIZED VIEW snap AS SELECT id FROM customers "
        "WHERE score > 100"
    )
    assert gis.materialized.fresh("snap")
    gis.notify_source_changed("crm")
    # staleness 0: any bump makes it stale; queries fall back to expansion
    assert not gis.materialized.fresh("snap")
    fallback = gis.query("SELECT COUNT(*) FROM snap")
    assert fallback.metrics.network.materialized_view_hits == 0
    assert fallback.metrics.bytes_shipped > 0
    gis.query("REFRESH MATERIALIZED VIEW snap")
    assert gis.materialized.fresh("snap")
    again = gis.query("SELECT COUNT(*) FROM snap")
    assert again.metrics.network.materialized_view_hits == 1


def test_materialized_view_staleness_window_keeps_serving():
    gis = make_gis()
    gis.query(
        "CREATE MATERIALIZED VIEW windowed WITH STALENESS 600000 AS "
        "SELECT id FROM customers WHERE score > 100"
    )
    gis.notify_source_changed("crm")
    # Bumped, but the first invalidating bump is well inside the window.
    assert gis.materialized.fresh("windowed")
    result = gis.query("SELECT COUNT(*) FROM windowed")
    assert result.metrics.network.materialized_view_hits == 1


def test_materialized_view_ddl_roundtrip_and_errors():
    gis = make_gis()
    gis.query("CREATE MATERIALIZED VIEW mv1 AS SELECT id FROM customers")
    with pytest.raises(CatalogError):
        gis.query("CREATE MATERIALIZED VIEW mv1 AS SELECT id FROM customers")
    dropped = gis.query("DROP MATERIALIZED VIEW mv1")
    assert "dropped" in dropped.rows[0][0]
    with pytest.raises(CatalogError):
        gis.query("REFRESH MATERIALIZED VIEW mv1")
    with pytest.raises(ParseError):
        gis.query("CREATE MATERIALIZED VIEW broken WITH STALENESS x AS SELECT 1")


def test_materialized_view_results_stay_out_of_result_cache():
    gis = make_gis(result_cache_size=8)
    gis.query("CREATE MATERIALIZED VIEW mv AS SELECT id FROM customers")
    first = gis.query("SELECT COUNT(*) FROM mv")
    assert first.metrics.network.materialized_view_hits == 1
    second = gis.query("SELECT COUNT(*) FROM mv")
    # Served by the snapshot again — never by the result cache, whose
    # epoch invalidation cannot see the staleness clock.
    assert not second.metrics.network.cache_hit
    assert second.metrics.network.materialized_view_hits == 1


def test_refresh_refuses_partial_snapshots():
    plan = FaultPlan.of(seed=1, crm=FaultSpec(fail_connect=50))
    gis = make_gis(
        options=PlannerOptions(on_source_failure="partial"), faults=plan
    )
    with pytest.raises((ExecutionError,)):
        gis.create_materialized_view("mv", "SELECT id FROM customers")
    # The failed CREATE must leave no debris behind.
    assert not gis.materialized.has("mv")
    assert not gis.catalog.has_table("mv")


def test_prepared_statements_bypass_snapshots():
    gis = make_gis()
    gis.query("CREATE MATERIALIZED VIEW mv AS SELECT id FROM customers")
    prepared = gis.prepare("SELECT COUNT(*) FROM mv")
    result = prepared.execute()
    assert result.metrics.network.materialized_view_hits == 0


def test_parse_utility_fast_path_and_syntax():
    assert parse_utility("SELECT 1") is None
    assert parse_utility("  select * from t") is None
    created = parse_utility(
        "CREATE MATERIALIZED VIEW v WITH STALENESS 2500 AS SELECT 1;"
    )
    assert created.kind == "create_materialized"
    assert created.name == "v"
    assert created.staleness_ms == 2500.0
    assert created.select_sql == "SELECT 1"
    refreshed = parse_utility("refresh materialized view V2")
    assert refreshed.kind == "refresh_materialized" and refreshed.name == "V2"
    with pytest.raises(ParseError):
        parse_utility("CREATE TABLE t (x INT)")


# ---------------------------------------------------------------------------
# result-cache key normalization (the spurious-miss bugfix) + stats
# ---------------------------------------------------------------------------


def test_result_cache_ignores_execution_only_knobs():
    gis = make_gis(fragment_cache_bytes=0, result_cache_size=8)
    sql = "SELECT COUNT(*) FROM customers"
    base = PlannerOptions()
    gis.query(sql, base)
    for variant in (
        base.but(typed_columns=False),
        base.but(morsel_workers=4),
        base.but(deadline_ms=60000.0),
        base.but(trace=True),
    ):
        hit = gis.query(sql, variant)
        assert hit.metrics.network.cache_hit, variant
    stats = gis.result_cache_stats()
    assert stats["hits"] == 4 and stats["misses"] == 1
    assert stats["entries"] == 1


def test_result_cache_still_keys_on_plan_shaping_knobs():
    gis = make_gis(fragment_cache_bytes=0, result_cache_size=8)
    sql = "SELECT COUNT(*) FROM customers"
    gis.query(sql, PlannerOptions())
    miss = gis.query(sql, PlannerOptions(pushdown="scans-only"))
    assert not miss.metrics.network.cache_hit


def test_cache_metrics_reach_the_registry():
    from repro.obs import Observability

    gis = make_gis(
        result_cache_size=4, observability=Observability(metrics=True)
    )
    sql = "SELECT id FROM customers WHERE score > 10"
    gis.query(sql)
    gis.query(sql)  # result-cache hit (fragment cache untouched)
    snapshot = gis.obs.registry.snapshot()
    counters = snapshot["counters"]
    assert counters["result_cache_hits_total"] == 1
    assert counters["fragment_cache_misses_total"] == 1
    gauges = snapshot["gauges"]
    assert gauges["result_cache.hits"] == 1.0
    assert gauges["fragment_cache.entries"] == 1.0

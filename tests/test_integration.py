"""End-to-end differential testing on the TPC-H-lite federation.

Every query runs twice: through the full optimized, distributed engine and
through the unoptimized reference interpreter; row multisets must agree.
"""

import pytest

from repro import PlannerOptions

from .conftest import assert_same_rows

# A broad catalog of query shapes over all six sources.
QUERIES = [
    # single-source, per source class
    "SELECT COUNT(*) FROM regions",
    "SELECT n_name FROM nations WHERE n_region_id = 3 ORDER BY n_name",
    "SELECT c_name, c_balance FROM customers WHERE c_balance > 5000",
    "SELECT o_status, COUNT(*), SUM(o_total) FROM orders GROUP BY o_status",
    "SELECT p_category, AVG(p_price) FROM parts GROUP BY p_category",
    "SELECT s_name FROM suppliers WHERE s_rating = 5",
    "SELECT u_tier, COUNT(*) FROM profiles GROUP BY u_tier",
    # filters of varied shapes
    "SELECT o_id FROM orders WHERE o_total BETWEEN 100 AND 200",
    "SELECT c_name FROM customers WHERE c_segment IN ('BUILDING', 'MACHINERY') AND c_balance < 0",
    "SELECT c_name FROM customers WHERE c_name LIKE 'A%'",
    "SELECT o_id FROM orders WHERE o_date >= DATE '1989-06-01' AND o_status <> 'RETURNED'",
    "SELECT p_name FROM parts WHERE p_price > 500 OR p_category = 'TOOLING'",
    "SELECT c_name FROM customers WHERE c_nation_id IS NOT NULL LIMIT 5",
    # two-source joins
    "SELECT c.c_name, o.o_total FROM customers c JOIN orders o ON c.c_id = o.o_cust_id WHERE o.o_total > 4000",
    "SELECT n.n_name, COUNT(*) FROM nations n JOIN customers c ON n.n_id = c.c_nation_id GROUP BY n.n_name",
    "SELECT c.c_name, p.u_tier FROM customers c JOIN profiles p ON c.c_id = p.u_cust_id WHERE c.c_balance > 8000",
    "SELECT p.p_name, SUM(l.l_qty) FROM parts p JOIN lineitems l ON p.p_id = l.l_part_id GROUP BY p.p_name ORDER BY 2 DESC LIMIT 5",
    # multi-source joins (3+)
    "SELECT r.r_name, COUNT(*) AS n FROM regions r JOIN nations n ON r.r_id = n.n_region_id "
    "JOIN customers c ON n.n_id = c.c_nation_id GROUP BY r.r_name ORDER BY n DESC",
    "SELECT c.c_segment, SUM(l.l_price * l.l_qty) AS rev FROM customers c "
    "JOIN orders o ON c.c_id = o.o_cust_id JOIN lineitems l ON o.o_id = l.l_order_id "
    "GROUP BY c.c_segment",
    "SELECT s.s_name, p.p_name FROM suppliers s JOIN lineitems l ON s.s_id = l.l_supplier_id "
    "JOIN parts p ON p.p_id = l.l_part_id WHERE s.s_rating >= 4 AND p.p_price > 700",
    # semi/anti joins
    "SELECT c_name FROM customers WHERE c_id IN (SELECT o_cust_id FROM orders WHERE o_total > 4500)",
    "SELECT p_name FROM parts WHERE p_id NOT IN (SELECT l_part_id FROM lineitems)",
    "SELECT c_name FROM customers WHERE EXISTS (SELECT 1 FROM orders WHERE o_total > 4990)",
    # left joins
    "SELECT c.c_name, o.o_id FROM customers c LEFT JOIN orders o "
    "ON c.c_id = o.o_cust_id AND o.o_total > 4900 WHERE c.c_id <= 20",
    # aggregation variants
    "SELECT COUNT(DISTINCT o_cust_id) FROM orders",
    "SELECT o_cust_id, MIN(o_date), MAX(o_date) FROM orders GROUP BY o_cust_id HAVING COUNT(*) >= 5",
    "SELECT AVG(c_balance), SUM(c_balance) FROM customers WHERE c_segment = 'HOUSEHOLD'",
    # expressions
    "SELECT o_id, CASE WHEN o_total > 1000 THEN 'big' ELSE 'small' END AS bucket FROM orders LIMIT 10",
    "SELECT UPPER(c_name) FROM customers WHERE LENGTH(c_name) > 12 LIMIT 5",
    "SELECT CAST(o_total AS INTEGER) FROM orders WHERE o_id <= 5",
    "SELECT YEAR(o_date), COUNT(*) FROM orders GROUP BY YEAR(o_date) ORDER BY 1",
    # set operations
    "SELECT c_nation_id FROM customers UNION SELECT s_nation_id FROM suppliers",
    "SELECT n_id FROM nations EXCEPT SELECT c_nation_id FROM customers",
    "SELECT c_nation_id FROM customers INTERSECT SELECT s_nation_id FROM suppliers",
    # distinct / order / limit interplay
    "SELECT DISTINCT c_segment FROM customers ORDER BY c_segment",
    "SELECT o_id, o_total FROM orders ORDER BY o_total DESC, o_id LIMIT 7 OFFSET 3",
    # derived tables
    "SELECT bucket, COUNT(*) FROM (SELECT CASE WHEN o_total > 2500 THEN 'hi' ELSE 'lo' END AS bucket FROM orders) q GROUP BY bucket",
    "SELECT MAX(n) FROM (SELECT o_cust_id, COUNT(*) AS n FROM orders GROUP BY o_cust_id) q",
    # window functions at the mediator over federated inputs
    "SELECT o_id, ROW_NUMBER() OVER (PARTITION BY o_status ORDER BY o_total DESC) FROM orders WHERE o_total > 4000",
    "SELECT c.c_name, o.o_total, RANK() OVER (ORDER BY o.o_total DESC) FROM customers c JOIN orders o ON c.c_id = o.o_cust_id WHERE o.o_total > 4700",
    # bag-semantics set operations
    "SELECT c_nation_id FROM customers EXCEPT ALL SELECT s_nation_id FROM suppliers",
    "SELECT c_nation_id FROM customers INTERSECT ALL SELECT s_nation_id FROM suppliers",
    # correlated subqueries
    "SELECT c_name FROM customers c WHERE EXISTS (SELECT 1 FROM orders o WHERE o.o_cust_id = c.c_id AND o.o_total > 4900)",
    "SELECT c_name FROM customers c WHERE NOT EXISTS (SELECT 1 FROM orders o WHERE o.o_cust_id = c.c_id)",
]


@pytest.mark.parametrize("sql", QUERIES, ids=range(len(QUERIES)))
def test_engine_matches_reference(federation, sql):
    result = federation.gis.query(sql)
    names, reference = federation.gis.reference_query(sql)
    assert result.column_names == names
    if "ORDER BY" in sql:
        # Ordered queries must agree on prefix order of the sort keys; we
        # still compare as multisets because ties are nondeterministic.
        assert_same_rows(result.rows, reference)
    else:
        assert_same_rows(result.rows, reference)


@pytest.mark.parametrize(
    "options_name,options",
    [
        ("naive", PlannerOptions(rewrites=False, join_strategy="canonical",
                                 pushdown="scans-only", semijoin="off")),
        ("greedy-nostats", PlannerOptions(join_strategy="greedy",
                                          use_histograms=False)),
        ("semijoin-forced", PlannerOptions(semijoin="force")),
        ("no-rewrites", PlannerOptions(rewrites=False)),
        ("merge-join", PlannerOptions(join_algorithm="merge")),
        ("no-partial-agg", PlannerOptions(partial_aggregation=False)),
    ],
)
@pytest.mark.parametrize("sql", QUERIES[::3], ids=lambda s: s[:30])
def test_option_matrix_agrees(federation, options_name, options, sql):
    baseline = federation.gis.query(sql)
    variant = federation.gis.query(sql, options)
    assert_same_rows(variant.rows, baseline.rows)


class TestMetricsInvariants:
    def test_pushdown_never_ships_more(self, federation):
        sql = "SELECT o_id FROM orders WHERE o_total > 4000"
        smart = federation.gis.query(sql)
        naive = federation.gis.query(
            sql, PlannerOptions(pushdown="scans-only")
        )
        assert smart.metrics.rows_shipped <= naive.metrics.rows_shipped
        assert smart.metrics.bytes_shipped < naive.metrics.bytes_shipped

    def test_network_ledger_matches_result_metrics(self, federation):
        network = federation.gis.network
        before = network.total.bytes
        result = federation.gis.query("SELECT COUNT(*) FROM customers")
        delta = network.total.bytes - before
        assert delta == pytest.approx(result.metrics.bytes_shipped)

    def test_projection_pruning_cuts_bytes(self, federation):
        wide = federation.gis.query("SELECT * FROM customers")
        narrow = federation.gis.query("SELECT c_id FROM customers")
        assert narrow.metrics.bytes_shipped < wide.metrics.bytes_shipped

    def test_limit_pushdown_cuts_rows(self, federation):
        unlimited = federation.gis.query("SELECT o_id FROM orders")
        limited = federation.gis.query("SELECT o_id FROM orders LIMIT 3")
        assert limited.metrics.rows_shipped < unlimited.metrics.rows_shipped


class TestPartitionedFederation:
    def test_union_view_scaleout(self):
        from repro.workloads import build_partitioned_orders

        whole = build_partitioned_orders(1, 400, seed=11)
        split = build_partitioned_orders(4, 100, seed=11)
        sql = "SELECT COUNT(*), SUM(o_total) FROM orders_all WHERE o_total > 500"
        rows_whole = whole.gis.query(sql).rows
        rows_split = split.gis.query(sql).rows
        assert rows_whole[0][0] == rows_split[0][0]
        assert rows_whole[0][1] == pytest.approx(rows_split[0][1])

    def test_parallel_elapsed_less_than_sequential(self):
        from repro.workloads import build_partitioned_orders

        federation = build_partitioned_orders(4, 200)
        federation.gis.network.reset()
        federation.gis.query("SELECT COUNT(*) FROM orders_all")
        network = federation.gis.network
        assert network.parallel_elapsed_ms() < network.total.simulated_ms

"""The observability subsystem: tracing, metrics registry, and exporters.

Covers the tracer's span/parentage semantics (including propagation onto
scheduler worker threads and the race-safe double-end), the zero-cost
disabled path, Chrome trace_event export schema, the metrics registry,
the slow-query log, circuit-breaker state surfaced through the registry,
and the REPL/config entry points.
"""

import io
import json
import threading
from typing import Iterator

import pytest

from repro import (
    GlobalInformationSystem,
    MemorySource,
    PlannerOptions,
    SourceError,
    build_from_config,
)
from repro.catalog.schema import schema_from_pairs
from repro.core.fragments import Fragment
from repro.errors import CatalogError
from repro.obs import (
    BREAKER_STATE_CODES,
    JsonLinesTraceSink,
    MetricsRegistry,
    NULL_SPAN,
    Observability,
    SlowQueryLog,
    Tracer,
    chrome_trace_events,
    format_span_tree,
    write_chrome_trace,
)
from repro.repl import Repl

from .conftest import make_small_gis

SCHEMA = schema_from_pairs("t", [("a", "INT"), ("b", "TEXT")])
ROWS = [(i, f"v{i}") for i in range(50)]


def build(source, observability=None, retries=0):
    gis = GlobalInformationSystem(observability=observability,
                                  fragment_retries=retries)
    source.add_table("t", SCHEMA, ROWS)
    gis.register_source(source.name, source)
    gis.register_table("t", source=source.name)
    return gis


class BrokenSource(MemorySource):
    def execute(self, fragment: Fragment) -> Iterator[tuple]:
        raise SourceError(self.name, "connection refused")
        yield  # pragma: no cover - makes this a generator


def traced_gis():
    obs = Observability(trace=True, metrics=True)
    return build(MemorySource("mem"), observability=obs), obs


def spans_named(spans, name):
    return [s for s in spans if s.name == name]


# ---------------------------------------------------------------------------
# tracer core
# ---------------------------------------------------------------------------


class TestTracer:
    def test_disabled_tracer_returns_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.root_span("query")
        assert span is NULL_SPAN
        assert not span
        # The whole API is absorbed without effect.
        span.set_attribute("x", 1)
        span.event("e")
        span.end()
        assert tracer.drain() == []

    def test_null_parent_begets_null_child(self):
        tracer = Tracer(enabled=True)
        assert tracer.child(NULL_SPAN, "child") is NULL_SPAN

    def test_parent_links_and_trace_id_flow(self):
        tracer = Tracer(enabled=True)
        root = tracer.root_span("query", sql="SELECT 1")
        child = tracer.child(root, "phase:parse", "phase")
        grandchild = tracer.child(child, "inner")
        for span in (grandchild, child, root):
            span.end()
        assert child.parent_id == root.span_id
        assert grandchild.parent_id == child.span_id
        assert child.trace_id == root.trace_id == grandchild.trace_id
        assert root.parent_id is None

    def test_force_traces_one_query_while_disabled(self):
        tracer = Tracer(enabled=False)
        root = tracer.root_span("query", force=True)
        child = tracer.child(root, "phase:plan")
        child.end()
        root.end()
        assert len(tracer.drain()) == 2

    def test_end_is_idempotent_and_race_safe(self):
        tracer = Tracer(enabled=True)
        span = tracer.root_span("fragment")
        span.end()
        first_end = span.end_ms
        span.end()  # consumer-side timeout end arriving late
        assert span.end_ms == first_end
        assert len(tracer.drain()) == 1

    def test_events_carry_timestamps_and_attributes(self):
        tracer = Tracer(enabled=True)
        span = tracer.root_span("fragment")
        span.event("retry", attempt=1, delay_ms=50)
        span.end()
        (name, ts_ms, attrs) = span.events[0]
        assert name == "retry"
        assert span.start_ms <= ts_ms <= span.end_ms
        assert attrs == {"attempt": 1, "delay_ms": 50}

    def test_context_manager_records_errors(self):
        tracer = Tracer(enabled=True)
        with pytest.raises(ValueError):
            with tracer.root_span("query") as span:
                raise ValueError("boom")
        assert "boom" in span.attributes["error"]
        assert span.end_ms is not None

    def test_ring_drops_oldest_beyond_max_spans(self):
        tracer = Tracer(enabled=True, max_spans=3)
        for index in range(5):
            tracer.root_span(f"s{index}").end()
        spans = tracer.drain()
        assert [s.name for s in spans] == ["s2", "s3", "s4"]
        assert tracer.dropped_spans == 2

    def test_activation_is_thread_local(self):
        tracer = Tracer(enabled=True)
        root = tracer.root_span("query")
        seen = []
        with tracer.activate(root):
            thread = threading.Thread(target=lambda: seen.append(tracer.current))
            thread.start()
            thread.join()
            assert tracer.current is root
        assert seen == [None]
        assert tracer.current is None


# ---------------------------------------------------------------------------
# traced query execution
# ---------------------------------------------------------------------------


class TestTracedQueries:
    def test_mediator_phases_present_with_correct_parents(self):
        gis, obs = traced_gis()
        gis.query("SELECT COUNT(*) FROM t")
        spans = obs.spans
        (root,) = spans_named(spans, "query")
        phases = {s.name for s in spans if s.parent_id == root.span_id}
        assert {"phase:parse", "phase:analyze", "phase:rewrite",
                "phase:plan", "phase:execute"} <= phases
        (plan_phase,) = spans_named(spans, "phase:plan")
        sub_phases = {s.name for s in spans if s.parent_id == plan_phase.span_id}
        assert {"join-order", "pushdown", "semijoin", "physical"} <= sub_phases

    def test_operator_spans_under_execute_phase(self):
        gis, obs = traced_gis()
        gis.query("SELECT a FROM t WHERE a > 10")
        (execute,) = spans_named(obs.spans, "phase:execute")
        operators = [s for s in obs.spans if s.category == "operator"]
        assert operators
        assert all(s.parent_id == execute.span_id for s in operators)
        exchange = next(s for s in operators if "Exchange" in s.name)
        assert exchange.attributes["rows"] == 39

    def test_fragment_spans_cross_scheduler_threads(self):
        obs = Observability(trace=True)
        federation_gis = build(MemorySource("mem"), observability=obs)
        federation_gis.query(
            "SELECT COUNT(*) FROM t",
            PlannerOptions(max_parallel_fragments=4),
        )
        (execute,) = spans_named(obs.spans, "phase:execute")
        (fragment,) = spans_named(obs.spans, "fragment:mem")
        # Parent captured at submit time, recorded on the worker thread.
        assert fragment.parent_id == execute.span_id
        assert fragment.thread_name != execute.thread_name
        assert fragment.thread_name.startswith("gis-fragment-")
        assert fragment.attributes["mode"] == "parallel"
        assert any(name == "page" for name, _, _ in fragment.events)

    def test_sequential_fragment_span_records_pages(self):
        gis, obs = traced_gis()
        gis.query("SELECT a FROM t")
        (fragment,) = spans_named(obs.spans, "fragment:mem")
        assert fragment.attributes["mode"] == "sequential"
        page_events = [e for e in fragment.events if e[0] == "page"]
        assert sum(e[2]["rows"] for e in page_events) == 50

    def test_per_query_trace_option_forces_spans(self):
        gis = build(MemorySource("mem"))  # observability fully off
        gis.query("SELECT COUNT(*) FROM t")
        assert gis.obs.spans == []
        gis.query("SELECT COUNT(*) FROM t", PlannerOptions(trace=True))
        assert spans_named(gis.obs.spans, "query")

    def test_disabled_observability_records_nothing(self):
        gis = build(MemorySource("mem"))
        gis.query("SELECT COUNT(*) FROM t")
        assert gis.obs.spans == []
        assert gis.obs.tracer.drain() == []
        assert gis.obs.registry.snapshot() == \
            {"counters": {}, "gauges": {}, "histograms": {}}

    def test_failed_query_closes_root_with_error(self):
        obs = Observability(trace=True)
        gis = build(BrokenSource("down"), observability=obs)
        with pytest.raises(SourceError):
            gis.query("SELECT COUNT(*) FROM t")
        (root,) = spans_named(obs.spans, "query")
        assert "error" in root.attributes
        assert root.end_ms is not None

    def test_format_span_tree_nests(self):
        gis, obs = traced_gis()
        gis.query("SELECT COUNT(*) FROM t")
        tree = format_span_tree(obs.spans)
        assert tree.splitlines()[0].startswith("query")
        assert "  phase:plan" in tree


# ---------------------------------------------------------------------------
# Chrome trace export
# ---------------------------------------------------------------------------


class TestChromeExport:
    def test_exported_file_is_valid_trace_event_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        obs = Observability(trace=True, trace_path=path)
        gis = build(MemorySource("mem"), observability=obs)
        gis.query("SELECT COUNT(*) FROM t",
                  PlannerOptions(max_parallel_fragments=2))
        with open(path) as handle:
            document = json.load(handle)
        events = document["traceEvents"]
        assert isinstance(events, list) and events
        phases = {event["ph"] for event in events}
        assert phases <= {"M", "X", "i"}
        for event in events:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            if event["ph"] == "X":
                assert event["ts"] >= 0 and event["dur"] >= 0
                assert "span_id" in event["args"]

    def test_span_ids_resolve_within_export(self):
        gis, obs = traced_gis()
        gis.query("SELECT COUNT(*) FROM t")
        events = chrome_trace_events(obs.spans)
        span_ids = {e["args"]["span_id"] for e in events if e["ph"] == "X"}
        parent_ids = {
            e["args"]["parent_id"]
            for e in events
            if e["ph"] == "X" and "parent_id" in e["args"]
        }
        assert parent_ids <= span_ids

    def test_threads_get_metadata_tracks(self, tmp_path):
        gis = build(
            MemorySource("mem"),
            observability=Observability(trace=True),
        )
        gis.query("SELECT COUNT(*) FROM t",
                  PlannerOptions(max_parallel_fragments=2))
        events = chrome_trace_events(gis.obs.spans)
        names = {
            e["args"]["name"] for e in events if e["ph"] == "M"
        }
        assert any(n.startswith("gis-fragment-") for n in names)

    def test_write_chrome_trace_returns_path(self, tmp_path):
        tracer = Tracer(enabled=True)
        tracer.root_span("query").end()
        path = str(tmp_path / "out.json")
        assert write_chrome_trace(path, tracer.drain()) == path

    def test_jsonl_sink_streams_each_span(self):
        stream = io.StringIO()
        tracer = Tracer(enabled=True, sink=JsonLinesTraceSink(stream))
        root = tracer.root_span("query")
        tracer.child(root, "phase:parse").end()
        root.end()
        lines = [json.loads(line) for line in
                 stream.getvalue().strip().splitlines()]
        assert [line["name"] for line in lines] == ["phase:parse", "query"]
        assert lines[0]["parent_id"] == lines[1]["span_id"]


# ---------------------------------------------------------------------------
# metrics registry
# ---------------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_gauge_histogram_roundtrip(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("queries_total").inc()
        registry.counter("queries_total").inc(2)
        registry.gauge("depth").set(3.5)
        registry.histogram("wall_ms").observe(12.0)
        registry.histogram("wall_ms").observe(700.0)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["queries_total"] == 3
        assert snapshot["gauges"]["depth"] == 3.5
        histogram = snapshot["histograms"]["wall_ms"]
        assert histogram["count"] == 2
        assert histogram["min"] == 12.0 and histogram["max"] == 700.0

    def test_counter_rejects_negative(self):
        registry = MetricsRegistry(enabled=True)
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_disabled_registry_hands_out_shared_noops(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("a")
        assert counter is registry.counter("b")
        counter.inc(5)
        registry.gauge("g").set(1.0)
        registry.histogram("h").observe(2.0)
        assert registry.snapshot() == \
            {"counters": {}, "gauges": {}, "histograms": {}}

    def test_reset_clears_values(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("c").inc(7)
        registry.reset()
        assert registry.snapshot()["counters"]["c"] == 0

    def test_format_snapshot_mentions_instruments(self):
        registry = MetricsRegistry(enabled=True)
        registry.counter("queries_total").inc(4)
        registry.histogram("query_wall_ms").observe(3.0)
        text = registry.format_snapshot()
        assert "queries_total" in text and "4" in text
        assert "query_wall_ms" in text

    def test_query_metrics_folded_per_query(self):
        gis, obs = traced_gis()
        gis.query("SELECT COUNT(*) FROM t")
        gis.query("SELECT a FROM t WHERE a < 5")
        snapshot = obs.registry.snapshot()
        assert snapshot["counters"]["queries_total"] == 2
        assert snapshot["counters"]["rows_shipped_total"] > 0
        assert snapshot["histograms"]["query_wall_ms"]["count"] == 2

    def test_failed_queries_counted(self):
        obs = Observability(metrics=True)
        gis = build(BrokenSource("down"), observability=obs)
        with pytest.raises(SourceError):
            gis.query("SELECT COUNT(*) FROM t")
        snapshot = obs.registry.snapshot()
        assert snapshot["counters"]["queries_total"] == 1
        assert snapshot["counters"]["queries_failed_total"] == 1


# ---------------------------------------------------------------------------
# circuit breakers through the registry
# ---------------------------------------------------------------------------


class TestBreakerMetrics:
    def test_trip_counted_and_state_published(self):
        obs = Observability(metrics=True)
        gis = build(BrokenSource("down"), observability=obs, retries=2)
        options = PlannerOptions(breaker_failure_threshold=2,
                                 breaker_reset_ms=60000.0)
        with pytest.raises(SourceError):
            gis.query("SELECT COUNT(*) FROM t", options)
        snapshot = obs.registry.snapshot()
        # The in-query retries crossed the threshold: the trip is folded
        # into the registry even though the query itself failed.
        assert snapshot["counters"]["breaker_trips_total"] == 1
        assert snapshot["gauges"]["breaker.down.state"] == \
            BREAKER_STATE_CODES["open"]
        assert snapshot["gauges"]["breaker.down.trips"] == 1

    def test_registry_snapshot_of_breakers(self):
        gis = build(BrokenSource("down"), retries=2)
        options = PlannerOptions(breaker_failure_threshold=2)
        with pytest.raises(SourceError):
            gis.query("SELECT COUNT(*) FROM t", options)
        assert gis.breakers.snapshot() == \
            {"down": {"state": "open", "trips": 1, "failures": 2}}


# ---------------------------------------------------------------------------
# slow-query log
# ---------------------------------------------------------------------------


class TestSlowQueryLog:
    def test_threshold_gates_recording(self):
        log = SlowQueryLog(threshold_ms=100.0)
        assert not log.record("fast", wall_ms=5.0)
        assert log.record("slow", wall_ms=250.0, rows=7)
        (entry,) = log.entries
        assert entry["sql"] == "slow" and entry["rows"] == 7

    def test_disabled_by_default(self):
        log = SlowQueryLog()
        assert not log.enabled
        assert not log.record("anything", wall_ms=1e9)

    def test_bounded_entries(self):
        log = SlowQueryLog(threshold_ms=1.0, max_entries=2)
        for index in range(4):
            log.record(f"q{index}", wall_ms=10.0)
        assert [e["sql"] for e in log.entries] == ["q2", "q3"]

    def test_appends_jsonl_file(self, tmp_path):
        path = str(tmp_path / "slow.jsonl")
        log = SlowQueryLog(threshold_ms=1.0, path=path)
        log.record("SELECT 1", wall_ms=9.0)
        with open(path) as handle:
            entry = json.loads(handle.readline())
        assert entry["sql"] == "SELECT 1"

    def test_slow_queries_captured_from_mediator(self):
        obs = Observability(slow_query_ms=0.0001)
        gis = build(MemorySource("mem"), observability=obs)
        gis.query("SELECT COUNT(*) FROM t")
        assert obs.slow_queries.entries
        assert obs.slow_queries.entries[0]["sql"] == "SELECT COUNT(*) FROM t"


# ---------------------------------------------------------------------------
# REPL and config entry points
# ---------------------------------------------------------------------------


def drive(gis, *lines):
    out = io.StringIO()
    repl = Repl(gis, out=out)
    repl.run(list(lines))
    return out.getvalue(), repl


class TestReplCommands:
    def test_trace_on_off_and_status(self):
        gis = make_small_gis()
        output, _ = drive(gis, "\\trace on", "\\trace", "\\trace off",
                          "\\trace")
        assert "tracing ON" in output and "tracing OFF" in output
        assert "spans retained" in output

    def test_trace_to_file_exports_chrome_trace(self, tmp_path):
        path = str(tmp_path / "repl-trace.json")
        gis = make_small_gis()
        output, _ = drive(gis, f"\\trace {path}",
                          "SELECT COUNT(*) FROM customers;")
        assert f"tracing ON -> {path}" in output
        with open(path) as handle:
            assert json.load(handle)["traceEvents"]

    def test_metrics_shows_registry_and_breakers(self):
        gis = GlobalInformationSystem(
            observability=Observability(metrics=True)
        )
        source = MemorySource("mem")
        source.add_table("t", SCHEMA, ROWS)
        gis.register_source("mem", source)
        gis.register_table("t", source="mem")
        gis.breakers.breaker_for("mem", 2, 60000.0)  # materialize a breaker
        output, _ = drive(gis, "SELECT COUNT(*) FROM t;", "\\metrics")
        assert "queries_total" in output
        assert "breaker mem: closed (0 trips)" in output

    def test_main_wires_trace_out_flag(self, tmp_path, monkeypatch):
        import repro.repl as repl_module

        path = str(tmp_path / "cli-trace.json")
        monkeypatch.setattr("sys.stdin", io.StringIO("SELECT 1;\n"))
        repl_module.main(["--trace-out", path, "--slow-query-ms", "5000"])
        with open(path) as handle:
            document = json.load(handle)
        assert any(e.get("name") == "query"
                   for e in document["traceEvents"])


class TestConfigSection:
    def config(self, **observability):
        return {
            "sources": {
                "mem": {
                    "type": "memory",
                    "tables": {
                        "t": {"columns": [["a", "INT"]], "rows": [[1], [2]]}
                    },
                }
            },
            "tables": [{"name": "t", "source": "mem"}],
            "observability": observability,
        }

    def test_builds_armed_observability(self, tmp_path):
        path = str(tmp_path / "trace.json")
        gis = build_from_config(
            self.config(trace=True, metrics=True, slow_query_ms=250,
                        trace_out=path)
        )
        assert gis.obs.tracer.enabled
        assert gis.obs.registry.enabled
        assert gis.obs.slow_queries.threshold_ms == 250
        assert gis.obs.trace_path == path
        gis.query("SELECT COUNT(*) FROM t")
        assert spans_named(gis.obs.spans, "query")

    def test_rejects_unknown_keys(self):
        with pytest.raises(CatalogError, match="observability"):
            build_from_config(self.config(tracing=True))

    def test_rejects_bad_types(self):
        with pytest.raises(CatalogError, match="'trace' must be a boolean"):
            build_from_config(self.config(trace="yes"))
        with pytest.raises(CatalogError, match="'slow_query_ms'"):
            build_from_config(self.config(slow_query_ms="fast"))


# ---------------------------------------------------------------------------
# EXPLAIN ANALYZE timing tree
# ---------------------------------------------------------------------------


class TestExplainAnalyzeTimings:
    def test_every_operator_row_shows_wall_ms(self, small_gis):
        import re

        text = small_gis.explain_analyze(
            "SELECT c.region, COUNT(*) FROM customers c "
            "JOIN orders o ON c.id = o.cust_id GROUP BY c.region"
        )
        plan = text.split("\n\n")[0].splitlines()[1:]
        assert plan
        for line in plan:
            assert re.search(r"\[\d+ rows(?: / \d+ batches)? / [\d.]+ ms\]",
                             line), line

"""The interactive shell, driven through its stream interface."""

import io

from repro.repl import Repl

from .conftest import make_small_gis


def drive(*lines, naive=False):
    gis = make_small_gis()
    out = io.StringIO()
    repl = Repl(gis, out=out)
    repl.naive = naive
    repl.run(list(lines))
    return out.getvalue(), repl


class TestStatements:
    def test_simple_query(self):
        output, _ = drive("SELECT COUNT(*) FROM customers;")
        assert "5" in output and "rows" in output

    def test_multiline_statement(self):
        output, _ = drive(
            "SELECT name FROM customers",
            "WHERE id = 1;",
        )
        assert "Alice" in output

    def test_missing_semicolon_flushes_at_eof(self):
        output, _ = drive("SELECT COUNT(*) FROM orders")
        assert "7" in output

    def test_sql_error_reported_not_raised(self):
        output, _ = drive("SELECT ghost FROM customers;")
        assert "error:" in output

    def test_parse_error_reported(self):
        output, _ = drive("SELEKT 1;")
        assert "error:" in output

    def test_blank_lines_ignored(self):
        output, _ = drive("", "   ", "SELECT 1;")
        assert "error" not in output


class TestCommands:
    def test_tables(self):
        output, _ = drive("\\tables")
        assert "customers" in output and "crm" in output

    def test_tables_shows_views(self):
        gis = make_small_gis()
        gis.create_view("v", "SELECT id FROM customers")
        out = io.StringIO()
        Repl(gis, out=out).run(["\\tables"])
        assert "(view)" in out.getvalue()

    def test_sources_lists_capabilities(self):
        output, _ = drive("\\sources")
        assert "erp" in output and "joins" in output

    def test_schema_with_statistics(self):
        output, _ = drive("\\schema orders")
        assert "total" in output and "rows" in output

    def test_schema_unknown_table(self):
        output, _ = drive("\\schema ghost")
        assert "error:" in output

    def test_metrics_requires_query(self):
        output, _ = drive("\\metrics")
        assert "no query" in output

    def test_metrics_after_query(self):
        output, _ = drive("SELECT 1;", "\\metrics")
        assert "simulated" in output

    def test_explain(self):
        output, _ = drive("\\explain SELECT name FROM customers WHERE id = 1;")
        assert "distributed plan" in output

    def test_naive_toggle(self):
        output, repl = drive("\\naive on")
        assert "naive mode ON" in output and repl.naive
        output, repl = drive("\\naive")
        assert repl.naive  # toggled from default off

    def test_naive_mode_still_answers_correctly(self):
        output, _ = drive("\\naive on", "SELECT COUNT(*) FROM customers;")
        assert "5" in output

    def test_analyze(self):
        output, _ = drive("\\analyze")
        assert "analyzed 2 tables" in output

    def test_quit_stops_processing(self):
        output, _ = drive("\\quit", "SELECT 1;")
        assert "bye" in output
        assert "col" not in output  # the query never ran

    def test_unknown_command(self):
        output, _ = drive("\\frobnicate")
        assert "unknown command" in output

    def test_help(self):
        output, _ = drive("\\help")
        assert "\\tables" in output


class TestMainEntry:
    def test_demo_pipeline(self):
        import subprocess
        import sys

        process = subprocess.run(
            [sys.executable, "-m", "repro", "--demo", "--scale", "0.1"],
            input="SELECT COUNT(*) FROM regions;\n\\quit\n",
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert process.returncode == 0
        assert "5" in process.stdout
        assert "bye" in process.stdout


class TestProfileCommand:
    def test_profile_runs_and_reports(self):
        output, _ = drive("\\profile SELECT COUNT(*) FROM customers;")
        assert "actual rows" in output and "result rows: 1" in output

    def test_profile_requires_query(self):
        output, _ = drive("\\profile")
        assert "usage" in output


class TestConfigEntry:
    def test_repl_from_json_config(self, tmp_path):
        import json
        import subprocess
        import sys

        config = {
            "sources": {
                "m": {
                    "type": "memory",
                    "tables": {
                        "t": {"columns": [["a", "INT"]], "rows": [[1], [2]]}
                    },
                }
            },
            "tables": [{"name": "t", "source": "m"}],
        }
        path = tmp_path / "fed.json"
        path.write_text(json.dumps(config))
        process = subprocess.run(
            [sys.executable, "-m", "repro", "--config", str(path)],
            input="SELECT COUNT(*) FROM t;\n\\quit\n",
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert process.returncode == 0
        assert "2" in process.stdout


class TestResilienceCommands:
    def test_health_lists_sources(self):
        output, _ = drive("\\health")
        assert "crm" in output and "erp" in output
        assert "breaker closed" in output
        assert "link" in output

    def test_health_shows_transfer_totals_after_query(self):
        output, _ = drive("SELECT COUNT(*) FROM customers;", "\\health")
        assert "shipped" in output and "messages" in output

    def test_health_shows_fault_counters(self):
        import io

        from repro import (
            FaultPlan,
            FaultSpec,
            GlobalInformationSystem,
            MemorySource,
        )
        from repro.catalog.schema import schema_from_pairs
        from repro.repl import Repl

        plan = FaultPlan.of(m=FaultSpec(fail_connect=99))
        gis = GlobalInformationSystem(faults=plan)
        source = MemorySource("m")
        source.add_table(
            "t", schema_from_pairs("t", [("a", "INT")]), [(1,), (2,)]
        )
        gis.register_source("m", source)
        gis.register_table("t", source="m")
        out = io.StringIO()
        Repl(gis, out=out).run(["SELECT a FROM t;", "\\health"])
        output = out.getvalue()
        assert "error:" in output  # the injected fault sank the query
        assert "faults 1/1 calls" in output

    def test_health_without_sources(self):
        import io

        from repro import GlobalInformationSystem
        from repro.repl import Repl

        out = io.StringIO()
        Repl(GlobalInformationSystem(), out=out).run(["\\health"])
        assert "no sources registered" in out.getvalue()

    def test_deadline_command(self):
        output, repl = drive("\\deadline 250")
        assert "250 ms" in output and repl.deadline_ms == 250.0
        output, repl = drive("\\deadline 250", "\\deadline off")
        assert "OFF" in output and repl.deadline_ms == 0.0
        output, _ = drive("\\deadline soon")
        assert "usage" in output

    def test_partial_command_toggles(self):
        output, repl = drive("\\partial on")
        assert "partial" in output and repl.partial
        output, repl = drive("\\partial on", "\\partial off")
        assert repl.partial is False
        _, repl = drive("\\partial")
        assert repl.partial  # bare command toggles from the default

    def test_partial_banner_on_degraded_result(self):
        import io

        from repro import FaultInjector, FaultPlan, FaultSpec
        from repro.repl import Repl

        gis = make_small_gis()
        plan = FaultPlan.of(erp=FaultSpec(fail_connect=99))
        gis.fault_injector = FaultInjector(plan)
        out = io.StringIO()
        repl = Repl(gis, out=out)
        repl.partial = True
        repl.run(["SELECT COUNT(*) FROM orders;"])
        output = out.getvalue()
        assert "PARTIAL RESULT" in output
        assert "erp" in output and "injected fault" in output
        assert "PARTIAL)" in output  # row-count footer carries the flag

"""Tail tolerance: health tracking, adaptive timeouts, hedged fetches.

The federation's latency tail lives in its slowest component system, and
the only countermeasures available to a mediator are the ones these
tests pin down: a per-source health registry (latency quantiles, EWMA,
error rates), no-progress timeouts derived from the observed p99 instead
of a fixed guess, duplicate ("hedged") fetches raced against a
straggling primary, and proactive health-aware routing at dispatch.

The correctness bar for every speed-up is bit-identity: hedged and
rerouted executions must return exactly the rows unhedged execution
returns, charge their duplicate traffic honestly under ``hedges_*``
metrics, and compose with deadlines, partial results, and the fragment
cache without weakening any of their guarantees.
"""

import threading
import time
from typing import Iterator

import pytest

from repro import (
    FaultPlan,
    FaultSpec,
    GlobalInformationSystem,
    MemorySource,
    PlannerOptions,
    SourceError,
)
from repro.catalog.schema import schema_from_pairs
from repro.config import build_from_config
from repro.core.fragments import Fragment
from repro.core.health import (
    MIN_SAMPLES,
    SourceHealth,
    SourceHealthRegistry,
)
from repro.core.scheduler import SchedulerConfig
from repro.errors import CatalogError, PlanError, QueryTimeoutError
from repro.sources import faults as faults_module

SCHEMA = schema_from_pairs("t", [("a", "INT"), ("b", "TEXT")])
ROWS = [(i, f"v{i}") for i in range(60)]


class HangingSource(MemorySource):
    """Blocks inside execute() until released (a hung component system)."""

    def __init__(self, name, hang_s=5.0):
        super().__init__(name)
        self.hang_s = hang_s
        self.released = threading.Event()

    def execute(self, fragment: Fragment) -> Iterator[tuple]:
        self.released.wait(timeout=self.hang_s)
        yield from super().execute(fragment)


def replica_federation(page_rows=16, **gis_kwargs):
    """``t`` on ``primary`` with an identical replica on ``backup``."""
    gis = GlobalInformationSystem(**gis_kwargs)
    primary = MemorySource("primary", page_rows=page_rows)
    primary.add_table("t", SCHEMA, ROWS)
    backup = MemorySource("backup", page_rows=page_rows)
    backup.add_table("t_copy", SCHEMA, ROWS)
    gis.register_source("primary", primary)
    gis.register_source("backup", backup)
    gis.register_table("t", source="primary")
    gis.register_replica("t", source="backup", remote_table="t_copy")
    return gis


def straggler_plan(straggle_ms, seed=7, **spec_kwargs):
    """A fault plan that stalls (only) the primary's pages in wall-clock."""
    return FaultPlan.of(
        seed=seed,
        primary=FaultSpec(straggle_ms=straggle_ms, **spec_kwargs),
    )


# ---------------------------------------------------------------------------
# the health registry
# ---------------------------------------------------------------------------


class TestSourceHealth:
    def test_ewma_tracks_latency_stream(self):
        health = SourceHealth(alpha=0.5)
        for ms in (10.0, 20.0):
            health.observe_latency(ms)
        assert health.ewma_ms == pytest.approx(15.0)
        assert health.samples == 2

    def test_quantiles_are_nearest_rank_over_the_window(self):
        health = SourceHealth()
        for ms in range(1, 101):
            health.observe_latency(float(ms))
        assert health.quantile(0.50) == 51.0
        assert health.quantile(0.95) == 96.0
        assert health.quantile(0.99) == 100.0
        assert health.quantile(0.0) == 1.0

    def test_window_is_bounded_and_forgets_old_regimes(self):
        health = SourceHealth(window=4)
        for ms in (1000.0, 1000.0, 1.0, 1.0, 1.0, 1.0):
            health.observe_latency(ms)
        # The slow regime has rolled out of the window entirely.
        assert health.quantile(0.99) == 1.0

    def test_quantile_empty_is_none(self):
        assert SourceHealth().quantile(0.99) is None
        assert SourceHealth().score() is None

    def test_error_rate_over_recent_outcomes(self):
        health = SourceHealth()
        for _ in range(3):
            health.record_success()
        health.record_error()
        assert health.error_rate() == pytest.approx(0.25)
        assert health.errors == 1 and health.successes == 3

    def test_score_inflates_latency_by_error_rate(self):
        health = SourceHealth(alpha=1.0)
        health.observe_latency(10.0)
        assert health.score() == pytest.approx(10.0)
        health.record_error()
        # rate 1.0 -> 10 * (1 + 4) = 50: a flaky source scores far worse.
        assert health.score() == pytest.approx(50.0)

    def test_hedge_counters(self):
        health = SourceHealth()
        health.record_hedge(won=True)
        health.record_hedge(won=False)
        assert health.hedges_launched == 2
        assert health.hedges_won == 1


class TestSourceHealthRegistry:
    def test_trackers_are_lazy_and_case_insensitive(self):
        registry = SourceHealthRegistry()
        registry.observe_latency("ERP", 5.0)
        assert registry.get("erp") is registry.health_for("Erp")
        assert registry.quantile("erp", 0.5) == 5.0

    def test_adaptive_timeout_cold_is_none(self):
        registry = SourceHealthRegistry()
        for _ in range(MIN_SAMPLES - 1):
            registry.observe_latency("erp", 10.0)
        assert registry.adaptive_timeout_ms("erp", 3.0, 50.0, 30000.0) is None
        assert registry.adaptive_timeout_ms("ghost", 3.0, 50.0, 30000.0) is None

    def test_adaptive_timeout_is_clamped_multiple_of_p99(self):
        registry = SourceHealthRegistry()
        for _ in range(MIN_SAMPLES):
            registry.observe_latency("erp", 100.0)
        # 3 * p99 = 300, inside the clamp.
        assert registry.adaptive_timeout_ms("erp", 3.0, 50.0, 30000.0) == 300.0
        # Floor and ceiling both bind.
        assert registry.adaptive_timeout_ms("erp", 3.0, 500.0, 30000.0) == 500.0
        assert registry.adaptive_timeout_ms("erp", 3.0, 50.0, 120.0) == 120.0

    def test_hedge_delay_uses_quantile_with_static_floor(self):
        registry = SourceHealthRegistry()
        assert registry.hedge_delay_ms("erp", 0.95, 40.0) == 40.0  # cold
        for _ in range(MIN_SAMPLES):
            registry.observe_latency("erp", 90.0)
        assert registry.hedge_delay_ms("erp", 0.95, 40.0) == 90.0
        # The static delay is a floor: a fast source cannot drive the
        # hedge delay (and duplicate traffic) toward zero.
        registry2 = SourceHealthRegistry()
        for _ in range(MIN_SAMPLES):
            registry2.observe_latency("erp", 1.0)
        assert registry2.hedge_delay_ms("erp", 0.95, 40.0) == 40.0

    def test_snapshot_shape(self):
        registry = SourceHealthRegistry()
        registry.observe_latency("erp", 10.0)
        registry.record_success("erp")
        registry.record_hedge("erp", won=True)
        snap = registry.snapshot()["erp"]
        assert snap["samples"] == 1
        assert snap["p99_ms"] == 10.0
        assert snap["successes"] == 1
        assert snap["hedges_won"] == 1

    def test_remove_and_reset_forget_state(self):
        registry = SourceHealthRegistry()
        registry.observe_latency("erp", 10.0)
        assert registry.remove("ERP") is True
        assert registry.remove("erp") is False
        assert registry.get("erp") is None
        registry.observe_latency("erp", 10.0)
        registry.reset()
        assert registry.snapshot() == {}


# ---------------------------------------------------------------------------
# planner options / config plumbing
# ---------------------------------------------------------------------------


class TestTailKnobs:
    def test_tail_options_validated(self):
        with pytest.raises(PlanError):
            PlannerOptions(timeout_multiplier=0.0)
        with pytest.raises(PlanError):
            PlannerOptions(timeout_floor_ms=-1.0)
        with pytest.raises(PlanError):
            PlannerOptions(timeout_floor_ms=100.0, timeout_ceiling_ms=50.0)
        with pytest.raises(PlanError):
            PlannerOptions(hedge_delay_ms=-1.0)
        with pytest.raises(PlanError):
            PlannerOptions(hedge_quantile=1.0)

    def test_hedge_and_adaptive_require_worker_threads(self):
        assert SchedulerConfig.from_options(
            PlannerOptions(hedge_fragments=True), 0
        ).scheduled
        assert SchedulerConfig.from_options(
            PlannerOptions(adaptive_timeout=True), 0
        ).scheduled

    def test_tail_knobs_do_not_split_plan_cache_keys(self):
        gis = replica_federation(plan_cache_size=8)
        sql = "SELECT a, b FROM t WHERE a > 3"
        gis.query(sql)
        hedged = gis.query(
            sql, PlannerOptions(hedge_fragments=True, hedge_delay_ms=5000.0)
        )
        assert hedged.metrics.network.plan_cache_hit

    def test_config_tail_section_arms_the_knobs(self):
        gis = build_from_config(
            {
                "sources": {
                    "m": {
                        "type": "memory",
                        "tables": {
                            "T": {
                                "columns": [["a", "INT"]],
                                "rows": [[1], [2]],
                            }
                        },
                    }
                },
                "tables": [{"name": "t", "source": "m", "remote_table": "T"}],
                "tail": {
                    "adaptive_timeout": True,
                    "timeout_multiplier": 4.0,
                    "timeout_floor_ms": 25.0,
                    "timeout_ceiling_ms": 1000.0,
                    "hedge": True,
                    "hedge_delay_ms": 75.0,
                    "hedge_quantile": 0.9,
                    "health_routing": True,
                },
            }
        )
        opts = gis.planner.options
        assert opts.adaptive_timeout and opts.hedge_fragments
        assert opts.health_routing
        assert opts.timeout_multiplier == 4.0
        assert opts.timeout_floor_ms == 25.0
        assert opts.timeout_ceiling_ms == 1000.0
        assert opts.hedge_delay_ms == 75.0
        assert opts.hedge_quantile == 0.9
        assert gis.query("SELECT COUNT(*) FROM t").scalar() == 2

    def test_config_tail_section_rejects_unknown_and_bad_keys(self):
        base = {
            "sources": {
                "m": {"type": "memory",
                      "tables": {"T": {"columns": [["a", "INT"]],
                                       "rows": [[1]]}}}
            },
            "tables": [{"name": "t", "source": "m", "remote_table": "T"}],
        }
        with pytest.raises(CatalogError, match="unknown config key"):
            build_from_config({**base, "tail": {"hedge_delay": 10}})
        with pytest.raises(CatalogError, match="must be a boolean"):
            build_from_config({**base, "tail": {"hedge": "yes"}})
        with pytest.raises(CatalogError, match="invalid tail config"):
            build_from_config({**base, "tail": {"hedge_quantile": 2.0}})


# ---------------------------------------------------------------------------
# straggler faults
# ---------------------------------------------------------------------------


class TestStragglerFaults:
    def test_spec_validation(self):
        with pytest.raises(CatalogError):
            FaultSpec(straggle_ms=-1.0)
        with pytest.raises(CatalogError):
            FaultSpec(straggle_jitter_ms=-1.0)
        with pytest.raises(CatalogError):
            FaultSpec(straggle_after_pages=-1)
        with pytest.raises(CatalogError):
            FaultSpec(straggle_rate=1.5)

    def test_injects_stragglers_property(self):
        assert FaultSpec(straggle_ms=10.0).injects_stragglers
        assert FaultSpec(straggle_jitter_ms=10.0).injects_stragglers
        assert not FaultSpec().injects_stragglers
        assert not FaultSpec(straggle_ms=10.0, straggle_rate=0.0).injects_stragglers
        # Stragglers only slow calls; they never fail them.
        assert not FaultSpec(straggle_ms=10.0).injects_failures

    def test_straggle_sleeps_are_real_and_per_page(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(faults_module, "_straggle_sleep", sleeps.append)
        gis = replica_federation(page_rows=16)
        plan = straggler_plan(30.0, straggle_after_pages=2)
        result = gis.query(
            "SELECT a, b FROM t",
            PlannerOptions(faults=plan, replicas="primary"),
        )
        assert result.rows == ROWS
        # 60 rows / 16 per page = 4 pages; the first two are served at
        # full speed, the remaining two each stall once.
        assert len(sleeps) == 2
        assert all(s == pytest.approx(0.030) for s in sleeps)

    def test_straggle_rate_and_jitter_are_seed_deterministic(self, monkeypatch):
        def run(seed):
            sleeps = []
            monkeypatch.setattr(faults_module, "_straggle_sleep", sleeps.append)
            gis = replica_federation(page_rows=8)
            plan = straggler_plan(
                10.0, seed=seed, straggle_jitter_ms=20.0, straggle_rate=0.5
            )
            options = PlannerOptions(faults=plan, replicas="primary")
            for _ in range(4):
                gis.query("SELECT a FROM t WHERE a >= 0", options)
            return sleeps

        first, second = run(3), run(3)
        assert first == second
        assert run(4) != first
        assert all(0.010 <= s < 0.030 for s in first)

    def test_stragglers_do_not_shift_the_failure_schedule(self):
        """Arming stragglers must not consume the failure RNG: the same
        seed produces the same failure pattern with and without them."""

        def failures(spec):
            gis = replica_federation(page_rows=8)
            plan = FaultPlan.of(seed=11, primary=spec)
            options = PlannerOptions(
                faults=plan, replicas="primary", on_source_failure="partial"
            )
            outcomes = []
            for _ in range(6):
                result = gis.query("SELECT COUNT(*) FROM t", options)
                outcomes.append(sorted(result.excluded_sources))
            return outcomes

        plain = failures(FaultSpec(failure_rate=0.5))
        with_stragglers = failures(
            FaultSpec(failure_rate=0.5, straggle_ms=0.5, straggle_rate=0.5)
        )
        assert plain == with_stragglers

    def test_config_parses_straggler_keys(self):
        plan = FaultPlan.from_config(
            {
                "seed": 3,
                "sources": {
                    "erp": {
                        "straggle_ms": 25.0,
                        "straggle_jitter_ms": 5.0,
                        "straggle_after_pages": 1,
                        "straggle_rate": 0.25,
                    }
                },
            }
        )
        spec = plan.spec_for("erp")
        assert spec.straggle_ms == 25.0
        assert spec.straggle_jitter_ms == 5.0
        assert spec.straggle_after_pages == 1
        assert spec.straggle_rate == 0.25
        assert spec.injects_stragglers


# ---------------------------------------------------------------------------
# adaptive no-progress timeouts
# ---------------------------------------------------------------------------


class TestAdaptiveTimeouts:
    def test_adaptive_budget_replaces_the_static_timeout(self):
        """Once warm, the timeout in force is clamp(k * p99, floor, ...)
        — visible in the attributed error message — not the static one."""
        source = HangingSource("hang")
        source.add_table("t", SCHEMA, ROWS)
        gis = GlobalInformationSystem()
        gis.register_source("hang", source)
        gis.register_table("t", source="hang")
        for _ in range(MIN_SAMPLES + 2):
            gis.health.observe_latency("hang", 10.0)
        options = PlannerOptions(
            fragment_timeout_ms=5000.0,
            adaptive_timeout=True,
            timeout_multiplier=3.0,
            timeout_floor_ms=60.0,
            timeout_ceiling_ms=30000.0,
        )
        started = time.monotonic()
        with pytest.raises(SourceError, match="no progress for 60 ms"):
            gis.query("SELECT a FROM t", options)
        # It actually fired at the adaptive budget, not the 5 s static one.
        assert time.monotonic() - started < 2.0
        source.released.set()

    def test_cold_source_falls_back_to_static_timeout(self):
        source = HangingSource("hang", hang_s=2.0)
        source.add_table("t", SCHEMA, ROWS)
        gis = GlobalInformationSystem()
        gis.register_source("hang", source)
        gis.register_table("t", source="hang")
        options = PlannerOptions(
            fragment_timeout_ms=80.0,
            adaptive_timeout=True,
            timeout_floor_ms=50.0,
        )
        with pytest.raises(SourceError, match="no progress for 80 ms"):
            gis.query("SELECT a FROM t", options)
        source.released.set()

    def test_timeouts_feed_the_error_rate(self):
        source = HangingSource("hang", hang_s=2.0)
        source.add_table("t", SCHEMA, ROWS)
        gis = GlobalInformationSystem()
        gis.register_source("hang", source)
        gis.register_table("t", source="hang")
        with pytest.raises(SourceError):
            gis.query(
                "SELECT a FROM t", PlannerOptions(fragment_timeout_ms=60.0)
            )
        assert gis.health.get("hang").errors >= 1
        source.released.set()


# ---------------------------------------------------------------------------
# hedged fragment fetches
# ---------------------------------------------------------------------------


def hedge_options(**overrides):
    defaults = dict(
        hedge_fragments=True, hedge_delay_ms=25.0, replicas="primary"
    )
    defaults.update(overrides)
    return PlannerOptions(**defaults)


class TestHedgedFetches:
    def test_hedge_wins_against_straggling_primary(self):
        gis = replica_federation()
        plan = straggler_plan(400.0)
        unhedged = replica_federation().query(
            "SELECT a, b FROM t", PlannerOptions(replicas="primary")
        )
        started = time.monotonic()
        hedged = gis.query(
            "SELECT a, b FROM t", hedge_options(faults=plan)
        )
        elapsed = time.monotonic() - started
        # Bit-identical rows, far faster than waiting out the straggler.
        assert hedged.rows == unhedged.rows
        assert elapsed < 0.4
        net = hedged.metrics.network
        assert net.hedges_launched == 1
        assert net.hedges_won == 1
        assert net.hedges_cancelled == 1
        assert net.hedges_rows_shipped >= len(ROWS)
        assert gis.health.get("primary").hedges_won == 1

    def test_fast_primary_never_hedges(self):
        gis = replica_federation()
        result = gis.query(
            "SELECT a, b FROM t", hedge_options(hedge_delay_ms=5000.0)
        )
        assert result.rows == ROWS
        net = result.metrics.network
        assert net.hedges_launched == 0
        assert net.hedges_won == 0
        assert net.hedges_rows_shipped == 0

    def test_hedge_without_replica_waits_out_the_primary(self, monkeypatch):
        monkeypatch.setattr(faults_module, "_straggle_sleep", lambda s: None)
        gis = GlobalInformationSystem()
        source = MemorySource("only")
        source.add_table("t", SCHEMA, ROWS)
        gis.register_source("only", source)
        gis.register_table("t", source="only")
        plan = FaultPlan.of(seed=1, only=FaultSpec(straggle_ms=50.0))
        result = gis.query(
            "SELECT a, b FROM t", hedge_options(faults=plan, hedge_delay_ms=1.0)
        )
        assert result.rows == ROWS
        assert result.metrics.network.hedges_launched == 0

    def test_hedge_traffic_is_charged_honestly(self):
        """The duplicate fetch's transfer is charged to the replica that
        served it, included in the totals, and broken out under the
        ``hedges_*`` metrics — never hidden inside the primary's ledger."""
        gis = replica_federation()
        hedged = gis.query(
            "SELECT a, b FROM t",
            hedge_options(faults=straggler_plan(400.0)),
        )
        net = hedged.metrics.network
        # The winning hedge's whole stream is hedge traffic, and it is
        # inside the totals, not in addition to them.
        assert net.hedges_rows_shipped == len(ROWS)
        assert net.rows_shipped >= net.hedges_rows_shipped
        assert net.hedges_bytes_shipped > 0
        ledger = gis.network.per_source()
        assert ledger["backup"].rows == len(ROWS)
        # The cancelled primary was stalled before its first page: it
        # shipped nothing, and nothing was fabricated on its ledger.
        assert "primary" not in ledger or ledger["primary"].rows == 0

    def test_hedged_rows_bit_identical_in_parallel_mode(self):
        sql = "SELECT a, b FROM t WHERE a % 2 = 0 ORDER BY a"
        baseline = replica_federation().query(
            sql, PlannerOptions(replicas="primary")
        )
        gis = replica_federation()
        hedged = gis.query(
            sql,
            hedge_options(
                faults=straggler_plan(300.0), max_parallel_fragments=4
            ),
        )
        assert hedged.rows == baseline.rows
        assert hedged.metrics.network.hedges_won == 1

    def test_hedge_under_deadline_is_a_typed_error(self):
        gis = replica_federation()
        # Both serving sources straggle: the hedge cannot save the query,
        # and the deadline must surface as the typed timeout error.
        plan = FaultPlan.of(
            seed=5,
            primary=FaultSpec(straggle_ms=500.0),
            backup=FaultSpec(straggle_ms=500.0),
        )
        started = time.monotonic()
        with pytest.raises(QueryTimeoutError):
            gis.query(
                "SELECT a, b FROM t",
                hedge_options(faults=plan, hedge_delay_ms=20.0,
                              deadline_ms=150.0),
            )
        assert time.monotonic() - started < 2.0

    def test_hedge_composes_with_fragment_cache(self):
        """A hedged run fills the fragment cache once (the winner's
        stream); the loser admits nothing, and a replay is bit-identical."""
        gis = replica_federation(fragment_cache_bytes=1 << 20)
        options = hedge_options(faults=straggler_plan(300.0))
        sql = "SELECT a, b FROM t"
        first = gis.query(sql, options)
        assert first.metrics.network.hedges_won == 1
        stats = gis.fragment_cache.stats()
        assert stats["entries"] == 1  # exactly one fill: the winner's
        second = gis.query(sql, options)
        assert second.rows == first.rows
        assert second.metrics.network.fragment_cache_hits >= 1
        # The replay never touched a source, so no hedge was launched.
        assert second.metrics.network.hedges_launched == 0

    def test_hedge_loss_is_recorded_when_primary_recovers_first(self):
        gis = replica_federation()
        # The replica is far slower than the primary's small stall: the
        # hedge launches, loses the race, and is cancelled.
        plan = FaultPlan.of(
            seed=2,
            primary=FaultSpec(straggle_ms=60.0, straggle_after_pages=0),
            backup=FaultSpec(straggle_ms=1000.0),
        )
        result = gis.query(
            "SELECT a, b FROM t", hedge_options(faults=plan, hedge_delay_ms=10.0)
        )
        assert result.rows == ROWS
        net = result.metrics.network
        assert net.hedges_launched == 1
        assert net.hedges_won == 0
        assert net.hedges_cancelled == 1
        health = gis.health.get("primary")
        assert health.hedges_launched == 1 and health.hedges_won == 0


# ---------------------------------------------------------------------------
# health-aware routing
# ---------------------------------------------------------------------------


class TestHealthRouting:
    def warm(self, gis, primary_ms, backup_ms):
        for _ in range(MIN_SAMPLES + 2):
            gis.health.observe_latency("primary", primary_ms)
            gis.health.observe_latency("backup", backup_ms)

    @pytest.mark.parametrize("parallel", [1, 4])
    def test_unhealthy_primary_is_rerouted(self, parallel):
        gis = replica_federation()
        self.warm(gis, primary_ms=200.0, backup_ms=2.0)
        result = gis.query(
            "SELECT a, b FROM t",
            PlannerOptions(
                health_routing=True, replicas="primary",
                max_parallel_fragments=parallel,
            ),
        )
        assert result.rows == ROWS
        assert result.metrics.network.health_reroutes == 1
        # The reroute really dispatched to the replica.
        assert gis.network.per_source().get("backup") is not None

    def test_cold_or_marginal_scores_never_reroute(self):
        gis = replica_federation()
        options = PlannerOptions(health_routing=True, replicas="primary")
        # Cold: no observations at all.
        assert gis.query("SELECT a FROM t", options).metrics.network.health_reroutes == 0
        # Marginal: replica better, but within the hysteresis margin.
        self.warm(gis, primary_ms=10.0, backup_ms=9.0)
        result = gis.query("SELECT a FROM t", options)
        assert result.metrics.network.health_reroutes == 0

    def test_reroute_skipped_when_replica_breaker_open(self):
        gis = replica_federation()
        self.warm(gis, primary_ms=200.0, backup_ms=2.0)
        breaker = gis.breakers.breaker_for("backup", 1, 60000.0)
        breaker.record_failure()
        assert breaker.state == "open"
        result = gis.query(
            "SELECT a, b FROM t",
            PlannerOptions(health_routing=True, replicas="primary"),
        )
        assert result.rows == ROWS
        assert result.metrics.network.health_reroutes == 0


# ---------------------------------------------------------------------------
# operator surface
# ---------------------------------------------------------------------------


class TestHealthSurface:
    def test_health_status_merges_quantiles_timeout_and_breaker(self):
        gis = replica_federation()
        for _ in range(MIN_SAMPLES + 2):
            gis.health.observe_latency("primary", 20.0)
        status = gis.health_status(
            PlannerOptions(
                adaptive_timeout=True, timeout_multiplier=3.0,
                timeout_floor_ms=10.0, fragment_timeout_ms=9999.0,
            )
        )
        warm = status["primary"]
        assert warm["p99_ms"] == 20.0
        assert warm["timeout_adaptive"] is True
        assert warm["timeout_ms"] == 60.0
        assert warm["breaker"]["state"] == "closed"
        cold = status["backup"]
        assert cold["samples"] == 0
        assert cold["timeout_adaptive"] is False
        assert cold["timeout_ms"] == 9999.0  # static fallback

    def test_catalog_status_carries_health(self):
        gis = replica_federation()
        assert set(gis.catalog_status()["health"]) == {"primary", "backup"}

    def test_repl_health_shows_quantiles_timeout_and_hedges(self):
        import io

        from repro.repl import Repl

        gis = replica_federation()
        gis.query(
            "SELECT a, b FROM t",
            hedge_options(faults=straggler_plan(300.0)),
        )
        out = io.StringIO()
        Repl(gis, out=out).feed_line("\\health")
        text = out.getvalue()
        assert "primary: breaker closed" in text
        assert "latency ewma" in text and "p99" in text
        assert "hedges 1/1 won" in text

    def test_metrics_registry_aggregates_hedge_counters(self):
        from repro.obs import Observability

        gis = replica_federation(observability=Observability(metrics=True))
        gis.query(
            "SELECT a, b FROM t",
            hedge_options(faults=straggler_plan(300.0)),
        )
        registry = gis.obs.registry
        assert registry.counter("hedges_launched_total").value == 1
        assert registry.counter("hedges_won_total").value == 1
        snapshot = registry.format_snapshot()
        # The replica served the winning stream, so its latency profile
        # is the one with samples to publish; the stalled primary still
        # publishes its hedge counters.
        assert "health.backup.ewma_ms" in snapshot
        assert "health.primary.hedges_launched" in snapshot


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------


class TestHealthLifecycle:
    def test_health_state_dies_with_the_source(self):
        gis = replica_federation()
        gis.query(
            "SELECT a, b FROM t",
            hedge_options(faults=straggler_plan(300.0)),
        )
        assert gis.health.get("primary") is not None
        gis.unregister_source("primary")
        assert gis.health.get("primary") is None
        # The promoted replica still answers, cold.
        assert gis.query("SELECT COUNT(*) FROM t").scalar() == len(ROWS)

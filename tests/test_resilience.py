"""Fragment retries, fault injection, deadlines, partial results, the cache."""

import time
from typing import Iterator

import pytest

from repro import (
    FaultPlan,
    FaultSpec,
    GlobalInformationSystem,
    MemorySource,
    Observability,
    PlannerOptions,
    QueryTimeoutError,
    SourceError,
)
from repro.catalog.schema import schema_from_pairs
from repro.core import scheduler as scheduler_module
from repro.core.fragments import Fragment


class FlakySource(MemorySource):
    """Fails the first N execute() calls before yielding anything."""

    def __init__(self, name, failures=1, fail_midstream=False):
        super().__init__(name)
        self.failures_left = failures
        self.fail_midstream = fail_midstream
        self.execute_calls = 0

    def execute(self, fragment: Fragment) -> Iterator[tuple]:
        self.execute_calls += 1
        if self.fail_midstream:
            yield from self._fail_midstream(fragment)
            return
        if self.failures_left > 0:
            self.failures_left -= 1
            raise SourceError(self.name, "transient outage")
        yield from super().execute(fragment)

    def _fail_midstream(self, fragment: Fragment) -> Iterator[tuple]:
        rows = list(super().execute(fragment))
        # Emit most rows, then die — past the first page, unretryable.
        yield from rows[:-1]
        if self.failures_left > 0:
            self.failures_left -= 1
            raise SourceError(self.name, "mid-stream outage")
        yield rows[-1]


SCHEMA = schema_from_pairs("t", [("a", "INT"), ("b", "TEXT")])
ROWS = [(i, f"v{i}") for i in range(2500)]  # > 1 page at default page size


def build(source, retries=0, cache=0):
    gis = GlobalInformationSystem(
        fragment_retries=retries, result_cache_size=cache
    )
    source.add_table("t", SCHEMA, ROWS)
    gis.register_source("flaky", source)
    gis.register_table("t", source="flaky")
    return gis


class TestFragmentRetries:
    def test_no_retries_by_default(self):
        gis = build(FlakySource("flaky", failures=1))
        with pytest.raises(SourceError, match="transient"):
            gis.query("SELECT COUNT(*) FROM t")

    def test_retry_recovers_transient_failure(self):
        source = FlakySource("flaky", failures=1)
        gis = build(source, retries=1)
        result = gis.query("SELECT COUNT(*) FROM t")
        assert result.scalar() == 2500
        assert source.execute_calls == 2
        assert result.metrics.network.fragment_retries == 1

    def test_retries_exhausted_reraises(self):
        gis = build(FlakySource("flaky", failures=3), retries=2)
        with pytest.raises(SourceError):
            gis.query("SELECT COUNT(*) FROM t")

    def test_midstream_failure_never_retried(self):
        # Rows already reached the mediator: a retry would duplicate them.
        source = FlakySource("flaky", failures=1, fail_midstream=True)
        gis = build(source, retries=5)
        with pytest.raises(SourceError, match="mid-stream"):
            gis.query("SELECT a FROM t")
        assert source.execute_calls == 1

    def test_error_attributes_source_name(self):
        gis = build(FlakySource("flaky", failures=1))
        with pytest.raises(SourceError, match="'flaky'"):
            gis.query("SELECT 1 FROM t LIMIT 1")


class TestResultCache:
    def test_cache_hit_skips_network(self):
        gis = build(MemorySource("flaky"), cache=8)
        first = gis.query("SELECT COUNT(*) FROM t")
        before = gis.network.total.messages
        second = gis.query("SELECT COUNT(*) FROM t")
        assert second.rows == first.rows
        assert second.metrics.network.cache_hit
        assert gis.network.total.messages == before
        assert gis.cache_hits == 1

    def test_different_options_are_different_entries(self):
        gis = build(MemorySource("flaky"), cache=8)
        gis.query("SELECT COUNT(*) FROM t")
        result = gis.query(
            "SELECT COUNT(*) FROM t", PlannerOptions(pushdown="scans-only")
        )
        assert not result.metrics.network.cache_hit

    def test_lru_eviction(self):
        gis = build(MemorySource("flaky"), cache=2)
        gis.query("SELECT 1 FROM t LIMIT 1")
        gis.query("SELECT 2 FROM t LIMIT 1")
        gis.query("SELECT 3 FROM t LIMIT 1")  # evicts query "1"
        result = gis.query("SELECT 1 FROM t LIMIT 1")
        assert not result.metrics.network.cache_hit

    def test_analyze_invalidates(self):
        gis = build(MemorySource("flaky"), cache=8)
        gis.query("SELECT COUNT(*) FROM t")
        gis.analyze()
        result = gis.query("SELECT COUNT(*) FROM t")
        assert not result.metrics.network.cache_hit

    def test_new_view_invalidates(self):
        gis = build(MemorySource("flaky"), cache=8)
        gis.query("SELECT COUNT(*) FROM t")
        gis.create_view("v", "SELECT a FROM t")
        result = gis.query("SELECT COUNT(*) FROM t")
        assert not result.metrics.network.cache_hit

    def test_cached_rows_are_isolated(self):
        gis = build(MemorySource("flaky"), cache=8)
        first = gis.query("SELECT a FROM t LIMIT 3")
        first.rows.append(("tampered",))
        second = gis.query("SELECT a FROM t LIMIT 3")
        assert len(second.rows) == 3

    def test_disabled_by_default(self):
        gis = build(MemorySource("flaky"))
        gis.query("SELECT COUNT(*) FROM t")
        result = gis.query("SELECT COUNT(*) FROM t")
        assert not result.metrics.network.cache_hit


# ---------------------------------------------------------------------------
# retryable classification
# ---------------------------------------------------------------------------


class PermanentSource(MemorySource):
    """Fails the first N calls with a *permanent* (non-retryable) error."""

    def __init__(self, name, failures=1):
        super().__init__(name)
        self.failures_left = failures
        self.execute_calls = 0

    def execute(self, fragment: Fragment) -> Iterator[tuple]:
        self.execute_calls += 1
        if self.failures_left > 0:
            self.failures_left -= 1
            raise SourceError(self.name, "schema mismatch", retryable=False)
        yield from super().execute(fragment)


class BrokenSource(MemorySource):
    """Every execute() fails (a down component system)."""

    def __init__(self, name):
        super().__init__(name)
        self.execute_calls = 0

    def execute(self, fragment: Fragment) -> Iterator[tuple]:
        self.execute_calls += 1
        raise SourceError(self.name, "connection refused")
        yield  # pragma: no cover - makes this a generator


def capture_sleeps(monkeypatch):
    """Patch the backoff sleep hook; returns the recorded delays (s)."""
    sleeps = []
    monkeypatch.setattr(scheduler_module, "_default_sleep", sleeps.append)
    return sleeps


class TestRetryableClassification:
    def test_retryable_defaults_true(self):
        assert SourceError("s", "boom").retryable is True
        assert SourceError("s", "boom", retryable=False).retryable is False

    def test_permanent_error_not_retried_sequential(self):
        source = PermanentSource("flaky", failures=1)
        gis = build(source, retries=5)
        with pytest.raises(SourceError, match="schema mismatch"):
            gis.query("SELECT COUNT(*) FROM t")
        assert source.execute_calls == 1

    def test_permanent_error_not_retried_parallel(self):
        source = PermanentSource("flaky", failures=1)
        gis = build(source, retries=5)
        with pytest.raises(SourceError, match="schema mismatch"):
            gis.query(
                "SELECT COUNT(*) FROM t",
                PlannerOptions(max_parallel_fragments=4),
            )
        assert source.execute_calls == 1

    def test_transient_still_retried_sequential(self):
        source = FlakySource("flaky", failures=1)
        gis = build(source, retries=1)
        assert gis.query("SELECT COUNT(*) FROM t").scalar() == 2500
        assert source.execute_calls == 2


# ---------------------------------------------------------------------------
# deterministic fault injection
# ---------------------------------------------------------------------------


class TestFaultInjection:
    def test_connect_fault_recovers_with_retries(self):
        plan = FaultPlan.of(flaky=FaultSpec(fail_connect=1))
        gis = build(MemorySource("flaky"), retries=1)
        result = gis.query("SELECT COUNT(*) FROM t", PlannerOptions(faults=plan))
        assert result.scalar() == 2500
        assert result.metrics.network.fragment_retries == 1

    def test_connect_fault_exhausts_retries(self):
        plan = FaultPlan.of(flaky=FaultSpec(fail_connect=3))
        gis = build(MemorySource("flaky"), retries=1)
        with pytest.raises(SourceError, match="injected fault: connect"):
            gis.query("SELECT COUNT(*) FROM t", PlannerOptions(faults=plan))

    def test_permanent_fault_skips_retries(self):
        plan = FaultPlan.of(flaky=FaultSpec(fail_connect=1, permanent=True))
        gis = build(MemorySource("flaky"), retries=5)
        with pytest.raises(SourceError, match="injected fault"):
            gis.query("SELECT COUNT(*) FROM t", PlannerOptions(faults=plan))
        injector = gis.fault_injector  # none armed at mediator level
        assert injector is None

    def test_midstream_fault_never_retried(self):
        plan = FaultPlan.of(flaky=FaultSpec(fail_after_pages=1))
        gis = build(MemorySource("flaky"), retries=5)
        with pytest.raises(SourceError, match="mid-stream outage"):
            gis.query("SELECT a FROM t", PlannerOptions(faults=plan))

    def test_flapping_recovers_after_k_across_queries(self):
        # Mediator-level plan: the injector persists, so the source heals
        # after two injected failures *spanning* queries.
        plan = FaultPlan.of(flaky=FaultSpec(fail_every=1, recover_after=2))
        gis = GlobalInformationSystem(faults=plan)
        source = MemorySource("flaky")
        source.add_table("t", SCHEMA, ROWS)
        gis.register_source("flaky", source)
        gis.register_table("t", source="flaky")
        for _ in range(2):
            with pytest.raises(SourceError, match="injected fault"):
                gis.query("SELECT COUNT(*) FROM t")
        assert gis.query("SELECT COUNT(*) FROM t").scalar() == 2500
        snap = gis.fault_injector.snapshot()["flaky"]
        assert snap.failures == 2 and snap.calls == 3

    def test_seeded_failure_rate_is_reproducible(self):
        plan = FaultPlan.of(seed=7, flaky=FaultSpec(failure_rate=0.5))

        def outcomes():
            gis = GlobalInformationSystem(faults=plan)
            source = MemorySource("flaky")
            source.add_table("t", SCHEMA, ROWS)
            gis.register_source("flaky", source)
            gis.register_table("t", source="flaky")
            pattern = []
            for _ in range(12):
                try:
                    gis.query("SELECT COUNT(*) FROM t")
                    pattern.append("ok")
                except SourceError:
                    pattern.append("fail")
            return pattern

        first, second = outcomes(), outcomes()
        assert first == second
        assert "ok" in first and "fail" in first

    def test_latency_fault_charges_simulated_network(self):
        gis = build(MemorySource("flaky"))
        baseline = gis.query("SELECT a FROM t")
        plan = FaultPlan.of(flaky=FaultSpec(latency_ms=100.0))
        slow = gis.query("SELECT a FROM t", PlannerOptions(faults=plan))
        assert slow.rows == baseline.rows
        messages = baseline.metrics.network.messages
        expected = baseline.metrics.simulated_ms + 100.0 * messages
        assert slow.metrics.simulated_ms == pytest.approx(expected)

    def test_armed_but_empty_plan_is_bit_identical(self):
        gis = build(MemorySource("flaky"))
        baseline = gis.query("SELECT a FROM t")
        armed = gis.query("SELECT a FROM t", PlannerOptions(faults=FaultPlan()))
        assert armed.rows == baseline.rows
        assert armed.metrics.network.messages == baseline.metrics.network.messages
        assert armed.metrics.simulated_ms == baseline.metrics.simulated_ms
        assert (
            armed.metrics.network.bytes_shipped
            == baseline.metrics.network.bytes_shipped
        )

    def test_parallel_injection_equivalent_to_sequential(self):
        plan = FaultPlan.of(flaky=FaultSpec(fail_connect=1))
        sequential = build(MemorySource("flaky"), retries=1)
        parallel = build(MemorySource("flaky"), retries=1)
        seq = sequential.query("SELECT a FROM t", PlannerOptions(faults=plan))
        par = parallel.query(
            "SELECT a FROM t",
            PlannerOptions(faults=plan, max_parallel_fragments=4),
        )
        assert par.rows == seq.rows
        assert par.metrics.network.fragment_retries == 1


# ---------------------------------------------------------------------------
# query deadlines
# ---------------------------------------------------------------------------


class TestDeadlines:
    def test_expired_deadline_raises_typed_timeout(self):
        gis = build(MemorySource("flaky"))
        with pytest.raises(QueryTimeoutError, match="exceeded its deadline"):
            gis.query("SELECT a FROM t", PlannerOptions(deadline_ms=1e-6))

    def test_timeout_carries_budget_and_elapsed(self):
        gis = build(MemorySource("flaky"))
        try:
            gis.query("SELECT a FROM t", PlannerOptions(deadline_ms=1e-6))
        except QueryTimeoutError as exc:
            assert exc.budget_ms == pytest.approx(1e-6)
            assert exc.elapsed_ms >= 0.0
        else:  # pragma: no cover - the deadline must fire
            pytest.fail("deadline did not fire")

    def test_generous_deadline_is_bit_identical(self):
        gis = build(MemorySource("flaky"))
        baseline = gis.query("SELECT a FROM t")
        bounded = gis.query(
            "SELECT a FROM t", PlannerOptions(deadline_ms=600_000.0)
        )
        assert bounded.rows == baseline.rows
        assert bounded.metrics.simulated_ms == baseline.metrics.simulated_ms
        assert bounded.metrics.network.messages == baseline.metrics.network.messages

    def test_retry_abandoned_when_backoff_exceeds_budget(self, monkeypatch):
        sleeps = capture_sleeps(monkeypatch)
        source = FlakySource("flaky", failures=1)
        gis = build(source, retries=3)
        options = PlannerOptions(
            deadline_ms=1_000.0, retry_backoff_ms=5_000.0
        )
        # The 5 s backoff cannot finish inside the 1 s budget: the retry
        # is abandoned and the *original* error propagates.
        with pytest.raises(SourceError, match="transient outage"):
            gis.query("SELECT COUNT(*) FROM t", options)
        assert source.execute_calls == 1
        assert sleeps == []

    def test_retry_abandoned_in_parallel_mode(self, monkeypatch):
        sleeps = capture_sleeps(monkeypatch)
        source = FlakySource("flaky", failures=1)
        gis = build(source, retries=3)
        options = PlannerOptions(
            deadline_ms=1_000.0,
            retry_backoff_ms=5_000.0,
            max_parallel_fragments=4,
        )
        with pytest.raises(SourceError, match="transient outage"):
            gis.query("SELECT COUNT(*) FROM t", options)
        assert source.execute_calls == 1
        assert sleeps == []

    def test_parallel_deadline_attributes_waited_on_source(self):
        class SlowSource(MemorySource):
            def execute(self, fragment):
                time.sleep(0.5)
                yield from super().execute(fragment)

        gis = build(SlowSource("flaky"))
        options = PlannerOptions(deadline_ms=50.0, max_parallel_fragments=2)
        with pytest.raises(QueryTimeoutError) as info:
            gis.query("SELECT a FROM t", options)
        assert info.value.source_name == "flaky"
        assert "while waiting on source 'flaky'" in str(info.value)

    def test_timeout_never_downgraded_to_partial(self):
        gis = build(MemorySource("flaky"))
        options = PlannerOptions(deadline_ms=1e-6, on_source_failure="partial")
        with pytest.raises(QueryTimeoutError):
            gis.query("SELECT a FROM t", options)


# ---------------------------------------------------------------------------
# graceful degradation: partial results
# ---------------------------------------------------------------------------


UNION_SCHEMA = schema_from_pairs("u", [("a", "INT"), ("src", "TEXT")])
UNION_SQL = (
    "SELECT a, src FROM t_s1 UNION ALL "
    "SELECT a, src FROM t_s2 UNION ALL "
    "SELECT a, src FROM t_s3"
)
PARTIAL = PlannerOptions(on_source_failure="partial")


def build_three(dead="s2", retries=0, cache=0, faults=None):
    """Three single-table sources; ``dead`` (if any) refuses every call."""
    gis = GlobalInformationSystem(
        fragment_retries=retries, result_cache_size=cache, faults=faults
    )
    for name in ("s1", "s2", "s3"):
        source = BrokenSource(name) if name == dead else MemorySource(name)
        source.add_table(
            f"t_{name}", UNION_SCHEMA, [(i, name) for i in range(4)]
        )
        gis.register_source(name, source)
        gis.register_table(f"t_{name}", source=name)
    return gis


class TestPartialResults:
    def test_fail_mode_raises_attributed_error(self):
        gis = build_three(dead="s2")
        with pytest.raises(SourceError, match="'s2'"):
            gis.query(UNION_SQL)

    def test_one_dead_of_three_degrades(self):
        gis = build_three(dead="s2")
        result = gis.query(UNION_SQL, PARTIAL)
        assert result.complete is False
        assert list(result.excluded_sources) == ["s2"]
        assert "connection refused" in result.excluded_sources["s2"]
        assert sorted(result.rows) == sorted(
            [(i, s) for s in ("s1", "s3") for i in range(4)]
        )

    def test_all_sources_healthy_stays_complete(self):
        gis = build_three(dead=None)
        result = gis.query(UNION_SQL, PARTIAL)
        assert result.complete is True
        assert result.excluded_sources == {}
        assert len(result.rows) == 12

    def test_partial_in_parallel_mode(self):
        gis = build_three(dead="s3")
        result = gis.query(UNION_SQL, PARTIAL.but(max_parallel_fragments=4))
        assert result.complete is False
        assert list(result.excluded_sources) == ["s3"]
        assert sorted(result.rows) == sorted(
            [(i, s) for s in ("s1", "s2") for i in range(4)]
        )

    def test_partial_only_after_retries_exhausted(self):
        source = FlakySource("flaky", failures=1)
        gis = build(source, retries=1)
        result = gis.query("SELECT COUNT(*) FROM t", PARTIAL)
        # The retry recovered the source, so nothing was excluded.
        assert result.complete is True
        assert result.scalar() == 2500

    def test_partial_results_never_cached(self):
        gis = build_three(dead="s2", cache=8)
        first = gis.query(UNION_SQL, PARTIAL)
        assert not first.complete
        second = gis.query(UNION_SQL, PARTIAL)
        assert not second.metrics.network.cache_hit
        # Complete results through the same cache still hit.
        gis.query("SELECT a FROM t_s1", PARTIAL)
        third = gis.query("SELECT a FROM t_s1", PARTIAL)
        assert third.metrics.network.cache_hit

    def test_partial_with_injected_faults(self):
        plan = FaultPlan.of(s1=FaultSpec(fail_connect=99))
        gis = build_three(dead=None)
        result = gis.query(UNION_SQL, PARTIAL.but(faults=plan))
        assert result.complete is False
        assert list(result.excluded_sources) == ["s1"]
        assert "injected fault" in result.excluded_sources["s1"]

    def test_join_with_dead_side_degrades_to_empty(self):
        gis = build_three(dead="s2")
        sql = (
            "SELECT x.a, y.a FROM t_s1 x JOIN t_s2 y ON x.a = y.a"
        )
        result = gis.query(sql, PARTIAL)
        assert result.complete is False
        assert "s2" in result.excluded_sources
        assert result.rows == []

    def test_explain_analyze_reports_exclusions(self):
        gis = build_three(dead="s2")
        text = gis.explain_analyze(UNION_SQL, PARTIAL)
        assert "PARTIAL RESULT" in text
        assert "[s2]" in text

    def test_obs_counters_for_partial(self):
        obs = Observability(metrics=True)
        gis = build_three(dead="s2")
        gis.obs = obs
        gis.query(UNION_SQL, PARTIAL)
        snapshot = obs.registry.snapshot()
        assert snapshot["counters"]["queries_partial_total"] == 1
        assert snapshot["counters"]["sources_excluded_total"] == 1


# ---------------------------------------------------------------------------
# flapping sources under the parallel scheduler
# ---------------------------------------------------------------------------


class TestParallelFlapping:
    PARALLEL = PlannerOptions(max_parallel_fragments=4)

    def test_breaker_half_open_recovery_with_flapping_faults(self):
        # Injected flapping: every call fails until two failures, then the
        # source heals. Two failed queries trip the breaker; after the
        # reset period a half-open probe succeeds and closes it again.
        plan = FaultPlan.of(flaky=FaultSpec(fail_every=1, recover_after=2))
        gis = GlobalInformationSystem(faults=plan)
        source = MemorySource("flaky")
        source.add_table("t", SCHEMA, ROWS)
        gis.register_source("flaky", source)
        gis.register_table("t", source="flaky")
        options = self.PARALLEL.but(
            breaker_failure_threshold=2, breaker_reset_ms=5.0
        )
        for _ in range(2):
            with pytest.raises(SourceError, match="injected fault"):
                gis.query("SELECT COUNT(*) FROM t", options)
        assert gis.breakers.get("flaky").state == "open"
        time.sleep(0.02)  # let the reset period elapse -> half-open
        assert gis.breakers.get("flaky").state == "half-open"
        result = gis.query("SELECT COUNT(*) FROM t", options)
        assert result.scalar() == 2500
        assert gis.breakers.get("flaky").state == "closed"

    def test_replica_fallback_with_injected_faults_parallel(self):
        plan = FaultPlan.of(primary=FaultSpec(fail_connect=999))
        gis = GlobalInformationSystem(fragment_retries=1, faults=plan)
        primary = MemorySource("primary")
        primary.add_table("t", SCHEMA, ROWS)
        backup = MemorySource("backup")
        backup.add_table("t_copy", SCHEMA, ROWS)
        gis.register_source("primary", primary)
        gis.register_source("backup", backup)
        gis.register_table("t", source="primary")
        gis.register_replica("t", source="backup", remote_table="t_copy")
        options = self.PARALLEL.but(
            breaker_failure_threshold=1, replicas="primary"
        )
        result = gis.query("SELECT a, b FROM t ORDER BY a", options)
        assert result.rows == sorted(ROWS)
        net = result.metrics.network
        assert net.breaker_trips == 1
        assert net.breaker_fallbacks == 1

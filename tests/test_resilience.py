"""Fragment retries, failure attribution, and the result cache."""

from typing import Iterator

import pytest

from repro import (
    GlobalInformationSystem,
    MemorySource,
    PlannerOptions,
    SourceError,
)
from repro.catalog.schema import schema_from_pairs
from repro.core.fragments import Fragment


class FlakySource(MemorySource):
    """Fails the first N execute() calls before yielding anything."""

    def __init__(self, name, failures=1, fail_midstream=False):
        super().__init__(name)
        self.failures_left = failures
        self.fail_midstream = fail_midstream
        self.execute_calls = 0

    def execute(self, fragment: Fragment) -> Iterator[tuple]:
        self.execute_calls += 1
        if self.fail_midstream:
            yield from self._fail_midstream(fragment)
            return
        if self.failures_left > 0:
            self.failures_left -= 1
            raise SourceError(self.name, "transient outage")
        yield from super().execute(fragment)

    def _fail_midstream(self, fragment: Fragment) -> Iterator[tuple]:
        rows = list(super().execute(fragment))
        # Emit most rows, then die — past the first page, unretryable.
        yield from rows[:-1]
        if self.failures_left > 0:
            self.failures_left -= 1
            raise SourceError(self.name, "mid-stream outage")
        yield rows[-1]


SCHEMA = schema_from_pairs("t", [("a", "INT"), ("b", "TEXT")])
ROWS = [(i, f"v{i}") for i in range(2500)]  # > 1 page at default page size


def build(source, retries=0, cache=0):
    gis = GlobalInformationSystem(
        fragment_retries=retries, result_cache_size=cache
    )
    source.add_table("t", SCHEMA, ROWS)
    gis.register_source("flaky", source)
    gis.register_table("t", source="flaky")
    return gis


class TestFragmentRetries:
    def test_no_retries_by_default(self):
        gis = build(FlakySource("flaky", failures=1))
        with pytest.raises(SourceError, match="transient"):
            gis.query("SELECT COUNT(*) FROM t")

    def test_retry_recovers_transient_failure(self):
        source = FlakySource("flaky", failures=1)
        gis = build(source, retries=1)
        result = gis.query("SELECT COUNT(*) FROM t")
        assert result.scalar() == 2500
        assert source.execute_calls == 2
        assert result.metrics.network.fragment_retries == 1

    def test_retries_exhausted_reraises(self):
        gis = build(FlakySource("flaky", failures=3), retries=2)
        with pytest.raises(SourceError):
            gis.query("SELECT COUNT(*) FROM t")

    def test_midstream_failure_never_retried(self):
        # Rows already reached the mediator: a retry would duplicate them.
        source = FlakySource("flaky", failures=1, fail_midstream=True)
        gis = build(source, retries=5)
        with pytest.raises(SourceError, match="mid-stream"):
            gis.query("SELECT a FROM t")
        assert source.execute_calls == 1

    def test_error_attributes_source_name(self):
        gis = build(FlakySource("flaky", failures=1))
        with pytest.raises(SourceError, match="'flaky'"):
            gis.query("SELECT 1 FROM t LIMIT 1")


class TestResultCache:
    def test_cache_hit_skips_network(self):
        gis = build(MemorySource("flaky"), cache=8)
        first = gis.query("SELECT COUNT(*) FROM t")
        before = gis.network.total.messages
        second = gis.query("SELECT COUNT(*) FROM t")
        assert second.rows == first.rows
        assert second.metrics.network.cache_hit
        assert gis.network.total.messages == before
        assert gis.cache_hits == 1

    def test_different_options_are_different_entries(self):
        gis = build(MemorySource("flaky"), cache=8)
        gis.query("SELECT COUNT(*) FROM t")
        result = gis.query(
            "SELECT COUNT(*) FROM t", PlannerOptions(pushdown="scans-only")
        )
        assert not result.metrics.network.cache_hit

    def test_lru_eviction(self):
        gis = build(MemorySource("flaky"), cache=2)
        gis.query("SELECT 1 FROM t LIMIT 1")
        gis.query("SELECT 2 FROM t LIMIT 1")
        gis.query("SELECT 3 FROM t LIMIT 1")  # evicts query "1"
        result = gis.query("SELECT 1 FROM t LIMIT 1")
        assert not result.metrics.network.cache_hit

    def test_analyze_invalidates(self):
        gis = build(MemorySource("flaky"), cache=8)
        gis.query("SELECT COUNT(*) FROM t")
        gis.analyze()
        result = gis.query("SELECT COUNT(*) FROM t")
        assert not result.metrics.network.cache_hit

    def test_new_view_invalidates(self):
        gis = build(MemorySource("flaky"), cache=8)
        gis.query("SELECT COUNT(*) FROM t")
        gis.create_view("v", "SELECT a FROM t")
        result = gis.query("SELECT COUNT(*) FROM t")
        assert not result.metrics.network.cache_hit

    def test_cached_rows_are_isolated(self):
        gis = build(MemorySource("flaky"), cache=8)
        first = gis.query("SELECT a FROM t LIMIT 3")
        first.rows.append(("tampered",))
        second = gis.query("SELECT a FROM t LIMIT 3")
        assert len(second.rows) == 3

    def test_disabled_by_default(self):
        gis = build(MemorySource("flaky"))
        gis.query("SELECT COUNT(*) FROM t")
        result = gis.query("SELECT COUNT(*) FROM t")
        assert not result.metrics.network.cache_hit

"""Type lattice: inference, unification, coercion, wire widths."""

import datetime

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datatypes import (
    DataType,
    arithmetic_result,
    coerce_value,
    conforms,
    is_comparable,
    is_numeric,
    parse_type_name,
    type_of_value,
    unify,
    wire_width,
)
from repro.errors import TypeCheckError


class TestTypeOfValue:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, DataType.NULL),
            (True, DataType.BOOLEAN),
            (3, DataType.INTEGER),
            (3.5, DataType.FLOAT),
            ("x", DataType.TEXT),
            (datetime.date(1989, 2, 6), DataType.DATE),
        ],
    )
    def test_inference(self, value, expected):
        assert type_of_value(value) == expected

    def test_bool_is_not_integer(self):
        # bool subclasses int in Python; the lattice must not conflate them.
        assert type_of_value(True) == DataType.BOOLEAN

    def test_datetime_rejected(self):
        with pytest.raises(TypeCheckError):
            type_of_value(datetime.datetime(1989, 1, 1, 12))

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeCheckError):
            type_of_value(object())


class TestUnify:
    def test_null_unifies_with_anything(self):
        for dtype in DataType:
            assert unify(DataType.NULL, dtype) == dtype
            assert unify(dtype, DataType.NULL) == dtype

    def test_numeric_widening(self):
        assert unify(DataType.INTEGER, DataType.FLOAT) == DataType.FLOAT

    def test_incompatible_raises(self):
        with pytest.raises(TypeCheckError):
            unify(DataType.TEXT, DataType.INTEGER)


class TestArithmetic:
    def test_integer_division_yields_float(self):
        assert arithmetic_result(DataType.INTEGER, DataType.INTEGER, "/") == DataType.FLOAT

    def test_integer_addition_stays_integer(self):
        assert arithmetic_result(DataType.INTEGER, DataType.INTEGER, "+") == DataType.INTEGER

    def test_mixed_widens(self):
        assert arithmetic_result(DataType.INTEGER, DataType.FLOAT, "*") == DataType.FLOAT

    def test_null_propagates_type(self):
        assert arithmetic_result(DataType.NULL, DataType.INTEGER, "+") == DataType.INTEGER
        assert arithmetic_result(DataType.NULL, DataType.NULL, "+") == DataType.NULL

    def test_text_arithmetic_rejected(self):
        with pytest.raises(TypeCheckError):
            arithmetic_result(DataType.TEXT, DataType.INTEGER, "+")


class TestComparability:
    def test_numerics_comparable(self):
        assert is_comparable(DataType.INTEGER, DataType.FLOAT)

    def test_null_comparable_with_all(self):
        assert is_comparable(DataType.NULL, DataType.DATE)

    def test_text_date_not_comparable(self):
        assert not is_comparable(DataType.TEXT, DataType.DATE)

    def test_is_numeric(self):
        assert is_numeric(DataType.FLOAT)
        assert not is_numeric(DataType.TEXT)


class TestCoercion:
    def test_int_from_string(self):
        assert coerce_value("42", DataType.INTEGER) == 42

    def test_int_from_integral_float(self):
        assert coerce_value(4.0, DataType.INTEGER) == 4

    def test_int_from_fractional_float_rejected(self):
        with pytest.raises(TypeCheckError):
            coerce_value(4.5, DataType.INTEGER)

    def test_float_from_int(self):
        value = coerce_value(3, DataType.FLOAT)
        assert value == 3.0 and isinstance(value, float)

    def test_date_from_iso_string(self):
        assert coerce_value("1989-02-06", DataType.DATE) == datetime.date(1989, 2, 6)

    def test_date_from_datetime(self):
        moment = datetime.datetime(1989, 2, 6, 15, 30)
        assert coerce_value(moment, DataType.DATE) == datetime.date(1989, 2, 6)

    def test_bad_date_string_rejected(self):
        with pytest.raises(TypeCheckError):
            coerce_value("not-a-date", DataType.DATE)

    def test_bool_from_int(self):
        assert coerce_value(1, DataType.BOOLEAN) is True
        assert coerce_value(0, DataType.BOOLEAN) is False

    def test_bool_from_out_of_range_int_rejected(self):
        with pytest.raises(TypeCheckError):
            coerce_value(2, DataType.BOOLEAN)

    def test_bool_from_string(self):
        assert coerce_value("TRUE", DataType.BOOLEAN) is True

    def test_text_from_date(self):
        assert coerce_value(datetime.date(1989, 1, 1), DataType.TEXT) == "1989-01-01"

    def test_none_passes_through(self):
        for dtype in (DataType.INTEGER, DataType.TEXT, DataType.DATE):
            assert coerce_value(None, dtype) is None

    @given(st.integers(min_value=-(10**9), max_value=10**9))
    def test_coerce_int_roundtrip_through_text(self, value):
        assert coerce_value(coerce_value(value, DataType.TEXT), DataType.INTEGER) == value

    @given(st.dates())
    def test_coerce_date_roundtrip_through_text(self, value):
        assert coerce_value(coerce_value(value, DataType.TEXT), DataType.DATE) == value


class TestConforms:
    def test_null_conforms_everywhere(self):
        assert conforms(None, DataType.INTEGER)

    def test_bool_does_not_conform_as_integer(self):
        assert not conforms(True, DataType.INTEGER)

    def test_int_conforms_as_float(self):
        assert conforms(3, DataType.FLOAT)

    def test_datetime_does_not_conform_as_date(self):
        assert not conforms(datetime.datetime(1989, 1, 1), DataType.DATE)


class TestTypeNames:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("int", DataType.INTEGER),
            ("BIGINT", DataType.INTEGER),
            ("double", DataType.FLOAT),
            ("VARCHAR", DataType.TEXT),
            ("bool", DataType.BOOLEAN),
            (" date ", DataType.DATE),
        ],
    )
    def test_aliases(self, name, expected):
        assert parse_type_name(name) == expected

    def test_unknown_name(self):
        with pytest.raises(TypeCheckError):
            parse_type_name("BLOB")


class TestWireWidth:
    def test_fixed_widths(self):
        assert wire_width(DataType.INTEGER) == 8
        assert wire_width(DataType.BOOLEAN) == 1
        assert wire_width(DataType.DATE) == 4

    def test_text_default_and_override(self):
        assert wire_width(DataType.TEXT) == 24
        assert wire_width(DataType.TEXT, avg_text_width=10.5) == 10.5

"""Cost model and simulated network accounting."""

import pytest

from repro import Catalog, NetworkLink, SimulatedNetwork
from repro.core.cardinality import Estimator
from repro.core.cost import Cost, CostModel
from repro.core.logical import RelColumn
from repro.datatypes import DataType
from repro.errors import GISError


class TestNetworkLink:
    def test_transfer_time_formula(self):
        link = NetworkLink(latency_ms=10.0, bandwidth_bytes_per_s=1000.0,
                           message_overhead_bytes=0)
        # 10ms latency + 500 bytes at 1KB/s = 500 ms.
        assert link.transfer_time_ms(500, 1) == pytest.approx(510.0)

    def test_messages_multiply_latency(self):
        link = NetworkLink(latency_ms=10.0, bandwidth_bytes_per_s=1e9,
                           message_overhead_bytes=0)
        assert link.transfer_time_ms(0, 5) == pytest.approx(50.0)

    def test_overhead_charged_per_message(self):
        link = NetworkLink(latency_ms=0.0, bandwidth_bytes_per_s=1000.0,
                           message_overhead_bytes=100)
        assert link.transfer_time_ms(0, 2) == pytest.approx(200.0)

    def test_zero_messages_rejected(self):
        with pytest.raises(GISError):
            NetworkLink().transfer_time_ms(10, 0)


class TestSimulatedNetwork:
    def test_per_source_accounting(self):
        network = SimulatedNetwork()
        network.set_link("fast", NetworkLink(1.0, 1e9))
        network.set_link("slow", NetworkLink(100.0, 1e3))
        network.record_transfer("fast", 1000, 10, 1)
        network.record_transfer("slow", 1000, 10, 1)
        ledgers = network.per_source()
        assert ledgers["slow"].simulated_ms > ledgers["fast"].simulated_ms
        assert network.total.rows == 20
        assert network.total.messages == 2

    def test_parallel_elapsed_is_max(self):
        network = SimulatedNetwork()
        network.set_link("a", NetworkLink(10.0, 1e9))
        network.set_link("b", NetworkLink(50.0, 1e9))
        network.record_transfer("a", 0, 0, 1)
        network.record_transfer("b", 0, 0, 1)
        assert network.parallel_elapsed_ms() == pytest.approx(
            network.per_source()["b"].simulated_ms
        )

    def test_reset_clears_counters_keeps_links(self):
        network = SimulatedNetwork()
        network.set_link("x", NetworkLink(123.0, 1e6))
        network.record_transfer("x", 10, 1, 1)
        network.reset()
        assert network.total.rows == 0
        assert network.per_source() == {}
        assert network.link_for("x").latency_ms == 123.0

    def test_default_link_used_for_unknown_source(self):
        network = SimulatedNetwork(NetworkLink(latency_ms=77.0))
        assert network.link_for("anything").latency_ms == 77.0


class TestCost:
    def test_addition_and_ordering(self):
        a = Cost(cpu_ms=1.0, network_ms=2.0)
        b = Cost(cpu_ms=0.5, network_ms=0.5)
        assert (a + b).total_ms == pytest.approx(4.0)
        assert b < a

    def test_cost_model_transfer(self):
        network = SimulatedNetwork()
        network.set_link("src", NetworkLink(10.0, 1e6, message_overhead_bytes=0))
        model = CostModel(network, Estimator(Catalog()))
        column = RelColumn("x", DataType.INTEGER)
        cost = model.transfer("src", rows=1000, columns=[column], page_rows=100)
        # 10 messages × 10ms latency + 8000 bytes / 1MB/s = 100ms + 8ms.
        assert cost.network_ms == pytest.approx(108.0)

    def test_cpu_scales_with_rows(self):
        model = CostModel(SimulatedNetwork(), Estimator(Catalog()), cpu_row_ms=0.01)
        assert model.cpu(100).cpu_ms == pytest.approx(1.0)
        assert model.cpu(100, factor=2.0).cpu_ms == pytest.approx(2.0)

    def test_sort_is_superlinear(self):
        model = CostModel(SimulatedNetwork(), Estimator(Catalog()))
        assert model.sort(10_000).cpu_ms > model.cpu(10_000).cpu_ms

    def test_hash_join_components(self):
        model = CostModel(SimulatedNetwork(), Estimator(Catalog()))
        cost = model.hash_join(100, 1000, 50)
        assert cost.cpu_ms > 0 and cost.network_ms == 0

"""Expression compiler: SQL three-valued logic, kernels, and typing."""

import datetime

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.expressions import (
    build_layout,
    cast_value,
    compile_expression,
    compile_predicate,
    evaluate_constant,
    infer_type,
    like_pattern_to_regex,
)
from repro.core.logical import RelColumn
from repro.datatypes import DataType
from repro.errors import ExecutionError, TypeCheckError
from repro.sql import ast


def lit(value):
    if value is None:
        return ast.Literal(None, DataType.NULL)
    if isinstance(value, bool):
        return ast.Literal(value, DataType.BOOLEAN)
    if isinstance(value, int):
        return ast.Literal(value, DataType.INTEGER)
    if isinstance(value, float):
        return ast.Literal(value, DataType.FLOAT)
    if isinstance(value, str):
        return ast.Literal(value, DataType.TEXT)
    if isinstance(value, datetime.date):
        return ast.Literal(value, DataType.DATE)
    raise AssertionError(value)


def ev(expr):
    return evaluate_constant(expr)


class TestThreeValuedLogic:
    def test_and_truth_table(self):
        cases = {
            (True, True): True,
            (True, False): False,
            (False, None): False,
            (None, False): False,
            (True, None): None,
            (None, None): None,
        }
        for (a, b), expected in cases.items():
            assert ev(ast.BinaryOp("AND", lit(a), lit(b))) is expected

    def test_or_truth_table(self):
        cases = {
            (False, False): False,
            (True, None): True,
            (None, True): True,
            (False, None): None,
            (None, None): None,
        }
        for (a, b), expected in cases.items():
            assert ev(ast.BinaryOp("OR", lit(a), lit(b))) is expected

    def test_not(self):
        assert ev(ast.UnaryOp("NOT", lit(True))) is False
        assert ev(ast.UnaryOp("NOT", lit(None))) is None

    def test_comparison_with_null_is_null(self):
        assert ev(ast.BinaryOp("=", lit(None), lit(1))) is None
        assert ev(ast.BinaryOp("<", lit(1), lit(None))) is None

    def test_arithmetic_null_propagation(self):
        assert ev(ast.BinaryOp("+", lit(None), lit(2))) is None

    def test_division_by_zero_is_null(self):
        assert ev(ast.BinaryOp("/", lit(10), lit(0))) is None
        assert ev(ast.BinaryOp("%", lit(10), lit(0))) is None

    def test_predicate_collapses_null_to_false(self):
        predicate = compile_predicate(ast.BinaryOp("=", lit(None), lit(1)), {})
        assert predicate(()) is False


class TestComparisons:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("=", 2, 2, True),
            ("<>", 2, 3, True),
            ("<", 1, 2, True),
            ("<=", 2, 2, True),
            (">", 3.5, 2, True),
            (">=", 1, 2, False),
        ],
    )
    def test_numeric(self, op, a, b, expected):
        assert ev(ast.BinaryOp(op, lit(a), lit(b))) is expected

    def test_dates_compare(self):
        early = datetime.date(1988, 1, 1)
        late = datetime.date(1989, 1, 1)
        assert ev(ast.BinaryOp("<", lit(early), lit(late))) is True

    def test_text_comparison(self):
        assert ev(ast.BinaryOp("<", lit("apple"), lit("banana"))) is True


class TestInList:
    def test_in_hit(self):
        assert ev(ast.InList(lit(2), (lit(1), lit(2)), False)) is True

    def test_in_miss(self):
        assert ev(ast.InList(lit(5), (lit(1), lit(2)), False)) is False

    def test_in_miss_with_null_is_null(self):
        assert ev(ast.InList(lit(5), (lit(1), lit(None)), False)) is None

    def test_not_in_hit_is_false(self):
        assert ev(ast.InList(lit(2), (lit(1), lit(2)), True)) is False

    def test_not_in_miss_with_null_is_null(self):
        assert ev(ast.InList(lit(5), (lit(None),), True)) is None

    def test_null_operand_is_null(self):
        assert ev(ast.InList(lit(None), (lit(1),), False)) is None

    def test_dynamic_items(self):
        column = RelColumn("x", DataType.INTEGER)
        expr = ast.InList(lit(3), (column.ref(), lit(9)), False)
        fn = compile_expression(expr, build_layout([column]))
        assert fn((3,)) is True
        assert fn((4,)) is False


class TestBetween:
    def test_inclusive(self):
        assert ev(ast.Between(lit(5), lit(1), lit(5), False)) is True

    def test_negated(self):
        assert ev(ast.Between(lit(0), lit(1), lit(5), True)) is True

    def test_null_bound(self):
        assert ev(ast.Between(lit(3), lit(None), lit(5), False)) is None


class TestLike:
    @pytest.mark.parametrize(
        "value,pattern,expected",
        [
            ("hello", "h%", True),
            ("hello", "%o", True),
            ("hello", "h_llo", True),
            ("hello", "H%", False),  # case-sensitive
            ("hello", "hello", True),
            ("hel.lo", "hel.lo", True),
            ("a\nb", "a%b", True),  # DOTALL
            ("x", "%", True),
            ("", "%", True),
            ("abc", "_", False),
        ],
    )
    def test_patterns(self, value, pattern, expected):
        assert ev(ast.BinaryOp("LIKE", lit(value), lit(pattern))) is expected

    def test_null_operand(self):
        assert ev(ast.BinaryOp("LIKE", lit(None), lit("%"))) is None

    def test_regex_metachars_escaped(self):
        regex = like_pattern_to_regex("a+b")
        assert regex.match("a+b") and not regex.match("aab")


class TestCaseExpressions:
    def test_searched_case_first_match(self):
        expr = ast.Case(
            None,
            ((ast.BinaryOp(">", lit(5), lit(1)), lit("big")),
             (lit(True), lit("other"))),
            lit("else"),
        )
        assert ev(expr) == "big"

    def test_searched_case_null_condition_skipped(self):
        expr = ast.Case(None, ((lit(None), lit("x")),), lit("fallback"))
        assert ev(expr) == "fallback"

    def test_simple_case(self):
        expr = ast.Case(lit(2), ((lit(1), lit("one")), (lit(2), lit("two"))), None)
        assert ev(expr) == "two"

    def test_simple_case_no_match_no_else(self):
        expr = ast.Case(lit(9), ((lit(1), lit("one")),), None)
        assert ev(expr) is None


class TestCast:
    def test_float_to_int_truncates(self):
        assert cast_value(2.9, DataType.INTEGER) == 2
        assert cast_value(-2.9, DataType.INTEGER) == -2

    def test_text_to_int(self):
        assert cast_value("17", DataType.INTEGER) == 17

    def test_null_passes(self):
        assert cast_value(None, DataType.TEXT) is None

    def test_bad_cast_raises_execution_error(self):
        with pytest.raises(ExecutionError):
            cast_value("zebra", DataType.INTEGER)

    def test_cast_expression_compiles(self):
        expr = ast.Cast(lit("1989-02-06"), DataType.DATE)
        assert ev(expr) == datetime.date(1989, 2, 6)


class TestFunctionsAndConcat:
    def test_concat(self):
        assert ev(ast.BinaryOp("||", lit("ab"), lit("cd"))) == "abcd"
        assert ev(ast.BinaryOp("||", lit("ab"), lit(None))) is None

    def test_null_propagating_function(self):
        expr = ast.FunctionCall("UPPER", (lit(None),))
        assert ev(expr) is None

    def test_coalesce_is_null_aware(self):
        expr = ast.FunctionCall("COALESCE", (lit(None), lit(7)))
        assert ev(expr) == 7

    def test_is_null(self):
        assert ev(ast.IsNull(lit(None), False)) is True
        assert ev(ast.IsNull(lit(1), True)) is True


class TestLayouts:
    def test_bound_ref_reads_position(self):
        a = RelColumn("a", DataType.INTEGER)
        b = RelColumn("b", DataType.INTEGER)
        fn = compile_expression(
            ast.BinaryOp("+", a.ref(), b.ref()), build_layout([a, b])
        )
        assert fn((2, 3)) == 5

    def test_missing_column_raises_at_compile_time(self):
        orphan = RelColumn("ghost", DataType.INTEGER)
        with pytest.raises(ExecutionError):
            compile_expression(orphan.ref(), {})

    def test_subquery_nodes_rejected(self):
        select = ast.Select(items=[ast.SelectItem(lit(1))])
        with pytest.raises(ExecutionError):
            compile_expression(ast.Exists(select, False), {})


class TestInferType:
    def test_comparison_is_boolean(self):
        assert infer_type(ast.BinaryOp("<", lit(1), lit(2))) == DataType.BOOLEAN

    def test_incomparable_rejected(self):
        with pytest.raises(TypeCheckError):
            infer_type(ast.BinaryOp("<", lit("x"), lit(1)))

    def test_like_requires_text(self):
        with pytest.raises(TypeCheckError):
            infer_type(ast.BinaryOp("LIKE", lit(1), lit("%")))

    def test_case_unifies_branches(self):
        expr = ast.Case(None, ((lit(True), lit(1)),), lit(2.5))
        assert infer_type(expr) == DataType.FLOAT

    def test_aggregate_rejected_in_scalar_context(self):
        with pytest.raises(TypeCheckError):
            infer_type(ast.FunctionCall("SUM", (lit(1),)))

    def test_unresolved_column_rejected(self):
        with pytest.raises(TypeCheckError):
            infer_type(ast.ColumnRef(None, "x"))


@given(st.integers(-100, 100), st.integers(-100, 100))
def test_property_arithmetic_matches_python(a, b):
    assert ev(ast.BinaryOp("+", lit(a), lit(b))) == a + b
    assert ev(ast.BinaryOp("*", lit(a), lit(b))) == a * b
    assert ev(ast.BinaryOp("-", lit(a), lit(b))) == a - b


@given(st.text(max_size=10), st.text(max_size=6))
def test_property_like_literal_no_wildcards(value, other):
    # Without wildcards, LIKE is exact string equality.
    pattern = value.replace("%", "").replace("_", "")
    expr = ast.BinaryOp("LIKE", lit(pattern), lit(pattern))
    assert ev(expr) is True
    if other not in (pattern,) and "%" not in other and "_" not in other:
        assert ev(ast.BinaryOp("LIKE", lit(other), lit(pattern))) is (other == pattern)

"""Batch-at-a-time execution: helpers, kernels, and cross-mode invariance.

The batch executor is a pure dataflow change — every test here pins some
facet of that: chunking helpers keep the page/batch contracts, batch
kernels agree with their row compilations (including NULL-heavy inputs),
and whole queries produce bit-identical rows and network accounting at
every batch size, with the last partial batch and empty results handled.
"""

import re

import pytest

from repro import Catalog, PlannerOptions, SimulatedNetwork
from repro.core.expressions import (
    build_layout,
    compile_batch_expression,
    compile_batch_predicate,
    compile_expression,
    compile_predicate,
)
from repro.core.logical import RelColumn
from repro.core.physical import (
    ExecutionContext,
    PhysicalOperator,
    StaticRowsExec,
    _row_bytes,
    chunk_rows,
    instrument_row_counts,
    make_batch_sizer,
    split_batches,
)
from repro.core.pages import Page, paginate_rows
from repro.datatypes import DataType
from repro.errors import PlanError
from repro.sql import ast

from .conftest import make_small_gis

GIS = make_small_gis()

INT = DataType.INTEGER
TEXT = DataType.TEXT


def ctx(batch_size=1024):
    return ExecutionContext(Catalog(), SimulatedNetwork(),
                            batch_size=batch_size)


def columns(*specs):
    return [RelColumn(name, dtype) for name, dtype in specs]


# ---------------------------------------------------------------------------
# chunking helpers
# ---------------------------------------------------------------------------


def rows_of(*values):
    return [(value,) for value in values]


class TestChunkingHelpers:
    def test_chunk_rows_sizes_and_tail(self):
        batches = list(chunk_rows(iter(rows_of(*range(10))), 4))
        assert all(isinstance(batch, Page) for batch in batches)
        assert batches == [
            rows_of(0, 1, 2, 3), rows_of(4, 5, 6, 7), rows_of(8, 9),
        ]

    def test_chunk_rows_empty_stream_yields_nothing(self):
        assert list(chunk_rows(iter(()), 4)) == []

    def test_split_batches_never_coalesces(self):
        # Two incoming pages of 3 rows with batch size 4: a coalescing
        # implementation would emit [4, 2]; splitting keeps [3, 3].
        pages = [
            Page.from_rows(rows_of(1, 2, 3)),
            Page.from_rows(rows_of(4, 5, 6)),
        ]
        assert list(split_batches(pages, 4)) == \
            [rows_of(1, 2, 3), rows_of(4, 5, 6)]

    def test_split_batches_splits_oversized_pages(self):
        pages = [Page.from_rows(rows_of(1, 2, 3, 4, 5))]
        assert list(split_batches(pages, 2)) == \
            [rows_of(1, 2), rows_of(3, 4), rows_of(5)]

    def test_split_batches_drops_empty_pages(self):
        pages = [Page.empty(1), Page.from_rows(rows_of(1)), Page.empty(1)]
        assert list(split_batches(pages, 4)) == [rows_of(1)]

    def test_paginate_rows_contract_full_then_final_partial(self):
        pages = list(paginate_rows(iter(rows_of(*range(8))), 4, width=1))
        assert pages == [rows_of(0, 1, 2, 3), rows_of(4, 5, 6, 7), []]
        assert pages[-1].width == 1  # empty final page keeps its shape

    def test_paginate_rows_empty_result_still_one_page(self):
        # The empty final page models the "result complete" round trip.
        pages = list(paginate_rows(iter(()), 4, width=2))
        assert pages == [[]]
        assert pages[0].width == 2


# ---------------------------------------------------------------------------
# batch kernels vs row compilations
# ---------------------------------------------------------------------------

NULL_HEAVY_ROWS = [
    (1, "a"), (None, None), (3, "ccc"), (None, "d"), (5, None), (None, ""),
]


class TestBatchKernels:
    def setup_method(self):
        self.cols = columns(("a", INT), ("b", TEXT))
        self.layout = build_layout(self.cols)

    def test_batch_expression_matches_row_compilation(self):
        expr = ast.BinaryOp("+", self.cols[0].ref(), ast.Literal(10, INT))
        row_fn = compile_expression(expr, self.layout)
        batch_fn = compile_batch_expression(expr, self.layout)
        assert batch_fn(NULL_HEAVY_ROWS) == \
            [row_fn(row) for row in NULL_HEAVY_ROWS]

    def test_batch_column_kernel(self):
        expr = self.cols[1].ref()
        batch_fn = compile_batch_expression(expr, self.layout)
        assert batch_fn(NULL_HEAVY_ROWS) == \
            [row[1] for row in NULL_HEAVY_ROWS]

    def test_batch_literal_kernel(self):
        batch_fn = compile_batch_expression(
            ast.Literal(7, INT), self.layout
        )
        assert batch_fn(NULL_HEAVY_ROWS) == [7] * len(NULL_HEAVY_ROWS)
        assert batch_fn([]) == []

    def test_batch_predicate_matches_row_predicate(self):
        predicate = ast.BinaryOp(">", self.cols[0].ref(),
                                 ast.Literal(2, INT))
        row_fn = compile_predicate(predicate, self.layout)
        batch_fn = compile_batch_predicate(predicate, self.layout)
        # WHERE semantics: NULL comparisons drop the row in both paths.
        assert batch_fn(NULL_HEAVY_ROWS) == \
            [row for row in NULL_HEAVY_ROWS if row_fn(row) is True]
        assert batch_fn(NULL_HEAVY_ROWS) == [(3, "ccc"), (5, None)]


# ---------------------------------------------------------------------------
# memoized wire sizing
# ---------------------------------------------------------------------------


class TestBatchSizer:
    def test_matches_row_bytes_on_null_heavy_rows(self):
        import datetime

        cols = columns(
            ("i", INT), ("t", TEXT), ("f", DataType.FLOAT),
            ("b", DataType.BOOLEAN), ("d", DataType.DATE),
        )
        rows = [
            (1, "abc", 1.5, True, datetime.date(1989, 1, 1)),
            (None, None, None, None, None),
            (7, "", 0.0, False, datetime.date(1989, 6, 1)),
        ]
        sizer = make_batch_sizer(cols)
        assert sizer(rows) == sum(_row_bytes(row) for row in rows)
        assert sizer([]) == 0.0
        # The columnar fast path agrees with the legacy row-batch path.
        assert sizer(Page.from_rows(rows)) == sizer(rows)
        assert sizer(Page.empty(len(cols))) == 0.0


# ---------------------------------------------------------------------------
# legacy row-only operators keep working through the shim
# ---------------------------------------------------------------------------


class LegacyRowsExec(PhysicalOperator):
    """An operator written against the old row-pull protocol only."""

    def __init__(self, rows, cols):
        super().__init__(cols)
        self._rows = rows

    def children(self):
        return []

    def describe(self):
        return "LegacyRows"

    def iterate(self, ctx):
        yield from self._rows


class TestLegacyCompatibility:
    def test_base_iterate_batches_chunks_legacy_rows(self):
        rows = [(i,) for i in range(10)]
        op = LegacyRowsExec(rows, columns(("a", INT)))
        batches = list(op.iterate_batches(ctx(batch_size=4)))
        assert [len(b) for b in batches] == [4, 4, 2]
        assert [row for batch in batches for row in batch] == rows

    def test_native_iterate_shim_flattens_batches(self):
        rows = [(i,) for i in range(10)]
        op = StaticRowsExec(rows, columns(("a", INT)))
        assert list(op.iterate(ctx(batch_size=3))) == rows

    def test_instrument_counts_each_layer_once(self):
        rows = [(i,) for i in range(10)]
        for op in (
            LegacyRowsExec(rows, columns(("a", INT))),
            StaticRowsExec(rows, columns(("a", INT))),
        ):
            batch_counts = {}
            counts = instrument_row_counts(op, batch_counts)
            consumed = [
                row
                for batch in op.iterate_batches(ctx(batch_size=4))
                for row in batch
            ]
            assert consumed == rows
            assert counts[id(op)] == len(rows)
        # The native operator reports its batches; the legacy one cannot.
        assert batch_counts[id(op)] == 3


# ---------------------------------------------------------------------------
# whole-query invariance across batch sizes
# ---------------------------------------------------------------------------

EQUIVALENCE_QUERIES = [
    "SELECT id, name FROM customers ORDER BY id",
    "SELECT id FROM customers WHERE balance > 10000",  # empty result
    "SELECT oid FROM orders ORDER BY oid LIMIT 3 OFFSET 2",
    "SELECT oid FROM orders ORDER BY oid LIMIT 0",
    "SELECT DISTINCT region FROM customers ORDER BY region",
    "SELECT id FROM customers UNION SELECT cust_id FROM orders ORDER BY id",
    "SELECT id FROM customers EXCEPT SELECT cust_id FROM orders",
    "SELECT id FROM customers INTERSECT SELECT cust_id FROM orders",
    "SELECT region, COUNT(*), SUM(balance) FROM customers "
    "GROUP BY region ORDER BY region",
    "SELECT name, ROW_NUMBER() OVER (ORDER BY balance DESC) "
    "FROM customers",
    "SELECT c.name, o.total FROM customers c "
    "JOIN orders o ON c.id = o.cust_id ORDER BY o.oid",
    "SELECT c.name FROM customers c "
    "LEFT JOIN orders o ON c.id = o.cust_id WHERE o.oid IS NULL",
]


@pytest.mark.parametrize("sql", EQUIVALENCE_QUERIES)
@pytest.mark.parametrize("batch_size", [1, 4, 1024])
def test_query_invariant_under_batch_size(sql, batch_size):
    default = GIS.query(sql)
    variant = GIS.query(sql, PlannerOptions(batch_size=batch_size))
    assert variant.rows == default.rows
    d_net, v_net = default.metrics.network, variant.metrics.network
    assert v_net.rows_shipped == d_net.rows_shipped
    assert v_net.messages == d_net.messages
    assert v_net.bytes_shipped == d_net.bytes_shipped
    assert v_net.network_ms == d_net.network_ms


def test_explain_analyze_row_counts_invariant_under_batch_size():
    sql = ("SELECT c.region, COUNT(*) FROM customers c "
           "JOIN orders o ON c.id = o.cust_id GROUP BY c.region")
    batch = GIS.explain_analyze(sql)
    row = GIS.explain_analyze(sql, PlannerOptions(batch_size=1))
    strip = lambda text: re.sub(
        r" / [\d.]+ ms", "", re.sub(r" / \d+ batches", "", text)
    )
    batch_plan = strip(batch).split("\n\n")[0]
    row_plan = strip(row).split("\n\n")[0]
    assert batch_plan == row_plan
    assert re.search(r"\[\d+ rows / \d+ batches / [\d.]+ ms\]", batch)


# ---------------------------------------------------------------------------
# batch metrics and the partial last batch
# ---------------------------------------------------------------------------


class TestBatchMetrics:
    def test_partial_last_batch(self):
        result = GIS.query(
            "SELECT id FROM customers ORDER BY id",
            PlannerOptions(batch_size=4),
        )
        net = result.metrics.network
        assert len(result.rows) == 5
        assert net.batches_output == 2  # 4 + 1 (partial tail)
        assert net.batch_rows_avg == pytest.approx(2.5)

    def test_row_mode_one_row_per_batch(self):
        result = GIS.query(
            "SELECT id FROM customers", PlannerOptions(batch_size=1)
        )
        assert result.metrics.network.batches_output == len(result.rows)
        assert result.metrics.network.batch_rows_avg == pytest.approx(1.0)

    def test_empty_result_zero_batches(self):
        result = GIS.query("SELECT id FROM customers WHERE id < 0")
        assert result.rows == []
        assert result.metrics.network.batches_output == 0
        assert result.metrics.network.batch_rows_avg == 0.0

    def test_summary_reports_batching(self):
        result = GIS.query("SELECT id FROM customers")
        assert "batches (avg" in result.metrics.summary()


# ---------------------------------------------------------------------------
# surface plumbing
# ---------------------------------------------------------------------------


class TestSurface:
    def test_planner_options_reject_bad_batch_size(self):
        with pytest.raises(PlanError, match="batch_size"):
            PlannerOptions(batch_size=0)

    def test_format_table_footer(self):
        result = GIS.query("SELECT oid FROM orders ORDER BY oid")
        text = result.format_table(max_rows=5)
        assert "... (+2 more rows)" in text

    def test_cli_batch_size_flag_validates_through_planner_options(self):
        from repro.repl import main

        # argparse exits with code 2 after PlannerOptions rejects the value
        with pytest.raises(SystemExit) as excinfo:
            main(["--batch-size", "0"])
        assert excinfo.value.code == 2

    def test_repl_batch_command(self):
        import io

        from repro.repl import Repl

        out = io.StringIO()
        repl = Repl(GIS, out=out)
        repl.feed_line("\\batch 2")
        assert repl.batch == 2
        repl.feed_line("SELECT COUNT(*) FROM customers;")
        assert "5" in out.getvalue()
        repl.feed_line("\\batch off")
        assert repl.batch is None

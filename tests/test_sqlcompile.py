"""Fragment → native SQL compilation, checked at the string level."""

import pytest

from repro import Catalog, MemorySource, TableMapping
from repro.catalog.schema import schema_from_pairs
from repro.core.analyzer import Analyzer
from repro.core.logical import ScanOp, ValuesOp
from repro.core.rewriter import rewrite
from repro.errors import PlanError
from repro.sources.sqlcompile import fragment_to_statement
from repro.sql.parser import parse_select
from repro.sql.printer import SQLitePrinterDialect, print_statement


@pytest.fixture
def catalog():
    catalog = Catalog()
    source = MemorySource("m")
    schema = schema_from_pairs("t", [("a", "INT"), ("b", "TEXT")])
    source.add_table("NATIVE_T", schema, [])
    catalog.register_source("m", source)
    catalog.register_table(
        "t", schema, TableMapping("m", "NATIVE_T", {"a": "COL_A"})
    )
    return catalog


def compile_sql(catalog, query):
    plan = rewrite(Analyzer(catalog).bind_statement(parse_select(query)))

    def naming(scan: ScanOp):
        mapping = scan.table.mapping
        return mapping.remote_table, lambda column: mapping.remote_column(
            column.name
        )

    statement = fragment_to_statement(plan, naming)
    return print_statement(statement, SQLitePrinterDialect())


class TestNativeNames:
    def test_native_table_and_column_names_used(self, catalog):
        sql = compile_sql(catalog, "SELECT a FROM t")
        assert '"NATIVE_T"' in sql
        assert '"COL_A"' in sql
        assert '"t"' not in sql  # global names never leak

    def test_unmapped_columns_keep_global_name(self, catalog):
        sql = compile_sql(catalog, "SELECT b FROM t")
        assert '"b"' in sql

    def test_filter_becomes_where(self, catalog):
        sql = compile_sql(catalog, "SELECT a FROM t WHERE a > 5 AND b = 'x'")
        assert "WHERE" in sql and '"COL_A" > 5' in sql

    def test_aggregate_group_by(self, catalog):
        sql = compile_sql(catalog, "SELECT b, COUNT(*), SUM(a) FROM t GROUP BY b")
        assert "GROUP BY" in sql and "COUNT(*)" in sql and "SUM(" in sql

    def test_order_limit_stay_together(self, catalog):
        sql = compile_sql(catalog, "SELECT a FROM t ORDER BY a DESC LIMIT 3")
        # Top-N must be in ONE select level: ORDER BY then LIMIT.
        tail = sql[sql.index("ORDER BY"):]
        assert "LIMIT 3" in tail

    def test_self_join_gets_distinct_aliases(self, catalog):
        sql = compile_sql(
            catalog, "SELECT x.a FROM t x JOIN t y ON x.a = y.a"
        )
        assert sql.count('"NATIVE_T"') == 2
        # Two distinct table aliases must appear.
        aliases = {part.split(".")[0] for part in sql.split() if '"."COL_A"' in part}
        assert len(aliases) >= 2

    def test_distinct_flag(self, catalog):
        sql = compile_sql(catalog, "SELECT DISTINCT b FROM t")
        assert "SELECT DISTINCT" in sql

    def test_union_all_compiles(self, catalog):
        sql = compile_sql(
            catalog, "SELECT a FROM t WHERE a < 3 UNION ALL SELECT a FROM t WHERE a > 7"
        )
        assert "UNION ALL" in sql

    def test_values_rejected(self, catalog):
        with pytest.raises(PlanError):
            fragment_to_statement(ValuesOp([()], []), lambda scan: ("x", str))

    def test_compiled_sql_reparses(self, catalog):
        # Dialect output must itself be valid in our grammar (modulo the
        # SQLite-specific literals, so use a query without dates/bools).
        sql = compile_sql(
            catalog,
            "SELECT b, COUNT(*) FROM t WHERE a BETWEEN 1 AND 9 GROUP BY b "
            "ORDER BY 2 DESC LIMIT 5",
        )
        parse_select(sql)  # must not raise


class TestSQLiteDialectSpecifics:
    def test_boolean_rendered_as_int(self, catalog):
        sql = compile_sql(catalog, "SELECT a FROM t WHERE TRUE")
        # Constant folding may remove it entirely; accept either.
        assert "TRUE" not in sql

    def test_dates_rendered_as_strings(self, catalog):
        schema = schema_from_pairs("d", [("day", "DATE")])
        source = catalog.source("m")
        source.add_table("D", schema, [])
        catalog.register_table("d", schema, TableMapping("m", "D"))
        sql = compile_sql(catalog, "SELECT day FROM d WHERE day > DATE '1989-02-06'")
        assert "'1989-02-06'" in sql and "DATE '" not in sql

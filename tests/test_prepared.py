"""Plan-shape cache and prepared statements (repro.core.prepared)."""

import threading

import pytest

from repro import GlobalInformationSystem, PlannerOptions
from repro.core.prepared import parameterize
from repro.errors import PlanError
from repro.sql.parser import parse_select
from repro.workloads import WORKLOAD_QUERIES

from .conftest import make_small_gis


def make_cached_gis(plan_cache_size=64, **kwargs) -> GlobalInformationSystem:
    """The conftest two-source federation, with the plan cache armed."""
    gis = make_small_gis()
    gis.plan_cache.capacity = plan_cache_size
    gis.plan_cache.invalidate()  # forget setup-time registrations cleanly
    for key, value in kwargs.items():
        setattr(gis, key, value)
    return gis


# ---------------------------------------------------------------------------
# parameterization
# ---------------------------------------------------------------------------


class TestParameterize:
    def test_literals_become_slots(self):
        param = parameterize(
            parse_select("SELECT name FROM t WHERE a > 5 AND b = 'x'")
        )
        assert param.values == [5, "x"]
        assert param.parameter_count == 2

    def test_same_shape_for_different_literals(self):
        a = parameterize(parse_select("SELECT * FROM t WHERE a > 5"))
        b = parameterize(parse_select("SELECT * FROM t WHERE a > 99"))
        assert a.shape_key == b.shape_key

    def test_different_structure_different_shape(self):
        a = parameterize(parse_select("SELECT * FROM t WHERE a > 5"))
        b = parameterize(parse_select("SELECT * FROM t WHERE a < 5"))
        c = parameterize(parse_select("SELECT * FROM t WHERE b > 5"))
        assert a.shape_key != b.shape_key
        assert a.shape_key != c.shape_key

    def test_limit_is_part_of_the_shape(self):
        # LIMIT/OFFSET are statement fields, not literal expressions; a
        # different limit is a different shape (both still plan fine).
        a = parameterize(parse_select("SELECT * FROM t ORDER BY a LIMIT 5"))
        b = parameterize(parse_select("SELECT * FROM t ORDER BY a LIMIT 9"))
        assert a.shape_key != b.shape_key
        assert a.values == [] and b.values == []

    def test_subquery_literals_are_parameterized(self):
        a = parameterize(parse_select(
            "SELECT name FROM customers WHERE id IN "
            "(SELECT cust_id FROM orders WHERE total > 100)"
        ))
        b = parameterize(parse_select(
            "SELECT name FROM customers WHERE id IN "
            "(SELECT cust_id FROM orders WHERE total > 900)"
        ))
        assert a.values == [100]
        assert a.shape_key == b.shape_key

    def test_deterministic_slot_order(self):
        sql = "SELECT * FROM t WHERE a = 1 AND b = 2 AND c = 3"
        first = parameterize(parse_select(sql))
        second = parameterize(parse_select(sql))
        assert first.values == second.values == [1, 2, 3]
        assert first.shape_key == second.shape_key


# ---------------------------------------------------------------------------
# the implicit plan cache on query()
# ---------------------------------------------------------------------------


class TestPlanCache:
    def test_second_execution_hits(self):
        gis = make_cached_gis()
        gis.query("SELECT name FROM customers WHERE balance > 100")
        result = gis.query("SELECT name FROM customers WHERE balance > 100")
        assert result.metrics.network.plan_cache_hit
        stats = gis.plan_cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_rebound_literals_match_uncached_mediator(self):
        gis = make_cached_gis()
        reference = make_small_gis()  # no plan cache
        template = (
            "SELECT c.name, o.total FROM customers c "
            "JOIN orders o ON c.id = o.cust_id WHERE o.total > {}"
        )
        gis.query(template.format(50))  # cold: plans and caches the shape
        for threshold in (100, 20, 999, 0):
            sql = template.format(threshold)
            cached = gis.query(sql)
            direct = reference.query(sql)
            assert cached.rows == direct.rows, sql
            assert cached.column_names == direct.column_names
            assert cached.metrics.network.plan_cache_hit

    def test_workload_queries_bit_identical_through_cache(self, federation):
        gis = federation.gis
        stats_before = gis.plan_cache.stats()
        gis.plan_cache.capacity = 64
        try:
            for _name, sql in WORKLOAD_QUERIES:
                cold = gis.query(sql)
                warm = gis.query(sql)
                assert warm.metrics.network.plan_cache_hit, _name
                assert warm.rows == cold.rows, _name
                assert warm.column_names == cold.column_names, _name
        finally:
            gis.plan_cache.capacity = stats_before["capacity"]
            gis.plan_cache.invalidate()  # session fixture: leave no plans

    def test_warm_planning_is_cheaper(self):
        gis = make_cached_gis()
        sql = (
            "SELECT c.region, COUNT(*) FROM customers c "
            "JOIN orders o ON c.id = o.cust_id GROUP BY c.region"
        )
        cold = gis.query(sql)
        warm = gis.query(sql)
        assert warm.metrics.planning_ms < cold.metrics.planning_ms

    def test_value_sensitive_literal_falls_back(self):
        # 100 + 50 constant-folds into a fresh (untagged) literal, so the
        # slots do not survive into the plan; changing them must replan,
        # not reuse a plan baked for the old constant.
        gis = make_cached_gis()
        reference = make_small_gis()
        first = gis.query("SELECT name FROM customers WHERE balance > 100 + 50")
        changed_sql = "SELECT name FROM customers WHERE balance > 10 + 40"
        changed = gis.query(changed_sql)
        assert changed.rows == reference.query(changed_sql).rows
        assert not changed.metrics.network.plan_cache_hit
        assert gis.plan_cache.stats()["fallbacks"] == 1
        assert first.rows != changed.rows  # the thresholds really differ
        # The fallback refreshed the entry: same values again now hit.
        again = gis.query(changed_sql)
        assert again.metrics.network.plan_cache_hit

    def test_catalog_change_invalidates(self):
        gis = make_cached_gis()
        sql = "SELECT COUNT(*) FROM orders"
        gis.query(sql)
        assert gis.query(sql).metrics.network.plan_cache_hit
        gis.analyze()  # bumps the epoch via clear_result_cache
        after = gis.query(sql)
        assert not after.metrics.network.plan_cache_hit
        assert gis.plan_cache.stats()["invalidations"] >= 1

    def test_lru_eviction_bound(self):
        gis = make_cached_gis(plan_cache_size=2)
        gis.query("SELECT id FROM customers")
        gis.query("SELECT name FROM customers")
        gis.query("SELECT region FROM customers")
        stats = gis.plan_cache.stats()
        assert stats["entries"] <= 2
        assert stats["evictions"] >= 1

    def test_execution_knobs_share_a_plan(self):
        # deadline / partial / trace do not change planning; requests
        # differing only in those knobs must share one cache entry.
        gis = make_cached_gis()
        sql = "SELECT name FROM customers WHERE balance > 10"
        gis.query(sql)
        warm = gis.query(
            sql,
            gis.planner.options.but(
                deadline_ms=60_000.0, on_source_failure="partial"
            ),
        )
        assert warm.metrics.network.plan_cache_hit
        assert gis.plan_cache.stats()["entries"] == 1

    def test_planning_options_get_distinct_entries(self):
        gis = make_cached_gis()
        sql = "SELECT name FROM customers WHERE balance > 10"
        gis.query(sql)
        other = gis.query(sql, PlannerOptions(pushdown="scans-only"))
        assert not other.metrics.network.plan_cache_hit
        assert gis.plan_cache.stats()["entries"] == 2

    def test_disabled_cache_is_inert(self):
        gis = make_small_gis()
        sql = "SELECT COUNT(*) FROM orders"
        gis.query(sql)
        second = gis.query(sql)
        assert not second.metrics.network.plan_cache_hit
        assert len(gis.plan_cache) == 0


# ---------------------------------------------------------------------------
# explicit prepared statements
# ---------------------------------------------------------------------------


class TestPreparedStatements:
    def test_execute_with_new_parameters(self):
        gis = make_cached_gis()
        reference = make_small_gis()
        prepared = gis.prepare("SELECT name FROM customers WHERE balance > 100")
        assert prepared.parameter_count == 1
        for threshold in (100, -50, 250):
            result = prepared.execute([threshold])
            direct = reference.query(
                f"SELECT name FROM customers WHERE balance > {threshold}"
            )
            assert result.rows == direct.rows

    def test_execute_without_params_reuses_originals(self):
        gis = make_cached_gis()
        prepared = gis.prepare("SELECT oid FROM orders WHERE total > 400")
        assert prepared.execute().rows == prepared.execute().rows
        assert prepared.execute().metrics.network.plan_cache_hit

    def test_wrong_arity_rejected(self):
        gis = make_cached_gis()
        prepared = gis.prepare("SELECT name FROM customers WHERE balance > 100")
        with pytest.raises(PlanError, match="takes 1 parameter"):
            prepared.execute([1, 2])

    def test_wrong_type_rejected(self):
        gis = make_cached_gis()
        prepared = gis.prepare("SELECT name FROM customers WHERE balance > 100")
        with pytest.raises(PlanError, match="parameter 0"):
            prepared.execute(["not-a-number"])

    def test_null_parameter_allowed(self):
        gis = make_cached_gis()
        prepared = gis.prepare("SELECT name FROM customers WHERE balance > 100")
        assert prepared.execute([None]).rows == []

    def test_survives_catalog_invalidation(self):
        gis = make_cached_gis()
        prepared = gis.prepare("SELECT COUNT(*) FROM orders WHERE total > 100")
        before = prepared.execute([100]).rows
        gis.analyze()  # invalidates every cached plan
        after = prepared.execute([100])
        assert after.rows == before
        assert not after.metrics.network.plan_cache_hit  # replanned
        # ...and the handle re-pins the fresh plan for the next call.
        assert prepared.execute([100]).metrics.network.plan_cache_hit

    def test_prepared_results_skip_result_cache(self):
        gis = make_cached_gis()
        gis._result_cache_size = 8
        prepared = gis.prepare("SELECT COUNT(*) FROM orders")
        prepared.execute()
        second = prepared.execute()
        assert not second.metrics.network.cache_hit


# ---------------------------------------------------------------------------
# thread safety (satellite: 8-thread hammer on one mediator)
# ---------------------------------------------------------------------------


class TestConcurrentMediator:
    def test_eight_thread_hammer_matches_reference(self):
        gis = make_cached_gis(plan_cache_size=32)
        gis._result_cache_size = 16
        templates = [
            "SELECT name FROM customers WHERE balance > {}",
            "SELECT oid, total FROM orders WHERE total > {}",
            "SELECT c.name, o.total FROM customers c "
            "JOIN orders o ON c.id = o.cust_id WHERE o.total > {}",
            "SELECT status, COUNT(*) FROM orders GROUP BY status",
        ]
        thresholds = (0, 20, 100, 400, 999)
        jobs = [
            template.format(threshold)
            for template in templates
            for threshold in thresholds
        ]
        reference = make_small_gis()
        expected = {sql: reference.query(sql).rows for sql in jobs}

        errors = []
        barrier = threading.Barrier(8)

        def hammer(worker: int) -> None:
            try:
                barrier.wait(timeout=30)
                for repeat in range(3):
                    for index, sql in enumerate(jobs):
                        if (index + worker + repeat) % 2:
                            continue  # interleave differently per thread
                        result = gis.query(sql)
                        if result.rows != expected[sql]:
                            errors.append(
                                f"worker {worker} got {len(result.rows)} rows "
                                f"for {sql!r}"
                            )
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(f"worker {worker}: {exc!r}")

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert not errors, errors[:5]
        stats = gis.plan_cache.stats()
        assert stats["hits"] > 0  # the cache was genuinely exercised

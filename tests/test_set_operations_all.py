"""Bag-semantics set operations: INTERSECT ALL / EXCEPT ALL."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import GlobalInformationSystem, MemorySource
from repro.catalog.schema import schema_from_pairs


def build_gis(left_values, right_values):
    gis = GlobalInformationSystem()
    source = MemorySource("m")
    schema = schema_from_pairs("t", [("v", "INT")])
    source.add_table("l", schema_from_pairs("l", [("v", "INT")]),
                     [(v,) for v in left_values])
    source.add_table("r", schema_from_pairs("r", [("v", "INT")]),
                     [(v,) for v in right_values])
    gis.register_source("m", source)
    gis.register_table("l", source="m")
    gis.register_table("r", source="m")
    return gis


def run(gis, op):
    return sorted(
        row[0] for row in gis.query(f"SELECT v FROM l {op} SELECT v FROM r").rows
    )


def bag_except(left, right):
    counts = Counter(right)
    out = []
    for value in left:
        if counts[value] > 0:
            counts[value] -= 1
        else:
            out.append(value)
    return sorted(out)


def bag_intersect(left, right):
    counts = Counter(left) & Counter(right)
    return sorted(counts.elements())


class TestFixedCases:
    def test_except_all_subtracts_multiplicities(self):
        gis = build_gis([1, 1, 1, 2], [1])
        assert run(gis, "EXCEPT ALL") == [1, 1, 2]

    def test_except_set_removes_all_copies(self):
        gis = build_gis([1, 1, 1, 2], [1])
        assert run(gis, "EXCEPT") == [2]

    def test_intersect_all_takes_min_multiplicity(self):
        gis = build_gis([1, 1, 2, 3], [1, 1, 1, 2, 2])
        assert run(gis, "INTERSECT ALL") == [1, 1, 2]

    def test_intersect_set_dedupes(self):
        gis = build_gis([1, 1, 2, 3], [1, 1, 2, 2])
        assert run(gis, "INTERSECT") == [1, 2]

    def test_empty_right(self):
        gis = build_gis([1, 2], [])
        assert run(gis, "EXCEPT ALL") == [1, 2]
        assert run(gis, "INTERSECT ALL") == []

    def test_matches_reference_interpreter(self):
        gis = build_gis([1, 1, 2, 3, 3, 3], [1, 3, 3, 4])
        for op in ("EXCEPT ALL", "INTERSECT ALL", "EXCEPT", "INTERSECT"):
            sql = f"SELECT v FROM l {op} SELECT v FROM r"
            engine = sorted(r[0] for r in gis.query(sql).rows)
            _, reference = gis.reference_query(sql)
            assert engine == sorted(r[0] for r in reference)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(0, 5), max_size=20),
    st.lists(st.integers(0, 5), max_size=20),
)
def test_property_bag_semantics(left_values, right_values):
    gis = build_gis(left_values, right_values)
    assert run(gis, "EXCEPT ALL") == bag_except(left_values, right_values)
    assert run(gis, "INTERSECT ALL") == bag_intersect(left_values, right_values)

"""Rewrite rules: structural assertions plus differential safety checks."""

import pytest

from repro import Catalog, MemorySource, TableMapping
from repro.catalog.schema import schema_from_pairs
from repro.core.analyzer import Analyzer
from repro.core.fragments import interpret_plan
from repro.core.logical import (
    AggregateOp,
    DistinctOp,
    FilterOp,
    JoinOp,
    LimitOp,
    ProjectOp,
    ScanOp,
    UnionOp,
    ValuesOp,
)
from repro.core.rewriter import (
    fold_constants,
    fold_expression,
    push_down_limits,
    push_down_predicates,
    rewrite,
)
from repro.datatypes import DataType
from repro.sql import ast
from repro.sql.parser import parse_select

ROWS_T = [(i, f"n{i % 3}", float(i)) for i in range(20)]
ROWS_U = [(i, i % 5) for i in range(15)]


@pytest.fixture
def catalog():
    catalog = Catalog()
    source = MemorySource("mem")
    t_schema = schema_from_pairs("t", [("a", "INT"), ("b", "TEXT"), ("c", "FLOAT")])
    u_schema = schema_from_pairs("u", [("a", "INT"), ("k", "INT")])
    source.add_table("t", t_schema, ROWS_T)
    source.add_table("u", u_schema, ROWS_U)
    catalog.register_source("mem", source)
    catalog.register_table("t", t_schema, TableMapping("mem", "t"))
    catalog.register_table("u", u_schema, TableMapping("mem", "u"))
    return catalog


def bind(catalog, sql):
    return Analyzer(catalog).bind_statement(parse_select(sql))


def evaluate(catalog, plan):
    source = catalog.source("mem")

    def provide(scan: ScanOp):
        return source.scan(scan.table.mapping.remote_table)

    return sorted(interpret_plan(plan, provide), key=repr)


def assert_equivalent(catalog, before, after):
    assert evaluate(catalog, before) == evaluate(catalog, after)


class TestConstantFolding:
    def expr(self, text):
        return parse_select(f"SELECT {text}").items[0].expr

    def test_folds_arithmetic(self):
        folded = fold_expression(self.expr("1 + 2 * 3"))
        assert folded == ast.Literal(7, DataType.INTEGER)

    def test_folds_inside_composite(self, catalog):
        plan = bind(catalog, "SELECT a FROM t WHERE a > 1 + 2")
        folded = fold_constants(plan)
        (filter_op,) = [n for n in folded.walk() if isinstance(n, FilterOp)]
        assert ast.Literal(3, DataType.INTEGER) in ast.expression_children(
            filter_op.predicate
        )

    def test_does_not_fold_column_refs(self, catalog):
        plan = bind(catalog, "SELECT a + 1 FROM t")
        folded = fold_constants(plan)
        (project,) = [
            n
            for n in folded.walk()
            if isinstance(n, ProjectOp) and not n.is_trivial()
        ]
        assert isinstance(project.expressions[0], ast.BinaryOp)

    def test_failing_cast_left_for_runtime(self):
        expr = ast.Cast(ast.Literal("zebra", DataType.TEXT), DataType.INTEGER)
        assert fold_expression(expr) is expr or isinstance(
            fold_expression(expr), ast.Cast
        )

    def test_folds_boolean_logic(self):
        folded = fold_expression(self.expr("1 = 1 AND 2 < 1"))
        assert folded == ast.Literal(False, DataType.BOOLEAN)


class TestFilterSimplification:
    def test_true_filter_removed(self, catalog):
        plan = bind(catalog, "SELECT a FROM t WHERE 1 = 1")
        simplified = rewrite(plan)
        assert not [n for n in simplified.walk() if isinstance(n, FilterOp)]

    def test_false_filter_becomes_empty_values(self, catalog):
        plan = bind(catalog, "SELECT a FROM t WHERE 1 = 2")
        simplified = rewrite(plan)
        values = [n for n in simplified.walk() if isinstance(n, ValuesOp)]
        assert values and values[0].rows == []
        assert evaluate(catalog, simplified) == []

    def test_null_filter_becomes_empty(self, catalog):
        plan = bind(catalog, "SELECT a FROM t WHERE NULL")
        simplified = rewrite(plan)
        assert evaluate(catalog, simplified) == []


class TestPredicatePushdown:
    def test_filter_reaches_scan_through_join(self, catalog):
        plan = bind(
            catalog,
            "SELECT t.a FROM t JOIN u ON t.a = u.a WHERE t.c > 5 AND u.k = 1",
        )
        pushed = push_down_predicates(plan)
        # Each single-side conjunct must now sit directly above its scan.
        filters = [n for n in pushed.walk() if isinstance(n, FilterOp)]
        assert all(isinstance(f.child, ScanOp) for f in filters)
        assert_equivalent(catalog, plan, pushed)

    def test_cross_join_with_where_becomes_inner(self, catalog):
        plan = bind(catalog, "SELECT t.a FROM t, u WHERE t.a = u.a")
        pushed = push_down_predicates(plan)
        (join,) = [n for n in pushed.walk() if isinstance(n, JoinOp)]
        assert join.kind == "INNER" and join.condition is not None
        assert_equivalent(catalog, plan, pushed)

    def test_pushdown_through_projection_rewrites_refs(self, catalog):
        plan = bind(
            catalog,
            "SELECT x FROM (SELECT a + 1 AS x FROM t) s WHERE x > 10",
        )
        pushed = push_down_predicates(plan)
        filters = [n for n in pushed.walk() if isinstance(n, FilterOp)]
        assert filters and isinstance(filters[0].child, ScanOp)
        assert_equivalent(catalog, plan, pushed)

    def test_pushdown_into_union_branches(self, catalog):
        plan = bind(
            catalog,
            "SELECT a FROM (SELECT a FROM t UNION ALL SELECT a FROM u) s "
            "WHERE a > 7",
        )
        pushed = rewrite(plan)
        union_nodes = [n for n in pushed.walk() if isinstance(n, UnionOp)]
        assert union_nodes
        for branch in union_nodes[0].inputs:
            branch_filters = [
                n for n in branch.walk() if isinstance(n, FilterOp)
            ]
            assert branch_filters
        assert_equivalent(catalog, plan, pushed)

    def test_group_key_filter_passes_aggregate(self, catalog):
        plan = bind(
            catalog,
            "SELECT b, COUNT(*) AS n FROM t GROUP BY b HAVING b <> 'n0'",
        )
        pushed = rewrite(plan)
        (aggregate,) = [n for n in pushed.walk() if isinstance(n, AggregateOp)]
        below = [n for n in aggregate.child.walk() if isinstance(n, FilterOp)]
        assert below  # the HAVING on a group key sank below the aggregate
        assert_equivalent(catalog, plan, pushed)

    def test_aggregate_filter_stays_above(self, catalog):
        plan = bind(
            catalog,
            "SELECT b, COUNT(*) AS n FROM t GROUP BY b HAVING COUNT(*) > 5",
        )
        pushed = rewrite(plan)
        (aggregate,) = [n for n in pushed.walk() if isinstance(n, AggregateOp)]
        below = [n for n in aggregate.child.walk() if isinstance(n, FilterOp)]
        assert not below
        assert_equivalent(catalog, plan, pushed)

    def test_left_join_right_filter_not_pushed(self, catalog):
        plan = bind(
            catalog,
            "SELECT t.a FROM t LEFT JOIN u ON t.a = u.a WHERE u.k = 1",
        )
        pushed = push_down_predicates(plan)
        assert_equivalent(catalog, plan, pushed)

    def test_left_join_left_filter_pushed(self, catalog):
        plan = bind(
            catalog,
            "SELECT t.a FROM t LEFT JOIN u ON t.a = u.a WHERE t.c > 3",
        )
        pushed = push_down_predicates(plan)
        (join,) = [n for n in pushed.walk() if isinstance(n, JoinOp)]
        left_filters = [n for n in join.left.walk() if isinstance(n, FilterOp)]
        assert left_filters
        assert_equivalent(catalog, plan, pushed)


class TestProjectionPruning:
    def test_scan_narrowed(self, catalog):
        plan = bind(catalog, "SELECT b FROM t")
        pruned = rewrite(plan)
        scans = [n for n in pruned.walk() if isinstance(n, ScanOp)]
        projects = [n for n in pruned.walk() if isinstance(n, ProjectOp)]
        assert scans
        narrowing = [
            p for p in projects if isinstance(p.child, ScanOp) and len(p.columns) == 1
        ]
        assert narrowing
        assert_equivalent(catalog, plan, pruned)

    def test_join_inputs_narrowed(self, catalog):
        plan = bind(
            catalog, "SELECT t.b FROM t JOIN u ON t.a = u.a"
        )
        pruned = rewrite(plan)
        (join,) = [n for n in pruned.walk() if isinstance(n, JoinOp)]
        assert len(join.left.output_columns) == 2  # a (join key) + b
        assert len(join.right.output_columns) == 1  # a only
        assert_equivalent(catalog, plan, pruned)

    def test_unused_aggregate_calls_dropped(self, catalog):
        plan = bind(
            catalog,
            "SELECT n FROM (SELECT b, COUNT(*) AS n, SUM(a) AS s FROM t GROUP BY b) q",
        )
        pruned = rewrite(plan)
        (aggregate,) = [n for n in pruned.walk() if isinstance(n, AggregateOp)]
        assert len(aggregate.aggregates) == 1
        assert_equivalent(catalog, plan, pruned)

    def test_distinct_blocks_pruning(self, catalog):
        plan = bind(
            catalog, "SELECT a FROM (SELECT DISTINCT a, b FROM t) q"
        )
        pruned = rewrite(plan)
        (distinct,) = [n for n in pruned.walk() if isinstance(n, DistinctOp)]
        assert len(distinct.child.output_columns) == 2
        assert_equivalent(catalog, plan, pruned)


class TestMergesAndLimits:
    def test_adjacent_projects_merge(self, catalog):
        plan = bind(catalog, "SELECT x + 1 FROM (SELECT a + 1 AS x FROM t) s")
        merged = rewrite(plan)
        projects = [n for n in merged.walk() if isinstance(n, ProjectOp)]
        assert len(projects) == 1
        assert_equivalent(catalog, plan, merged)

    def test_nested_limits_merge(self, catalog):
        plan = bind(
            catalog, "SELECT a FROM (SELECT a FROM t LIMIT 10) s LIMIT 3"
        )
        merged = rewrite(plan)
        limits = [n for n in merged.walk() if isinstance(n, LimitOp)]
        assert len(limits) == 1 and limits[0].limit == 3
        assert_equivalent(catalog, plan, merged)

    def test_limit_pushed_into_union_all(self, catalog):
        plan = bind(
            catalog,
            "SELECT a FROM (SELECT a FROM t UNION ALL SELECT a FROM u) s LIMIT 4",
        )
        pushed = push_down_limits(rewrite(plan))
        union_nodes = [n for n in pushed.walk() if isinstance(n, UnionOp)]
        assert union_nodes
        for branch in union_nodes[0].inputs:
            assert isinstance(branch, LimitOp) and branch.limit == 4
        rows = evaluate(catalog, pushed)
        assert len(rows) == 4


class TestFullPipelineEquivalence:
    QUERIES = [
        "SELECT a, c FROM t WHERE a > 3 AND c < 15.0",
        "SELECT t.b, u.k FROM t JOIN u ON t.a = u.a WHERE u.k > 1",
        "SELECT b, COUNT(*), SUM(c) FROM t GROUP BY b ORDER BY b",
        "SELECT DISTINCT b FROM t WHERE a BETWEEN 2 AND 12",
        "SELECT a FROM t WHERE a IN (SELECT a FROM u WHERE k = 0)",
        "SELECT a + 1 AS q FROM t ORDER BY q DESC LIMIT 5",
        "SELECT a FROM t UNION SELECT a FROM u",
        "SELECT b FROM t WHERE NOT (a < 5 OR c > 15)",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_rewrite_preserves_semantics(self, catalog, sql):
        plan = bind(catalog, sql)
        assert_equivalent(catalog, plan, rewrite(plan))

"""Shared fixtures: a tiny two-source federation and the TPC-H-lite build."""

from __future__ import annotations

import pytest

from repro import (
    GlobalInformationSystem,
    MemorySource,
    NetworkLink,
    SQLiteSource,
)
from repro.catalog.schema import schema_from_pairs
from repro.workloads import build_federation

CUSTOMERS = [
    (1, "Alice", "EU", "1987-04-01", 120.5),
    (2, "Bob", "US", "1988-01-15", -20.0),
    (3, "Cara", "EU", "1989-02-06", 300.0),
    (4, "Dan", "APAC", "1986-11-30", 0.0),
    (5, "Eve", None, "1989-06-01", 55.5),
]

ORDERS = [
    (100, 1, 250.0, "1989-01-02", "OPEN"),
    (101, 1, 80.0, "1989-02-10", "SHIPPED"),
    (102, 2, 500.0, "1989-03-05", "OPEN"),
    (103, 3, 20.0, "1989-01-20", "RETURNED"),
    (104, 3, 999.0, "1989-04-01", "SHIPPED"),
    (105, 4, 10.0, "1989-05-12", "OPEN"),
    (106, 9, 75.0, "1989-06-20", "OPEN"),  # dangling customer reference
]


def customers_schema():
    return schema_from_pairs(
        "customers",
        [
            ("id", "INT"),
            ("name", "TEXT"),
            ("region", "TEXT"),
            ("since", "DATE"),
            ("balance", "FLOAT"),
        ],
    )


def orders_schema():
    return schema_from_pairs(
        "orders",
        [
            ("oid", "INT"),
            ("cust_id", "INT"),
            ("total", "FLOAT"),
            ("odate", "DATE"),
            ("status", "TEXT"),
        ],
    )


def make_small_gis() -> GlobalInformationSystem:
    """Memory CRM + SQLite ERP with the fixed rows above."""
    gis = GlobalInformationSystem()
    crm = MemorySource("crm")
    crm.add_table("customers", customers_schema(), CUSTOMERS)
    erp = SQLiteSource("erp")
    erp.load_table("ORDERS", orders_schema(), ORDERS)
    gis.register_source("crm", crm, link=NetworkLink(20.0, 1_000_000.0))
    gis.register_source("erp", erp, link=NetworkLink(30.0, 2_000_000.0))
    gis.register_table("customers", source="crm")
    gis.register_table("orders", source="erp", remote_table="ORDERS")
    gis.analyze()
    return gis


@pytest.fixture
def small_gis() -> GlobalInformationSystem:
    return make_small_gis()


@pytest.fixture(scope="session")
def federation():
    """The standard TPC-H-lite federation (session-scoped; treat read-only)."""
    return build_federation(scale=0.5, seed=7, keep_rows=True)


def assert_same_rows(actual, expected):
    """Order-insensitive multiset comparison with float tolerance.

    Sorts by repr so rows containing NULLs / mixed types stay comparable.
    """
    assert len(actual) == len(expected), f"{len(actual)} rows != {len(expected)}"
    normalized_actual = sorted(map(_normalize, actual), key=repr)
    normalized_expected = sorted(map(_normalize, expected), key=repr)
    assert normalized_actual == normalized_expected


def _normalize(row):
    return tuple(
        round(value, 6) if isinstance(value, float) else value for value in row
    )

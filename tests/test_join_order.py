"""Join ordering: DP vs greedy vs canonical on chain and star shapes."""

import pytest

from repro import Catalog, MemorySource, SimulatedNetwork, TableMapping
from repro.catalog.schema import schema_from_pairs
from repro.catalog.statistics import TableStatistics
from repro.core.analyzer import Analyzer
from repro.core.cardinality import Estimator
from repro.core.cost import CostModel
from repro.core.fragments import interpret_plan
from repro.core.join_order import JoinOrderer
from repro.core.logical import JoinOp, ScanOp
from repro.core.rewriter import rewrite
from repro.errors import PlanError
from repro.sql.parser import parse_select


def build_catalog(sizes):
    """Tables f (fact), d1..dn (dims); f has one FK column per dimension."""
    catalog = Catalog()
    source = MemorySource("mem")
    fact_columns = [("id", "INT")] + [
        (f"fk{i}", "INT") for i in range(1, len(sizes))
    ]
    fact_schema = schema_from_pairs("f", fact_columns)
    fact_rows = [
        tuple([row] + [row % sizes[i] for i in range(1, len(sizes))])
        for row in range(sizes[0])
    ]
    source.add_table("f", fact_schema, fact_rows)
    catalog.register_source("mem", source)
    catalog.register_table("f", fact_schema, TableMapping("mem", "f"))
    catalog.set_statistics("f", TableStatistics.from_rows(fact_schema, fact_rows, 8))
    for i in range(1, len(sizes)):
        name = f"d{i}"
        schema = schema_from_pairs(name, [("id", "INT"), ("v", "INT")])
        rows = [(k, k * 10) for k in range(sizes[i])]
        source.add_table(name, schema, rows)
        catalog.register_table(name, schema, TableMapping("mem", name))
        catalog.set_statistics(name, TableStatistics.from_rows(schema, rows, 8))
    return catalog


def make_orderer(catalog, strategy):
    estimator = Estimator(catalog)
    cost_model = CostModel(SimulatedNetwork(), estimator)
    return JoinOrderer(catalog, estimator, cost_model, strategy=strategy)


def star_query(dims):
    joins = " ".join(
        f"JOIN d{i} ON f.fk{i} = d{i}.id" for i in range(1, dims + 1)
    )
    return f"SELECT f.id FROM f {joins}"


def ordered_plan(catalog, sql, strategy):
    plan = rewrite(Analyzer(catalog).bind_statement(parse_select(sql)))
    return make_orderer(catalog, strategy).reorder(plan)


def rows_of(catalog, plan):
    source = catalog.source("mem")

    def provide(scan: ScanOp):
        return source.scan(scan.table.mapping.remote_table)

    return sorted(interpret_plan(plan, provide))


class TestStrategies:
    @pytest.mark.parametrize("strategy", ["dp", "greedy", "canonical", "auto"])
    def test_all_strategies_preserve_semantics(self, strategy):
        catalog = build_catalog([200, 10, 5, 3])
        sql = star_query(3)
        baseline = rewrite(Analyzer(catalog).bind_statement(parse_select(sql)))
        reordered = ordered_plan(catalog, sql, strategy)
        assert rows_of(catalog, baseline) == rows_of(catalog, reordered)

    def test_unknown_strategy_rejected(self):
        catalog = build_catalog([10, 2])
        with pytest.raises(PlanError):
            make_orderer(catalog, "quantum")

    def test_canonical_keeps_textual_order(self):
        catalog = build_catalog([100, 5, 5])
        plan = ordered_plan(catalog, star_query(2), "canonical")
        joins = [n for n in plan.walk() if isinstance(n, JoinOp)]
        # Left-deep in textual order: ((f ⋈ d1) ⋈ d2)
        top = joins[0]
        scans_left = [
            n.table.name for n in top.left.walk() if isinstance(n, ScanOp)
        ]
        scans_right = [
            n.table.name for n in top.right.walk() if isinstance(n, ScanOp)
        ]
        assert scans_right == ["d2"] and scans_left == ["f", "d1"]

    def test_dp_stats_recorded(self):
        catalog = build_catalog([100, 5, 5, 5])
        estimator = Estimator(catalog)
        orderer = make_orderer(catalog, "dp")
        plan = rewrite(
            Analyzer(catalog).bind_statement(parse_select(star_query(3)))
        )
        orderer.reorder(plan)
        assert orderer.last_stats.strategy == "dp"
        assert orderer.last_stats.relations == 4
        assert orderer.last_stats.subsets_enumerated > 0

    def test_auto_falls_back_to_greedy_for_large_regions(self):
        catalog = build_catalog([50] + [3] * 12)
        estimator = Estimator(catalog)
        cost_model = CostModel(SimulatedNetwork(), estimator)
        orderer = JoinOrderer(catalog, estimator, cost_model, strategy="auto", dp_limit=6)
        plan = rewrite(
            Analyzer(catalog).bind_statement(parse_select(star_query(12)))
        )
        orderer.reorder(plan)
        assert orderer.last_stats.strategy == "greedy"

    def test_all_conditions_survive_reordering(self):
        catalog = build_catalog([100, 4, 4, 4])
        plan = ordered_plan(catalog, star_query(3), "dp")
        conditions = [
            n.condition for n in plan.walk() if isinstance(n, JoinOp)
        ]
        total_conjuncts = sum(
            len(list(_conjuncts(c))) for c in conditions if c is not None
        )
        assert total_conjuncts == 3

    def test_filters_attached_at_leaves_survive(self):
        catalog = build_catalog([100, 4, 4])
        sql = star_query(2) + " WHERE d1.v > 10"
        baseline = rewrite(Analyzer(catalog).bind_statement(parse_select(sql)))
        reordered = ordered_plan(catalog, sql, "dp")
        assert rows_of(catalog, baseline) == rows_of(catalog, reordered)


def _conjuncts(expr):
    from repro.sql import ast

    return ast.conjuncts(expr)


class TestCrossProducts:
    def test_disconnected_region_still_plans(self):
        catalog = build_catalog([20, 3])
        sql = "SELECT f.id FROM f, d1"
        for strategy in ("dp", "greedy", "canonical"):
            plan = ordered_plan(catalog, sql, strategy)
            joins = [n for n in plan.walk() if isinstance(n, JoinOp)]
            assert joins and joins[0].kind == "CROSS"

    def test_partially_connected(self):
        catalog = build_catalog([20, 3, 3])
        sql = "SELECT f.id FROM f JOIN d1 ON f.fk1 = d1.id CROSS JOIN d2"
        baseline = rewrite(Analyzer(catalog).bind_statement(parse_select(sql)))
        for strategy in ("dp", "greedy"):
            plan = ordered_plan(catalog, sql, strategy)
            assert rows_of(catalog, baseline) == rows_of(catalog, plan)


class TestPlanQualityOrdering:
    def test_dp_no_worse_than_canonical(self):
        """DP's estimated cost must never exceed the canonical order's."""
        catalog = build_catalog([500, 50, 4, 2])
        estimator = Estimator(catalog)
        cost_model = CostModel(SimulatedNetwork(), estimator)
        sql = star_query(3)
        bound = rewrite(Analyzer(catalog).bind_statement(parse_select(sql)))

        results = {}
        for strategy in ("dp", "canonical"):
            orderer = JoinOrderer(catalog, estimator, cost_model, strategy=strategy)
            plan = orderer.reorder(bound)
            # Measure real intermediate work: total rows produced by joins.
            results[strategy] = _join_work(catalog, plan)
        assert results["dp"] <= results["canonical"]


def _join_work(catalog, plan):
    """Total rows flowing out of every join when actually executed."""
    source = catalog.source("mem")

    def provide(scan: ScanOp):
        return source.scan(scan.table.mapping.remote_table)

    total = 0
    for node in plan.walk():
        if isinstance(node, JoinOp):
            total += len(list(interpret_plan(node, provide)))
    return total

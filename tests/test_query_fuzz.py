"""Grammar-driven query fuzzing: random SELECTs, engine vs reference.

Hypothesis composes structurally valid queries (filters, joins, grouping,
ordering, limits) over the small two-source federation; the optimized
distributed engine must agree with the reference interpreter on every one.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import PlannerOptions

from .conftest import assert_same_rows, make_small_gis

GIS = make_small_gis()

# Column vocabulary per table: (name, kind) where kind picks literals.
CUSTOMER_COLUMNS = [
    ("c.id", "int"), ("c.balance", "float"), ("c.name", "text"),
    ("c.region", "text"),
]
ORDER_COLUMNS = [
    ("o.oid", "int"), ("o.cust_id", "int"), ("o.total", "float"),
    ("o.status", "text"),
]

_TEXTS = ["'EU'", "'US'", "'OPEN'", "'SHIPPED'", "'zzz'", "''"]


@st.composite
def literal_for(draw, kind):
    if kind == "int":
        return str(draw(st.integers(-2, 120)))
    if kind == "float":
        return repr(float(draw(st.integers(-50, 1100))))
    return draw(st.sampled_from(_TEXTS))


@st.composite
def comparison(draw, columns):
    column, kind = draw(st.sampled_from(columns))
    operator = draw(st.sampled_from(["=", "<>", "<", "<=", ">", ">="]))
    value = draw(literal_for(kind))
    return f"{column} {operator} {value}"


@st.composite
def predicate(draw, columns, depth=2):
    if depth == 0 or draw(st.booleans()):
        base = draw(comparison(columns))
        if draw(st.integers(0, 9)) == 0:
            return f"NOT ({base})"
        return base
    connective = draw(st.sampled_from(["AND", "OR"]))
    left = draw(predicate(columns, depth=depth - 1))
    right = draw(predicate(columns, depth=depth - 1))
    return f"({left} {connective} {right})"


@st.composite
def select_query(draw):
    join = draw(st.booleans())
    if join:
        from_clause = "customers c JOIN orders o ON c.id = o.cust_id"
        columns = CUSTOMER_COLUMNS + ORDER_COLUMNS
        group_candidates = ["c.region", "o.status", "c.name"]
        agg_args = ["o.total", "c.balance"]
    else:
        from_clause = "customers c"
        columns = CUSTOMER_COLUMNS
        group_candidates = ["c.region"]
        agg_args = ["c.balance"]

    where = ""
    if draw(st.booleans()):
        where = f" WHERE {draw(predicate(columns))}"

    grouped = draw(st.booleans())
    if grouped:
        group_column = draw(st.sampled_from(group_candidates))
        function = draw(st.sampled_from(["COUNT(*)", None]))
        if function is None:
            agg = draw(st.sampled_from(["SUM", "AVG", "MIN", "MAX"]))
            function = f"{agg}({draw(st.sampled_from(agg_args))})"
        select_list = f"{group_column} AS g, {function} AS m"
        tail = f" GROUP BY {group_column}"
        if draw(st.booleans()):
            tail += f" HAVING COUNT(*) >= {draw(st.integers(0, 3))}"
        order = " ORDER BY g" if draw(st.booleans()) else ""
    else:
        picked = draw(
            st.lists(st.sampled_from(columns), min_size=1, max_size=3,
                     unique_by=lambda c: c[0])
        )
        select_list = ", ".join(column for column, _ in picked)
        tail = ""
        order = ""
        order_is_total = False
        if draw(st.booleans()):
            order_column, _ = draw(st.sampled_from(picked))
            direction = draw(st.sampled_from(["", " DESC"]))
            order = f" ORDER BY {order_column}{direction}"
            # LIMIT over ties is nondeterministic; only cut on keys that
            # are unique in THIS from-clause (c.id repeats across a join).
            unique_keys = ("o.oid",) if join else ("c.id",)
            order_is_total = order_column in unique_keys
        limit = ""
        if order_is_total and draw(st.booleans()):
            limit = f" LIMIT {draw(st.integers(0, 8))}"
        return (
            f"SELECT {select_list} FROM {from_clause}{where}{tail}{order}{limit}"
        )
    return f"SELECT {select_list} FROM {from_clause}{where}{tail}{order}"


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(select_query())
def test_fuzzed_queries_match_reference(sql):
    engine = GIS.query(sql)
    _, reference = GIS.reference_query(sql)
    assert_same_rows(engine.rows, reference)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(select_query(), st.sampled_from(["merge", "hash"]))
def test_fuzzed_queries_match_across_join_algorithms(sql, algorithm):
    default = GIS.query(sql)
    variant = GIS.query(sql, PlannerOptions(join_algorithm=algorithm))
    assert_same_rows(default.rows, variant.rows)


# -- batch-at-a-time vs row-at-a-time equivalence ---------------------------
#
# batch_size is purely an executor knob: for every fuzzed query the rows
# must be bit-identical (including order) and the simulated network
# accounting must not move by a single byte or message.

_INT_METRICS = ("rows_shipped", "messages", "fragments_executed",
                "semijoin_batches", "fragment_retries")
_FLOAT_METRICS = ("bytes_shipped", "network_ms")


def _assert_identical_network(batch_net, row_net, exact_floats=True):
    for name in _INT_METRICS:
        assert getattr(batch_net, name) == getattr(row_net, name), name
    for name in _FLOAT_METRICS:
        if exact_floats:
            assert getattr(batch_net, name) == getattr(row_net, name), name
        else:
            assert getattr(batch_net, name) == pytest.approx(
                getattr(row_net, name)
            ), name


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(select_query(), st.sampled_from([1, 3, 1024]))
def test_fuzzed_batch_modes_bit_identical(sql, batch_size):
    default = GIS.query(sql)
    variant = GIS.query(sql, PlannerOptions(batch_size=batch_size))
    assert variant.rows == default.rows
    _assert_identical_network(
        variant.metrics.network, default.metrics.network
    )


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(select_query())
def test_fuzzed_batch_modes_identical_under_parallel_scheduler(sql):
    # Float metrics accumulate in worker-completion order under the
    # parallel scheduler, so compare them with a tolerance; integer
    # accounting must still be exact.
    batch = GIS.query(sql, PlannerOptions(max_parallel_fragments=4))
    row = GIS.query(
        sql, PlannerOptions(max_parallel_fragments=4, batch_size=1)
    )
    assert batch.rows == row.rows
    _assert_identical_network(
        batch.metrics.network, row.metrics.network, exact_floats=False
    )


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.filter_too_much])
@given(select_query())
def test_fuzzed_explain_analyze_row_counts_match_across_modes(sql):
    import re

    def mask_below_limit(plan: str) -> str:
        # Operators beneath a Limit see batch-granular pulls: at large
        # batch sizes a blocking child emits a full page before Limit
        # truncates, at batch_size=1 the pull stops at exactly the limit.
        # Those per-operator counts legitimately differ, so mask them.
        masked = []
        limit_indents: list = []
        for line in plan.split("\n"):
            indent = len(line) - len(line.lstrip())
            while limit_indents and indent <= limit_indents[-1]:
                limit_indents.pop()
            if limit_indents:
                line = re.sub(r"\[\d+ rows\]", "[rows]", line)
            if line.lstrip().startswith("Limit"):
                limit_indents.append(indent)
            masked.append(line)
        return "\n".join(masked)

    batch_text = GIS.explain_analyze(sql)
    row_text = GIS.explain_analyze(sql, PlannerOptions(batch_size=1))
    strip = lambda text: mask_below_limit(
        re.sub(r" / [\d.]+ ms", "", re.sub(r" / \d+ batches", "", text))
    )
    batch_plan = strip(batch_text).split("== physical plan")[1].split("\n\n")[0]
    row_plan = strip(row_text).split("== physical plan")[1].split("\n\n")[0]
    assert batch_plan == row_plan

"""The example scripts must run cleanly and print their headline output."""

import os
import subprocess
import sys

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, timeout=300):
    path = os.path.join(EXAMPLES_DIR, name)
    process = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert process.returncode == 0, process.stderr
    return process.stdout


def test_quickstart():
    output = run_example("quickstart.py")
    assert "=== result ===" in output
    assert "Cara" in output  # top revenue customer
    assert "fragment SQL" in output


def test_enterprise_federation():
    output = run_example("enterprise_federation.py")
    assert "Revenue by customer segment" in output
    assert "speedup on simulated WAN" in output
    # Optimized must beat naive.
    import re

    match = re.search(r"speedup on simulated WAN: ([\d.]+)x", output)
    assert match and float(match.group(1)) > 1.0


def test_schema_integration():
    output = run_example("schema_integration.py")
    assert "all_customers" in output
    assert "Weber GmbH" in output
    assert "EU" in output and "US" in output


def test_custom_adapter():
    output = run_example("custom_adapter.py")
    assert "errors and warnings per user" in output
    assert "Bob" in output and "ERROR" in output
    assert "RemoteQuery source=applog" in output


def test_wan_tuning():
    output = run_example("wan_tuning.py")
    assert "semijoin" in output and "full join" in output
    # The crossover must actually appear in the sweep.
    lines = [ln for ln in output.splitlines() if "KB/s" in ln]
    choices = ["semijoin" if "semijoin" in ln else "full" for ln in lines]
    assert "semijoin" in choices and "full" in choices

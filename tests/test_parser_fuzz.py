"""Parser robustness: arbitrary input must parse or raise ParseError — never
crash with anything else, and never hang."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ParseError
from repro.sql.ast import Select, SetOperation
from repro.sql.lexer import Lexer
from repro.sql.parser import parse_select

sql_ish_tokens = st.sampled_from(
    [
        "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "LIMIT", "JOIN",
        "ON", "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "CASE", "WHEN",
        "THEN", "ELSE", "END", "UNION", "ALL", "EXISTS", "OVER", "PARTITION",
        "t", "u", "a", "b", "x1", "COUNT", "SUM", "UPPER",
        "1", "2.5", "'s'", "NULL", "TRUE", "*", "(", ")", ",", ".", "=",
        "<", ">", "<=", ">=", "<>", "+", "-", "/", "%", "||", ";", "AS",
    ]
)


class TestLexerTotal:
    @settings(max_examples=200, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.text(max_size=80))
    def test_lexer_never_crashes(self, text):
        try:
            tokens = Lexer(text).tokenize()
        except ParseError:
            return
        assert tokens[-1].type.name == "EOF"

    @settings(max_examples=100, deadline=None)
    @given(st.binary(max_size=40))
    def test_lexer_handles_decoded_binary(self, blob):
        text = blob.decode("utf-8", errors="replace")
        try:
            Lexer(text).tokenize()
        except ParseError:
            pass


class TestParserTotal:
    @settings(max_examples=300, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(sql_ish_tokens, max_size=25).map(" ".join))
    def test_token_soup_parses_or_parse_errors(self, text):
        try:
            statement = parse_select(text)
        except ParseError:
            return
        assert isinstance(statement, (Select, SetOperation))

    @settings(max_examples=150, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.text(max_size=120))
    def test_arbitrary_text_parses_or_parse_errors(self, text):
        try:
            statement = parse_select(text)
        except ParseError:
            return
        assert isinstance(statement, (Select, SetOperation))

    def test_deeply_nested_parentheses(self):
        depth = 60
        text = "SELECT " + "(" * depth + "1" + ")" * depth
        statement = parse_select(text)
        assert isinstance(statement, Select)

    def test_pathological_but_valid(self):
        text = (
            "SELECT CASE WHEN a = 1 AND NOT b < 2 THEN -x ELSE y || 'z' END "
            "FROM t JOIN u ON t.a = u.b WHERE c BETWEEN 1 AND 2 OR d IN (1,2)"
        )
        parse_select(text)

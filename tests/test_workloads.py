"""Workload generators: determinism, shape, and skew properties."""

import pytest

from repro.workloads import (
    WORKLOAD_QUERIES,
    build_federation,
    build_partitioned_orders,
    queries_by_name,
)
from repro.workloads.generator import DataGenerator
from repro.workloads.tpch_lite import generate_rows


class TestDataGenerator:
    def test_determinism(self):
        a = DataGenerator(7)
        b = DataGenerator(7)
        assert [a.integer(0, 100) for _ in range(20)] == [
            b.integer(0, 100) for _ in range(20)
        ]
        assert a.person_name() == b.person_name()

    def test_different_seeds_differ(self):
        a = [DataGenerator(1).integer(0, 10**9) for _ in range(3)]
        b = [DataGenerator(2).integer(0, 10**9) for _ in range(3)]
        assert a != b

    def test_money_bounds_and_rounding(self):
        generator = DataGenerator(3)
        for _ in range(100):
            value = generator.money(5.0, 100.0)
            assert 5.0 <= value <= 100.0
            assert round(value, 2) == value

    def test_zipf_skew(self):
        generator = DataGenerator(11)
        draws = [generator.zipf_index(100, 1.3) for _ in range(5000)]
        # Index 0 must dominate the tail decisively.
        assert draws.count(0) > draws.count(50) * 5
        assert all(0 <= d < 100 for d in draws)

    def test_zipf_low_skew_flatter(self):
        generator = DataGenerator(11)
        steep = [generator.zipf_index(50, 2.0) for _ in range(2000)]
        flat = [generator.zipf_index(50, 0.5) for _ in range(2000)]
        assert steep.count(0) > flat.count(0)

    def test_date_between_inclusive(self):
        import datetime

        generator = DataGenerator(5)
        low = datetime.date(1989, 1, 1)
        high = datetime.date(1989, 1, 3)
        seen = {generator.date_between(low, high) for _ in range(100)}
        assert seen <= {low, low + datetime.timedelta(1), high}
        assert len(seen) == 3

    def test_maybe_null(self):
        generator = DataGenerator(5)
        always = [generator.maybe_null(1, 0.0) for _ in range(50)]
        never = [generator.maybe_null(1, 1.0) for _ in range(50)]
        assert all(v == 1 for v in always)
        assert all(v is None for v in never)


class TestGenerateRows:
    def test_deterministic_per_seed(self):
        assert generate_rows(0.2, seed=9) == generate_rows(0.2, seed=9)

    def test_scale_controls_sizes(self):
        small = generate_rows(0.2)
        large = generate_rows(1.0)
        assert len(large["orders"]) > len(small["orders"])
        assert len(large["lineitems"]) == 3 * len(large["orders"])

    def test_referential_integrity(self):
        data = generate_rows(0.3, seed=4)
        customer_ids = {row[0] for row in data["customers"]}
        nation_ids = {row[0] for row in data["nations"]}
        assert all(row[1] in customer_ids for row in data["orders"])
        assert all(row[2] in nation_ids for row in data["customers"])
        part_ids = {row[0] for row in data["parts"]}
        assert all(row[2] in part_ids for row in data["lineitems"])

    def test_profiles_one_per_customer(self):
        data = generate_rows(0.3, seed=4)
        assert len(data["profiles"]) == len(data["customers"])


class TestBuilders:
    def test_federation_row_counts_consistent(self, federation):
        for table, count in federation.row_counts.items():
            result = federation.gis.query(f"SELECT COUNT(*) FROM {table}")
            assert result.scalar() == count

    def test_partitioned_orders_reassemble(self):
        federation = build_partitioned_orders(3, 40, seed=2)
        total = federation.gis.query("SELECT COUNT(*) FROM orders_all").scalar()
        assert total == 120
        per_part = federation.gis.query("SELECT COUNT(*) FROM orders_p1").scalar()
        assert per_part == 40

    def test_same_seed_same_answers(self):
        a = build_federation(scale=0.2, seed=3)
        b = build_federation(scale=0.2, seed=3)
        sql = "SELECT SUM(o_total) FROM orders"
        assert a.gis.query(sql).scalar() == b.gis.query(sql).scalar()


class TestQueryCatalog:
    def test_catalog_names_unique(self):
        names = [name for name, _ in WORKLOAD_QUERIES]
        assert len(names) == len(set(names))
        assert queries_by_name()["semi_join"].startswith("SELECT")

    @pytest.mark.parametrize("name,sql", WORKLOAD_QUERIES)
    def test_every_catalog_query_runs(self, federation, name, sql):
        result = federation.gis.query(sql)
        assert result.column_names

"""Catalog, schemas, and mappings."""

import pytest

from repro import Catalog, Column, DataType, TableMapping, TableSchema
from repro.catalog.schema import schema_from_pairs
from repro.catalog.statistics import TableStatistics
from repro.errors import CatalogError, DuplicateObjectError, UnknownObjectError
from repro.sources import MemorySource


def simple_schema(name="t"):
    return schema_from_pairs(name, [("a", "INT"), ("b", "TEXT")])


class TestTableSchema:
    def test_lookup_is_case_insensitive(self):
        schema = simple_schema()
        assert schema.column("A").dtype == DataType.INTEGER
        assert schema.index_of("B") == 1
        assert schema.has_column("a") and not schema.has_column("z")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [Column("x", DataType.INTEGER), Column("X", DataType.TEXT)])

    def test_empty_schema_rejected(self):
        with pytest.raises(CatalogError):
            TableSchema("t", [])

    def test_unknown_column_raises(self):
        with pytest.raises(CatalogError):
            simple_schema().column("nope")

    def test_iteration_and_names(self):
        schema = simple_schema()
        assert schema.column_names() == ["a", "b"]
        assert len(schema) == 2
        assert [c.name for c in schema] == ["a", "b"]

    def test_column_of_accepts_type_objects(self):
        assert Column.of("x", DataType.DATE).dtype == DataType.DATE


class TestTableMapping:
    def test_remote_column_defaults_to_global_name(self):
        mapping = TableMapping("src", "T", {"a": "COL_A"})
        assert mapping.remote_column("a") == "COL_A"
        assert mapping.remote_column("A") == "COL_A"
        assert mapping.remote_column("b") == "b"

    def test_validate_rejects_unknown_global_column(self):
        mapping = TableMapping("src", "T", {"ghost": "X"})
        with pytest.raises(CatalogError):
            mapping.validate_against(simple_schema())


class TestCatalog:
    def make_catalog(self):
        catalog = Catalog()
        source = MemorySource("mem")
        source.add_table("t", simple_schema(), [(1, "x")])
        catalog.register_source("mem", source)
        return catalog

    def test_register_and_lookup_source(self):
        catalog = self.make_catalog()
        assert catalog.has_source("MEM")
        assert catalog.source("Mem").name == "mem"
        assert catalog.source_names() == ["mem"]

    def test_duplicate_source_rejected(self):
        catalog = self.make_catalog()
        with pytest.raises(DuplicateObjectError):
            catalog.register_source("MEM", MemorySource("other"))

    def test_unknown_source_raises(self):
        with pytest.raises(UnknownObjectError):
            Catalog().source("ghost")

    def test_register_table_and_lookup(self):
        catalog = self.make_catalog()
        catalog.register_table("t", simple_schema(), TableMapping("mem", "t"))
        entry = catalog.table("T")
        assert not entry.is_view
        assert entry.mapping.source == "mem"

    def test_table_requires_known_source(self):
        catalog = self.make_catalog()
        with pytest.raises(UnknownObjectError):
            catalog.register_table("t", simple_schema(), TableMapping("ghost", "t"))

    def test_duplicate_table_rejected(self):
        catalog = self.make_catalog()
        catalog.register_table("t", simple_schema(), TableMapping("mem", "t"))
        with pytest.raises(DuplicateObjectError):
            catalog.register_view("T", "SELECT 1")

    def test_views_and_drop(self):
        catalog = self.make_catalog()
        catalog.register_view("v", "SELECT 1")
        assert catalog.table("v").is_view
        catalog.drop("V")
        assert not catalog.has_table("v")

    def test_drop_unknown_raises(self):
        with pytest.raises(UnknownObjectError):
            Catalog().drop("ghost")

    def test_tables_on_source(self):
        catalog = self.make_catalog()
        catalog.register_table("t", simple_schema(), TableMapping("mem", "t"))
        catalog.register_view("v", "SELECT 1")
        names = [entry.name for entry in catalog.tables_on_source("MEM")]
        assert names == ["t"]

    def test_statistics_lifecycle(self):
        catalog = self.make_catalog()
        catalog.register_table("t", simple_schema(), TableMapping("mem", "t"))
        assert catalog.statistics("t") is None
        catalog.set_statistics("t", TableStatistics(row_count=5))
        assert catalog.statistics("T").row_count == 5
        catalog.clear_statistics()
        assert catalog.statistics("t") is None

    def test_statistics_require_known_table(self):
        catalog = self.make_catalog()
        with pytest.raises(UnknownObjectError):
            catalog.set_statistics("ghost", TableStatistics(row_count=1))

"""Capability-driven pushdown: fragment boundaries per source class."""

from repro.core.logical import (
    AggregateOp,
    FilterOp,
    JoinOp,
    LimitOp,
    RemoteQueryOp,
    ScanOp,
    SortOp,
)
from repro.core.planner import PlannerOptions

from .conftest import make_small_gis


def remotes_of(plan):
    return [n for n in plan.walk() if isinstance(n, RemoteQueryOp)]


class TestFullPushdown:
    def test_filter_and_projection_pushed_to_sqlite(self):
        gis = make_small_gis()
        planned = gis.plan("SELECT cust_id FROM orders WHERE total > 100")
        (remote,) = remotes_of(planned.distributed)
        assert remote.source_name == "erp"
        # The whole query went to the source: nothing but the remote remains.
        assert isinstance(planned.distributed, RemoteQueryOp)
        kinds = {type(n) for n in remote.fragment.walk()}
        assert FilterOp in kinds and ScanOp in kinds

    def test_aggregation_pushed_to_sqlite(self):
        gis = make_small_gis()
        planned = gis.plan(
            "SELECT status, COUNT(*), SUM(total) FROM orders GROUP BY status"
        )
        assert isinstance(planned.distributed, RemoteQueryOp)
        assert any(
            isinstance(n, AggregateOp)
            for n in planned.distributed.fragment.walk()
        )

    def test_sort_limit_pushed_to_sqlite(self):
        gis = make_small_gis()
        planned = gis.plan("SELECT oid FROM orders ORDER BY total DESC LIMIT 2")
        assert isinstance(planned.distributed, RemoteQueryOp)
        fragment_kinds = {type(n) for n in planned.distributed.fragment.walk()}
        assert SortOp in fragment_kinds and LimitOp in fragment_kinds

    def test_memory_source_cannot_sort(self):
        gis = make_small_gis()
        planned = gis.plan("SELECT name FROM customers ORDER BY name")
        # The sort compensates at the mediator; the scan+project still push.
        assert not isinstance(planned.distributed, RemoteQueryOp)
        assert isinstance(planned.distributed, SortOp) or any(
            isinstance(n, SortOp) for n in planned.distributed.walk()
        )
        assert remotes_of(planned.distributed)

    def test_cross_source_join_stays_at_mediator(self):
        gis = make_small_gis()
        planned = gis.plan(
            "SELECT c.name FROM customers c JOIN orders o ON c.id = o.cust_id"
        )
        joins = [n for n in planned.distributed.walk() if isinstance(n, JoinOp)]
        assert joins, "join must execute at the mediator"
        assert len(remotes_of(planned.distributed)) == 2

    def test_same_source_join_pushed(self):
        gis = make_small_gis()
        planned = gis.plan(
            "SELECT a.oid FROM orders a JOIN orders b ON a.oid = b.oid"
        )
        assert isinstance(planned.distributed, RemoteQueryOp)
        assert any(
            isinstance(n, JoinOp) for n in planned.distributed.fragment.walk()
        )

    def test_estimated_rows_stamped(self):
        gis = make_small_gis()
        planned = gis.plan("SELECT oid FROM orders WHERE total > 100")
        (remote,) = remotes_of(planned.distributed)
        assert remote.estimated_rows > 0


class TestScansOnlyBaseline:
    def test_everything_ships(self):
        gis = make_small_gis()
        options = PlannerOptions(pushdown="scans-only")
        planned = gis.plan(
            "SELECT cust_id FROM orders WHERE total > 100", options
        )
        (remote,) = remotes_of(planned.distributed)
        assert isinstance(remote.fragment, ScanOp)
        # Compensation happens above the exchange.
        assert any(
            isinstance(n, FilterOp) for n in planned.distributed.walk()
        )

    def test_naive_ships_more_rows(self):
        gis = make_small_gis()
        smart = gis.query("SELECT cust_id FROM orders WHERE total > 400")
        gis2 = make_small_gis()
        naive = gis2.query(
            "SELECT cust_id FROM orders WHERE total > 400",
            PlannerOptions(pushdown="scans-only"),
        )
        assert sorted(smart.rows) == sorted(naive.rows)
        assert smart.metrics.rows_shipped < naive.metrics.rows_shipped


class TestCapabilityEnvelopes:
    def test_rest_source_accepts_simple_filters_only(self, federation):
        planned = federation.gis.plan(
            "SELECT s_name FROM suppliers WHERE s_rating >= 4"
        )
        remotes = remotes_of(planned.distributed)
        assert remotes and remotes[0].source_name == "vendors"
        assert any(
            isinstance(n, FilterOp) for n in remotes[0].fragment.walk()
        )

    def test_rest_source_rejects_like(self, federation):
        planned = federation.gis.plan(
            "SELECT s_name FROM suppliers WHERE s_name LIKE 'Supplier S1%'"
        )
        remotes = remotes_of(planned.distributed)
        # LIKE compensates at the mediator: fragment is a bare scan.
        assert isinstance(remotes[0].fragment, ScanOp)

    def test_csv_source_is_scan_only(self, federation):
        planned = federation.gis.plan(
            "SELECT p_name FROM parts WHERE p_price > 100"
        )
        remotes = remotes_of(planned.distributed)
        assert remotes[0].source_name == "archive"
        assert isinstance(remotes[0].fragment, ScanOp)

    def test_kv_source_key_equality_pushed(self, federation):
        planned = federation.gis.plan(
            "SELECT u_tier FROM profiles WHERE u_cust_id = 7"
        )
        remotes = remotes_of(planned.distributed)
        assert remotes[0].source_name == "support"
        assert isinstance(remotes[0].fragment, FilterOp)

    def test_kv_source_non_key_filter_compensated(self, federation):
        planned = federation.gis.plan(
            "SELECT u_cust_id FROM profiles WHERE u_tier = 'GOLD'"
        )
        remotes = remotes_of(planned.distributed)
        assert isinstance(remotes[0].fragment, ScanOp)

    def test_kv_key_in_list_pushed(self, federation):
        planned = federation.gis.plan(
            "SELECT u_tier FROM profiles WHERE u_cust_id IN (1, 2, 3)"
        )
        remotes = remotes_of(planned.distributed)
        assert isinstance(remotes[0].fragment, FilterOp)

    def test_union_view_splits_into_per_source_fragments(self):
        from repro.workloads import build_partitioned_orders

        federation = build_partitioned_orders(3, 50)
        planned = federation.gis.plan(
            "SELECT COUNT(*) FROM orders_all WHERE o_total > 1000"
        )
        remotes = remotes_of(planned.distributed)
        assert len(remotes) == 3
        sources = {r.source_name for r in remotes}
        assert sources == {"erp0", "erp1", "erp2"}
        # Each fragment carries its own filter (pushed into the branches).
        for remote in remotes:
            assert any(
                isinstance(n, FilterOp) for n in remote.fragment.walk()
            )

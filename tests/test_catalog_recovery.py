"""Catalog persistence & recovery: journal replay, snapshots, monotone epochs.

The scenario under test is a mediator crash: the process dies mid-workload
and a fresh one is built from the same config with ``recover_on_start``.
Recovery must reproduce the *exact* pre-crash catalog — same sources (via
their declarative connector specs), same schemas and mappings verbatim,
same statistics (so plans cost identically), and a version vector that is
never behind the pre-crash one, so no cached artifact from a previous life
can be mistaken for fresh.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CatalogVersions, build_from_config
from repro.catalog import events as ev
from repro.errors import CatalogError, GISError


def base_config(journal_path: str, **catalog_overrides) -> dict:
    catalog = {"journal": journal_path, "recover_on_start": True}
    catalog.update(catalog_overrides)
    return {
        "sources": {
            "crm": {
                "type": "memory",
                "tables": {
                    "CUSTOMERS": {
                        "columns": [
                            ["id", "INT"], ["name", "TEXT"],
                            ["region", "TEXT"], ["score", "FLOAT"],
                        ],
                        "rows": [
                            [1, "Alice", "east", 10.0],
                            [2, "Bob", "west", 20.0],
                            [3, "Cara", "east", 30.0],
                            [4, "Dan", "west", 40.0],
                        ],
                    }
                },
                "link": {"latency_ms": 20, "bandwidth_bytes_per_s": 1e6},
            },
            "erp": {
                "type": "sqlite",
                "tables": {
                    "ORDERS": {
                        "columns": [
                            ["oid", "INT"], ["cid", "INT"], ["total", "FLOAT"],
                        ],
                        "rows": [
                            [100, 1, 250.0], [101, 2, 80.0],
                            [102, 3, 990.0], [103, 4, 15.0],
                        ],
                    }
                },
                "link": {"latency_ms": 30, "bandwidth_bytes_per_s": 2e6},
            },
        },
        "tables": [
            {"name": "customers", "source": "crm", "remote_table": "CUSTOMERS"},
            {"name": "orders", "source": "erp", "remote_table": "ORDERS"},
        ],
        "views": {
            "big_orders": "SELECT oid, cid, total FROM orders WHERE total > 50"
        },
        "analyze": True,
        "plan_cache_size": 32,
        "result_cache_size": 8,
        "cache": {"fragment_bytes": 1 << 20},
        "catalog": catalog,
    }


WORKLOAD = [
    "SELECT COUNT(*) FROM big_orders",
    "SELECT name, total FROM customers, orders "
    "WHERE id = cid AND total > 100",
    "SELECT region, SUM(score) FROM customers GROUP BY region",
]


# ---------------------------------------------------------------------------
# crash / rebuild / replay
# ---------------------------------------------------------------------------


class TestRecovery:
    def test_restart_replays_to_identical_plans_and_results(self, tmp_path):
        config = base_config(str(tmp_path / "catalog.jsonl"))
        warm = build_from_config(config)
        warm_results = {sql: warm.query(sql) for sql in WORKLOAD}
        warm_plans = {sql: warm.explain(sql) for sql in WORKLOAD}

        # "Crash": drop the mediator, rebuild from the same config.
        recovered = build_from_config(config)
        assert recovered.catalog_recovery["recovered"]
        assert recovered.catalog_recovery["errors"] == []
        for sql in WORKLOAD:
            assert recovered.explain(sql) == warm_plans[sql], sql
            result = recovered.query(sql)
            assert result.column_names == warm_results[sql].column_names
            assert sorted(result.rows) == sorted(warm_results[sql].rows)
            for row, twin in zip(
                sorted(result.rows), sorted(warm_results[sql].rows)
            ):
                for a, b in zip(row, twin):
                    assert type(a) is type(b), (row, twin)

    def test_statistics_roundtrip_exactly(self, tmp_path):
        config = base_config(str(tmp_path / "catalog.jsonl"))
        warm = build_from_config(config)
        recovered = build_from_config(config)
        for table in ("customers", "orders"):
            a = warm.catalog.statistics(table)
            b = recovered.catalog.statistics(table)
            assert a is not None and b is not None
            assert a.to_dict() == b.to_dict()

    def test_epochs_monotone_across_restart(self, tmp_path):
        config = base_config(str(tmp_path / "catalog.jsonl"))
        warm = build_from_config(config)
        for _ in range(3):
            warm.notify_source_changed("crm")
        pre = warm.catalog.versions.snapshot()
        pre_catalog = warm.catalog.versions.catalog_epoch
        recovered = build_from_config(config)
        post = recovered.catalog.versions.snapshot()
        for source, epoch in pre.items():
            assert post.get(source, 0) >= epoch
        assert recovered.catalog.versions.catalog_epoch >= pre_catalog

    def test_midworkload_lifecycle_survives_restart(self, tmp_path):
        config = base_config(str(tmp_path / "catalog.jsonl"))
        warm = build_from_config(config)
        warm.query(WORKLOAD[0])
        warm.unregister_source("erp")  # mid-workload detach...
        warm.query("SELECT COUNT(*) FROM customers")

        recovered = build_from_config(config)
        assert not recovered.catalog.has_source("erp")
        assert not recovered.catalog.has_table("orders")
        assert recovered.catalog.has_table("customers")
        assert recovered.query("SELECT COUNT(*) FROM customers").scalar() == 4
        with pytest.raises(GISError):
            recovered.query("SELECT COUNT(*) FROM orders")

    def test_materialized_views_are_rebuilt(self, tmp_path):
        config = base_config(str(tmp_path / "catalog.jsonl"))
        warm = build_from_config(config)
        warm.query(
            "CREATE MATERIALIZED VIEW pricey WITH STALENESS 60000 AS "
            "SELECT oid, total FROM orders WHERE total > 500"
        )
        warm_rows = warm.query("SELECT * FROM pricey").rows

        recovered = build_from_config(config)
        assert recovered.materialized.has("pricey")
        result = recovered.query("SELECT * FROM pricey")
        assert sorted(result.rows) == sorted(warm_rows)
        assert result.metrics.network.materialized_view_hits == 1

    def test_empty_or_missing_journal_is_a_cold_start(self, tmp_path):
        config = base_config(str(tmp_path / "catalog.jsonl"))
        gis = build_from_config(config)
        assert gis.catalog_recovery is not None
        assert not gis.catalog_recovery["recovered"]
        assert gis.catalog.source_names() == ["crm", "erp"]
        assert gis.query(WORKLOAD[0]).scalar() == 3

    def test_torn_final_write_is_dropped_not_fatal(self, tmp_path):
        journal = tmp_path / "catalog.jsonl"
        config = base_config(str(journal))
        build_from_config(config)
        with open(journal, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 99999, "kind": "stats_upd')  # torn record
        recovered = build_from_config(config)
        assert recovered.catalog_recovery["recovered"]
        assert any(
            "truncated" in error for error in recovered.catalog_recovery["errors"]
        )
        assert recovered.query(WORKLOAD[0]).scalar() == 3

    def test_programmatic_source_is_skipped_with_report(self, tmp_path):
        from repro import MemorySource
        from repro.catalog.schema import schema_from_pairs

        config = base_config(str(tmp_path / "catalog.jsonl"))
        warm = build_from_config(config)
        extra = MemorySource("extra")
        extra.add_table(
            "things", schema_from_pairs("things", [("k", "INT")]), [(1,)]
        )
        warm.register_source("extra", extra)  # no spec: ephemeral
        warm.register_table("things", source="extra")

        recovered = build_from_config(config)
        assert recovered.catalog_recovery["skipped_sources"] == ["extra"]
        assert not recovered.catalog.has_source("extra")
        assert not recovered.catalog.has_table("things")
        # Everything declarative is still intact.
        assert recovered.query(WORKLOAD[0]).scalar() == 3

    def test_journal_compacts_on_recovery_and_snapshot_interval(self, tmp_path):
        journal = tmp_path / "catalog.jsonl"
        config = base_config(str(journal), snapshot_interval=4)
        warm = build_from_config(config)
        for _ in range(6):
            warm.notify_source_changed("crm")
        records = [
            json.loads(line) for line in open(journal, encoding="utf-8")
        ]
        assert any(record["kind"] == "snapshot" for record in records)

        build_from_config(config)
        compacted = [
            json.loads(line) for line in open(journal, encoding="utf-8")
        ]
        assert len(compacted) == 1
        assert compacted[0]["kind"] == "snapshot"
        # And the compacted snapshot alone still recovers everything.
        again = build_from_config(config)
        assert again.catalog_recovery["recovered"]
        assert again.query(WORKLOAD[0]).scalar() == 3

    def test_recovered_epoch_rejects_prior_life_admissions(self, tmp_path):
        """A fill computed under a pre-crash epoch must not be admitted
        into a recovered mediator whose clock moved past it."""
        config = base_config(str(tmp_path / "catalog.jsonl"))
        warm = build_from_config(config)
        warm.notify_source_changed("erp")
        pre_epoch = warm.catalog.versions.current("erp") - 1  # stale snapshot
        recovered = build_from_config(config)
        cache = recovered.fragment_cache
        cache._admit("k", "erp", None, [[(1,)]], 8, pre_epoch)
        assert cache.stats()["rejected_stale"] == 1
        assert cache.stats()["admissions"] == 0


# ---------------------------------------------------------------------------
# config validation
# ---------------------------------------------------------------------------


class TestCatalogConfig:
    def test_unknown_key_rejected(self, tmp_path):
        config = base_config(str(tmp_path / "j.jsonl"))
        config["catalog"]["journal_pth"] = "typo"
        with pytest.raises(CatalogError, match="journal_pth"):
            build_from_config(config)

    def test_journal_must_be_path_string(self, tmp_path):
        config = base_config(str(tmp_path / "j.jsonl"))
        config["catalog"]["journal"] = 7
        with pytest.raises(CatalogError, match="journal"):
            build_from_config(config)

    def test_snapshot_interval_must_be_positive(self, tmp_path):
        config = base_config(str(tmp_path / "j.jsonl"), snapshot_interval=0)
        with pytest.raises(CatalogError, match="snapshot_interval"):
            build_from_config(config)

    def test_recover_on_start_must_be_boolean(self, tmp_path):
        config = base_config(str(tmp_path / "j.jsonl"))
        config["catalog"]["recover_on_start"] = "yes"
        with pytest.raises(CatalogError, match="recover_on_start"):
            build_from_config(config)

    def test_journal_without_recovery_still_records(self, tmp_path):
        journal = tmp_path / "j.jsonl"
        config = base_config(str(journal), recover_on_start=False)
        gis = build_from_config(config)
        assert gis.catalog_recovery is None
        assert journal.exists()
        assert gis.catalog_journal.position()["seq"] > 0


# ---------------------------------------------------------------------------
# property: epochs are monotone under arbitrary interleavings & restarts
# ---------------------------------------------------------------------------

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("bump"), st.sampled_from(["a", "b", "c"])),
        st.tuples(st.just("bump_all"), st.none()),
        st.tuples(st.just("schema"), st.sampled_from(["t1", "t2"])),
        st.tuples(st.just("stats"), st.sampled_from(["t1", "t2"])),
        st.tuples(st.just("catalog"), st.none()),
        st.tuples(st.just("restart"), st.none()),
    ),
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
def test_versions_monotone_under_interleavings_and_restarts(ops):
    """Whatever the event interleaving — including restarts that persist
    and restore the vector mid-stream — no counter ever goes backwards."""
    versions = CatalogVersions()
    watched_sources = ("a", "b", "c")
    watched_tables = ("t1", "t2")

    def observe():
        return (
            {s: versions.current(s) for s in watched_sources},
            {t: versions.schema_version(t) for t in watched_tables},
            {t: versions.stats_version(t) for t in watched_tables},
            versions.catalog_epoch,
        )

    last = observe()
    for op, arg in ops:
        if op == "bump":
            versions.bump(arg)
        elif op == "bump_all":
            versions.bump_all()
        elif op == "schema":
            versions.bump_schema(arg)
        elif op == "stats":
            versions.bump_stats(arg)
        elif op == "catalog":
            versions.bump_catalog()
        elif op == "restart":
            state = versions.state()
            assert state == json.loads(json.dumps(state))  # JSON-safe
            versions = CatalogVersions()
            versions.restore(state)
        now = observe()
        for source in watched_sources:
            assert now[0][source] >= last[0][source], (op, arg)
        for table in watched_tables:
            assert now[1][table] >= last[1][table], (op, arg)
            assert now[2][table] >= last[2][table], (op, arg)
        assert now[3] >= last[3], (op, arg)
        last = now


@settings(max_examples=40, deadline=None)
@given(
    bumps=st.lists(st.sampled_from(["a", "b"]), max_size=20),
    replay_bumps=st.lists(st.sampled_from(["a", "b"]), max_size=20),
)
def test_restore_is_a_max_merge(bumps, replay_bumps):
    """Replay-side bumps never push the restored clock *behind* the
    journaled one, and the journaled clock never erases replay progress."""
    old = CatalogVersions()
    for source in bumps:
        old.bump(source)
    fresh = CatalogVersions()
    for source in replay_bumps:
        fresh.bump(source)
    pre_restore = fresh.snapshot()
    fresh.restore(old.state())
    for source in ("a", "b"):
        assert fresh.current(source) >= old.current(source)
        assert fresh.current(source) >= pre_restore.get(source, 0)

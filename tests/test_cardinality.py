"""Cardinality estimation: scans, filters, joins, aggregates, histograms."""

import pytest

from repro import Catalog, MemorySource, TableMapping
from repro.catalog.schema import schema_from_pairs
from repro.catalog.statistics import TableStatistics
from repro.core.analyzer import Analyzer
from repro.core.cardinality import (
    Estimator,
)
from repro.core.rewriter import rewrite
from repro.sql.parser import parse_select


def build_catalog(with_stats=True, histogram_buckets=16):
    catalog = Catalog()
    source = MemorySource("mem")
    t_schema = schema_from_pairs("t", [("a", "INT"), ("b", "TEXT")])
    u_schema = schema_from_pairs("u", [("a", "INT"), ("k", "INT")])
    # t.a uniform 0..999; t.b has 10 distinct values; u.a 0..99, u.k skewed.
    t_rows = [(i, f"b{i % 10}") for i in range(1000)]
    u_rows = [(i, 0 if i < 90 else i) for i in range(100)]
    source.add_table("t", t_schema, t_rows)
    source.add_table("u", u_schema, u_rows)
    catalog.register_source("mem", source)
    catalog.register_table("t", t_schema, TableMapping("mem", "t"))
    catalog.register_table("u", u_schema, TableMapping("mem", "u"))
    if with_stats:
        catalog.set_statistics(
            "t", TableStatistics.from_rows(t_schema, t_rows, histogram_buckets)
        )
        catalog.set_statistics(
            "u", TableStatistics.from_rows(u_schema, u_rows, histogram_buckets)
        )
    return catalog


def plan_for(catalog, sql, optimized=True):
    plan = Analyzer(catalog).bind_statement(parse_select(sql))
    return rewrite(plan) if optimized else plan


class TestScanEstimates:
    def test_scan_uses_statistics(self):
        catalog = build_catalog()
        estimator = Estimator(catalog)
        plan = plan_for(catalog, "SELECT * FROM t", optimized=False)
        assert estimator.estimate_rows(plan) == 1000

    def test_scan_without_stats_uses_adapter_metadata(self):
        catalog = build_catalog(with_stats=False)
        estimator = Estimator(catalog)
        plan = plan_for(catalog, "SELECT * FROM t", optimized=False)
        # MemorySource exposes row_count, so we still get the truth.
        assert estimator.estimate_rows(plan) == 1000


class TestFilterSelectivity:
    def test_equality_via_histogram(self):
        catalog = build_catalog()
        estimator = Estimator(catalog)
        plan = plan_for(catalog, "SELECT a FROM t WHERE b = 'b3'")
        estimate = estimator.estimate_rows(plan)
        assert estimate == pytest.approx(100, rel=0.5)

    def test_range_via_histogram(self):
        catalog = build_catalog()
        estimator = Estimator(catalog)
        plan = plan_for(catalog, "SELECT a FROM t WHERE a < 250")
        assert estimator.estimate_rows(plan) == pytest.approx(250, rel=0.2)

    def test_between(self):
        catalog = build_catalog()
        estimator = Estimator(catalog)
        plan = plan_for(catalog, "SELECT a FROM t WHERE a BETWEEN 100 AND 299")
        assert estimator.estimate_rows(plan) == pytest.approx(200, rel=0.3)

    def test_conjunction_multiplies(self):
        catalog = build_catalog()
        estimator = Estimator(catalog)
        plan = plan_for(catalog, "SELECT a FROM t WHERE a < 500 AND b = 'b1'")
        assert estimator.estimate_rows(plan) == pytest.approx(50, rel=0.6)

    def test_skew_with_histogram_beats_uniform(self):
        catalog = build_catalog()
        skew_aware = Estimator(catalog, use_histograms=True)
        uniform = Estimator(catalog, use_histograms=False)
        plan = plan_for(catalog, "SELECT k FROM u WHERE k = 0")
        truth = 90.0
        aware_error = abs(skew_aware.estimate_rows(plan) - truth)
        uniform_error = abs(uniform.estimate_rows(plan) - truth)
        assert aware_error < uniform_error

    def test_in_list(self):
        catalog = build_catalog()
        estimator = Estimator(catalog)
        plan = plan_for(catalog, "SELECT a FROM t WHERE b IN ('b1', 'b2')")
        assert estimator.estimate_rows(plan) == pytest.approx(200, rel=0.5)

    def test_or_combination(self):
        catalog = build_catalog()
        estimator = Estimator(catalog)
        plan = plan_for(catalog, "SELECT a FROM t WHERE a < 100 OR a >= 900")
        assert estimator.estimate_rows(plan) == pytest.approx(200, rel=0.4)

    def test_selectivity_clamped(self):
        catalog = build_catalog()
        estimator = Estimator(catalog)
        plan = plan_for(
            catalog, "SELECT a FROM t WHERE a < 100 AND a < 100 AND a < 100"
        )
        assert 0 <= estimator.estimate_rows(plan) <= 1000


class TestJoinEstimates:
    def test_equi_join_uses_ndv(self):
        catalog = build_catalog()
        estimator = Estimator(catalog)
        plan = plan_for(catalog, "SELECT 1 FROM t JOIN u ON t.a = u.a")
        # |t|*|u| / max(ndv)=1000 → ≈100
        assert estimator.estimate_rows(plan) == pytest.approx(100, rel=0.3)

    def test_cross_join_is_product(self):
        catalog = build_catalog()
        estimator = Estimator(catalog)
        plan = plan_for(catalog, "SELECT 1 FROM t CROSS JOIN u", optimized=False)
        assert estimator.estimate_rows(plan) == pytest.approx(100_000)

    def test_semi_join_bounded_by_left(self):
        catalog = build_catalog()
        estimator = Estimator(catalog)
        plan = plan_for(
            catalog, "SELECT a FROM t WHERE a IN (SELECT a FROM u)", optimized=False
        )
        assert estimator.estimate_rows(plan) <= 1000

    def test_left_join_at_least_left(self):
        catalog = build_catalog()
        estimator = Estimator(catalog)
        plan = plan_for(
            catalog, "SELECT t.a FROM t LEFT JOIN u ON t.a = u.a", optimized=False
        )
        assert estimator.estimate_rows(plan) >= 1000


class TestAggregateAndMisc:
    def test_global_aggregate_is_one(self):
        catalog = build_catalog()
        estimator = Estimator(catalog)
        plan = plan_for(catalog, "SELECT COUNT(*) FROM t", optimized=False)
        assert estimator.estimate_rows(plan) == 1.0

    def test_group_count_via_ndv(self):
        catalog = build_catalog()
        estimator = Estimator(catalog)
        plan = plan_for(catalog, "SELECT b, COUNT(*) FROM t GROUP BY b")
        assert estimator.estimate_rows(plan) == pytest.approx(10, rel=0.2)

    def test_limit_caps(self):
        catalog = build_catalog()
        estimator = Estimator(catalog)
        plan = plan_for(catalog, "SELECT a FROM t LIMIT 7", optimized=False)
        assert estimator.estimate_rows(plan) == 7

    def test_union_sums(self):
        catalog = build_catalog()
        estimator = Estimator(catalog)
        plan = plan_for(
            catalog,
            "SELECT a FROM t UNION ALL SELECT a FROM u",
            optimized=False,
        )
        assert estimator.estimate_rows(plan) == pytest.approx(1100)

    def test_width_uses_measured_text(self):
        catalog = build_catalog()
        estimator = Estimator(catalog)
        plan = plan_for(catalog, "SELECT b FROM t", optimized=False)
        width = estimator.estimate_width(plan.output_columns)
        assert width == pytest.approx(2.0, abs=0.5)  # "b3" etc.

    def test_width_default_without_stats(self):
        catalog = build_catalog(with_stats=False)
        estimator = Estimator(catalog)
        plan = plan_for(catalog, "SELECT b FROM t", optimized=False)
        assert estimator.estimate_width(plan.output_columns) == 24.0

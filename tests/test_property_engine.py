"""Property-based differential testing: random queries vs a Python oracle.

Hypothesis composes random (but valid) WHERE clauses, projections, and
aggregations over the small two-source federation; the distributed engine's
answer must match both the reference interpreter and a direct Python
evaluation of the same predicate.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from .conftest import CUSTOMERS, ORDERS, assert_same_rows, make_small_gis

# One shared federation: queries are read-only.
GIS = make_small_gis()

_COLUMNS = {
    "oid": ("int", [row[0] for row in ORDERS]),
    "cust_id": ("int", [row[1] for row in ORDERS]),
    "total": ("float", [row[2] for row in ORDERS]),
    "status": ("text", [row[4] for row in ORDERS]),
}

_COMPARISONS = ["=", "<>", "<", "<=", ">", ">="]


@st.composite
def simple_predicate(draw):
    """(sql_text, python_fn) over the `orders` table."""
    column = draw(st.sampled_from(sorted(_COLUMNS)))
    kind, values = _COLUMNS[column]
    operator = draw(st.sampled_from(_COMPARISONS))
    if kind == "int":
        literal = draw(st.integers(-5, 120))
        sql_literal = str(literal)
    elif kind == "float":
        literal = float(draw(st.integers(0, 1100)))
        sql_literal = repr(literal)
    else:
        literal = draw(st.sampled_from(["OPEN", "SHIPPED", "RETURNED", "zzz"]))
        sql_literal = f"'{literal}'"
    index = ["oid", "cust_id", "total", "odate", "status"].index(column)

    def check(row):
        value = row[index]
        if value is None:
            return False
        return {
            "=": value == literal,
            "<>": value != literal,
            "<": value < literal,
            "<=": value <= literal,
            ">": value > literal,
            ">=": value >= literal,
        }[operator]

    return f"{column} {operator} {sql_literal}", check


@st.composite
def predicate_tree(draw, depth=2):
    if depth == 0 or draw(st.booleans()):
        return draw(simple_predicate())
    connective = draw(st.sampled_from(["AND", "OR"]))
    left_sql, left_fn = draw(predicate_tree(depth=depth - 1))
    right_sql, right_fn = draw(predicate_tree(depth=depth - 1))
    sql = f"({left_sql} {connective} {right_sql})"
    if connective == "AND":
        return sql, lambda row: left_fn(row) and right_fn(row)
    return sql, lambda row: left_fn(row) or right_fn(row)


@settings(max_examples=80, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(predicate_tree())
def test_random_filters_match_python_oracle(tree):
    sql_predicate, check = tree
    result = GIS.query(f"SELECT oid FROM orders WHERE {sql_predicate}")
    expected = sorted(row[0] for row in ORDERS if check(row))
    assert sorted(r[0] for r in result.rows) == expected


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(predicate_tree(), st.sampled_from(["COUNT", "SUM", "MIN", "MAX", "AVG"]))
def test_random_aggregates_match_python_oracle(tree, function):
    sql_predicate, check = tree
    result = GIS.query(
        f"SELECT {function}(total) FROM orders WHERE {sql_predicate}"
    )
    totals = [row[2] for row in ORDERS if check(row)]
    value = result.scalar()
    if function == "COUNT":
        assert value == len(totals)
    elif not totals:
        assert value is None
    elif function == "SUM":
        assert value == pytest.approx(sum(totals))
    elif function == "AVG":
        assert value == pytest.approx(sum(totals) / len(totals))
    elif function == "MIN":
        assert value == min(totals)
    else:
        assert value == max(totals)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(predicate_tree())
def test_random_join_filters_match_reference(tree):
    sql_predicate, _ = tree
    sql = (
        "SELECT c.name, o.oid FROM customers c "
        f"JOIN orders o ON c.id = o.cust_id WHERE {sql_predicate}"
    )
    result = GIS.query(sql)
    _, reference = GIS.reference_query(sql)
    assert_same_rows(result.rows, reference)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(0, 10), st.integers(0, 10))
def test_random_limit_offset_window(limit, offset):
    result = GIS.query(
        f"SELECT oid FROM orders ORDER BY oid LIMIT {limit} OFFSET {offset}"
    )
    ordered = sorted(row[0] for row in ORDERS)
    assert [r[0] for r in result.rows] == ordered[offset : offset + limit]


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.integers(-5, 20), min_size=1, max_size=8))
def test_random_in_lists(values):
    literals = ", ".join(map(str, values))
    result = GIS.query(f"SELECT id FROM customers WHERE id IN ({literals})")
    expected = sorted(
        {row[0] for row in CUSTOMERS if row[0] in set(values)}
    )
    assert sorted(r[0] for r in result.rows) == expected


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(predicate_tree(), st.integers(1, 16))
def test_random_filters_invariant_under_batch_size(tree, batch_size):
    # The batch-at-a-time executor is a pure dataflow change: any batch
    # size (including awkward ones that never divide the input evenly)
    # must produce bit-identical rows and network accounting.
    from repro import PlannerOptions

    sql_predicate, _ = tree
    sql = (
        "SELECT c.name, o.oid FROM customers c "
        f"JOIN orders o ON c.id = o.cust_id WHERE {sql_predicate} "
        "ORDER BY o.oid"
    )
    default = GIS.query(sql)
    variant = GIS.query(sql, PlannerOptions(batch_size=batch_size))
    assert variant.rows == default.rows
    assert variant.metrics.network.messages == default.metrics.network.messages
    assert variant.metrics.network.bytes_shipped == \
        default.metrics.network.bytes_shipped

"""Runtime catalog lifecycle: events, unregister cascades, alter_table.

The catalog is live now: sources attach and detach mid-session, tables
get altered, and every mutation publishes a typed event and bumps the
unified version vector. These tests pin down the cascade semantics —
dangling replicas never outlive their source, surviving replicas get
promoted, breaker/link/fragment-cache state dies with the source — and
the regression the refactor must not lose: a mid-flight source change
(now signalled through the catalog) still rejects fragment-cache fills.
"""

from __future__ import annotations

import io

import pytest

from repro import GlobalInformationSystem, MemorySource
from repro.catalog import events as ev
from repro.catalog.schema import schema_from_pairs
from repro.core.physical import ExchangeExec
from repro.errors import (
    CatalogError,
    DuplicateObjectError,
    GISError,
    UnknownObjectError,
)
from repro.repl import Repl
from repro.sources import NetworkLink

CUSTOMERS = [
    (1, "Alice", "east", 10.0),
    (2, "Bob", "west", 20.0),
    (3, "Cara", "east", 30.0),
]
ORDERS = [(100, 1, 250.0), (101, 2, 80.0), (102, 3, 990.0)]


def customer_schema(name="customers"):
    return schema_from_pairs(
        name, [("id", "INT"), ("name", "TEXT"), ("region", "TEXT"), ("score", "FLOAT")]
    )


def make_gis(with_replica: bool = True, **kwargs) -> GlobalInformationSystem:
    """CRM + ERP, with an optional full replica of customers on 'mirror'."""
    kwargs.setdefault("fragment_cache_bytes", 1 << 20)
    kwargs.setdefault("result_cache_size", 8)
    kwargs.setdefault("plan_cache_size", 32)
    gis = GlobalInformationSystem(**kwargs)
    crm = MemorySource("crm")
    crm.add_table("customers", customer_schema(), CUSTOMERS)
    erp = MemorySource("erp")
    erp.add_table(
        "ORDERS",
        schema_from_pairs("ORDERS", [("oid", "INT"), ("cid", "INT"), ("total", "FLOAT")]),
        ORDERS,
    )
    gis.register_source("crm", crm, link=NetworkLink(20.0, 1e6))
    gis.register_source("erp", erp, link=NetworkLink(30.0, 2e6))
    gis.register_table("customers", source="crm")
    gis.register_table("orders", source="erp", remote_table="ORDERS")
    if with_replica:
        mirror = MemorySource("mirror")
        mirror.add_table("customers", customer_schema(), CUSTOMERS)
        gis.register_source("mirror", mirror, link=NetworkLink(5.0, 8e6))
        gis.register_replica("customers", source="mirror")
    return gis


# ---------------------------------------------------------------------------
# events
# ---------------------------------------------------------------------------


class TestEvents:
    def test_mutations_publish_typed_events_in_order(self):
        gis = make_gis(with_replica=False)
        seen = []
        gis.catalog.subscribe(seen.append)
        mirror = MemorySource("mirror")
        mirror.add_table("customers", customer_schema(), CUSTOMERS)
        gis.register_source("mirror", mirror)
        gis.register_replica("customers", source="mirror")
        gis.create_view("east", "SELECT * FROM customers WHERE region = 'east'")
        gis.analyze(["customers"])
        kinds = [event.kind for event in seen]
        assert kinds == [
            ev.SOURCE_REGISTERED,
            ev.REPLICA_ADDED,
            ev.VIEW_REGISTERED,
            ev.STATS_UPDATED,
        ]
        assert all(not event.is_cascade for event in seen)

    def test_catalog_epoch_strictly_increases_per_event(self):
        gis = make_gis()
        seen = []
        gis.catalog.subscribe(seen.append)
        gis.notify_source_changed("crm")
        gis.analyze(["customers"])
        epochs = [event.catalog_epoch for event in seen]
        assert epochs == sorted(epochs)
        assert len(set(epochs)) == len(epochs)

    def test_unsubscribe_stops_delivery(self):
        gis = make_gis()
        seen = []
        gis.catalog.subscribe(seen.append)
        gis.catalog.unsubscribe(seen.append)
        gis.notify_source_changed("crm")
        assert seen == []


# ---------------------------------------------------------------------------
# unregister_source cascades
# ---------------------------------------------------------------------------


class TestUnregisterSource:
    def test_unknown_source_raises(self):
        gis = make_gis()
        with pytest.raises(UnknownObjectError):
            gis.unregister_source("nope")

    def test_dangling_replicas_are_dropped_with_their_source(self):
        gis = make_gis()
        report = gis.unregister_source("mirror")
        assert report["dropped_replicas"] == ["customers"]
        assert report["dropped_tables"] == []
        entry = gis.catalog.table("customers")
        assert entry.mapping.source == "crm"
        assert entry.replicas == []
        # The table still answers queries from its primary.
        assert gis.query("SELECT COUNT(*) FROM customers").scalar() == 3

    def test_surviving_replica_is_promoted_to_primary(self):
        gis = make_gis()
        before = gis.query("SELECT id, name FROM customers WHERE score > 15")
        report = gis.unregister_source("crm")
        assert report["promoted_tables"] == ["customers"]
        entry = gis.catalog.table("customers")
        assert entry.mapping.source == "mirror"
        assert entry.replicas == []
        after = gis.query("SELECT id, name FROM customers WHERE score > 15")
        assert sorted(after.rows) == sorted(before.rows)

    def test_table_without_surviving_copy_is_dropped_with_stats(self):
        gis = make_gis()
        gis.analyze(["orders"])
        assert gis.catalog.statistics("orders") is not None
        report = gis.unregister_source("erp")
        assert report["dropped_tables"] == ["orders"]
        assert not gis.catalog.has_table("orders")
        assert gis.catalog.statistics("orders") is None
        with pytest.raises(GISError):
            gis.query("SELECT COUNT(*) FROM orders")

    def test_breaker_link_and_fragment_entries_die_with_the_source(self):
        gis = make_gis()
        gis.query("SELECT oid, total FROM orders WHERE total > 100")
        assert len(gis.fragment_cache) >= 1
        gis.breakers.breaker_for("erp", 5, 1000.0)
        default = gis.network.link_for("unknown-source")
        assert gis.network.link_for("erp") is not default
        gis.unregister_source("erp")
        assert all(
            entry.source != "erp"
            for entry in gis.fragment_cache._entries.values()
        )
        assert gis.breakers.get("erp") is None
        assert gis.network.link_for("erp") is default

    def test_health_state_and_hedge_bookkeeping_die_with_the_source(self):
        """A stale latency profile surviving re-register would poison the
        adaptive timeout and hedge delay of the *new* source wearing the
        old name — health must be cleaned up exactly like breakers."""
        gis = make_gis()
        for _ in range(10):
            gis.health.observe_latency("erp", 500.0)
        gis.health.record_error("erp")
        gis.health.record_hedge("erp", won=False)
        assert gis.health.adaptive_timeout_ms("erp", 3.0, 50.0, 30000.0) == 1500.0
        gis.unregister_source("erp")
        assert gis.health.get("erp") is None
        assert "erp" not in gis.health.snapshot()
        # A re-registered source starts cold: static fallback, no hedge
        # history, fresh quantiles.
        erp2 = MemorySource("erp")
        erp2.add_table(
            "ORDERS",
            schema_from_pairs(
                "ORDERS",
                [("oid", "INT"), ("cid", "INT"), ("total", "FLOAT")],
            ),
            ORDERS,
        )
        gis.register_source("erp", erp2)
        gis.register_table("orders", source="erp", remote_table="ORDERS")
        assert gis.health.adaptive_timeout_ms("erp", 3.0, 50.0, 30000.0) is None
        status = gis.health_status()["erp"]
        assert status["samples"] == 0
        assert status["hedges_launched"] == 0
        assert gis.query("SELECT COUNT(*) FROM orders").scalar() == len(ORDERS)

    def test_cascade_events_are_flagged(self):
        gis = make_gis()
        seen = []
        gis.catalog.subscribe(seen.append)
        gis.unregister_source("mirror")
        kinds = [(event.kind, event.is_cascade) for event in seen]
        assert (ev.REPLICA_DROPPED, True) in kinds
        assert (ev.SOURCE_UNREGISTERED, False) in kinds

    def test_reregistering_the_name_does_not_resurrect_old_epoch(self):
        gis = make_gis(with_replica=False)
        gis.notify_source_changed("crm")
        epoch_before = gis.catalog.versions.current("crm")
        gis.unregister_source("crm")
        crm2 = MemorySource("crm")
        crm2.add_table("customers", customer_schema(), CUSTOMERS[:1])
        gis.register_source("crm", crm2)
        assert gis.catalog.versions.current("crm") > epoch_before


# ---------------------------------------------------------------------------
# alter_table
# ---------------------------------------------------------------------------


class TestAlterTable:
    def test_alter_rederives_schema_and_drops_stats(self):
        gis = make_gis(with_replica=False)
        gis.analyze(["customers"])
        crm = gis.catalog.source("crm")
        crm.add_table(
            "customers_v2",
            schema_from_pairs(
                "customers_v2",
                [("id", "INT"), ("name", "TEXT"), ("tier", "TEXT")],
            ),
            [(1, "Alice", "gold"), (2, "Bob", "basic")],
        )
        schema_v = gis.catalog.versions.schema_version("customers")
        gis.alter_table("customers", remote_table="customers_v2")
        entry = gis.catalog.table("customers")
        assert entry.schema.column_names() == ["id", "name", "tier"]
        assert gis.catalog.statistics("customers") is None
        assert gis.catalog.versions.schema_version("customers") == schema_v + 1
        assert gis.query("SELECT tier FROM customers WHERE id = 1").rows == [
            ("gold",)
        ]

    def test_alter_drops_replicas_missing_new_columns(self):
        gis = make_gis()
        crm = gis.catalog.source("crm")
        crm.add_table(
            "customers_v2",
            schema_from_pairs(
                "customers_v2", [("id", "INT"), ("name", "TEXT"), ("tier", "TEXT")]
            ),
            [(1, "Alice", "gold")],
        )
        report = gis.alter_table("customers", remote_table="customers_v2")
        assert report["dropped_replicas"] == ["mirror"]
        assert gis.catalog.table("customers").replicas == []

    def test_alter_view_is_rejected(self):
        gis = make_gis(with_replica=False)
        gis.create_view("east", "SELECT * FROM customers WHERE region = 'east'")
        with pytest.raises(CatalogError):
            gis.alter_table("east")

    def test_alter_invalidates_cached_plans(self):
        gis = make_gis(with_replica=False)
        sql = "SELECT name FROM customers WHERE id = 1"
        gis.query(sql)
        gis.query(sql)
        crm = gis.catalog.source("crm")
        crm.add_table(
            "customers_v2",
            schema_from_pairs("customers_v2", [("id", "INT"), ("name", "TEXT")]),
            [(7, "Zoe")],
        )
        invalidations = gis.plan_cache.stats()["invalidations"]
        gis.alter_table("customers", remote_table="customers_v2")
        assert gis.plan_cache.stats()["invalidations"] > invalidations
        assert gis.query(sql).rows == []  # replanned against the new table


# ---------------------------------------------------------------------------
# the one-invalidation-authority regression (ISSUE 9 acceptance)
# ---------------------------------------------------------------------------


class TestUnifiedVersions:
    def test_midflight_source_change_still_rejects_fill(self):
        """The epochs.py regression: a source change signalled through the
        *catalog* mid-fill must still reject the fragment-cache admission."""
        gis = make_gis(with_replica=False)
        sql = "SELECT id, name, score FROM customers WHERE score > 5"
        planned = gis.plan(sql)
        exchange = next(
            op for op in planned.physical.walk() if isinstance(op, ExchangeExec)
        )
        ctx = gis._execution_context(None)
        decision = gis.fragment_cache.begin(exchange, ctx)
        assert decision is not None and decision.fill is not None
        filled = decision.fill(iter([[(1, "e", 10.0)], [(2, "w", 20.0)]]))
        next(filled)  # first page in flight...
        gis.notify_source_changed("crm")  # ...the catalog observes a change...
        for _ in filled:  # ...and the stream still finishes cleanly
            pass
        stats = gis.fragment_cache.stats()
        assert stats["admissions"] == 0
        assert stats["rejected_stale"] == 1

    def test_source_epochs_alias_is_the_catalog_versions(self):
        gis = make_gis(with_replica=False)
        assert gis.source_epochs is gis.catalog.versions
        assert gis.fragment_cache.epochs is gis.catalog.versions
        assert gis.materialized.epochs is gis.catalog.versions

    def test_register_table_bumps_through_the_catalog(self):
        gis = make_gis(with_replica=False)
        crm = gis.catalog.source("crm")
        epoch = gis.catalog.versions.current("crm")
        crm.add_table(
            "extra", schema_from_pairs("extra", [("k", "INT")]), [(1,)]
        )
        gis.register_table("extra", source="crm")
        assert gis.catalog.versions.current("crm") == epoch + 1

    def test_duplicate_source_still_rejected(self):
        gis = make_gis(with_replica=False)
        with pytest.raises(DuplicateObjectError):
            gis.register_source("crm", MemorySource("crm"))


# ---------------------------------------------------------------------------
# operator surface
# ---------------------------------------------------------------------------


class TestOperatorSurface:
    def test_catalog_status_reports_versions_and_journal(self):
        gis = make_gis()
        gis.analyze(["customers"])
        status = gis.catalog_status()
        assert status["catalog_epoch"] > 0
        by_name = {s["name"]: s for s in status["sources"]}
        assert set(by_name) == {"crm", "erp", "mirror"}
        assert not by_name["crm"]["recoverable"]  # programmatic, no spec
        tables = {t["name"]: t for t in status["tables"]}
        assert tables["customers"]["replicas"] == 1
        assert tables["customers"]["stats_version"] == 1
        assert tables["customers"]["analyzed"]
        assert tables["orders"]["stats_version"] == 0
        assert status["journal"] is None

    def test_repl_catalog_command(self):
        gis = make_gis()
        out = io.StringIO()
        repl = Repl(gis, out=out)
        repl.feed_line("\\catalog")
        text = out.getvalue()
        assert "catalog epoch:" in text
        assert "crm: epoch" in text
        assert "customers" in text
        assert "journal: OFF" in text

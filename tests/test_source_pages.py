"""Native ``execute_pages`` for the CSV, REST, and key-value adapters.

Each adapter pages its own results into columnar :class:`Page` batches
instead of inheriting the generic row shim. These tests pin the
equivalence: page shapes follow the adapter page contract (zero or more
full pages, then exactly one final partial — possibly empty — page),
and whole-query network accounting (messages, bytes, rows shipped) is
bit-identical to running the same query through the generic
``paginate_rows`` shim.
"""

from repro import GlobalInformationSystem
from repro.catalog.schema import Column, TableSchema, schema_from_pairs
from repro.core.pages import paginate_rows
from repro.core.physical import ExchangeExec
from repro.sources.base import Adapter
from repro.sources.csvfile import CsvSource
from repro.sources.keyvalue import KeyValueSource
from repro.sources.rest import RestSource


def scan_exchange(gis, sql):
    planned = gis.plan(sql)
    exchanges = [
        op for op in planned.physical.walk() if isinstance(op, ExchangeExec)
    ]
    assert len(exchanges) == 1
    return exchanges[0]


def shim_pages(adapter, fragment, page_rows):
    return list(
        paginate_rows(
            adapter.execute(fragment),
            page_rows,
            len(fragment.output_columns),
        )
    )


def native_pages(adapter, fragment, page_rows):
    return list(adapter.execute_pages(fragment, page_rows))


def network_totals(result):
    net = result.metrics.network
    return (net.messages, net.bytes_shipped, net.rows_shipped)


# ---------------------------------------------------------------------------
# federation builders
# ---------------------------------------------------------------------------


def make_csv_gis(directory, n_rows):
    schema = schema_from_pairs("logs", [("id", "INT"), ("msg", "TEXT")])
    rows = [(i, f"m{i}") for i in range(n_rows)]
    CsvSource.write_table(str(directory), "logs", schema, rows)
    source = CsvSource("archive", str(directory), {"logs": schema},
                       page_rows=4)
    gis = GlobalInformationSystem()
    gis.register_source("archive", source)
    gis.register_table("logs", source="archive")
    return gis, source


def make_rest_gis(n_rows, page_rows=3):
    schema = schema_from_pairs("events", [("eid", "INT"), ("kind", "TEXT")])
    rows = [(i, "a" if i % 2 else "b") for i in range(n_rows)]
    source = RestSource("feed", page_rows=page_rows)
    source.add_table("events", schema, rows)
    gis = GlobalInformationSystem()
    gis.register_source("feed", source)
    gis.register_table("events", source="feed")
    return gis, source


def make_kv_gis(n_rows, page_rows=4, reorder=False):
    schema = schema_from_pairs("profiles", [("user_id", "INT"),
                                            ("name", "TEXT")])
    rows = [(i, f"u{i}") for i in range(n_rows)]
    source = KeyValueSource("kv", page_rows=page_rows)
    source.add_table("profiles", schema, "user_id", rows)
    gis = GlobalInformationSystem()
    gis.register_source("kv", source)
    if reorder:
        # Global schema reverses the native column order, forcing the
        # paged fast path through its row-reordering branch.
        gis.register_table(
            "profiles",
            source="kv",
            schema=TableSchema(
                "profiles", [Column.of("name", "TEXT"),
                             Column.of("user_id", "INT")]
            ),
        )
    else:
        gis.register_table("profiles", source="kv")
    return gis, source


# ---------------------------------------------------------------------------
# page-shape equivalence against the paginate shim
# ---------------------------------------------------------------------------


class TestCsvPages:
    def test_matches_shim_with_partial_tail(self, tmp_path):
        gis, source = make_csv_gis(tmp_path, 10)
        exchange = scan_exchange(gis, "SELECT id, msg FROM logs")
        pages = native_pages(source, exchange.fragment, 4)
        assert [len(p) for p in pages] == [4, 4, 2]
        assert pages == shim_pages(source, exchange.fragment, 4)

    def test_exact_multiple_keeps_trailing_empty_page(self, tmp_path):
        gis, source = make_csv_gis(tmp_path, 8)
        exchange = scan_exchange(gis, "SELECT id, msg FROM logs")
        pages = native_pages(source, exchange.fragment, 4)
        assert [len(p) for p in pages] == [4, 4, 0]
        assert pages == shim_pages(source, exchange.fragment, 4)

    def test_empty_result_is_one_empty_page(self, tmp_path):
        gis, source = make_csv_gis(tmp_path, 0)
        exchange = scan_exchange(gis, "SELECT id, msg FROM logs")
        assert native_pages(source, exchange.fragment, 4) == [[]]

    def test_query_accounting_matches_shim(self, tmp_path, monkeypatch):
        gis, _ = make_csv_gis(tmp_path / "native", 10)
        native = network_totals(gis.query("SELECT id, msg FROM logs"))
        monkeypatch.setattr(CsvSource, "execute_pages",
                            Adapter.execute_pages)
        gis2, _ = make_csv_gis(tmp_path / "shim", 10)
        shim = network_totals(gis2.query("SELECT id, msg FROM logs"))
        assert native == shim


class TestRestPages:
    def test_matches_shim_through_pushed_filter(self):
        gis, source = make_rest_gis(13)
        sql = "SELECT eid, kind FROM events WHERE eid >= 2"
        exchange = scan_exchange(gis, sql)
        pages = native_pages(source, exchange.fragment, 3)
        assert [len(p) for p in pages] == [3, 3, 3, 2]
        assert pages == shim_pages(source, exchange.fragment, 3)

    def test_request_log_bookkeeping_identical(self):
        gis, source = make_rest_gis(9)  # 9 rows, page_rows=3
        exchange = scan_exchange(gis, "SELECT eid, kind FROM events")
        native_pages(source, exchange.fragment, 3)
        shim_pages(source, exchange.fragment, 3)
        native_request, shim_request = source.request_log[-2:]
        assert native_request.rows == shim_request.rows == 9
        # Logical API pages (ceil(rows/page_rows)) — one less than wire
        # messages here because 9 rows also ship a final empty page.
        assert native_request.pages == shim_request.pages == 3

    def test_query_accounting_matches_shim(self, monkeypatch):
        gis, _ = make_rest_gis(13)
        sql = "SELECT eid, kind FROM events WHERE eid >= 2"
        native = network_totals(gis.query(sql))
        monkeypatch.setattr(RestSource, "execute_pages",
                            Adapter.execute_pages)
        gis2, _ = make_rest_gis(13)
        shim = network_totals(gis2.query(sql))
        assert native == shim


class TestKeyValuePages:
    def test_scan_fast_path_matches_shim(self):
        gis, source = make_kv_gis(11)
        exchange = scan_exchange(gis, "SELECT user_id, name FROM profiles")
        pages = native_pages(source, exchange.fragment, 4)
        assert [len(p) for p in pages] == [4, 4, 3]
        assert pages == shim_pages(source, exchange.fragment, 4)

    def test_scan_fast_path_reorders_columns(self):
        gis, source = make_kv_gis(11, reorder=True)
        exchange = scan_exchange(gis, "SELECT name, user_id FROM profiles")
        pages = native_pages(source, exchange.fragment, 4)
        assert pages == shim_pages(source, exchange.fragment, 4)
        assert pages[0][0] == ("u0", 0)

    def test_exact_multiple_keeps_trailing_empty_page(self):
        gis, source = make_kv_gis(8)
        exchange = scan_exchange(gis, "SELECT user_id, name FROM profiles")
        pages = native_pages(source, exchange.fragment, 4)
        assert [len(p) for p in pages] == [4, 4, 0]
        assert pages == shim_pages(source, exchange.fragment, 4)

    def test_key_lookup_pages_match_shim(self):
        gis, source = make_kv_gis(20, page_rows=2)
        sql = ("SELECT user_id, name FROM profiles "
               "WHERE user_id IN (1, 3, 5, 99)")
        exchange = scan_exchange(gis, sql)
        pages = native_pages(source, exchange.fragment, 2)
        # 3 hits (99 misses): one full page then the final partial.
        assert [len(p) for p in pages] == [2, 1]
        assert pages == shim_pages(source, exchange.fragment, 2)

    def test_subclass_override_still_honored(self):
        calls = []

        class Instrumented(KeyValueSource):
            def execute(self, fragment):
                calls.append(fragment)
                yield from super().execute(fragment)

        schema = schema_from_pairs("t", [("k", "INT"), ("v", "TEXT")])
        source = Instrumented("kv")
        source.add_table("t", schema, "k", [(1, "x"), (2, "y")])
        gis = GlobalInformationSystem()
        gis.register_source("kv", source)
        gis.register_table("t", source="kv")
        exchange = scan_exchange(gis, "SELECT k, v FROM t")
        pages = native_pages(source, exchange.fragment, 4)
        assert calls, "override must keep seeing execute() calls"
        assert pages == [[(1, "x"), (2, "y")]]

    def test_query_accounting_matches_shim(self, monkeypatch):
        gis, _ = make_kv_gis(11)
        native = network_totals(gis.query("SELECT user_id, name FROM profiles"))
        monkeypatch.setattr(KeyValueSource, "execute_pages",
                            Adapter.execute_pages)
        gis2, _ = make_kv_gis(11)
        shim = network_totals(gis2.query("SELECT user_id, name FROM profiles"))
        assert native == shim

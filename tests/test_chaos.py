"""Chaos fuzzing: scripted faults may degrade or fail a query — never lie.

Every scenario drives the same three-source federation through a seeded
:class:`FaultPlan` and asserts the resilience invariant. The outcome must
be one of exactly three things:

(a) a complete answer bit-identical to the fault-free rows,
(b) an honestly-flagged partial result whose ``excluded_sources`` name
    only fault-injected sources and whose surviving sources are complete,
(c) a clean typed error attributed to a faulted source.

Wrong rows and hangs are never acceptable. Scenarios sweep sequential and
parallel execution, retry budgets, and both ``on_source_failure`` modes;
the seeded sweep covers 216 deterministic scenarios and hypothesis adds a
structured search on top.
"""

import random
from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    FaultPlan,
    FaultSpec,
    GISError,
    GlobalInformationSystem,
    MemorySource,
    PlannerOptions,
    SourceError,
)
from repro.catalog.schema import schema_from_pairs

SOURCES = ("alpha", "beta", "gamma")
ROWS_EACH = 30
PAGE_ROWS = 8  # several pages per scan, so mid-stream faults bite
SCHEMA = schema_from_pairs("t", [("a", "INT"), ("src", "TEXT")])
SQL = (
    "SELECT a, src FROM t_alpha UNION ALL "
    "SELECT a, src FROM t_beta UNION ALL "
    "SELECT a, src FROM t_gamma"
)

EXPECTED = {name: [(i, name) for i in range(ROWS_EACH)] for name in SOURCES}
ALL_ROWS = Counter(row for rows in EXPECTED.values() for row in rows)


def build_federation(retries=0):
    gis = GlobalInformationSystem(fragment_retries=retries)
    for name in SOURCES:
        source = MemorySource(name, page_rows=PAGE_ROWS)
        source.add_table(f"t_{name}", SCHEMA, EXPECTED[name])
        gis.register_source(name, source)
        gis.register_table(f"t_{name}", source=name)
    return gis


def random_plan(rng, seed):
    """A FaultPlan drawn from ``rng`` (independent of the plan's own seed)."""
    specs = {}
    for name in SOURCES:
        if rng.random() < 0.35:
            continue  # healthy source
        kind = rng.choice(("connect", "midstream", "flap", "rate", "latency"))
        if kind == "connect":
            spec = FaultSpec(
                fail_connect=rng.randint(1, 4),
                recover_after=rng.choice((None, 1, 2)),
                permanent=rng.random() < 0.25,
            )
        elif kind == "midstream":
            spec = FaultSpec(
                fail_after_pages=rng.randint(0, 3),
                recover_after=rng.choice((None, 1, 2)),
            )
        elif kind == "flap":
            spec = FaultSpec(
                fail_every=rng.randint(1, 3),
                fail_after_pages=rng.choice((None, 1)),
                recover_after=rng.choice((None, 1, 2, 3)),
            )
        elif kind == "rate":
            spec = FaultSpec(
                failure_rate=rng.choice((0.2, 0.5, 0.9)),
                recover_after=rng.choice((None, 2)),
                permanent=rng.random() < 0.2,
            )
        else:
            spec = FaultSpec(latency_ms=rng.choice((10.0, 100.0)))
        specs[name] = spec
    return FaultPlan.of(seed=seed, **specs)


def check_invariant(plan, mode, retries, parallel):
    """Run one scenario and enforce the tri-outcome invariant."""
    gis = build_federation(retries=retries)
    options = PlannerOptions(
        faults=plan, on_source_failure=mode, max_parallel_fragments=parallel
    )
    faulted = set(plan.faulted_sources)
    try:
        result = gis.query(SQL, options)
    except GISError as exc:
        # (c) clean, typed, attributed failure — only a faulted source may
        # sink the query, and only outside graceful degradation.
        assert isinstance(exc, SourceError), exc
        assert exc.source_name in faulted
        assert str(exc)
        return "error"
    if result.complete:
        # (a) the exact fault-free answer.
        assert result.excluded_sources == {}
        assert Counter(result.rows) == ALL_ROWS
        return "ok"
    # (b) honest partial: only faulted sources excluded, each with a
    # reason, survivors complete, nothing fabricated.
    excluded = result.excluded_sources
    assert mode == "partial"
    assert excluded and set(excluded) <= faulted
    assert all(reason for reason in excluded.values())
    got = Counter(result.rows)
    assert not got - ALL_ROWS, "fabricated rows"
    for name in SOURCES:
        per_source = Counter(row for row in result.rows if row[1] == name)
        if name not in excluded:
            assert per_source == Counter(EXPECTED[name])
    return "partial"


def run_scenario(plan, mode, retries, parallel):
    """One chaos run reduced to a comparable outcome tuple."""
    gis = build_federation(retries=retries)
    options = PlannerOptions(
        faults=plan, on_source_failure=mode, max_parallel_fragments=parallel
    )
    try:
        result = gis.query(SQL, options)
    except GISError as exc:
        return ("error", type(exc).__name__, str(exc))
    kind = "ok" if result.complete else "partial"
    return (kind, sorted(result.rows), sorted(result.excluded_sources.items()))


def scenario_knobs(rng):
    mode = rng.choice(("fail", "partial"))
    retries = rng.choice((0, 1, 2))
    parallel = rng.choice((1, 4))
    return mode, retries, parallel


SEEDS_PER_CHUNK = 27
N_CHUNKS = 8  # 216 seeded scenarios — above the 200-scenario bar


class TestSeededChaosSweep:
    @pytest.mark.parametrize("chunk", range(N_CHUNKS))
    def test_invariant_holds_across_seeds(self, chunk):
        start = chunk * SEEDS_PER_CHUNK
        for seed in range(start, start + SEEDS_PER_CHUNK):
            rng = random.Random(seed)
            plan = random_plan(rng, seed)
            mode, retries, parallel = scenario_knobs(rng)
            check_invariant(plan, mode, retries, parallel)

    def test_sweep_exercises_every_outcome(self):
        kinds = set()
        for seed in range(40):
            rng = random.Random(seed)
            plan = random_plan(rng, seed)
            retries = rng.choice((0, 1))
            kinds.add(check_invariant(plan, "partial", retries, 1))
            kinds.add(check_invariant(plan, "fail", 0, 1))
        assert {"ok", "partial", "error"} <= kinds

    @pytest.mark.parametrize("seed", [3, 11, 29, 47, 101])
    def test_scenarios_replay_deterministically(self, seed):
        rng = random.Random(seed)
        plan = random_plan(rng, seed)
        mode, retries, parallel = scenario_knobs(rng)
        first = run_scenario(plan, mode, retries, parallel)
        second = run_scenario(plan, mode, retries, parallel)
        assert first == second


FAULT_SPECS = st.builds(
    FaultSpec,
    fail_connect=st.integers(0, 3),
    fail_after_pages=st.none() | st.integers(0, 3),
    fail_every=st.integers(0, 2),
    failure_rate=st.sampled_from([0.0, 0.3, 0.9]),
    recover_after=st.none() | st.integers(1, 3),
    latency_ms=st.sampled_from([0.0, 25.0]),
    permanent=st.booleans(),
)


class TestHypothesisChaos:
    @given(
        specs=st.dictionaries(
            st.sampled_from(SOURCES), FAULT_SPECS, max_size=3
        ),
        seed=st.integers(0, 10_000),
        mode=st.sampled_from(["fail", "partial"]),
        retries=st.integers(0, 2),
        parallel=st.sampled_from([1, 4]),
    )
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_invariant_holds(self, specs, seed, mode, retries, parallel):
        plan = FaultPlan.of(seed=seed, **specs)
        check_invariant(plan, mode, retries, parallel)

"""Chaos fuzzing: scripted faults may degrade or fail a query — never lie.

Every scenario drives the same three-source federation through a seeded
:class:`FaultPlan` and asserts the resilience invariant. The outcome must
be one of exactly three things:

(a) a complete answer bit-identical to the fault-free rows,
(b) an honestly-flagged partial result whose ``excluded_sources`` name
    only fault-injected sources and whose surviving sources are complete,
(c) a clean typed error attributed to a faulted source.

Wrong rows and hangs are never acceptable. Scenarios sweep sequential and
parallel execution, retry budgets, and both ``on_source_failure`` modes;
the seeded sweep covers 216 deterministic scenarios and hypothesis adds a
structured search on top.
"""

import random
from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import (
    FaultPlan,
    FaultSpec,
    GISError,
    GlobalInformationSystem,
    MemorySource,
    PlannerOptions,
    SourceError,
)
from repro.catalog.schema import schema_from_pairs

SOURCES = ("alpha", "beta", "gamma")
ROWS_EACH = 30
PAGE_ROWS = 8  # several pages per scan, so mid-stream faults bite
SCHEMA = schema_from_pairs("t", [("a", "INT"), ("src", "TEXT")])
SQL = (
    "SELECT a, src FROM t_alpha UNION ALL "
    "SELECT a, src FROM t_beta UNION ALL "
    "SELECT a, src FROM t_gamma"
)

EXPECTED = {name: [(i, name) for i in range(ROWS_EACH)] for name in SOURCES}
ALL_ROWS = Counter(row for rows in EXPECTED.values() for row in rows)


def build_federation(retries=0):
    gis = GlobalInformationSystem(fragment_retries=retries)
    for name in SOURCES:
        source = MemorySource(name, page_rows=PAGE_ROWS)
        source.add_table(f"t_{name}", SCHEMA, EXPECTED[name])
        gis.register_source(name, source)
        gis.register_table(f"t_{name}", source=name)
    return gis


def random_plan(rng, seed):
    """A FaultPlan drawn from ``rng`` (independent of the plan's own seed)."""
    specs = {}
    for name in SOURCES:
        if rng.random() < 0.35:
            continue  # healthy source
        kind = rng.choice(("connect", "midstream", "flap", "rate", "latency"))
        if kind == "connect":
            spec = FaultSpec(
                fail_connect=rng.randint(1, 4),
                recover_after=rng.choice((None, 1, 2)),
                permanent=rng.random() < 0.25,
            )
        elif kind == "midstream":
            spec = FaultSpec(
                fail_after_pages=rng.randint(0, 3),
                recover_after=rng.choice((None, 1, 2)),
            )
        elif kind == "flap":
            spec = FaultSpec(
                fail_every=rng.randint(1, 3),
                fail_after_pages=rng.choice((None, 1)),
                recover_after=rng.choice((None, 1, 2, 3)),
            )
        elif kind == "rate":
            spec = FaultSpec(
                failure_rate=rng.choice((0.2, 0.5, 0.9)),
                recover_after=rng.choice((None, 2)),
                permanent=rng.random() < 0.2,
            )
        else:
            spec = FaultSpec(latency_ms=rng.choice((10.0, 100.0)))
        specs[name] = spec
    return FaultPlan.of(seed=seed, **specs)


def check_invariant(plan, mode, retries, parallel):
    """Run one scenario and enforce the tri-outcome invariant."""
    gis = build_federation(retries=retries)
    options = PlannerOptions(
        faults=plan, on_source_failure=mode, max_parallel_fragments=parallel
    )
    faulted = set(plan.faulted_sources)
    try:
        result = gis.query(SQL, options)
    except GISError as exc:
        # (c) clean, typed, attributed failure — only a faulted source may
        # sink the query, and only outside graceful degradation.
        assert isinstance(exc, SourceError), exc
        assert exc.source_name in faulted
        assert str(exc)
        return "error"
    if result.complete:
        # (a) the exact fault-free answer.
        assert result.excluded_sources == {}
        assert Counter(result.rows) == ALL_ROWS
        return "ok"
    # (b) honest partial: only faulted sources excluded, each with a
    # reason, survivors complete, nothing fabricated.
    excluded = result.excluded_sources
    assert mode == "partial"
    assert excluded and set(excluded) <= faulted
    assert all(reason for reason in excluded.values())
    got = Counter(result.rows)
    assert not got - ALL_ROWS, "fabricated rows"
    for name in SOURCES:
        per_source = Counter(row for row in result.rows if row[1] == name)
        if name not in excluded:
            assert per_source == Counter(EXPECTED[name])
    return "partial"


def run_scenario(plan, mode, retries, parallel):
    """One chaos run reduced to a comparable outcome tuple."""
    gis = build_federation(retries=retries)
    options = PlannerOptions(
        faults=plan, on_source_failure=mode, max_parallel_fragments=parallel
    )
    try:
        result = gis.query(SQL, options)
    except GISError as exc:
        return ("error", type(exc).__name__, str(exc))
    kind = "ok" if result.complete else "partial"
    return (kind, sorted(result.rows), sorted(result.excluded_sources.items()))


def scenario_knobs(rng):
    mode = rng.choice(("fail", "partial"))
    retries = rng.choice((0, 1, 2))
    parallel = rng.choice((1, 4))
    return mode, retries, parallel


SEEDS_PER_CHUNK = 27
N_CHUNKS = 8  # 216 seeded scenarios — above the 200-scenario bar


class TestSeededChaosSweep:
    @pytest.mark.parametrize("chunk", range(N_CHUNKS))
    def test_invariant_holds_across_seeds(self, chunk):
        start = chunk * SEEDS_PER_CHUNK
        for seed in range(start, start + SEEDS_PER_CHUNK):
            rng = random.Random(seed)
            plan = random_plan(rng, seed)
            mode, retries, parallel = scenario_knobs(rng)
            check_invariant(plan, mode, retries, parallel)

    def test_sweep_exercises_every_outcome(self):
        kinds = set()
        for seed in range(40):
            rng = random.Random(seed)
            plan = random_plan(rng, seed)
            retries = rng.choice((0, 1))
            kinds.add(check_invariant(plan, "partial", retries, 1))
            kinds.add(check_invariant(plan, "fail", 0, 1))
        assert {"ok", "partial", "error"} <= kinds

    @pytest.mark.parametrize("seed", [3, 11, 29, 47, 101])
    def test_scenarios_replay_deterministically(self, seed):
        rng = random.Random(seed)
        plan = random_plan(rng, seed)
        mode, retries, parallel = scenario_knobs(rng)
        first = run_scenario(plan, mode, retries, parallel)
        second = run_scenario(plan, mode, retries, parallel)
        assert first == second


# ---------------------------------------------------------------------------
# chaos with hedging: stragglers + failures under tail tolerance
# ---------------------------------------------------------------------------


def build_replicated_federation(retries=0):
    """The three-source federation, plus each table replicated on the
    next source round-robin — so hedges and fallbacks have a target."""
    gis = GlobalInformationSystem(fragment_retries=retries)
    adapters = {}
    for name in SOURCES:
        source = MemorySource(name, page_rows=PAGE_ROWS)
        source.add_table(f"t_{name}", SCHEMA, EXPECTED[name])
        adapters[name] = source
    for index, name in enumerate(SOURCES):
        host = SOURCES[(index + 1) % len(SOURCES)]
        adapters[host].add_table(f"t_{name}_copy", SCHEMA, EXPECTED[name])
    for name in SOURCES:
        gis.register_source(name, adapters[name])
    for name in SOURCES:
        gis.register_table(f"t_{name}", source=name)
    for index, name in enumerate(SOURCES):
        host = SOURCES[(index + 1) % len(SOURCES)]
        gis.register_replica(
            f"t_{name}", source=host, remote_table=f"t_{name}_copy"
        )
    return gis


def random_tail_plan(rng, seed):
    """A FaultPlan mixing stragglers (real stalls, small so sweeps stay
    fast) with the classic failure modes."""
    specs = {}
    for name in SOURCES:
        if rng.random() < 0.3:
            continue
        straggle = rng.random() < 0.6
        fail = rng.choice((None, "connect", "midstream", "rate"))
        kwargs = {}
        if straggle:
            kwargs.update(
                straggle_ms=rng.choice((5.0, 20.0)),
                straggle_jitter_ms=rng.choice((0.0, 10.0)),
                straggle_after_pages=rng.randint(0, 2),
                straggle_rate=rng.choice((0.5, 1.0)),
            )
        if fail == "connect":
            kwargs.update(
                fail_connect=rng.randint(1, 3),
                recover_after=rng.choice((None, 1, 2)),
            )
        elif fail == "midstream":
            kwargs.update(
                fail_after_pages=rng.randint(0, 2),
                recover_after=rng.choice((None, 1, 2)),
            )
        elif fail == "rate":
            kwargs.update(
                failure_rate=rng.choice((0.3, 0.7)),
                recover_after=rng.choice((None, 2)),
            )
        if kwargs:
            specs[name] = FaultSpec(**kwargs)
    return FaultPlan.of(seed=seed, **specs)


def check_hedged_invariant(plan, mode, retries, parallel):
    """Tri-outcome invariant with hedging + replicas in play.

    Replicas serve bit-identical copies, so a complete answer must still
    equal the fault-free rows exactly, no matter which copy each page
    came from. With fallback targets available, exclusions may be
    attributed to whichever faulted source actually sank the table's
    serving chain — but a clean federation subset never loses rows and
    nothing is ever fabricated.
    """
    gis = build_replicated_federation(retries=retries)
    options = PlannerOptions(
        faults=plan,
        on_source_failure=mode,
        max_parallel_fragments=parallel,
        replicas="primary",
        hedge_fragments=True,
        hedge_delay_ms=5.0,
        adaptive_timeout=True,
        # Far above any injected stall: a straggle-only source must never
        # trip a no-progress timeout (it is slow, not failing).
        timeout_floor_ms=2000.0,
        health_routing=True,
    )
    faulted = set(plan.faulted_sources)
    try:
        result = gis.query(SQL, options)
    except GISError as exc:
        assert isinstance(exc, SourceError), exc
        assert exc.source_name in faulted
        assert str(exc)
        return "error"
    if result.complete:
        assert result.excluded_sources == {}
        assert Counter(result.rows) == ALL_ROWS
        return "ok"
    excluded = result.excluded_sources
    assert mode == "partial"
    assert excluded and set(excluded) <= faulted
    assert all(reason for reason in excluded.values())
    got = Counter(result.rows)
    assert not got - ALL_ROWS, "fabricated rows"
    return "partial"


class TestChaosWithHedging:
    @pytest.mark.parametrize("chunk", range(4))
    def test_invariant_holds_with_hedging_armed(self, chunk):
        for seed in range(chunk * 8, chunk * 8 + 8):
            rng = random.Random(1000 + seed)
            plan = random_tail_plan(rng, seed)
            mode, retries, parallel = scenario_knobs(rng)
            check_hedged_invariant(plan, mode, retries, parallel)

    def test_pure_stragglers_never_degrade_the_answer(self):
        """Sources that are only slow (never failing) must yield the
        complete, exact answer — hedged or not — and hedge accounting
        must stay coherent (wins + cancellations never exceed launches)."""
        plan = FaultPlan.of(
            seed=4,
            alpha=FaultSpec(straggle_ms=40.0),
            beta=FaultSpec(straggle_ms=20.0, straggle_after_pages=1),
        )
        gis = build_replicated_federation()
        result = gis.query(
            SQL,
            PlannerOptions(
                faults=plan, replicas="primary", hedge_fragments=True,
                hedge_delay_ms=5.0, max_parallel_fragments=4,
            ),
        )
        assert Counter(result.rows) == ALL_ROWS
        net = result.metrics.network
        assert net.hedges_launched >= 1
        assert net.hedges_won <= net.hedges_launched
        assert net.hedges_cancelled <= net.hedges_launched

    def test_hedged_chaos_replays_deterministic_rows(self):
        """Same plan, same knobs: the *rows* must replay identically even
        though hedge race outcomes (wall-clock) may differ run to run."""
        rng = random.Random(77)
        plan = random_tail_plan(rng, 77)
        results = []
        for _ in range(2):
            gis = build_replicated_federation(retries=1)
            options = PlannerOptions(
                faults=plan, on_source_failure="partial",
                replicas="primary", hedge_fragments=True, hedge_delay_ms=5.0,
            )
            try:
                result = gis.query(SQL, options)
                results.append(("ok", sorted(result.rows)))
            except GISError as exc:
                results.append(("error", type(exc).__name__))
        kinds = {kind for kind, _ in results}
        # Hedging may rescue a run that another run failed, but whenever
        # both runs produce rows they are identical.
        if kinds == {"ok"}:
            assert results[0] == results[1]


FAULT_SPECS = st.builds(
    FaultSpec,
    fail_connect=st.integers(0, 3),
    fail_after_pages=st.none() | st.integers(0, 3),
    fail_every=st.integers(0, 2),
    failure_rate=st.sampled_from([0.0, 0.3, 0.9]),
    recover_after=st.none() | st.integers(1, 3),
    latency_ms=st.sampled_from([0.0, 25.0]),
    permanent=st.booleans(),
)


class TestHypothesisChaos:
    @given(
        specs=st.dictionaries(
            st.sampled_from(SOURCES), FAULT_SPECS, max_size=3
        ),
        seed=st.integers(0, 10_000),
        mode=st.sampled_from(["fail", "partial"]),
        retries=st.integers(0, 2),
        parallel=st.sampled_from([1, 4]),
    )
    @settings(
        max_examples=60,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_invariant_holds(self, specs, seed, mode, retries, parallel):
        plan = FaultPlan.of(seed=seed, **specs)
        check_invariant(plan, mode, retries, parallel)

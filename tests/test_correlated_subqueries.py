"""Correlated EXISTS / IN decorrelation into semi/anti joins."""

import pytest

from repro.core.logical import JoinOp
from repro.errors import BindError

from .conftest import CUSTOMERS, ORDERS, assert_same_rows, make_small_gis


@pytest.fixture(scope="module")
def gis():
    return make_small_gis()


def names_with(predicate):
    return sorted(
        (row[1],) for row in CUSTOMERS if predicate(row)
    )


def orders_of(customer_id):
    return [row for row in ORDERS if row[1] == customer_id]


class TestCorrelatedExists:
    def test_simple_correlated_exists(self, gis):
        result = gis.query(
            "SELECT name FROM customers c WHERE EXISTS "
            "(SELECT 1 FROM orders o WHERE o.cust_id = c.id)"
        )
        expected = names_with(lambda c: bool(orders_of(c[0])))
        assert sorted(result.rows) == expected

    def test_correlated_exists_with_inner_filter(self, gis):
        result = gis.query(
            "SELECT name FROM customers c WHERE EXISTS "
            "(SELECT 1 FROM orders o WHERE o.cust_id = c.id AND o.total > 400)"
        )
        expected = names_with(
            lambda c: any(o[2] > 400 for o in orders_of(c[0]))
        )
        assert sorted(result.rows) == expected

    def test_correlated_not_exists(self, gis):
        result = gis.query(
            "SELECT name FROM customers c WHERE NOT EXISTS "
            "(SELECT 1 FROM orders o WHERE o.cust_id = c.id)"
        )
        expected = names_with(lambda c: not orders_of(c[0]))
        assert sorted(result.rows) == expected

    def test_non_equality_correlation(self, gis):
        # Correlation through an inequality: nested-loop semi join path.
        result = gis.query(
            "SELECT name FROM customers c WHERE EXISTS "
            "(SELECT 1 FROM orders o WHERE o.total > c.balance AND o.cust_id = c.id)"
        )
        expected = names_with(
            lambda c: any(o[2] > c[4] for o in orders_of(c[0]))
        )
        assert sorted(result.rows) == expected

    def test_correlation_combined_with_outer_filter(self, gis):
        result = gis.query(
            "SELECT name FROM customers c WHERE c.region = 'EU' AND EXISTS "
            "(SELECT 1 FROM orders o WHERE o.cust_id = c.id)"
        )
        expected = names_with(
            lambda c: c[2] == "EU" and bool(orders_of(c[0]))
        )
        assert sorted(result.rows) == expected

    def test_plan_contains_semi_join_with_condition(self, gis):
        planned = gis.plan(
            "SELECT name FROM customers c WHERE EXISTS "
            "(SELECT 1 FROM orders o WHERE o.cust_id = c.id)"
        )
        joins = [
            n for n in planned.distributed.walk() if isinstance(n, JoinOp)
        ]
        assert joins and joins[0].kind == "SEMI"
        assert joins[0].condition is not None


class TestCorrelatedIn:
    def test_correlated_in(self, gis):
        result = gis.query(
            "SELECT name FROM customers c WHERE c.id IN "
            "(SELECT o.cust_id FROM orders o WHERE o.total > c.balance)"
        )
        expected = names_with(
            lambda c: any(o[2] > c[4] and o[1] == c[0] for o in ORDERS)
        )
        assert sorted(result.rows) == expected

    def test_correlated_not_in_rejected(self, gis):
        with pytest.raises(BindError, match="NOT IN"):
            gis.query(
                "SELECT name FROM customers c WHERE c.id NOT IN "
                "(SELECT o.cust_id FROM orders o WHERE o.total > c.balance)"
            )


class TestUnsupportedShapes:
    def test_outer_ref_in_select_list_rejected(self, gis):
        with pytest.raises(BindError, match="WHERE clause"):
            gis.query(
                "SELECT name FROM customers c WHERE EXISTS "
                "(SELECT c.id FROM orders o)"
            )

    def test_outer_ref_under_aggregate_rejected(self, gis):
        with pytest.raises(BindError):
            gis.query(
                "SELECT name FROM customers c WHERE EXISTS "
                "(SELECT SUM(o.total + c.balance) FROM orders o)"
            )

    def test_unknown_column_still_fails_cleanly(self, gis):
        with pytest.raises(BindError, match="ghost"):
            gis.query(
                "SELECT name FROM customers c WHERE EXISTS "
                "(SELECT 1 FROM orders o WHERE o.ghost = c.id)"
            )

    def test_inner_shadows_outer(self, gis):
        # `id` exists on both sides of this self-correlation; the inner
        # relation must win, making the subquery uncorrelated.
        result = gis.query(
            "SELECT name FROM customers outer_c WHERE EXISTS "
            "(SELECT 1 FROM customers WHERE id = 1)"
        )
        assert len(result.rows) == len(CUSTOMERS)


class TestAgainstUncorrelatedEquivalents:
    def test_exists_equals_in_formulation(self, gis):
        correlated = gis.query(
            "SELECT name FROM customers c WHERE EXISTS "
            "(SELECT 1 FROM orders o WHERE o.cust_id = c.id AND o.total > 100)"
        )
        uncorrelated = gis.query(
            "SELECT name FROM customers c WHERE c.id IN "
            "(SELECT o_1.cust_id FROM orders o_1 WHERE o_1.total > 100)"
        )
        assert_same_rows(correlated.rows, uncorrelated.rows)

    def test_federation_correlated_exists(self, federation):
        sql = (
            "SELECT c_name FROM customers c WHERE EXISTS "
            "(SELECT 1 FROM orders o WHERE o.o_cust_id = c.c_id "
            "AND o.o_total > 4800)"
        )
        correlated = federation.gis.query(sql)
        equivalent = federation.gis.query(
            "SELECT c_name FROM customers c WHERE c_id IN "
            "(SELECT o_cust_id FROM orders WHERE o_total > 4800)"
        )
        assert_same_rows(correlated.rows, equivalent.rows)

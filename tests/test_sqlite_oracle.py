"""Differential testing of fragment SQL compilation against real SQLite.

Random (but dialect-valid) queries are pushed to a SQLiteSource — which
compiles them to native SQL — and the same queries run through the
mediator's own reference interpreter over the same rows. Any divergence is
either a printer/compiler bug or a semantic mismatch between our evaluator
and SQLite; both are worth failing on.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import GlobalInformationSystem, NetworkLink, SQLiteSource
from repro.catalog.schema import schema_from_pairs

from .conftest import assert_same_rows

ROWS = [
    (i, f"name{i % 5}", float(i * 7 % 97), (i % 4) or None)
    for i in range(120)
]


def build_gis():
    gis = GlobalInformationSystem()
    source = SQLiteSource("db")
    schema = schema_from_pairs(
        "t", [("id", "INT"), ("name", "TEXT"), ("score", "FLOAT"), ("grp", "INT")]
    )
    source.load_table("t", schema, ROWS)
    gis.register_source("db", source, link=NetworkLink(1.0, 1e9))
    gis.register_table("t", source="db")
    gis.analyze()
    return gis


GIS = build_gis()


def check(sql):
    engine = GIS.query(sql)
    _, reference = GIS.reference_query(sql)
    assert_same_rows(engine.rows, reference)


comparison = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])


@st.composite
def predicate(draw):
    column = draw(st.sampled_from(["id", "score", "grp"]))
    operator = draw(comparison)
    value = draw(st.integers(-3, 130))
    return f"{column} {operator} {value}"


@st.composite
def where_clause(draw):
    parts = draw(st.lists(predicate(), min_size=1, max_size=3))
    connectives = draw(
        st.lists(st.sampled_from(["AND", "OR"]), min_size=len(parts) - 1,
                 max_size=len(parts) - 1)
    )
    text = parts[0]
    for connective, part in zip(connectives, parts[1:]):
        text = f"({text} {connective} {part})"
    return text


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(where_clause())
def test_filters_compiled_to_sqlite_match_interpreter(where):
    check(f"SELECT id, name FROM t WHERE {where}")


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.sampled_from(["COUNT", "SUM", "AVG", "MIN", "MAX"]),
    st.sampled_from(["id", "score", "grp"]),
    where_clause(),
)
def test_aggregates_compiled_to_sqlite_match_interpreter(function, column, where):
    check(
        f"SELECT grp, {function}({column}) FROM t WHERE {where} GROUP BY grp"
    )


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.sampled_from(["id", "name", "score"]),
    st.booleans(),
    st.integers(1, 20),
)
def test_order_limit_compiled_to_sqlite(column, ascending, limit):
    direction = "" if ascending else " DESC"
    sql = f"SELECT id, {column} FROM t ORDER BY {column}{direction}, id LIMIT {limit}"
    engine = GIS.query(sql)
    _, reference = GIS.reference_query(sql)
    # Order matters here: the secondary `id` key makes ordering total.
    assert engine.rows == reference


FIXED_QUERIES = [
    # expression-heavy select lists
    "SELECT id, score * 2 + 1, UPPER(name) FROM t WHERE id < 20",
    "SELECT id, CASE WHEN score > 50 THEN 'hi' ELSE 'lo' END FROM t WHERE id < 30",
    "SELECT id, COALESCE(grp, -1) FROM t WHERE id < 25",
    "SELECT id, CAST(score AS INTEGER) FROM t WHERE id < 25",
    "SELECT id, SUBSTR(name, 1, 4) || '!' FROM t WHERE id < 15",
    # NULL handling in the pushed dialect
    "SELECT id FROM t WHERE grp IS NULL",
    "SELECT id FROM t WHERE grp IS NOT NULL AND grp <> 2",
    "SELECT grp, COUNT(grp), COUNT(*) FROM t GROUP BY grp",
    # LIKE and IN
    "SELECT id FROM t WHERE name LIKE 'name1%'",
    "SELECT id FROM t WHERE grp IN (1, 3)",
    "SELECT id FROM t WHERE grp NOT IN (1, 3)",
    "SELECT id FROM t WHERE score BETWEEN 10 AND 40",
    # distinct / self-join pushdown (whole join goes to the source)
    "SELECT DISTINCT name FROM t",
    "SELECT a.id FROM t a JOIN t b ON a.id = b.grp WHERE b.score > 50",
    "SELECT a.id, b.id FROM t a LEFT JOIN t b ON a.grp = b.id AND b.id < 3 WHERE a.id < 10",
    # aggregates with HAVING pushed whole
    "SELECT name, AVG(score) FROM t GROUP BY name HAVING COUNT(*) > 20",
    # union of two pushed selects
    "SELECT id FROM t WHERE id < 5 UNION ALL SELECT id FROM t WHERE id > 115",
    "SELECT grp FROM t WHERE id < 50 UNION SELECT grp FROM t WHERE id >= 50",
]


@pytest.mark.parametrize("sql", FIXED_QUERIES)
def test_fixed_dialect_corpus(sql):
    check(sql)


def test_everything_actually_pushed():
    """Sanity: these queries must run AT the SQLite source, not above it."""
    from repro.core.logical import RemoteQueryOp

    planned = GIS.plan(FIXED_QUERIES[13])  # the self-join
    assert isinstance(planned.distributed, RemoteQueryOp)

"""Columnar pages and vectorized kernels.

Three layers of pinning for the columnar engine:

* ``Page`` itself — transposition bridges, row-compatible protocol
  (iteration, indexing, equality against row lists), selection.
* Every vectorized kernel family agrees with its row-at-a-time
  compilation (``vectorized=False``) on NULL-heavy inputs: arithmetic,
  comparisons, three-valued AND/OR/NOT, LIKE, scalar functions, CASE,
  CAST, IN lists, IS NULL, BETWEEN, and constant folding.
* Typed column vectors — eligibility rules (``array``-backed INTEGER/
  FLOAT vectors, object-vector fallback for NULLs, mixed dtypes, bools,
  and out-of-range ints), typecode preservation through take/slice, and
  kernel equivalence on typed vs plain pages.
* Whole-query equivalence over the TPC-H-lite workload: the vectorized
  engine produces bit-identical rows and network accounting across batch
  sizes {1, 7, 1024}, sequential and parallel, and across every engine
  mode — typed columns on/off × operator fusion on/off × morsel workers
  {1, 4} — against the fully row-oriented engine (``vectorize=False,
  typed_columns=False, fuse=False``) as the oracle, down to exact
  network-byte accounting.
"""

from array import array

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import PlannerOptions
from repro.core.expressions import (
    build_layout,
    compile_batch_expression,
    compile_batch_predicate,
)
from repro.core.logical import RelColumn
from repro.core.pages import Page, as_page, plain_column, typed_column
from repro.datatypes import DataType
from repro.sql import ast
from repro.workloads import WORKLOAD_QUERIES

INT = DataType.INTEGER
TEXT = DataType.TEXT
FLOAT = DataType.FLOAT
BOOL = DataType.BOOLEAN


# ---------------------------------------------------------------------------
# the Page type
# ---------------------------------------------------------------------------


class TestPage:
    ROWS = [(1, "x"), (2, None), (None, "z")]

    def test_from_rows_to_rows_round_trip(self):
        page = Page.from_rows(self.ROWS)
        assert page.columns == [[1, 2, None], ["x", None, "z"]]
        assert page.num_rows == 3 and page.width == 2
        assert page.to_rows() == self.ROWS

    def test_from_rows_empty_needs_width(self):
        page = Page.from_rows([], width=3)
        assert page.width == 3 and page.num_rows == 0
        assert Page.empty(2).columns == [[], []]

    def test_zero_column_page_keeps_row_count(self):
        page = Page([], 4)
        assert len(page) == 4
        assert page.to_rows() == [(), (), (), ()]
        assert list(page) == [(), (), (), ()]

    def test_len_bool_iter(self):
        page = Page.from_rows(self.ROWS)
        assert len(page) == 3 and bool(page)
        assert not Page.empty(2)
        assert list(page) == self.ROWS

    def test_int_indexing_and_bounds(self):
        page = Page.from_rows(self.ROWS)
        assert page[0] == (1, "x")
        assert page[-1] == (None, "z")
        with pytest.raises(IndexError):
            page[3]
        with pytest.raises(IndexError):
            page[-4]

    def test_slicing_returns_page(self):
        page = Page.from_rows(self.ROWS)
        tail = page[1:]
        assert isinstance(tail, Page)
        assert tail == self.ROWS[1:]
        assert page[:0].width == 2  # empty slice keeps the shape

    def test_take_gathers_rows(self):
        page = Page.from_rows(self.ROWS)
        assert page.take([2, 0]) == [(None, "z"), (1, "x")]
        assert page.take([]).width == 2

    def test_equality_against_row_lists_and_pages(self):
        page = Page.from_rows(self.ROWS)
        assert page == self.ROWS
        assert page == Page.from_rows(self.ROWS)
        assert page != self.ROWS[:2]
        assert page != Page.from_rows(self.ROWS[:2])

    def test_as_page_normalizes(self):
        page = Page.from_rows(self.ROWS)
        assert as_page(page) is page
        assert as_page(self.ROWS) == page
        assert as_page([], width=2).width == 2


# ---------------------------------------------------------------------------
# typed column vectors
# ---------------------------------------------------------------------------


class TestTypedColumns:
    def test_int_column_becomes_int64_array(self):
        column = typed_column([1, 2, 3], INT)
        assert type(column) is array and column.typecode == "q"
        assert list(column) == [1, 2, 3]

    def test_float_column_becomes_double_array(self):
        column = typed_column([1.5, -0.25], FLOAT)
        assert type(column) is array and column.typecode == "d"
        assert list(column) == [1.5, -0.25]

    def test_null_heavy_column_stays_plain(self):
        assert type(typed_column([1, None, 3], INT)) is list

    def test_mixed_dtype_column_stays_plain(self):
        # An INTEGER-declared column holding a stray float (heterogeneous
        # sources) must keep the object vector — array('q') would coerce.
        assert type(typed_column([1, 2.0, 3], INT)) is list
        # FLOAT columns holding exact ints keep them as ints (the global
        # type system allows int-valued FLOATs; float() would diverge).
        assert type(typed_column([1, 2], FLOAT)) is list

    def test_bool_is_not_an_int64(self):
        # type(True) is bool, not int: BOOLEAN values never leak into a
        # typed INTEGER vector (array('q') would flatten them to 0/1).
        assert type(typed_column([True, False], INT)) is list

    def test_out_of_int64_range_falls_back(self):
        assert type(typed_column([2**63], INT)) is list

    def test_text_dtype_never_typed(self):
        assert type(typed_column(["a", "b"], TEXT)) is list

    def test_empty_eligible_column_is_typed(self):
        assert type(typed_column([], INT)) is array

    def test_plain_column_downgrades(self):
        column = plain_column(typed_column([1, 2], INT))
        assert type(column) is list and column == [1, 2]

    def test_take_and_slice_preserve_typecode(self):
        page = Page(
            [typed_column([10, 20, 30], INT), ["x", "y", "z"]], 3
        )
        taken = page.take([2, 0])
        assert type(taken.columns[0]) is array
        assert taken.columns[0].typecode == "q"
        assert taken == [(30, "z"), (10, "x")]
        sliced = page[1:]
        assert type(sliced.columns[0]) is array
        assert sliced == [(20, "y"), (30, "z")]

    def test_equality_normalizes_typed_vs_plain(self):
        typed = Page([typed_column([1, 2], INT)], 2)
        plain = Page([[1, 2]], 2)
        assert typed == plain and plain == typed
        assert typed == [(1,), (2,)]

    def test_retyped_and_plain_round_trip(self):
        page = Page([[1, 2], [0.5, 1.5]], 2)
        typed = page.retyped([INT, FLOAT])
        assert [type(c) for c in typed.columns] == [array, array]
        assert typed.plain().columns == page.columns
        assert typed.retyped([INT, FLOAT]) is typed  # no-op when typed


# ---------------------------------------------------------------------------
# vectorized kernels vs row compilations
# ---------------------------------------------------------------------------

COLS = [
    RelColumn("a", INT),
    RelColumn("b", TEXT),
    RelColumn("c", FLOAT),
    RelColumn("d", BOOL),
]
LAYOUT = build_layout(COLS)
A, B, C, D = (col.ref() for col in COLS)

NULL_HEAVY = Page.from_rows(
    [
        (1, "apple", 1.5, True),
        (None, None, None, None),
        (3, "banana", -2.0, False),
        (4, "", 0.0, None),
        (None, "cherry", 3.25, True),
        (7, "a%b_c", None, False),
    ]
)


def lit(value, dtype=INT):
    return ast.Literal(value, dtype)


NULL_LIT = ast.Literal(None, DataType.NULL)

KERNEL_EXPRESSIONS = [
    ("add-columns", ast.BinaryOp("+", A, A)),
    ("add-constant-folded", ast.BinaryOp("+", A, lit(10))),
    ("sub-constant-left", ast.BinaryOp("-", lit(100), A)),
    ("mul", ast.BinaryOp("*", A, C)),
    ("div-by-zero-is-null", ast.BinaryOp("/", A, lit(0))),
    ("mod", ast.BinaryOp("%", A, lit(2))),
    ("concat", ast.BinaryOp("||", B, lit("!", TEXT))),
    ("null-literal-folds", ast.BinaryOp("+", A, NULL_LIT)),
    ("compare-gt", ast.BinaryOp(">", A, lit(2))),
    ("compare-eq-text", ast.BinaryOp("=", B, lit("apple", TEXT))),
    ("compare-columns", ast.BinaryOp("<=", A, A)),
    ("and-3vl", ast.BinaryOp("AND", ast.BinaryOp(">", A, lit(2)), D)),
    ("or-3vl", ast.BinaryOp("OR", D, ast.IsNull(A))),
    ("not-3vl", ast.UnaryOp("NOT", D)),
    ("negate", ast.UnaryOp("-", A)),
    ("like-constant-pattern", ast.BinaryOp("LIKE", B, lit("a%", TEXT))),
    ("like-wildcards", ast.BinaryOp("LIKE", B, lit("%an_na%", TEXT))),
    ("like-dynamic-pattern", ast.BinaryOp("LIKE", B, B)),
    ("function-1arg", ast.FunctionCall("UPPER", (B,))),
    ("function-length", ast.FunctionCall("LENGTH", (B,))),
    ("function-abs", ast.FunctionCall("ABS", (C,))),
    ("function-multi-arg", ast.FunctionCall("COALESCE", (B, lit("?", TEXT)))),
    (
        "case-searched",
        ast.Case(
            None,
            (
                (ast.BinaryOp(">", A, lit(3)), lit("big", TEXT)),
                (ast.IsNull(A), lit("none", TEXT)),
            ),
            lit("small", TEXT),
        ),
    ),
    (
        "case-simple-no-else",
        ast.Case(
            B,
            (
                (lit("apple", TEXT), lit(1)),
                (lit("banana", TEXT), lit(2)),
            ),
            None,
        ),
    ),
    ("cast-int-to-text", ast.Cast(A, TEXT)),
    ("cast-float-to-int", ast.Cast(C, INT)),
    ("in-constant-list", ast.InList(A, (lit(1), lit(3)))),
    ("in-list-with-null-3vl", ast.InList(A, (lit(1), NULL_LIT))),
    ("not-in-with-null-3vl", ast.InList(A, (lit(1), NULL_LIT), negated=True)),
    ("in-dynamic-items", ast.InList(A, (lit(7), ast.BinaryOp("+", A, lit(0))))),
    ("is-null", ast.IsNull(A)),
    ("is-not-null", ast.IsNull(A, negated=True)),
    ("between", ast.Between(A, lit(2), lit(5))),
    ("not-between", ast.Between(A, lit(2), lit(5), negated=True)),
]


@pytest.mark.parametrize(
    "expr", [e for _, e in KERNEL_EXPRESSIONS],
    ids=[name for name, _ in KERNEL_EXPRESSIONS],
)
def test_vectorized_kernel_matches_row_kernel(expr):
    vector_fn = compile_batch_expression(expr, LAYOUT, vectorized=True)
    row_fn = compile_batch_expression(expr, LAYOUT, vectorized=False)
    assert vector_fn(NULL_HEAVY) == row_fn(NULL_HEAVY)
    empty = Page.empty(len(COLS))
    assert vector_fn(empty) == row_fn(empty) == []


@pytest.mark.parametrize(
    "expr", [e for _, e in KERNEL_EXPRESSIONS],
    ids=[name for name, _ in KERNEL_EXPRESSIONS],
)
def test_vectorized_predicate_matches_row_predicate(expr):
    vector_fn = compile_batch_predicate(expr, LAYOUT, vectorized=True)
    row_fn = compile_batch_predicate(expr, LAYOUT, vectorized=False)
    # WHERE semantics: only rows where the predicate is exactly TRUE pass
    # (NULL drops the row) — identical surviving rows in both engines.
    assert vector_fn(NULL_HEAVY).to_rows() == row_fn(NULL_HEAVY).to_rows()


def test_all_pass_predicate_returns_input_page_unchanged():
    always = ast.IsNull(A, negated=False)
    page = Page.from_rows([(None, "x", 0.5, True), (None, None, None, None)])
    selected = compile_batch_predicate(always, LAYOUT)(page)
    assert selected is page  # zero-copy when nothing is filtered


def test_vectorized_rejects_aggregates_like_row_compiler():
    count = ast.FunctionCall("COUNT", (), star=True)
    with pytest.raises(Exception):
        compile_batch_expression(count, LAYOUT, vectorized=True)


def test_batch_inputs_accept_plain_row_lists():
    expr = ast.BinaryOp("+", A, lit(1))
    fn = compile_batch_expression(expr, LAYOUT)
    rows = [(1, "x", 0.0, True), (None, "y", 1.0, False)]
    assert fn(rows) == [2, None]


@settings(max_examples=60, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.lists(
        st.tuples(
            st.one_of(st.none(), st.integers(-50, 50)),
            st.one_of(st.none(), st.text("ab%_", max_size=4)),
            st.one_of(st.none(), st.floats(-10, 10, allow_nan=False)),
            st.one_of(st.none(), st.booleans()),
        ),
        max_size=40,
    )
)
def test_fuzzed_kernels_match_row_engine(rows):
    page = Page.from_rows(rows, width=len(COLS))
    compound = ast.BinaryOp(
        "OR",
        ast.BinaryOp(
            "AND",
            ast.BinaryOp(">", ast.BinaryOp("+", A, lit(1)), lit(0)),
            ast.BinaryOp("LIKE", B, lit("a%", TEXT)),
        ),
        ast.IsNull(C),
    )
    # The typed view of the same page: columns that are null-free and
    # homogeneous become array vectors (hypothesis will generate both
    # all-int/all-float columns and NULL-heavy ones that stay plain).
    typed = page.retyped([col.dtype for col in COLS])
    for expr in (compound, ast.BinaryOp("*", A, C), ast.UnaryOp("NOT", D)):
        vector_fn = compile_batch_expression(expr, LAYOUT, vectorized=True)
        row_fn = compile_batch_expression(expr, LAYOUT, vectorized=False)
        assert vector_fn(page) == row_fn(page)
        assert vector_fn(typed) == row_fn(page)
    predicate = compile_batch_predicate(compound, LAYOUT, vectorized=True)
    oracle = compile_batch_predicate(compound, LAYOUT, vectorized=False)
    assert predicate(page).to_rows() == oracle(page).to_rows()
    assert predicate(typed).to_rows() == oracle(page).to_rows()


# ---------------------------------------------------------------------------
# whole-query equivalence over TPC-H-lite
# ---------------------------------------------------------------------------

_INT_METRICS = ("rows_shipped", "messages", "fragments_executed",
                "semijoin_batches")
_FLOAT_METRICS = ("bytes_shipped", "network_ms")

_oracle_cache = {}

#: The fully row-oriented engine: row kernels, object vectors, no
#: fusion, no morsel pool. Every other mode must match it bit-for-bit.
ORACLE_OPTIONS = dict(
    vectorize=False, typed_columns=False, fuse=False, morsel_workers=1
)


def _oracle(federation, name, sql):
    """Row-engine oracle result (all columnar machinery off)."""
    if name not in _oracle_cache:
        _oracle_cache[name] = federation.gis.query(
            sql, PlannerOptions(**ORACLE_OPTIONS)
        )
    return _oracle_cache[name]


@pytest.mark.parametrize("batch_size", [1, 7, 1024])
@pytest.mark.parametrize("parallel", [1, 4], ids=["sequential", "parallel"])
@pytest.mark.parametrize(
    "name,sql", WORKLOAD_QUERIES, ids=[name for name, _ in WORKLOAD_QUERIES]
)
def test_columnar_engine_equivalent_over_workload(
    federation, name, sql, batch_size, parallel
):
    oracle = _oracle(federation, name, sql)
    result = federation.gis.query(
        sql,
        PlannerOptions(
            batch_size=batch_size, max_parallel_fragments=parallel
        ),
    )
    assert result.rows == oracle.rows
    exact_floats = parallel == 1
    for metric in _INT_METRICS:
        actual = getattr(result.metrics.network, metric)
        expected = getattr(oracle.metrics.network, metric)
        assert actual == expected, metric
    for metric in _FLOAT_METRICS:
        actual = getattr(result.metrics.network, metric)
        expected = getattr(oracle.metrics.network, metric)
        if exact_floats:
            assert actual == expected, metric
        else:
            # Floats accumulate in worker-completion order under the
            # parallel scheduler; integer accounting above stays exact.
            assert actual == pytest.approx(expected), metric


# Engine-mode sweep: typed columns × fusion × morsel workers. Every mode
# must reproduce the oracle exactly — rows bit-for-bit AND all network
# accounting including exact bytes (typed vectors are null-free 8-byte
# values, so the wire sizer charges them identically to object vectors).
ENGINE_MODES = [
    ("typed-fused", dict(typed_columns=True, fuse=True, morsel_workers=1)),
    ("typed-unfused", dict(typed_columns=True, fuse=False, morsel_workers=1)),
    ("untyped-fused", dict(typed_columns=False, fuse=True, morsel_workers=1)),
    (
        "untyped-unfused",
        dict(typed_columns=False, fuse=False, morsel_workers=1),
    ),
    (
        "typed-fused-morsel4",
        dict(typed_columns=True, fuse=True, morsel_workers=4),
    ),
    (
        "untyped-unfused-morsel4",
        dict(typed_columns=False, fuse=False, morsel_workers=4),
    ),
    (
        "row-kernels-morsel4",
        dict(
            vectorize=False,
            typed_columns=False,
            fuse=False,
            morsel_workers=4,
        ),
    ),
]


@pytest.mark.parametrize(
    "mode_opts",
    [opts for _, opts in ENGINE_MODES],
    ids=[mode for mode, _ in ENGINE_MODES],
)
@pytest.mark.parametrize(
    "name,sql", WORKLOAD_QUERIES, ids=[name for name, _ in WORKLOAD_QUERIES]
)
def test_engine_modes_bit_identical_to_row_oracle(
    federation, name, sql, mode_opts
):
    oracle = _oracle(federation, name, sql)
    result = federation.gis.query(
        sql, PlannerOptions(batch_size=7, **mode_opts)
    )
    assert result.rows == oracle.rows
    for metric in _INT_METRICS + _FLOAT_METRICS:
        actual = getattr(result.metrics.network, metric)
        expected = getattr(oracle.metrics.network, metric)
        assert actual == expected, metric

"""Window functions: ranking, partition aggregates, and misuse errors."""

import pytest

from repro.core.logical import WindowOp
from repro.errors import BindError

from .conftest import ORDERS, assert_same_rows, make_small_gis


@pytest.fixture(scope="module")
def gis():
    return make_small_gis()


def by_oid(rows):
    return sorted(rows)


class TestRowNumber:
    def test_partitioned_row_number(self, gis):
        result = gis.query(
            "SELECT oid, ROW_NUMBER() OVER "
            "(PARTITION BY cust_id ORDER BY total DESC) AS rn "
            "FROM orders ORDER BY oid"
        )
        expected = {}
        for cust in {row[1] for row in ORDERS}:
            ordered = sorted(
                (r for r in ORDERS if r[1] == cust),
                key=lambda r: -r[2],
            )
            for position, row in enumerate(ordered, start=1):
                expected[row[0]] = position
        assert result.rows == [(oid, expected[oid]) for oid, _ in result.rows]
        assert {oid for oid, _ in result.rows} == {r[0] for r in ORDERS}

    def test_global_row_number_is_permutation(self, gis):
        result = gis.query(
            "SELECT ROW_NUMBER() OVER (ORDER BY total) FROM orders"
        )
        assert sorted(r[0] for r in result.rows) == list(
            range(1, len(ORDERS) + 1)
        )

    def test_row_number_ordering_with_ties_is_dense_permutation(self, gis):
        result = gis.query(
            "SELECT ROW_NUMBER() OVER (ORDER BY status) FROM orders"
        )
        assert sorted(r[0] for r in result.rows) == list(
            range(1, len(ORDERS) + 1)
        )


class TestRanking:
    def test_rank_with_gaps(self, gis):
        result = gis.query(
            "SELECT status, RANK() OVER (ORDER BY status) AS rk "
            "FROM orders ORDER BY status, rk"
        )
        # statuses: OPEN x4, RETURNED x1, SHIPPED x2 (alphabetical order)
        ranks = [row[1] for row in result.rows]
        assert ranks == [1, 1, 1, 1, 5, 6, 6]

    def test_dense_rank_no_gaps(self, gis):
        result = gis.query(
            "SELECT status, DENSE_RANK() OVER (ORDER BY status) AS dr "
            "FROM orders ORDER BY status, dr"
        )
        assert [row[1] for row in result.rows] == [1, 1, 1, 1, 2, 3, 3]


class TestPartitionAggregates:
    def test_sum_over_partition(self, gis):
        result = gis.query(
            "SELECT oid, SUM(total) OVER (PARTITION BY cust_id) FROM orders"
        )
        totals = {}
        for row in ORDERS:
            totals[row[1]] = totals.get(row[1], 0.0) + row[2]
        by_order = {row[0]: totals[row[1]] for row in ORDERS}
        for oid, value in result.rows:
            assert value == pytest.approx(by_order[oid])

    def test_count_star_over_empty_partition_clause(self, gis):
        result = gis.query("SELECT COUNT(*) OVER () FROM orders LIMIT 1")
        assert result.rows == [(len(ORDERS),)]

    def test_avg_and_share_expression(self, gis):
        result = gis.query(
            "SELECT oid, total / SUM(total) OVER () AS share FROM orders"
        )
        grand_total = sum(row[2] for row in ORDERS)
        shares = {row[0]: row[2] / grand_total for row in ORDERS}
        for oid, share in result.rows:
            assert share == pytest.approx(shares[oid])

    def test_window_in_order_by(self, gis):
        result = gis.query(
            "SELECT oid FROM orders "
            "ORDER BY RANK() OVER (ORDER BY total DESC), oid"
        )
        expected = [r[0] for r in sorted(ORDERS, key=lambda r: (-r[2], r[0]))]
        assert [row[0] for row in result.rows] == expected


class TestReferenceAgreement:
    QUERIES = [
        "SELECT oid, ROW_NUMBER() OVER (PARTITION BY status ORDER BY total) FROM orders",
        "SELECT oid, MIN(total) OVER (PARTITION BY cust_id), MAX(total) OVER () FROM orders",
        "SELECT cust_id, DENSE_RANK() OVER (ORDER BY cust_id DESC) FROM orders WHERE total > 50",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_engine_matches_reference(self, gis, sql):
        result = gis.query(sql)
        _, reference = gis.reference_query(sql)
        assert_same_rows(result.rows, reference)


class TestPlanShape:
    def test_window_op_in_plan(self, gis):
        planned = gis.plan(
            "SELECT oid, ROW_NUMBER() OVER (ORDER BY total) FROM orders"
        )
        assert any(
            isinstance(n, WindowOp) for n in planned.distributed.walk()
        )
        assert "Window(" in planned.physical.explain()

    def test_duplicate_windows_share_one_spec(self, gis):
        planned = gis.plan(
            "SELECT RANK() OVER (ORDER BY total), "
            "RANK() OVER (ORDER BY total) + 1 FROM orders"
        )
        windows = [
            n for n in planned.distributed.walk() if isinstance(n, WindowOp)
        ]
        assert len(windows) == 1 and len(windows[0].specs) == 1

    def test_filter_still_pushed_below_window(self, gis):
        planned = gis.plan(
            "SELECT oid, ROW_NUMBER() OVER (ORDER BY total) FROM orders "
            "WHERE total > 100"
        )
        from repro.core.logical import RemoteQueryOp, FilterOp

        remotes = [
            n for n in planned.distributed.walk() if isinstance(n, RemoteQueryOp)
        ]
        assert remotes and any(
            isinstance(f, FilterOp) for f in remotes[0].fragment.walk()
        )


class TestErrors:
    def test_window_in_where_rejected(self, gis):
        with pytest.raises(BindError, match="select list"):
            gis.query(
                "SELECT oid FROM orders "
                "WHERE ROW_NUMBER() OVER (ORDER BY total) = 1"
            )

    def test_window_with_group_by_rejected(self, gis):
        with pytest.raises(BindError):
            gis.query(
                "SELECT cust_id, COUNT(*) OVER () FROM orders GROUP BY cust_id"
            )

    def test_ranking_requires_order(self, gis):
        with pytest.raises(BindError, match="ORDER BY"):
            gis.query("SELECT RANK() OVER () FROM orders")

    def test_ranking_takes_no_args(self, gis):
        with pytest.raises(BindError):
            gis.query("SELECT ROW_NUMBER(total) OVER (ORDER BY oid) FROM orders")

    def test_unknown_window_function(self, gis):
        with pytest.raises(BindError, match="unknown window function"):
            gis.query("SELECT NTILE(4) OVER (ORDER BY oid) FROM orders")

    def test_distinct_in_window_rejected_by_parser(self, gis):
        from repro.errors import ParseError

        with pytest.raises(ParseError):
            gis.query("SELECT SUM(DISTINCT total) OVER () FROM orders")

"""Physical operators: join kinds, NULL-aware anti joins, exchanges, metrics."""

from repro import Catalog, SimulatedNetwork
from repro.core.logical import RelColumn
from repro.core.physical import (
    DistinctExec,
    ExecutionContext,
    FilterExec,
    HashJoinExec,
    LimitExec,
    NestedLoopJoinExec,
    ProjectExec,
    SetDifferenceExec,
    SortExec,
    StaticRowsExec,
    UnionExec,
    _row_bytes,
)
from repro.datatypes import DataType
from repro.sql import ast


def ctx():
    return ExecutionContext(Catalog(), SimulatedNetwork())


def columns(*specs):
    return [RelColumn(name, dtype) for name, dtype in specs]


def static(rows, cols):
    return StaticRowsExec(rows, cols)


INT = DataType.INTEGER
TEXT = DataType.TEXT


class TestRowBytes:
    def test_value_widths(self):
        import datetime

        row = (None, True, 7, 1.5, "abc", datetime.date(1989, 1, 1))
        assert _row_bytes(row) == 1 + 1 + 8 + 8 + 3 + 4


class TestScalarOperators:
    def test_filter(self):
        cols = columns(("a", INT))
        op = FilterExec(
            static([(1,), (5,), (None,)], cols),
            ast.BinaryOp(">", cols[0].ref(), ast.Literal(2, INT)),
        )
        assert list(op.iterate(ctx())) == [(5,)]

    def test_project(self):
        cols = columns(("a", INT))
        op = ProjectExec(
            static([(2,), (3,)], cols),
            [ast.BinaryOp("*", cols[0].ref(), ast.Literal(10, INT))],
            columns(("x", INT)),
        )
        assert list(op.iterate(ctx())) == [(20,), (30,)]

    def test_limit_and_offset(self):
        cols = columns(("a", INT))
        op = LimitExec(static([(i,) for i in range(10)], cols), 3, 2)
        assert list(op.iterate(ctx())) == [(2,), (3,), (4,)]

    def test_distinct(self):
        cols = columns(("a", INT))
        op = DistinctExec(static([(1,), (1,), (2,)], cols))
        assert list(op.iterate(ctx())) == [(1,), (2,)]

    def test_sort(self):
        cols = columns(("a", INT))
        op = SortExec(
            static([(3,), (1,), (None,)], cols), [(cols[0].ref(), True)]
        )
        assert list(op.iterate(ctx())) == [(1,), (3,), (None,)]

    def test_union(self):
        cols = columns(("a", INT))
        op = UnionExec(
            [static([(1,)], cols), static([(2,)], cols)], cols
        )
        assert list(op.iterate(ctx())) == [(1,), (2,)]

    def test_set_difference_except_and_intersect(self):
        cols = columns(("a", INT))
        left = static([(1,), (2,), (2,), (3,)], cols)
        right = static([(2,)], cols)
        except_op = SetDifferenceExec(left, right, "EXCEPT", cols)
        assert list(except_op.iterate(ctx())) == [(1,), (3,)]
        intersect_op = SetDifferenceExec(
            static([(1,), (2,), (2,)], cols), static([(2,), (9,)], cols),
            "INTERSECT", cols,
        )
        assert list(intersect_op.iterate(ctx())) == [(2,)]


def make_join(kind, left_rows, right_rows, null_aware=False, residual=None):
    left_cols = columns(("lk", INT), ("lv", TEXT))
    right_cols = columns(("rk", INT), ("rv", TEXT))
    out = left_cols + right_cols if kind in ("INNER", "LEFT") else left_cols
    return HashJoinExec(
        static(left_rows, left_cols),
        static(right_rows, right_cols),
        kind,
        [left_cols[0].ref()],
        [right_cols[0].ref()],
        residual,
        out,
        null_aware,
    ), left_cols, right_cols


class TestHashJoin:
    LEFT = [(1, "a"), (2, "b"), (None, "n"), (3, "c")]
    RIGHT = [(1, "x"), (1, "y"), (3, "z"), (None, "w")]

    def test_inner(self):
        join, _, _ = make_join("INNER", self.LEFT, self.RIGHT)
        rows = list(join.iterate(ctx()))
        assert sorted(rows) == [
            (1, "a", 1, "x"), (1, "a", 1, "y"), (3, "c", 3, "z")
        ]

    def test_left_outer(self):
        join, _, _ = make_join("LEFT", self.LEFT, self.RIGHT)
        rows = list(join.iterate(ctx()))
        assert (2, "b", None, None) in rows
        assert (None, "n", None, None) in rows
        assert len(rows) == 5

    def test_semi(self):
        join, _, _ = make_join("SEMI", self.LEFT, self.RIGHT)
        assert sorted(list(join.iterate(ctx()))) == [(1, "a"), (3, "c")]

    def test_anti_not_exists_semantics(self):
        join, _, _ = make_join("ANTI", self.LEFT, self.RIGHT)
        rows = list(join.iterate(ctx()))
        # NULL probe key has no match → kept (NOT EXISTS semantics).
        assert sorted(rows, key=repr) == sorted(
            [(2, "b"), (None, "n")], key=repr
        )

    def test_anti_null_aware_right_null_kills_all(self):
        join, _, _ = make_join("ANTI", self.LEFT, self.RIGHT, null_aware=True)
        assert list(join.iterate(ctx())) == []

    def test_anti_null_aware_without_right_nulls(self):
        right = [(1, "x"), (3, "z")]
        join, _, _ = make_join("ANTI", self.LEFT, right, null_aware=True)
        rows = list(join.iterate(ctx()))
        # NULL probe key: NULL NOT IN (1,3) is NULL → dropped.
        assert rows == [(2, "b")]

    def test_residual_predicate(self):
        left_cols = columns(("lk", INT), ("lv", INT))
        right_cols = columns(("rk", INT), ("rv", INT))
        residual = ast.BinaryOp("<", left_cols[1].ref(), right_cols[1].ref())
        join = HashJoinExec(
            static([(1, 10), (1, 99)], left_cols),
            static([(1, 50)], right_cols),
            "INNER",
            [left_cols[0].ref()],
            [right_cols[0].ref()],
            residual,
            left_cols + right_cols,
        )
        assert list(join.iterate(ctx())) == [(1, 10, 1, 50)]

    def test_empty_right_left_join(self):
        join, _, _ = make_join("LEFT", [(1, "a")], [])
        assert list(join.iterate(ctx())) == [(1, "a", None, None)]


class TestNestedLoopJoin:
    def test_non_equi_inner(self):
        left_cols = columns(("a", INT))
        right_cols = columns(("b", INT))
        condition = ast.BinaryOp("<", left_cols[0].ref(), right_cols[0].ref())
        join = NestedLoopJoinExec(
            static([(1,), (5,)], left_cols),
            static([(3,), (6,)], right_cols),
            "INNER",
            condition,
            left_cols + right_cols,
        )
        assert sorted(list(join.iterate(ctx()))) == [(1, 3), (1, 6), (5, 6)]

    def test_exists_semi_with_no_condition(self):
        left_cols = columns(("a", INT))
        right_cols = columns(("b", INT))
        join = NestedLoopJoinExec(
            static([(1,), (2,)], left_cols),
            static([(9,)], right_cols),
            "SEMI",
            None,
            left_cols,
        )
        assert list(join.iterate(ctx())) == [(1,), (2,)]

    def test_not_exists_with_empty_right(self):
        left_cols = columns(("a", INT))
        right_cols = columns(("b", INT))
        join = NestedLoopJoinExec(
            static([(1,)], left_cols),
            static([], right_cols),
            "ANTI",
            None,
            left_cols,
        )
        assert list(join.iterate(ctx())) == [(1,)]

    def test_left_with_condition(self):
        left_cols = columns(("a", INT))
        right_cols = columns(("b", INT))
        condition = ast.BinaryOp("=", left_cols[0].ref(), right_cols[0].ref())
        join = NestedLoopJoinExec(
            static([(1,), (2,)], left_cols),
            static([(1,)], right_cols),
            "LEFT",
            condition,
            left_cols + right_cols,
        )
        assert sorted(list(join.iterate(ctx())), key=repr) == sorted(
            [(1, 1), (2, None)], key=repr
        )


class TestExchangeMetrics:
    def test_exchange_pages_and_bytes(self, small_gis):
        result = small_gis.query("SELECT name FROM customers")
        metrics = result.metrics
        assert metrics.rows_shipped == 5
        assert metrics.messages >= 1
        assert metrics.bytes_shipped > 0
        assert metrics.network.fragments_executed == 1
        assert metrics.network.per_source_rows == {"crm": 5}

    def test_empty_result_still_costs_a_message(self, small_gis):
        result = small_gis.query("SELECT name FROM customers WHERE id > 999")
        assert result.rows == []
        assert result.metrics.messages >= 1

    def test_page_size_drives_message_count(self):
        from repro import GlobalInformationSystem, MemorySource
        from repro.catalog.schema import schema_from_pairs

        gis = GlobalInformationSystem()
        source = MemorySource("m")
        caps = source.capabilities().restricted(page_rows=10)
        source._capabilities = caps
        schema = schema_from_pairs("t", [("a", "INT")])
        source.add_table("t", schema, [(i,) for i in range(95)])
        gis.register_source("m", source)
        gis.register_table("t", source="m")
        result = gis.query("SELECT a FROM t")
        # 95 rows at 10/page → 9 full pages + final partial/empty page.
        assert result.metrics.messages == 10

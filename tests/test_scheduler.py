"""The parallel fragment scheduler and its robustness envelope.

Covers: parallel/sequential result equivalence, the exponential backoff
schedule, no-progress timeouts against hanging sources, circuit-breaker
state transitions (unit and integrated), replica fallback with an open
breaker, and thread safety of the mediator under concurrent queries.
"""

import threading
import time
from typing import Iterator

import pytest

from repro import (
    GlobalInformationSystem,
    MemorySource,
    PlannerOptions,
    SourceError,
)
from repro.catalog.schema import schema_from_pairs
from repro.core.fragments import Fragment
from repro.core import scheduler as scheduler_module
from repro.core.scheduler import (
    CircuitBreaker,
    CircuitBreakerRegistry,
    RetryPolicy,
    SchedulerConfig,
)
from repro.workloads.tpch_lite import build_partitioned_orders


SCHEMA = schema_from_pairs("t", [("a", "INT"), ("b", "TEXT")])
ROWS = [(i, f"v{i}") for i in range(50)]

PARALLEL = PlannerOptions(max_parallel_fragments=8)


class FlakySource(MemorySource):
    """Fails the first N execute() calls before yielding anything."""

    def __init__(self, name, failures=1):
        super().__init__(name)
        self.failures_left = failures
        self.execute_calls = 0

    def execute(self, fragment: Fragment) -> Iterator[tuple]:
        self.execute_calls += 1
        if self.failures_left > 0:
            self.failures_left -= 1
            raise SourceError(self.name, "transient outage")
        yield from super().execute(fragment)


class HangingSource(MemorySource):
    """Blocks inside execute() until released (a hung component system)."""

    def __init__(self, name, hang_s=5.0):
        super().__init__(name)
        self.hang_s = hang_s
        self.released = threading.Event()
        self.execute_calls = 0

    def execute(self, fragment: Fragment) -> Iterator[tuple]:
        self.execute_calls += 1
        self.released.wait(timeout=self.hang_s)
        yield from super().execute(fragment)


class BrokenSource(MemorySource):
    """Every execute() fails (a down component system)."""

    def __init__(self, name):
        super().__init__(name)
        self.execute_calls = 0

    def execute(self, fragment: Fragment) -> Iterator[tuple]:
        self.execute_calls += 1
        raise SourceError(self.name, "connection refused")
        yield  # pragma: no cover - makes this a generator


def build(source, retries=0, options=None, **gis_kwargs):
    gis = GlobalInformationSystem(
        fragment_retries=retries, options=options, **gis_kwargs
    )
    source.add_table("t", SCHEMA, ROWS)
    gis.register_source(source.name, source)
    gis.register_table("t", source=source.name)
    return gis


def capture_sleeps(monkeypatch):
    """Patch the scheduler's sleep hook; returns the recorded delays (s)."""
    sleeps = []
    monkeypatch.setattr(scheduler_module, "_default_sleep", sleeps.append)
    return sleeps


# ---------------------------------------------------------------------------
# parallel execution equivalence
# ---------------------------------------------------------------------------


class TestParallelEquivalence:
    def test_partitioned_union_bit_identical(self):
        federation = build_partitioned_orders(4, 100, seed=42)
        gis = federation.gis
        sql = "SELECT o_id, o_total FROM orders_all WHERE o_total > 500"
        sequential = gis.query(sql)
        parallel = gis.query(sql, PARALLEL)
        assert parallel.rows == sequential.rows
        assert len(sequential.rows) > 0
        assert sequential.metrics.network.scheduler_mode == "sequential"
        assert parallel.metrics.network.scheduler_mode == "parallel(8)"

    def test_fragment_accounting_matches_sequential(self):
        federation = build_partitioned_orders(4, 50, seed=7)
        gis = federation.gis
        sql = "SELECT COUNT(*) FROM orders_all"
        sequential = gis.query(sql)
        parallel = gis.query(sql, PARALLEL)
        seq_net = sequential.metrics.network
        par_net = parallel.metrics.network
        assert par_net.fragments_executed == seq_net.fragments_executed
        assert par_net.rows_shipped == seq_net.rows_shipped
        assert par_net.messages == seq_net.messages
        assert par_net.bytes_shipped == seq_net.bytes_shipped

    def test_parallel_critical_path_beats_sequential_sum(self):
        # A shared barrier forces all four shard fetches to be in flight
        # simultaneously, making the peak-concurrency assertion exact.
        barrier = threading.Barrier(4)

        class BarrierAdapter:
            def __init__(self, inner):
                self._inner = inner

            def __getattr__(self, item):
                return getattr(self._inner, item)

            def execute(self, fragment):
                barrier.wait(timeout=10)
                yield from self._inner.execute(fragment)

            def execute_pages(self, fragment, page_rows):
                barrier.wait(timeout=10)
                yield from self._inner.execute_pages(fragment, page_rows)

        federation = build_partitioned_orders(
            4, 100, seed=42, adapter_wrapper=BarrierAdapter
        )
        gis = federation.gis
        result = gis.query("SELECT o_id FROM orders_all", PARALLEL)
        net = result.metrics.network
        assert net.parallel_ms > 0
        assert net.parallel_ms < net.network_ms  # overlap actually helped
        assert net.fragments_in_flight_peak == 4

    def test_join_and_aggregate_equivalence(self):
        federation = build_partitioned_orders(4, 100, seed=9)
        gis = federation.gis
        sql = (
            "SELECT o_status, COUNT(*), SUM(o_total) FROM orders_all "
            "GROUP BY o_status ORDER BY o_status"
        )
        assert gis.query(sql, PARALLEL).rows == gis.query(sql).rows

    def test_explain_shows_parallel_mode(self):
        federation = build_partitioned_orders(2, 10, seed=1)
        explain = federation.gis.explain(
            "SELECT o_id FROM orders_all", PARALLEL
        )
        assert "parallel" in explain
        sequential = federation.gis.explain("SELECT o_id FROM orders_all")
        assert "parallel" not in sequential

    def test_timeout_only_mode_labeled(self):
        gis = build(MemorySource("mem"))
        result = gis.query(
            "SELECT COUNT(*) FROM t",
            PlannerOptions(fragment_timeout_ms=5000),
        )
        assert result.scalar() == len(ROWS)
        assert result.metrics.network.scheduler_mode == "sequential+timeout"

    def test_semijoin_batches_parallel_equivalence(self):
        # A bind join against a second source exercises submit_fragment.
        gis = GlobalInformationSystem()
        left = MemorySource("left")
        left.add_table("probe", schema_from_pairs("probe", [("k", "INT")]),
                       [(i,) for i in range(0, 40, 2)])
        right = MemorySource("right")
        right.add_table("t", SCHEMA, ROWS)
        gis.register_source("left", left)
        gis.register_source("right", right)
        gis.register_table("probe", source="left")
        gis.register_table("t", source="right")
        sql = (
            "SELECT p.k, t.b FROM probe p JOIN t ON p.k = t.a "
            "ORDER BY p.k"
        )
        force = PlannerOptions(semijoin="force")
        sequential = gis.query(sql, force)
        parallel = gis.query(sql, force.but(max_parallel_fragments=4))
        assert parallel.rows == sequential.rows
        assert parallel.metrics.network.semijoin_batches == \
            sequential.metrics.network.semijoin_batches


# ---------------------------------------------------------------------------
# retry backoff
# ---------------------------------------------------------------------------


class TestRetryPolicy:
    def test_exponential_schedule_with_cap(self):
        policy = RetryPolicy(retries=3, backoff_ms=50, multiplier=2.0,
                             max_ms=120.0)
        assert [policy.base_delay_ms(n) for n in (1, 2, 3)] == [50, 100, 120]

    def test_zero_backoff_retries_immediately(self):
        policy = RetryPolicy(retries=2)
        assert policy.delay_ms(1) == 0.0
        assert policy.delay_ms(2) == 0.0

    def test_jitter_bounds(self):
        import random

        policy = RetryPolicy(retries=1, backoff_ms=100, jitter=0.25)
        rng = random.Random(123)
        for attempt in (1, 2, 3):
            delay = policy.delay_ms(attempt, rng)
            base = policy.base_delay_ms(attempt)
            assert base * 0.75 <= delay <= base * 1.25


class TestBackoffIntegration:
    def test_sequential_mode_sleeps_backoff_schedule(self, monkeypatch):
        sleeps = capture_sleeps(monkeypatch)
        source = FlakySource("flaky", failures=2)
        gis = build(source, retries=3)
        result = gis.query(
            "SELECT COUNT(*) FROM t",
            PlannerOptions(retry_backoff_ms=40, retry_backoff_multiplier=2.0),
        )
        assert result.scalar() == len(ROWS)
        assert source.execute_calls == 3
        assert [round(s * 1000) for s in sleeps] == [40, 80]

    def test_parallel_mode_sleeps_backoff_schedule(self, monkeypatch):
        sleeps = capture_sleeps(monkeypatch)
        source = FlakySource("flaky", failures=2)
        gis = build(source, retries=3)
        result = gis.query(
            "SELECT COUNT(*) FROM t",
            PlannerOptions(
                max_parallel_fragments=4,
                retry_backoff_ms=40,
                retry_backoff_multiplier=2.0,
            ),
        )
        assert result.scalar() == len(ROWS)
        assert source.execute_calls == 3
        assert [round(s * 1000) for s in sleeps] == [40, 80]
        assert result.metrics.network.fragment_retries == 2

    def test_no_backoff_by_default(self, monkeypatch):
        sleeps = capture_sleeps(monkeypatch)
        gis = build(FlakySource("flaky", failures=1), retries=1)
        assert gis.query("SELECT COUNT(*) FROM t").scalar() == len(ROWS)
        assert sleeps == []

    def test_retries_exhausted_raises_in_parallel_mode(self):
        gis = build(FlakySource("flaky", failures=5), retries=2)
        with pytest.raises(SourceError, match="transient"):
            gis.query("SELECT COUNT(*) FROM t", PARALLEL)


# ---------------------------------------------------------------------------
# timeouts
# ---------------------------------------------------------------------------


class TestFragmentTimeout:
    def test_hanging_source_trips_timeout(self):
        source = HangingSource("hung", hang_s=30.0)
        gis = build(source)
        started = time.perf_counter()
        with pytest.raises(SourceError, match="no progress"):
            gis.query(
                "SELECT COUNT(*) FROM t",
                PlannerOptions(fragment_timeout_ms=150),
            )
        elapsed = time.perf_counter() - started
        assert elapsed < 5.0  # did not wait out the 30 s hang
        source.released.set()  # unblock the abandoned worker

    def test_healthy_source_unaffected_by_timeout(self):
        gis = build(MemorySource("mem"))
        result = gis.query(
            "SELECT COUNT(*) FROM t",
            PlannerOptions(max_parallel_fragments=4, fragment_timeout_ms=5000),
        )
        assert result.scalar() == len(ROWS)

    def test_timeout_failure_counts_toward_breaker(self):
        source = HangingSource("hung", hang_s=30.0)
        gis = build(source)
        options = PlannerOptions(
            fragment_timeout_ms=100, breaker_failure_threshold=1
        )
        with pytest.raises(SourceError, match="no progress"):
            gis.query("SELECT COUNT(*) FROM t", options)
        breaker = gis.breakers.get("hung")
        assert breaker is not None
        assert breaker.state == "open"
        source.released.set()


# ---------------------------------------------------------------------------
# circuit breaker unit behavior
# ---------------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def test_trips_open_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
        assert breaker.state == "closed"
        assert not breaker.record_failure()
        assert not breaker.record_failure()
        assert breaker.record_failure()  # third consecutive failure trips
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trip_count == 1

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        assert not breaker.record_failure()  # count restarted
        assert breaker.state == "closed"

    def test_half_open_after_reset_period(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_ms=1000,
                                 clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(0.5)
        assert breaker.state == "open"
        clock.advance(0.6)
        assert breaker.state == "half-open"

    def test_half_open_admits_single_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_ms=1000,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # concurrent callers stay blocked

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, reset_ms=1000,
                                 clock=clock)
        breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, reset_ms=1000,
                                 clock=clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(2.0)
        assert breaker.allow()
        assert breaker.record_failure()  # half-open failure trips again
        assert breaker.state == "open"
        assert breaker.trip_count == 2
        assert not breaker.allow()

    def test_registry_shares_and_namespaces(self):
        registry = CircuitBreakerRegistry()
        a = registry.breaker_for("ERP", 3, 1000)
        assert registry.breaker_for("erp", 3, 1000) is a
        assert registry.get("erp") is a
        assert registry.get("other") is None
        a.record_failure()
        a.record_failure()
        a.record_failure()
        assert registry.trip_count() == 1


# ---------------------------------------------------------------------------
# breaker integration: fail fast & replica fallback
# ---------------------------------------------------------------------------


def breaker_options(**overrides):
    defaults = dict(breaker_failure_threshold=2, breaker_reset_ms=60000.0)
    defaults.update(overrides)
    return PlannerOptions(**defaults)


class TestBreakerIntegration:
    def test_repeated_failures_fail_fast(self):
        source = BrokenSource("down")
        gis = build(source)
        options = breaker_options()
        for _ in range(2):
            with pytest.raises(SourceError):
                gis.query("SELECT COUNT(*) FROM t", options)
        assert gis.breakers.get("down").state == "open"
        calls_when_tripped = source.execute_calls
        with pytest.raises(SourceError, match="circuit breaker open"):
            gis.query("SELECT COUNT(*) FROM t", options)
        # Fail-fast: the source was never touched after the trip.
        assert source.execute_calls == calls_when_tripped

    def test_breaker_trip_recorded_in_metrics(self):
        gis = build(BrokenSource("down"), retries=2)
        options = breaker_options(breaker_failure_threshold=2)
        with pytest.raises(SourceError):
            gis.query("SELECT COUNT(*) FROM t", options)
        # The in-query retries crossed the threshold: trip recorded even
        # though the query itself failed... via the registry.
        assert gis.breakers.get("down").trip_count == 1

    def test_parallel_mode_fail_fast(self):
        source = BrokenSource("down")
        gis = build(source)
        options = breaker_options(max_parallel_fragments=4)
        for _ in range(2):
            with pytest.raises(SourceError):
                gis.query("SELECT COUNT(*) FROM t", options)
        with pytest.raises(SourceError, match="circuit breaker open"):
            gis.query("SELECT COUNT(*) FROM t", options)

    def _replica_federation(self, primary):
        """``t`` on a failing primary with a healthy replica on ``backup``."""
        gis = GlobalInformationSystem(fragment_retries=1)
        primary.add_table("t", SCHEMA, ROWS)
        backup = MemorySource("backup")
        backup.add_table("t_copy", SCHEMA, ROWS)
        gis.register_source(primary.name, primary)
        gis.register_source("backup", backup)
        gis.register_table("t", source=primary.name)
        gis.register_replica("t", source="backup", remote_table="t_copy")
        return gis

    def test_open_breaker_falls_back_to_replica(self):
        primary = BrokenSource("down")
        gis = self._replica_federation(primary)
        # Keep the planner pinned to the primary so the fallback is the
        # runtime's doing, not the replica selector's.
        options = breaker_options(
            breaker_failure_threshold=1, replicas="primary"
        )
        result = gis.query("SELECT a, b FROM t ORDER BY a", options)
        assert result.rows == sorted(ROWS)
        net = result.metrics.network
        assert net.breaker_trips == 1
        assert net.breaker_fallbacks == 1
        assert gis.breakers.get("down").state == "open"

    def test_replica_fallback_in_parallel_mode(self):
        primary = BrokenSource("down")
        gis = self._replica_federation(primary)
        options = breaker_options(
            breaker_failure_threshold=1,
            replicas="primary",
            max_parallel_fragments=4,
        )
        result = gis.query("SELECT a, b FROM t ORDER BY a", options)
        assert result.rows == sorted(ROWS)
        assert result.metrics.network.breaker_fallbacks == 1

    def test_summary_reports_breaker_activity(self):
        primary = BrokenSource("down")
        gis = self._replica_federation(primary)
        options = breaker_options(
            breaker_failure_threshold=1, replicas="primary"
        )
        result = gis.query("SELECT COUNT(*) FROM t", options)
        assert "circuit breakers: 1 trips, 1 replica fallbacks" in \
            result.metrics.summary()


# ---------------------------------------------------------------------------
# scheduler config derivation
# ---------------------------------------------------------------------------


class TestSchedulerConfig:
    def test_sequential_default_is_unscheduled(self):
        config = SchedulerConfig.from_options(PlannerOptions(), 0)
        assert not config.parallel
        assert not config.scheduled

    def test_parallel_and_timeout_schedule(self):
        assert SchedulerConfig.from_options(PARALLEL, 0).scheduled
        assert SchedulerConfig.from_options(
            PlannerOptions(fragment_timeout_ms=100), 0
        ).scheduled

    def test_retry_policy_derived(self):
        options = PlannerOptions(
            retry_backoff_ms=25, retry_backoff_multiplier=3.0,
            retry_backoff_max_ms=900, retry_jitter=0.1,
        )
        config = SchedulerConfig.from_options(options, 4)
        assert config.retry == RetryPolicy(
            retries=4, backoff_ms=25, multiplier=3.0, max_ms=900, jitter=0.1
        )


# ---------------------------------------------------------------------------
# thread safety
# ---------------------------------------------------------------------------


class TestThreadSafety:
    def test_concurrent_queries_through_one_mediator(self):
        federation = build_partitioned_orders(4, 50, seed=3)
        gis = federation.gis
        sql = "SELECT o_id, o_total FROM orders_all WHERE o_total > 500"
        expected = gis.query(sql).rows
        results = [None] * 8
        errors = []

        def worker(slot):
            try:
                options = PARALLEL if slot % 2 else None
                results[slot] = gis.query(sql, options).rows
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert all(rows == expected for rows in results)

    def test_result_cache_under_concurrency(self):
        federation = build_partitioned_orders(2, 50, seed=5)
        source_gis = federation.gis
        # Rebuild with a cache on the same sources via a fresh mediator is
        # heavy; instead hammer an existing cached mediator.
        gis = GlobalInformationSystem(result_cache_size=4)
        mem = MemorySource("mem")
        mem.add_table("t", SCHEMA, ROWS)
        gis.register_source("mem", mem)
        gis.register_table("t", source="mem")
        sql = "SELECT COUNT(*) FROM t"
        expected = gis.query(sql).scalar()
        errors = []

        def worker():
            try:
                for _ in range(20):
                    assert gis.query(sql).scalar() == expected
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert gis.cache_hits > 0

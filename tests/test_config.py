"""Declarative federation configuration (repro.config)."""

import json

import pytest

from repro.config import build_from_config, load_config
from repro.errors import CatalogError, PlanError


def base_config(tmp_path=None):
    return {
        "sources": {
            "erp": {
                "type": "sqlite",
                "tables": {
                    "ORDERS": {
                        "columns": [["oid", "INT"], ["cust_id", "INT"],
                                    ["total", "FLOAT"]],
                        "rows": [[1, 10, 9.5], [2, 10, 100.0], [3, 11, 55.0]],
                    }
                },
                "link": {"latency_ms": 30, "bandwidth_bytes_per_s": 2e6},
            },
            "crm": {
                "type": "memory",
                "tables": {
                    "customers": {
                        "columns": [["id", "INT"], ["name", "TEXT"]],
                        "rows": [[10, "Ada"], [11, "Grace"]],
                    }
                },
            },
        },
        "tables": [
            {"name": "orders", "source": "erp", "remote_table": "ORDERS"},
            {"name": "customers", "source": "crm"},
        ],
        "views": {"big_orders": "SELECT * FROM orders WHERE total > 50"},
        "analyze": True,
    }


class TestBuild:
    def test_end_to_end(self):
        gis = build_from_config(base_config())
        result = gis.query(
            "SELECT c.name, COUNT(*) FROM customers c "
            "JOIN big_orders o ON c.id = o.cust_id GROUP BY c.name ORDER BY 1"
        )
        assert result.rows == [("Ada", 1), ("Grace", 1)]

    def test_link_configured(self):
        gis = build_from_config(base_config())
        assert gis.network.link_for("erp").latency_ms == 30.0

    def test_analyze_ran(self):
        gis = build_from_config(base_config())
        assert gis.catalog.statistics("orders") is not None

    def test_analyze_skippable(self):
        config = base_config()
        config["analyze"] = False
        gis = build_from_config(config)
        assert gis.catalog.statistics("orders") is None

    def test_planner_options_passed(self):
        config = base_config()
        config["options"] = {"join_strategy": "canonical", "semijoin": "off"}
        gis = build_from_config(config)
        assert gis.planner.options.join_strategy == "canonical"

    def test_invalid_options_rejected(self):
        config = base_config()
        config["options"] = {"join_strategy": "quantum"}
        with pytest.raises(PlanError):
            build_from_config(config)

    def test_cache_and_retries(self):
        config = base_config()
        config["result_cache_size"] = 4
        config["fragment_retries"] = 2
        gis = build_from_config(config)
        assert gis.fragment_retries == 2
        gis.query("SELECT COUNT(*) FROM orders")
        assert gis.query("SELECT COUNT(*) FROM orders").metrics.network.cache_hit

    def test_replicas(self):
        config = base_config()
        config["sources"]["backup"] = {
            "type": "sqlite",
            "tables": {
                "ORDERS": {
                    "columns": [["oid", "INT"], ["cust_id", "INT"],
                                ["total", "FLOAT"]],
                    "rows": [[1, 10, 9.5], [2, 10, 100.0], [3, 11, 55.0]],
                }
            },
            "link": {"latency_ms": 1, "bandwidth_bytes_per_s": 1e9},
        }
        config["replicas"] = [
            {"name": "orders", "source": "backup", "remote_table": "ORDERS"}
        ]
        gis = build_from_config(config)
        planned = gis.plan("SELECT oid FROM orders")
        from repro.core.logical import RemoteQueryOp

        sources = {
            n.source_name for n in planned.distributed.walk()
            if isinstance(n, RemoteQueryOp)
        }
        assert sources == {"backup"}


class TestSourceTypes:
    def test_csv_source_with_materialized_rows(self, tmp_path):
        config = {
            "sources": {
                "archive": {
                    "type": "csv",
                    "directory": str(tmp_path),
                    "tables": {
                        "parts": {
                            "columns": [["p_id", "INT"], ["p_name", "TEXT"]],
                            "rows": [[1, "bolt"], [2, "nut"]],
                        }
                    },
                }
            },
            "tables": [{"name": "parts", "source": "archive"}],
        }
        gis = build_from_config(config)
        assert gis.query("SELECT COUNT(*) FROM parts").scalar() == 2

    def test_keyvalue_requires_key(self):
        config = {
            "sources": {
                "kv": {
                    "type": "keyvalue",
                    "tables": {"t": {"columns": [["k", "INT"]], "rows": []}},
                }
            }
        }
        with pytest.raises(CatalogError, match="key"):
            build_from_config(config)

    def test_keyvalue_and_rest(self):
        config = {
            "sources": {
                "kv": {
                    "type": "keyvalue",
                    "tables": {
                        "profiles": {
                            "columns": [["uid", "INT"], ["tier", "TEXT"]],
                            "rows": [[1, "GOLD"], [2, "BASIC"]],
                            "key": "uid",
                        }
                    },
                },
                "feed": {
                    "type": "rest",
                    "page_rows": 10,
                    "tables": {
                        "events": {
                            "columns": [["eid", "INT"], ["uid", "INT"]],
                            "rows": [[100, 1], [101, 2], [102, 1]],
                        }
                    },
                },
            },
            "tables": [
                {"name": "profiles", "source": "kv"},
                {"name": "events", "source": "feed"},
            ],
        }
        gis = build_from_config(config)
        result = gis.query(
            "SELECT p.tier, COUNT(*) FROM profiles p "
            "JOIN events e ON p.uid = e.uid GROUP BY p.tier ORDER BY 1"
        )
        assert result.rows == [("BASIC", 1), ("GOLD", 2)]

    def test_unknown_source_type(self):
        with pytest.raises(CatalogError, match="unknown type"):
            build_from_config({"sources": {"x": {"type": "oracle"}}})

    def test_sources_required(self):
        with pytest.raises(CatalogError, match="sources"):
            build_from_config({})

    def test_csv_requires_directory(self):
        with pytest.raises(CatalogError, match="directory"):
            build_from_config({"sources": {"c": {"type": "csv"}}})

    def test_column_list_shorthand(self):
        config = {
            "sources": {
                "m": {"type": "memory", "tables": {"t": [["a", "INT"]]}}
            },
            "tables": [{"name": "t", "source": "m"}],
        }
        gis = build_from_config(config)
        assert gis.query("SELECT COUNT(*) FROM t").scalar() == 0


class TestSchedulerConfig:
    def test_full_knob_set(self):
        config = base_config()
        config["scheduler"] = {
            "max_parallel_fragments": 8,
            "max_parallel_per_source": 3,
            "fragment_timeout_ms": 2000,
            "retry": {"retries": 3, "backoff_ms": 50, "multiplier": 3,
                      "max_ms": 4000, "jitter": 0.2},
            "circuit_breaker": {"failure_threshold": 5, "reset_ms": 10000},
        }
        gis = build_from_config(config)
        opts = gis.planner.options
        assert opts.max_parallel_fragments == 8
        assert opts.max_parallel_per_source == 3
        assert opts.fragment_timeout_ms == 2000.0
        assert opts.retry_backoff_ms == 50.0
        assert opts.retry_backoff_multiplier == 3.0
        assert opts.retry_backoff_max_ms == 4000.0
        assert opts.retry_jitter == 0.2
        assert opts.breaker_failure_threshold == 5
        assert opts.breaker_reset_ms == 10000.0
        assert gis.fragment_retries == 3

    def test_scheduler_queries_still_correct(self):
        config = base_config()
        config["scheduler"] = {"max_parallel_fragments": 4}
        gis = build_from_config(config)
        result = gis.query(
            "SELECT c.name, COUNT(*) FROM customers c "
            "JOIN big_orders o ON c.id = o.cust_id GROUP BY c.name ORDER BY 1"
        )
        assert result.rows == [("Ada", 1), ("Grace", 1)]
        assert result.metrics.network.scheduler_mode == "parallel(4)"

    def test_merges_with_explicit_options(self):
        config = base_config()
        config["options"] = {"join_strategy": "canonical"}
        config["scheduler"] = {"max_parallel_fragments": 2}
        gis = build_from_config(config)
        assert gis.planner.options.join_strategy == "canonical"
        assert gis.planner.options.max_parallel_fragments == 2

    def test_retries_key_overrides_legacy_fragment_retries(self):
        config = base_config()
        config["fragment_retries"] = 1
        config["scheduler"] = {"retry": {"retries": 4}}
        gis = build_from_config(config)
        assert gis.fragment_retries == 4

    def test_unknown_key_rejected(self):
        config = base_config()
        config["scheduler"] = {"max_parallel": 4}
        with pytest.raises(CatalogError, match="max_parallel"):
            build_from_config(config)

    def test_unknown_retry_key_rejected(self):
        config = base_config()
        config["scheduler"] = {"retry": {"backof_ms": 10}}
        with pytest.raises(CatalogError, match="backof_ms"):
            build_from_config(config)

    def test_wrong_type_rejected(self):
        config = base_config()
        config["scheduler"] = {"max_parallel_fragments": "lots"}
        with pytest.raises(CatalogError, match="must be an integer"):
            build_from_config(config)

    def test_bool_is_not_an_integer(self):
        config = base_config()
        config["scheduler"] = {"max_parallel_fragments": True}
        with pytest.raises(CatalogError, match="must be an integer"):
            build_from_config(config)

    def test_non_mapping_section_rejected(self):
        config = base_config()
        config["scheduler"] = [4]
        with pytest.raises(CatalogError, match="mapping"):
            build_from_config(config)

    def test_out_of_range_value_rejected(self):
        config = base_config()
        config["scheduler"] = {"max_parallel_fragments": 0}
        with pytest.raises(CatalogError, match="invalid scheduler config"):
            build_from_config(config)

    def test_negative_retries_rejected(self):
        config = base_config()
        config["scheduler"] = {"retry": {"retries": -1}}
        with pytest.raises(CatalogError, match="retries"):
            build_from_config(config)

    def test_jitter_range_enforced(self):
        config = base_config()
        config["scheduler"] = {"retry": {"jitter": 1.5}}
        with pytest.raises(CatalogError, match="jitter"):
            build_from_config(config)


class TestJsonFile:
    def test_load_config_from_json(self, tmp_path):
        path = tmp_path / "federation.json"
        path.write_text(json.dumps(base_config()))
        gis = load_config(str(path))
        assert gis.query("SELECT COUNT(*) FROM orders").scalar() == 3


class TestResilienceConfig:
    def test_deadline_and_mode_applied(self):
        config = base_config()
        config["resilience"] = {
            "deadline_ms": 60000.0, "on_source_failure": "partial"
        }
        gis = build_from_config(config)
        assert gis.planner.options.deadline_ms == 60000.0
        assert gis.planner.options.on_source_failure == "partial"

    def test_unknown_resilience_key_rejected(self):
        config = base_config()
        config["resilience"] = {"deadlines_ms": 10}
        with pytest.raises(CatalogError, match="resilience"):
            build_from_config(config)

    def test_invalid_mode_rejected(self):
        config = base_config()
        config["resilience"] = {"on_source_failure": "shrug"}
        with pytest.raises(CatalogError, match="on_source_failure"):
            build_from_config(config)

    def test_non_numeric_deadline_rejected(self):
        config = base_config()
        config["resilience"] = {"deadline_ms": "fast"}
        with pytest.raises(CatalogError, match="deadline_ms"):
            build_from_config(config)


class TestFaultsConfig:
    def test_faults_section_arms_injector(self):
        config = base_config()
        config["faults"] = {
            "seed": 7,
            "sources": {"erp": {"fail_connect": 99}},
        }
        gis = build_from_config(config)
        assert gis.fault_injector is not None
        assert gis.fault_injector.plan.seed == 7
        from repro.errors import SourceError

        with pytest.raises(SourceError, match="injected fault"):
            gis.query("SELECT COUNT(*) FROM orders")
        # The unfaulted source still answers.
        assert gis.query("SELECT COUNT(*) FROM customers").scalar() == 2

    def test_latency_fault_from_config(self):
        plain = build_from_config(base_config())
        baseline = plain.query("SELECT oid FROM orders")
        config = base_config()
        config["faults"] = {"sources": {"erp": {"latency_ms": 500.0}}}
        gis = build_from_config(config)
        slow = gis.query("SELECT oid FROM orders")
        assert slow.rows == baseline.rows
        assert slow.metrics.simulated_ms > baseline.metrics.simulated_ms

    def test_unknown_fault_key_rejected(self):
        config = base_config()
        config["faults"] = {"sources": {"erp": {"fail_conect": 1}}}
        with pytest.raises(CatalogError, match="fail_conect"):
            build_from_config(config)

    def test_unknown_faults_section_key_rejected(self):
        config = base_config()
        config["faults"] = {"seeds": 3}
        with pytest.raises(CatalogError, match="faults"):
            build_from_config(config)

    def test_invalid_spec_value_rejected(self):
        config = base_config()
        config["faults"] = {"sources": {"erp": {"fail_connect": -1}}}
        with pytest.raises(CatalogError, match="fail_connect"):
            build_from_config(config)


class TestServeConfig:
    def test_plan_cache_size_from_config(self):
        config = base_config()
        config["plan_cache_size"] = 32
        gis = build_from_config(config)
        assert gis.plan_cache.capacity == 32
        gis.query("SELECT COUNT(*) FROM orders")
        assert gis.query("SELECT COUNT(*) FROM orders").metrics.network.plan_cache_hit

    def test_build_server_config(self):
        from repro.config import build_server_config

        server_config = build_server_config(
            {
                "host": "0.0.0.0",
                "port": 7432,
                "max_workers": 8,
                "default_max_concurrent": 3,
                "require_known_tenant": True,
                "tenants": {
                    "analytics": {"token": "s3cret", "max_concurrent": 4},
                    "batch": {"max_queued": 64},
                },
            }
        )
        assert server_config.host == "0.0.0.0" and server_config.port == 7432
        assert server_config.max_workers == 8
        assert server_config.require_known_tenant
        assert server_config.tenants["analytics"].token == "s3cret"
        assert server_config.tenants["analytics"].quota().max_concurrent == 4
        assert server_config.tenants["batch"].quota().max_queued == 64
        assert server_config.default_quota().max_concurrent == 3

    def test_unknown_serve_key_rejected(self):
        from repro.config import build_server_config

        with pytest.raises(CatalogError, match="max_workerz"):
            build_server_config({"max_workerz": 2})

    def test_unknown_tenant_key_rejected(self):
        from repro.config import build_server_config

        with pytest.raises(CatalogError, match="tokn"):
            build_server_config({"tenants": {"a": {"tokn": "x"}}})

    def test_invalid_quota_rejected(self):
        from repro.config import build_server_config

        with pytest.raises(CatalogError):
            build_server_config({"tenants": {"a": {"max_concurrent": 0}}})

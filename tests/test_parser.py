"""Parser: statement shapes, expression precedence, and error reporting."""

import datetime

import pytest

from repro.datatypes import DataType
from repro.errors import ParseError
from repro.sql import ast
from repro.sql.parser import parse_select


def expr_of(sql_expr):
    statement = parse_select(f"SELECT {sql_expr}")
    assert isinstance(statement, ast.Select)
    return statement.items[0].expr


class TestSelectShape:
    def test_minimal_select(self):
        statement = parse_select("SELECT 1")
        assert isinstance(statement, ast.Select)
        assert statement.from_item is None
        assert statement.items[0].expr == ast.Literal(1, DataType.INTEGER)

    def test_select_list_aliases(self):
        statement = parse_select("SELECT a AS x, b y, c FROM t")
        assert [i.alias for i in statement.items] == ["x", "y", None]

    def test_star_and_qualified_star(self):
        statement = parse_select("SELECT *, t.* FROM t")
        assert statement.items[0].expr == ast.Star()
        assert statement.items[1].expr == ast.Star("t")

    def test_distinct_flag(self):
        assert parse_select("SELECT DISTINCT a FROM t").distinct
        assert not parse_select("SELECT ALL a FROM t").distinct

    def test_where_group_having_order_limit(self):
        statement = parse_select(
            "SELECT a, COUNT(*) FROM t WHERE b > 1 GROUP BY a "
            "HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 5 OFFSET 2"
        )
        assert statement.where is not None
        assert len(statement.group_by) == 1
        assert statement.having is not None
        assert statement.order_by[0].ascending is False
        assert statement.limit == 5
        assert statement.offset == 2

    def test_limit_requires_integer(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a FROM t LIMIT 'x'")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_select("SELECT 1 extra ,")


class TestFromClause:
    def test_table_alias_forms(self):
        statement = parse_select("SELECT 1 FROM tbl AS t")
        assert isinstance(statement.from_item, ast.TableRef)
        assert statement.from_item.alias == "t"
        statement = parse_select("SELECT 1 FROM tbl t")
        assert statement.from_item.alias == "t"

    def test_comma_list_becomes_cross_join(self):
        statement = parse_select("SELECT 1 FROM a, b, c")
        join = statement.from_item
        assert isinstance(join, ast.Join) and join.kind == "CROSS"
        assert isinstance(join.left, ast.Join) and join.left.kind == "CROSS"

    def test_inner_join_with_on(self):
        statement = parse_select("SELECT 1 FROM a JOIN b ON a.x = b.y")
        join = statement.from_item
        assert join.kind == "INNER"
        assert isinstance(join.condition, ast.BinaryOp)

    def test_left_outer_join(self):
        statement = parse_select("SELECT 1 FROM a LEFT OUTER JOIN b ON a.x = b.y")
        assert statement.from_item.kind == "LEFT"

    def test_cross_join_has_no_condition(self):
        statement = parse_select("SELECT 1 FROM a CROSS JOIN b")
        assert statement.from_item.kind == "CROSS"
        assert statement.from_item.condition is None

    def test_inner_join_requires_on(self):
        with pytest.raises(ParseError):
            parse_select("SELECT 1 FROM a JOIN b")

    def test_derived_table_requires_alias(self):
        with pytest.raises(ParseError):
            parse_select("SELECT 1 FROM (SELECT 1)")

    def test_derived_table(self):
        statement = parse_select("SELECT 1 FROM (SELECT a FROM t) AS sub")
        assert isinstance(statement.from_item, ast.SubqueryRef)
        assert statement.from_item.alias == "sub"


class TestExpressionPrecedence:
    def test_or_binds_loosest(self):
        expr = expr_of("a AND b OR c")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "OR"
        assert expr.left.op == "AND"

    def test_not_binds_tighter_than_and(self):
        expr = expr_of("NOT a AND b")
        assert expr.op == "AND"
        assert isinstance(expr.left, ast.UnaryOp) and expr.left.op == "NOT"

    def test_comparison_under_logic(self):
        expr = expr_of("a < b AND c >= d")
        assert expr.op == "AND"
        assert expr.left.op == "<"
        assert expr.right.op == ">="

    def test_multiplication_over_addition(self):
        expr = expr_of("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_parentheses_override(self):
        expr = expr_of("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus_folds_into_literal(self):
        assert expr_of("-5") == ast.Literal(-5, DataType.INTEGER)
        assert expr_of("-2.5") == ast.Literal(-2.5, DataType.FLOAT)

    def test_unary_minus_on_column(self):
        expr = expr_of("-x")
        assert isinstance(expr, ast.UnaryOp) and expr.op == "-"

    def test_unary_plus_is_identity(self):
        assert expr_of("+7") == ast.Literal(7, DataType.INTEGER)

    def test_concat_is_additive(self):
        expr = expr_of("a || b || c")
        assert expr.op == "||"
        assert expr.left.op == "||"


class TestPredicates:
    def test_between(self):
        expr = expr_of("x BETWEEN 1 AND 10")
        assert isinstance(expr, ast.Between) and not expr.negated

    def test_not_between(self):
        expr = expr_of("x NOT BETWEEN 1 AND 10")
        assert isinstance(expr, ast.Between) and expr.negated

    def test_between_does_not_swallow_and(self):
        expr = expr_of("x BETWEEN 1 AND 10 AND y = 2")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "AND"
        assert isinstance(expr.left, ast.Between)

    def test_in_list(self):
        expr = expr_of("x IN (1, 2, 3)")
        assert isinstance(expr, ast.InList)
        assert len(expr.items) == 3

    def test_not_in_list(self):
        expr = expr_of("x NOT IN (1)")
        assert expr.negated

    def test_in_subquery(self):
        expr = expr_of("x IN (SELECT y FROM t)")
        assert isinstance(expr, ast.InSubquery)

    def test_exists(self):
        expr = expr_of("EXISTS (SELECT 1 FROM t)")
        assert isinstance(expr, ast.Exists)

    def test_is_null_and_is_not_null(self):
        assert expr_of("x IS NULL") == ast.IsNull(ast.ColumnRef(None, "x"), False)
        assert expr_of("x IS NOT NULL") == ast.IsNull(ast.ColumnRef(None, "x"), True)

    def test_like_and_not_like(self):
        expr = expr_of("name LIKE 'A%'")
        assert isinstance(expr, ast.BinaryOp) and expr.op == "LIKE"
        negated = expr_of("name NOT LIKE 'A%'")
        assert isinstance(negated, ast.UnaryOp) and negated.op == "NOT"

    def test_dangling_not_requires_predicate_keyword(self):
        with pytest.raises(ParseError):
            parse_select("SELECT a NOT 5 FROM t")


class TestLiteralsAndSpecials:
    def test_null_true_false(self):
        assert expr_of("NULL") == ast.Literal(None, DataType.NULL)
        assert expr_of("TRUE") == ast.Literal(True, DataType.BOOLEAN)
        assert expr_of("FALSE") == ast.Literal(False, DataType.BOOLEAN)

    def test_date_literal(self):
        expr = expr_of("DATE '1989-02-06'")
        assert expr == ast.Literal(datetime.date(1989, 2, 6), DataType.DATE)

    def test_invalid_date_literal(self):
        with pytest.raises(ParseError):
            expr_of("DATE '1989-13-45'")

    def test_cast(self):
        expr = expr_of("CAST(x AS INTEGER)")
        assert isinstance(expr, ast.Cast)
        assert expr.dtype == DataType.INTEGER

    def test_cast_unknown_type(self):
        with pytest.raises(ParseError):
            expr_of("CAST(x AS BLOB)")

    def test_searched_case(self):
        expr = expr_of("CASE WHEN a = 1 THEN 'x' ELSE 'y' END")
        assert isinstance(expr, ast.Case)
        assert expr.operand is None
        assert expr.else_result == ast.Literal("y", DataType.TEXT)

    def test_simple_case(self):
        expr = expr_of("CASE a WHEN 1 THEN 'x' WHEN 2 THEN 'z' END")
        assert expr.operand is not None
        assert len(expr.whens) == 2
        assert expr.else_result is None

    def test_case_requires_when(self):
        with pytest.raises(ParseError):
            expr_of("CASE ELSE 1 END")

    def test_function_call_and_count_star(self):
        expr = expr_of("COUNT(*)")
        assert isinstance(expr, ast.FunctionCall) and expr.star
        expr = expr_of("SUM(DISTINCT x)")
        assert expr.distinct

    def test_qualified_column(self):
        assert expr_of("t.col") == ast.ColumnRef("t", "col")


class TestSetOperations:
    def test_union_all_chain_left_associative(self):
        statement = parse_select("SELECT 1 UNION ALL SELECT 2 UNION SELECT 3")
        assert isinstance(statement, ast.SetOperation)
        assert statement.op == "UNION" and statement.all is False
        assert isinstance(statement.left, ast.SetOperation)
        assert statement.left.all is True

    def test_intersect_and_except(self):
        statement = parse_select("SELECT a FROM t INTERSECT SELECT a FROM u")
        assert statement.op == "INTERSECT"
        statement = parse_select("SELECT a FROM t EXCEPT SELECT a FROM u")
        assert statement.op == "EXCEPT"

    def test_order_limit_bind_to_whole_set_operation(self):
        statement = parse_select("SELECT 1 UNION ALL SELECT 2 ORDER BY 1 LIMIT 1")
        assert isinstance(statement, ast.SetOperation)
        assert statement.limit == 1
        assert len(statement.order_by) == 1


class TestErrorPositions:
    def test_error_mentions_position(self):
        with pytest.raises(ParseError) as info:
            parse_select("SELECT FROM t")
        assert "line 1" in str(info.value)

    def test_expected_keyword_message(self):
        with pytest.raises(ParseError) as info:
            parse_select("SELECT a FROM t GROUP a")
        assert "BY" in str(info.value)

"""SQL printer: round-trips through the parser and dialect differences."""

import datetime

import pytest

from repro.datatypes import DataType
from repro.sql import ast
from repro.sql.parser import parse_select
from repro.sql.printer import (
    SQLDialect,
    SQLitePrinterDialect,
    print_expression,
    print_statement,
)


def roundtrip(sql):
    """Parse → print → parse; both parses must agree structurally."""
    first = parse_select(sql)
    printed = print_statement(first)
    second = parse_select(printed)
    return first, second, printed


ROUNDTRIP_QUERIES = [
    "SELECT 1",
    "SELECT a, b AS x FROM t",
    "SELECT * FROM t WHERE a > 1 AND b < 2 OR NOT c = 3",
    "SELECT t.a FROM t JOIN u ON t.id = u.id LEFT JOIN v ON u.k = v.k",
    "SELECT a FROM t WHERE a BETWEEN 1 AND 10 AND b NOT IN (1, 2)",
    "SELECT a FROM t WHERE name LIKE 'A%' AND x IS NOT NULL",
    "SELECT COUNT(*), SUM(DISTINCT x) FROM t GROUP BY a HAVING COUNT(*) > 1",
    "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END FROM t",
    "SELECT CASE a WHEN 1 THEN 2 END FROM t",
    "SELECT CAST(a AS FLOAT) FROM t",
    "SELECT a FROM t ORDER BY a DESC, b LIMIT 3 OFFSET 1",
    "SELECT a FROM (SELECT a FROM t) AS s",
    "SELECT 1 UNION ALL SELECT 2",
    "SELECT a FROM t WHERE d = DATE '1989-02-06'",
    "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM u)",
    "SELECT a FROM t WHERE a IN (SELECT b FROM u)",
    "SELECT a || 'x' FROM t",
    "SELECT -a, +b FROM t",
    "SELECT a FROM t CROSS JOIN u",
    "SELECT DISTINCT a FROM t",
    "SELECT ROW_NUMBER() OVER (PARTITION BY g ORDER BY a DESC) FROM t",
    "SELECT SUM(a) OVER (), COUNT(*) OVER (PARTITION BY g) FROM t",
    "SELECT a FROM t EXCEPT ALL SELECT a FROM u",
    "SELECT a FROM t INTERSECT ALL SELECT a FROM u",
]


@pytest.mark.parametrize("sql", ROUNDTRIP_QUERIES)
def test_roundtrip_stability(sql):
    first, second, printed = roundtrip(sql)
    assert first == second, f"printed form changed semantics: {printed}"


class TestLiterals:
    def test_string_escaping(self):
        text = print_expression(ast.Literal("it's", DataType.TEXT))
        assert text == "'it''s'"

    def test_null_and_booleans_ansi(self):
        dialect = SQLDialect()
        assert print_expression(ast.Literal(None, DataType.NULL), dialect) == "NULL"
        assert print_expression(ast.Literal(True, DataType.BOOLEAN), dialect) == "TRUE"

    def test_booleans_sqlite(self):
        dialect = SQLitePrinterDialect()
        assert print_expression(ast.Literal(True, DataType.BOOLEAN), dialect) == "1"
        assert print_expression(ast.Literal(False, DataType.BOOLEAN), dialect) == "0"

    def test_date_ansi_vs_sqlite(self):
        literal = ast.Literal(datetime.date(1989, 2, 6), DataType.DATE)
        assert print_expression(literal) == "DATE '1989-02-06'"
        assert print_expression(literal, SQLitePrinterDialect()) == "'1989-02-06'"

    def test_float_repr_is_precise(self):
        literal = ast.Literal(0.1, DataType.FLOAT)
        assert float(print_expression(literal)) == 0.1


class TestIdentifiers:
    def test_identifiers_are_quoted(self):
        text = print_expression(ast.ColumnRef("t", "select"))
        assert text == '"t"."select"'

    def test_embedded_quote_doubled(self):
        text = print_expression(ast.ColumnRef(None, 'we"ird'))
        assert text == '"we""ird"'


class TestDialectCasts:
    def test_sqlite_cast_types(self):
        dialect = SQLitePrinterDialect()
        cast = ast.Cast(ast.ColumnRef(None, "x"), DataType.DATE)
        assert print_expression(cast, dialect) == 'CAST("x" AS TEXT)'
        cast = ast.Cast(ast.ColumnRef(None, "x"), DataType.FLOAT)
        assert print_expression(cast, dialect) == 'CAST("x" AS REAL)'


class TestStatementForms:
    def test_order_by_desc_suffix(self):
        printed = print_statement(parse_select("SELECT a FROM t ORDER BY a DESC"))
        assert printed.endswith('ORDER BY "a" DESC')

    def test_set_operation_with_limit(self):
        printed = print_statement(parse_select("SELECT 1 UNION ALL SELECT 2 LIMIT 5"))
        assert "UNION ALL" in printed and printed.endswith("LIMIT 5")

    def test_bound_ref_refuses_to_print(self):
        from repro.core.logical import RelColumn
        from repro.errors import PlanError

        column = RelColumn("x", DataType.INTEGER)
        with pytest.raises(PlanError):
            print_expression(ast.BoundRef(column))

"""The GlobalInformationSystem facade: registration, ANALYZE, EXPLAIN, querying."""

import datetime
import re

import pytest

from repro import (
    GlobalInformationSystem,
    MemorySource,
    NetworkLink,
    PlannerOptions,
)
from repro.catalog.schema import schema_from_pairs
from repro.errors import (
    BindError,
    CatalogError,
    UnknownObjectError,
)

from .conftest import ORDERS, make_small_gis


class TestRegistration:
    def test_register_table_derives_schema(self, small_gis):
        entry = small_gis.catalog.table("orders")
        assert entry.schema.column_names() == [
            "oid", "cust_id", "total", "odate", "status",
        ]
        assert entry.mapping.remote_table == "ORDERS"

    def test_register_table_unknown_native(self):
        gis = GlobalInformationSystem()
        gis.register_source("m", MemorySource("m"))
        with pytest.raises(UnknownObjectError):
            gis.register_table("ghost", source="m")

    def test_register_with_column_map_renames(self):
        gis = GlobalInformationSystem()
        source = MemorySource("m")
        native = schema_from_pairs("T", [("CID", "INT"), ("NM", "TEXT")])
        source.add_table("T", native, [(1, "x")])
        gis.register_source("m", source)
        gis.register_table(
            "people", source="m", remote_table="T",
            column_map={"person_id": "CID", "name": "NM"},
        )
        schema = gis.catalog.table("people").schema
        assert schema.column_names() == ["person_id", "name"]
        assert gis.query("SELECT person_id FROM people").rows == [(1,)]

    def test_register_with_explicit_schema_validation(self):
        gis = GlobalInformationSystem()
        source = MemorySource("m")
        source.add_table("T", schema_from_pairs("T", [("a", "INT")]), [])
        gis.register_source("m", source)
        with pytest.raises(CatalogError):
            gis.register_table(
                "t2", source="m", remote_table="T",
                schema=schema_from_pairs("t2", [("missing", "INT")]),
            )

    def test_register_all_tables(self):
        gis = GlobalInformationSystem()
        source = MemorySource("m")
        source.add_table("a", schema_from_pairs("a", [("x", "INT")]), [])
        source.add_table("b", schema_from_pairs("b", [("y", "INT")]), [])
        gis.register_source("m", source)
        registered = gis.register_all_tables("m")
        assert sorted(registered) == ["a", "b"]

    def test_source_link_configured(self):
        gis = GlobalInformationSystem()
        gis.register_source(
            "m", MemorySource("m"), link=NetworkLink(latency_ms=123.0)
        )
        assert gis.network.link_for("m").latency_ms == 123.0


class TestViews:
    def test_create_view_and_query(self, small_gis):
        small_gis.create_view(
            "big_orders", "SELECT * FROM orders WHERE total > 400"
        )
        result = small_gis.query("SELECT COUNT(*) FROM big_orders")
        assert result.scalar() == 2

    def test_invalid_view_rolls_back(self, small_gis):
        with pytest.raises(BindError):
            small_gis.create_view("bad", "SELECT ghost FROM orders")
        assert not small_gis.catalog.has_table("bad")

    def test_view_over_two_sources(self, small_gis):
        small_gis.create_view(
            "activity",
            "SELECT c.name AS who, o.total FROM customers c "
            "JOIN orders o ON c.id = o.cust_id",
        )
        result = small_gis.query(
            "SELECT who, SUM(total) FROM activity GROUP BY who ORDER BY who"
        )
        assert result.rows[0][0] == "Alice"


class TestAnalyze:
    def test_analyze_collects_statistics(self, small_gis):
        stats = small_gis.catalog.statistics("orders")
        assert stats is not None and stats.row_count == 7
        assert stats.column("total").min_value == 10.0

    def test_analyze_subset(self):
        gis = make_small_gis()
        gis.catalog.clear_statistics()
        collected = gis.analyze(tables=["customers"])
        assert set(collected) == {"customers"}
        assert gis.catalog.statistics("orders") is None

    def test_analyze_skips_views(self, small_gis):
        small_gis.create_view("v", "SELECT * FROM orders")
        collected = small_gis.analyze()
        assert "v" not in collected


class TestQueryResults:
    def test_column_names_preserved(self, small_gis):
        result = small_gis.query("SELECT name AS who, balance FROM customers")
        assert result.column_names == ["who", "balance"]

    def test_scalar_helpers(self, small_gis):
        assert small_gis.query("SELECT COUNT(*) FROM customers").scalar() == 5
        with pytest.raises(ValueError):
            small_gis.query("SELECT id, name FROM customers").scalar()

    def test_first_on_empty(self, small_gis):
        result = small_gis.query("SELECT id FROM customers WHERE id > 100")
        assert result.first() is None

    def test_to_dicts(self, small_gis):
        rows = small_gis.query(
            "SELECT name FROM customers WHERE id = 1"
        ).to_dicts()
        assert rows == [{"name": "Alice"}]

    def test_format_table_truncates(self, small_gis):
        text = small_gis.query("SELECT id FROM customers").format_table(max_rows=2)
        assert "more rows" in text

    def test_iteration_and_len(self, small_gis):
        result = small_gis.query("SELECT id FROM customers")
        assert len(result) == 5
        assert len(list(result)) == 5

    def test_metrics_summary_text(self, small_gis):
        result = small_gis.query("SELECT id FROM customers")
        summary = result.metrics.summary()
        assert "rows" in summary and "simulated" in summary

    def test_dates_round_trip(self, small_gis):
        result = small_gis.query(
            "SELECT since FROM customers WHERE id = 1"
        )
        assert result.scalar() == datetime.date(1987, 4, 1)


class TestExplain:
    def test_explain_sections(self, small_gis):
        text = small_gis.explain(
            "SELECT c.name FROM customers c JOIN orders o ON c.id = o.cust_id "
            "WHERE o.total > 100"
        )
        assert "== distributed plan ==" in text
        assert "== physical plan ==" in text
        assert "== fragment SQL ==" in text
        assert "[erp]" in text

    def test_plan_object_inspection(self, small_gis):
        planned = small_gis.plan("SELECT COUNT(*) FROM orders")
        assert planned.planning_ms >= 0
        assert planned.output_names == ["count"]


class TestReferenceQuery:
    def test_reference_matches_engine(self, small_gis):
        sql = (
            "SELECT c.region, COUNT(*) AS n FROM customers c "
            "JOIN orders o ON c.id = o.cust_id GROUP BY c.region"
        )
        engine = small_gis.query(sql)
        names, reference = small_gis.reference_query(sql)
        assert names == engine.column_names
        assert sorted(engine.rows, key=repr) == sorted(reference, key=repr)


class TestOptionBaselines:
    SQL = (
        "SELECT c.name, SUM(o.total) AS t FROM customers c "
        "JOIN orders o ON c.id = o.cust_id WHERE o.total > 50 "
        "GROUP BY c.name ORDER BY t DESC"
    )

    def test_naive_options_equal_rows(self):
        from repro import NAIVE_OPTIONS

        smart = make_small_gis().query(self.SQL)
        naive = make_small_gis().query(self.SQL, NAIVE_OPTIONS)
        assert smart.rows == naive.rows

    def test_all_option_combinations_agree(self):
        reference = None
        for pushdown in ("full", "scans-only"):
            for join_strategy in ("dp", "greedy", "canonical"):
                options = PlannerOptions(
                    pushdown=pushdown, join_strategy=join_strategy
                )
                rows = make_small_gis().query(self.SQL, options).rows
                if reference is None:
                    reference = rows
                assert rows == reference, (pushdown, join_strategy)


class TestAnalyzeSampling:
    def test_sample_limits_scanned_rows_but_scales_count(self):
        gis = make_small_gis()
        gis.catalog.clear_statistics()
        collected = gis.analyze(tables=["orders"], sample_rows=3)
        stats = collected["orders"]
        # Row count comes from source metadata, not the truncated sample.
        assert stats.row_count == 7
        # Histograms summarize only the sampled prefix.
        total_histogram_rows = stats.column("total").histogram.total_rows
        assert total_histogram_rows == 3

    def test_sample_larger_than_table_is_exact(self):
        gis = make_small_gis()
        collected = gis.analyze(tables=["customers"], sample_rows=999)
        assert collected["customers"].row_count == 5

    def test_sampled_stats_still_drive_plans(self):
        gis = make_small_gis()
        gis.catalog.clear_statistics()
        gis.analyze(sample_rows=2)
        result = gis.query(
            "SELECT c.name FROM customers c JOIN orders o ON c.id = o.cust_id"
        )
        names, reference = gis.reference_query(
            "SELECT c.name FROM customers c JOIN orders o ON c.id = o.cust_id"
        )
        assert sorted(result.rows) == sorted(reference)


class TestExplainAnalyze:
    def test_reports_actual_rows_per_operator(self, small_gis):
        text = small_gis.explain_analyze(
            "SELECT c.region, COUNT(*) FROM customers c "
            "JOIN orders o ON c.id = o.cust_id WHERE o.total > 50 "
            "GROUP BY c.region"
        )
        assert "actual rows" in text
        assert re.search(
            r"Exchange\(source=crm\)  \[5 rows / 1 batches / [\d.]+ ms\]", text
        )
        assert re.search(
            r"HashJoin\(INNER\)  \[4 rows / 1 batches / [\d.]+ ms\]", text
        )
        assert "result rows: 2" in text

    def test_charges_the_network(self, small_gis):
        before = small_gis.network.total.messages
        small_gis.explain_analyze("SELECT COUNT(*) FROM customers")
        assert small_gis.network.total.messages > before

    def test_plain_explain_not_instrumented(self, small_gis):
        text = small_gis.explain("SELECT COUNT(*) FROM customers")
        assert "[5 rows]" not in text

"""Partial (local/global) aggregation through UNION ALL."""

import pytest

from repro import PlannerOptions
from repro.core.logical import AggregateOp, RemoteQueryOp, UnionOp
from repro.workloads import build_partitioned_orders

from .conftest import assert_same_rows


@pytest.fixture(scope="module")
def federation():
    return build_partitioned_orders(4, 150, seed=3)


QUERIES = [
    "SELECT COUNT(*) FROM orders_all",
    "SELECT o_status, COUNT(*) FROM orders_all GROUP BY o_status",
    "SELECT o_status, SUM(o_total), MIN(o_total), MAX(o_total) FROM orders_all GROUP BY o_status",
    "SELECT o_status, AVG(o_total) FROM orders_all GROUP BY o_status",
    "SELECT COUNT(o_date), AVG(o_total) FROM orders_all WHERE o_total > 1000",
    "SELECT o_cust_id, COUNT(*) FROM orders_all GROUP BY o_cust_id HAVING COUNT(*) > 3",
    "SELECT YEAR(o_date), SUM(o_total) FROM orders_all GROUP BY YEAR(o_date)",
]


def remote_aggregates(plan):
    """Remote fragments that contain an aggregate (i.e. pushed partials)."""
    count = 0
    for node in plan.walk():
        if isinstance(node, RemoteQueryOp):
            if any(isinstance(f, AggregateOp) for f in node.fragment.walk()):
                count += 1
    return count


class TestCorrectness:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_matches_reference(self, federation, sql):
        result = federation.gis.query(sql)
        _, reference = federation.gis.reference_query(sql)
        assert_same_rows(result.rows, reference)

    @pytest.mark.parametrize("sql", QUERIES)
    def test_matches_undecomposed(self, federation, sql):
        decomposed = federation.gis.query(sql)
        plain = federation.gis.query(
            sql, PlannerOptions(partial_aggregation=False)
        )
        assert_same_rows(decomposed.rows, plain.rows)

    def test_empty_branches_global_aggregate(self, federation):
        result = federation.gis.query(
            "SELECT COUNT(*), SUM(o_total), AVG(o_total) FROM orders_all "
            "WHERE o_total > 99999"
        )
        assert result.rows == [(0, None, None)]

    def test_avg_all_null_groups(self, federation):
        # AVG over an empty selection inside each branch must stay NULL,
        # not 0 (SUM/COUNT division must not fabricate values).
        result = federation.gis.query(
            "SELECT AVG(o_total) FROM orders_all WHERE o_status = 'NOPE'"
        )
        assert result.scalar() is None


class TestPlanShape:
    def test_partials_pushed_to_every_partition(self, federation):
        planned = federation.gis.plan(
            "SELECT o_status, COUNT(*) FROM orders_all GROUP BY o_status"
        )
        assert remote_aggregates(planned.distributed) == 4

    def test_disabled_by_option(self, federation):
        planned = federation.gis.plan(
            "SELECT o_status, COUNT(*) FROM orders_all GROUP BY o_status",
            PlannerOptions(partial_aggregation=False),
        )
        assert remote_aggregates(planned.distributed) == 0

    def test_distinct_aggregate_not_decomposed(self, federation):
        planned = federation.gis.plan(
            "SELECT COUNT(DISTINCT o_cust_id) FROM orders_all"
        )
        assert remote_aggregates(planned.distributed) == 0
        # ... and still correct.
        result = federation.gis.query(
            "SELECT COUNT(DISTINCT o_cust_id) FROM orders_all"
        )
        _, reference = federation.gis.reference_query(
            "SELECT COUNT(DISTINCT o_cust_id) FROM orders_all"
        )
        assert result.rows == reference

    def test_ships_one_row_per_branch_group(self, federation):
        federation.gis.network.reset()
        result = federation.gis.query(
            "SELECT o_status, COUNT(*) FROM orders_all GROUP BY o_status"
        )
        # 4 partitions × ≤4 statuses, not 600 raw rows.
        assert result.metrics.rows_shipped <= 16

    def test_union_flattening_covers_all_branches(self, federation):
        planned = federation.gis.plan("SELECT COUNT(*) FROM orders_all")
        unions = [
            n for n in planned.distributed.walk() if isinstance(n, UnionOp)
        ]
        assert unions and len(unions[0].inputs) == 4

"""Top-N (ORDER BY + LIMIT) pushdown into UNION ALL branches."""

import pytest

from repro import PlannerOptions
from repro.core.logical import LimitOp, RemoteQueryOp, SortOp
from repro.workloads import build_partitioned_orders

from .conftest import assert_same_rows


@pytest.fixture(scope="module")
def federation():
    return build_partitioned_orders(4, 300, seed=13)


def remote_top_ns(plan):
    count = 0
    for node in plan.walk():
        if isinstance(node, RemoteQueryOp):
            kinds = {type(n) for n in node.fragment.walk()}
            if LimitOp in kinds and SortOp in kinds:
                count += 1
    return count


class TestPlanShape:
    def test_top_n_pushed_to_all_branches(self, federation):
        planned = federation.gis.plan(
            "SELECT o_id, o_total FROM orders_all ORDER BY o_total DESC LIMIT 5"
        )
        assert remote_top_ns(planned.distributed) == 4

    def test_offset_widens_branch_budget(self, federation):
        planned = federation.gis.plan(
            "SELECT o_id FROM orders_all ORDER BY o_total LIMIT 3 OFFSET 7"
        )
        budgets = [
            node.limit
            for remote in planned.distributed.walk()
            if isinstance(remote, RemoteQueryOp)
            for node in remote.fragment.walk()
            if isinstance(node, LimitOp)
        ]
        assert budgets and all(b == 10 for b in budgets)

    def test_outer_sort_and_limit_survive(self, federation):
        planned = federation.gis.plan(
            "SELECT o_id FROM orders_all ORDER BY o_total LIMIT 5"
        )
        plan = planned.distributed
        # RemoteQueryOp hides its fragment from walk(), so every Sort/Limit
        # seen here executes at the mediator — and a final top-N must.
        mediator_kinds = {type(n) for n in plan.walk()}
        assert LimitOp in mediator_kinds and SortOp in mediator_kinds

    def test_rewrites_disabled_means_no_push(self, federation):
        planned = federation.gis.plan(
            "SELECT o_id FROM orders_all ORDER BY o_total LIMIT 5",
            PlannerOptions(rewrites=False),
        )
        assert remote_top_ns(planned.distributed) == 0


class TestCorrectness:
    QUERIES = [
        "SELECT o_id, o_total FROM orders_all ORDER BY o_total DESC LIMIT 5",
        "SELECT o_id FROM orders_all ORDER BY o_total LIMIT 1",
        "SELECT o_id, o_date FROM orders_all ORDER BY o_date DESC, o_id LIMIT 10",
        "SELECT o_id FROM orders_all ORDER BY o_total LIMIT 4 OFFSET 6",
        "SELECT o_id FROM orders_all WHERE o_status = 'OPEN' "
        "ORDER BY o_total DESC LIMIT 7",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_matches_reference(self, federation, sql):
        result = federation.gis.query(sql)
        _, reference = federation.gis.reference_query(sql)
        # Ties may legitimately reorder; compare the sort-key multiset and
        # row multiset.
        assert_same_rows(result.rows, reference)

    def test_ships_at_most_budget_per_branch(self, federation):
        federation.gis.network.reset()
        result = federation.gis.query(
            "SELECT o_id, o_total FROM orders_all ORDER BY o_total DESC LIMIT 5"
        )
        assert result.metrics.rows_shipped <= 4 * 5

    def test_limit_exceeding_partition_size(self, federation):
        result = federation.gis.query(
            "SELECT o_id FROM orders_all ORDER BY o_id LIMIT 5000"
        )
        assert len(result.rows) == 1200

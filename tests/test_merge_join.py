"""Sort-merge join: equivalence with hash join and operator-level behavior."""

import pytest

from repro import Catalog, PlannerOptions, SimulatedNetwork
from repro.core.logical import RelColumn
from repro.core.physical import (
    ExecutionContext,
    MergeJoinExec,
    StaticRowsExec,
)
from repro.datatypes import DataType
from repro.sql import ast

from .conftest import assert_same_rows, make_small_gis


def ctx():
    return ExecutionContext(Catalog(), SimulatedNetwork())


def columns(*specs):
    return [RelColumn(name, dtype) for name, dtype in specs]


INT = DataType.INTEGER
TEXT = DataType.TEXT


def merge_join(left_rows, right_rows, residual=None):
    left_cols = columns(("lk", INT), ("lv", TEXT))
    right_cols = columns(("rk", INT), ("rv", TEXT))
    join = MergeJoinExec(
        StaticRowsExec(left_rows, left_cols),
        StaticRowsExec(right_rows, right_cols),
        [left_cols[0].ref()],
        [right_cols[0].ref()],
        residual,
        left_cols + right_cols,
    )
    return list(join.iterate(ctx())), left_cols, right_cols


class TestOperator:
    def test_basic_match(self):
        rows, _, _ = merge_join(
            [(1, "a"), (3, "c")], [(1, "x"), (2, "y"), (3, "z")]
        )
        assert rows == [(1, "a", 1, "x"), (3, "c", 3, "z")]

    def test_unsorted_inputs(self):
        rows, _, _ = merge_join(
            [(3, "c"), (1, "a")], [(3, "z"), (1, "x")]
        )
        assert sorted(rows) == [(1, "a", 1, "x"), (3, "c", 3, "z")]

    def test_many_to_many_duplicates(self):
        rows, _, _ = merge_join(
            [(1, "a"), (1, "b")], [(1, "x"), (1, "y")]
        )
        assert len(rows) == 4

    def test_null_keys_dropped(self):
        rows, _, _ = merge_join(
            [(None, "a"), (1, "b")], [(None, "x"), (1, "y")]
        )
        assert rows == [(1, "b", 1, "y")]

    def test_residual_predicate(self):
        left_cols = columns(("lk", INT), ("lv", INT))
        right_cols = columns(("rk", INT), ("rv", INT))
        residual = ast.BinaryOp("<", left_cols[1].ref(), right_cols[1].ref())
        join = MergeJoinExec(
            StaticRowsExec([(1, 10), (1, 99)], left_cols),
            StaticRowsExec([(1, 50)], right_cols),
            [left_cols[0].ref()],
            [right_cols[0].ref()],
            residual,
            left_cols + right_cols,
        )
        assert list(join.iterate(ctx())) == [(1, 10, 1, 50)]

    def test_empty_side(self):
        rows, _, _ = merge_join([], [(1, "x")])
        assert rows == []


class TestEndToEnd:
    QUERIES = [
        "SELECT c.name, o.total FROM customers c JOIN orders o ON c.id = o.cust_id",
        "SELECT c.region, COUNT(*) FROM customers c JOIN orders o "
        "ON c.id = o.cust_id GROUP BY c.region",
        "SELECT a.name, b.name FROM customers a JOIN customers b "
        "ON a.region = b.region WHERE a.id < b.id",
    ]

    @pytest.mark.parametrize("sql", QUERIES)
    def test_merge_equals_hash(self, sql):
        gis = make_small_gis()
        hash_rows = gis.query(sql, PlannerOptions(join_algorithm="hash")).rows
        merge_rows = gis.query(sql, PlannerOptions(join_algorithm="merge")).rows
        assert_same_rows(hash_rows, merge_rows)

    def test_merge_plan_uses_merge_join(self):
        gis = make_small_gis()
        planned = gis.plan(
            self.QUERIES[0], PlannerOptions(join_algorithm="merge")
        )
        assert "MergeJoin" in planned.physical.explain()

    def test_semi_joins_stay_hash_under_merge(self):
        gis = make_small_gis()
        planned = gis.plan(
            "SELECT name FROM customers WHERE id IN (SELECT cust_id FROM orders)",
            PlannerOptions(join_algorithm="merge"),
        )
        text = planned.physical.explain()
        assert "HashJoin(SEMI)" in text

    def test_invalid_algorithm_rejected(self):
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            PlannerOptions(join_algorithm="quantum")

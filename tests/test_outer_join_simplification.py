"""LEFT → INNER simplification under null-rejecting WHERE conjuncts."""

import pytest

from repro.core.logical import FilterOp, JoinOp, RemoteQueryOp

from .conftest import assert_same_rows, make_small_gis


def join_kinds(plan):
    return [n.kind for n in plan.walk() if isinstance(n, JoinOp)]


@pytest.fixture
def gis():
    return make_small_gis()


class TestConversion:
    @pytest.mark.parametrize(
        "where",
        [
            "o.total > 100",
            "o.total = 250",
            "o.total BETWEEN 50 AND 600",
            "o.status LIKE 'OPE%'",
            "o.status IN ('OPEN', 'SHIPPED')",
            "o.total > 100 AND c.region = 'EU'",
            "UPPER(o.status) = 'OPEN'",
        ],
    )
    def test_null_rejecting_filters_convert(self, gis, where):
        sql = (
            "SELECT c.name FROM customers c "
            f"LEFT JOIN orders o ON c.id = o.cust_id WHERE {where}"
        )
        planned = gis.plan(sql)
        assert join_kinds(planned.distributed) == ["INNER"]
        result = gis.query(sql)
        _, reference = gis.reference_query(sql)
        assert_same_rows(result.rows, reference)

    @pytest.mark.parametrize(
        "where",
        [
            "o.total IS NULL",                       # the anti-join idiom
            "o.total IS NULL OR o.total > 100",      # can be TRUE on NULL
            "COALESCE(o.status, 'none') = 'none'",   # NULL-aware function
            "c.region = 'EU'",                       # left-side only
        ],
    )
    def test_null_tolerant_filters_keep_left_join(self, gis, where):
        sql = (
            "SELECT c.name FROM customers c "
            f"LEFT JOIN orders o ON c.id = o.cust_id WHERE {where}"
        )
        planned = gis.plan(sql)
        assert "LEFT" in join_kinds(planned.distributed)
        result = gis.query(sql)
        _, reference = gis.reference_query(sql)
        assert_same_rows(result.rows, reference)

    def test_converted_filter_reaches_the_source(self, gis):
        planned = gis.plan(
            "SELECT c.name FROM customers c "
            "LEFT JOIN orders o ON c.id = o.cust_id WHERE o.total > 100"
        )
        remotes = [
            n for n in planned.distributed.walk() if isinstance(n, RemoteQueryOp)
        ]
        erp = [r for r in remotes if r.source_name == "erp"][0]
        assert any(isinstance(n, FilterOp) for n in erp.fragment.walk())

    def test_is_not_null_converts(self, gis):
        sql = (
            "SELECT c.name FROM customers c "
            "LEFT JOIN orders o ON c.id = o.cust_id WHERE o.status IS NOT NULL"
        )
        planned = gis.plan(sql)
        assert join_kinds(planned.distributed) == ["INNER"]
        result = gis.query(sql)
        _, reference = gis.reference_query(sql)
        assert_same_rows(result.rows, reference)

    def test_anti_join_idiom_results(self, gis):
        # Customers with no orders: the LEFT JOIN ... IS NULL pattern.
        result = gis.query(
            "SELECT c.name FROM customers c "
            "LEFT JOIN orders o ON c.id = o.cust_id WHERE o.oid IS NULL"
        )
        assert result.rows == [("Eve",)]

"""Semantic analysis: scopes, views, aggregation rules, set operations."""

import pytest

from repro import Catalog, DataType, MemorySource, TableMapping
from repro.catalog.schema import schema_from_pairs
from repro.core.analyzer import Analyzer
from repro.core.logical import (
    AggregateOp,
    DistinctOp,
    FilterOp,
    JoinOp,
    LimitOp,
    ProjectOp,
    SetDifferenceOp,
    SortOp,
    UnionOp,
    ValuesOp,
)
from repro.errors import BindError
from repro.sql.parser import parse_select


@pytest.fixture
def catalog():
    catalog = Catalog()
    source = MemorySource("mem")
    source.add_table(
        "t",
        schema_from_pairs("t", [("a", "INT"), ("b", "TEXT"), ("c", "FLOAT")]),
        [],
    )
    source.add_table(
        "u",
        schema_from_pairs("u", [("a", "INT"), ("d", "DATE")]),
        [],
    )
    catalog.register_source("mem", source)
    catalog.register_table(
        "t", schema_from_pairs("t", [("a", "INT"), ("b", "TEXT"), ("c", "FLOAT")]),
        TableMapping("mem", "t"),
    )
    catalog.register_table(
        "u", schema_from_pairs("u", [("a", "INT"), ("d", "DATE")]),
        TableMapping("mem", "u"),
    )
    return catalog


def bind(catalog, sql):
    return Analyzer(catalog).bind_statement(parse_select(sql))


class TestResolution:
    def test_simple_select(self, catalog):
        plan = bind(catalog, "SELECT a, b FROM t")
        assert isinstance(plan, ProjectOp)
        assert [c.name for c in plan.output_columns] == ["a", "b"]
        assert plan.output_columns[0].dtype == DataType.INTEGER

    def test_unknown_table(self, catalog):
        with pytest.raises(BindError):
            bind(catalog, "SELECT 1 FROM ghost")

    def test_unknown_column(self, catalog):
        with pytest.raises(BindError):
            bind(catalog, "SELECT ghost FROM t")

    def test_qualified_resolution(self, catalog):
        plan = bind(catalog, "SELECT t.a, u.a FROM t, u")
        assert len(plan.output_columns) == 2
        assert plan.output_columns[0] is not plan.output_columns[1]

    def test_ambiguous_unqualified(self, catalog):
        with pytest.raises(BindError, match="ambiguous"):
            bind(catalog, "SELECT a FROM t, u")

    def test_alias_hides_table_name(self, catalog):
        with pytest.raises(BindError):
            bind(catalog, "SELECT t.a FROM t AS x")

    def test_duplicate_binding_names(self, catalog):
        with pytest.raises(BindError, match="duplicate"):
            bind(catalog, "SELECT 1 FROM t, t")

    def test_self_join_with_aliases(self, catalog):
        plan = bind(catalog, "SELECT x.a, y.a FROM t x JOIN t y ON x.a = y.a")
        assert plan.output_columns[0] is not plan.output_columns[1]

    def test_star_expansion(self, catalog):
        plan = bind(catalog, "SELECT * FROM t, u")
        assert [c.name for c in plan.output_columns] == ["a", "b", "c", "a", "d"]

    def test_qualified_star(self, catalog):
        plan = bind(catalog, "SELECT u.* FROM t, u")
        assert [c.name for c in plan.output_columns] == ["a", "d"]

    def test_star_without_from_rejected(self, catalog):
        with pytest.raises(BindError):
            bind(catalog, "SELECT *")

    def test_from_less_select(self, catalog):
        plan = bind(catalog, "SELECT 1 + 2 AS three")
        assert isinstance(plan, ProjectOp)
        assert isinstance(plan.child, ValuesOp)
        assert plan.output_columns[0].name == "three"

    def test_derived_table(self, catalog):
        plan = bind(catalog, "SELECT s.a FROM (SELECT a FROM t) s")
        assert isinstance(plan, ProjectOp)

    def test_derived_table_alias_scope(self, catalog):
        with pytest.raises(BindError):
            bind(catalog, "SELECT t.a FROM (SELECT a FROM t) s")


class TestJoins:
    def test_join_condition_must_be_boolean(self, catalog):
        with pytest.raises(BindError):
            bind(catalog, "SELECT 1 FROM t JOIN u ON t.a + u.a")

    def test_left_join_kind_preserved(self, catalog):
        plan = bind(catalog, "SELECT t.a FROM t LEFT JOIN u ON t.a = u.a")
        joins = [n for n in plan.walk() if isinstance(n, JoinOp)]
        assert joins[0].kind == "LEFT"

    def test_cross_join(self, catalog):
        plan = bind(catalog, "SELECT t.a FROM t CROSS JOIN u")
        joins = [n for n in plan.walk() if isinstance(n, JoinOp)]
        assert joins[0].kind == "CROSS" and joins[0].condition is None


class TestWhere:
    def test_where_must_be_boolean(self, catalog):
        with pytest.raises(BindError):
            bind(catalog, "SELECT a FROM t WHERE a + 1")

    def test_aggregate_in_where_rejected(self, catalog):
        with pytest.raises(BindError):
            bind(catalog, "SELECT a FROM t WHERE SUM(a) > 1")

    def test_in_subquery_becomes_semi_join(self, catalog):
        plan = bind(catalog, "SELECT b FROM t WHERE a IN (SELECT a FROM u)")
        kinds = [n.kind for n in plan.walk() if isinstance(n, JoinOp)]
        assert "SEMI" in kinds

    def test_not_in_subquery_becomes_null_aware_anti(self, catalog):
        plan = bind(catalog, "SELECT b FROM t WHERE a NOT IN (SELECT a FROM u)")
        joins = [n for n in plan.walk() if isinstance(n, JoinOp)]
        assert joins[0].kind == "ANTI" and joins[0].null_aware

    def test_exists_becomes_semi_join(self, catalog):
        plan = bind(catalog, "SELECT b FROM t WHERE EXISTS (SELECT 1 FROM u)")
        joins = [n for n in plan.walk() if isinstance(n, JoinOp)]
        assert joins[0].kind == "SEMI" and joins[0].condition is None

    def test_not_exists_becomes_anti_join(self, catalog):
        plan = bind(catalog, "SELECT b FROM t WHERE NOT EXISTS (SELECT 1 FROM u)")
        joins = [n for n in plan.walk() if isinstance(n, JoinOp)]
        assert joins[0].kind == "ANTI" and not joins[0].null_aware

    def test_in_subquery_under_or_rejected(self, catalog):
        with pytest.raises(BindError):
            bind(catalog, "SELECT b FROM t WHERE a = 1 OR a IN (SELECT a FROM u)")

    def test_in_subquery_multi_column_rejected(self, catalog):
        with pytest.raises(BindError):
            bind(catalog, "SELECT b FROM t WHERE a IN (SELECT a, d FROM u)")

    def test_in_subquery_incomparable_rejected(self, catalog):
        with pytest.raises(BindError):
            bind(catalog, "SELECT b FROM t WHERE b IN (SELECT a FROM u)")


class TestAggregation:
    def test_group_by_plan_shape(self, catalog):
        plan = bind(catalog, "SELECT b, COUNT(*) FROM t GROUP BY b")
        aggregates = [n for n in plan.walk() if isinstance(n, AggregateOp)]
        assert len(aggregates) == 1
        assert len(aggregates[0].group_expressions) == 1
        assert aggregates[0].aggregates[0].function == "COUNT"

    def test_global_aggregate_without_group(self, catalog):
        plan = bind(catalog, "SELECT SUM(a), AVG(c) FROM t")
        (aggregate,) = [n for n in plan.walk() if isinstance(n, AggregateOp)]
        assert aggregate.group_expressions == []
        assert len(aggregate.aggregates) == 2

    def test_duplicate_aggregates_shared(self, catalog):
        plan = bind(catalog, "SELECT SUM(a), SUM(a) + 1 FROM t")
        (aggregate,) = [n for n in plan.walk() if isinstance(n, AggregateOp)]
        assert len(aggregate.aggregates) == 1

    def test_ungrouped_column_rejected(self, catalog):
        with pytest.raises(BindError, match="GROUP BY"):
            bind(catalog, "SELECT a, COUNT(*) FROM t GROUP BY b")

    def test_group_by_ordinal(self, catalog):
        plan = bind(catalog, "SELECT b, COUNT(*) FROM t GROUP BY 1")
        (aggregate,) = [n for n in plan.walk() if isinstance(n, AggregateOp)]
        assert len(aggregate.group_expressions) == 1

    def test_group_by_ordinal_out_of_range(self, catalog):
        with pytest.raises(BindError):
            bind(catalog, "SELECT b FROM t GROUP BY 5")

    def test_group_by_alias(self, catalog):
        plan = bind(catalog, "SELECT UPPER(b) AS ub, COUNT(*) FROM t GROUP BY ub")
        assert isinstance(plan, ProjectOp)

    def test_group_by_expression_match(self, catalog):
        plan = bind(catalog, "SELECT a + 1, COUNT(*) FROM t GROUP BY a + 1")
        (aggregate,) = [n for n in plan.walk() if isinstance(n, AggregateOp)]
        assert len(aggregate.group_expressions) == 1

    def test_nested_aggregate_rejected(self, catalog):
        with pytest.raises(BindError, match="nested"):
            bind(catalog, "SELECT SUM(COUNT(*)) FROM t")

    def test_aggregate_in_group_by_rejected(self, catalog):
        with pytest.raises(BindError):
            bind(catalog, "SELECT COUNT(*) FROM t GROUP BY SUM(a)")

    def test_having_without_group_rejected(self, catalog):
        with pytest.raises(BindError):
            bind(catalog, "SELECT a FROM t HAVING a > 1")

    def test_having_with_aggregate(self, catalog):
        plan = bind(catalog, "SELECT b FROM t GROUP BY b HAVING COUNT(*) > 2")
        filters = [n for n in plan.walk() if isinstance(n, FilterOp)]
        assert len(filters) == 1

    def test_count_distinct(self, catalog):
        plan = bind(catalog, "SELECT COUNT(DISTINCT b) FROM t")
        (aggregate,) = [n for n in plan.walk() if isinstance(n, AggregateOp)]
        assert aggregate.aggregates[0].distinct

    def test_aggregate_arity(self, catalog):
        with pytest.raises(BindError):
            bind(catalog, "SELECT SUM(a, c) FROM t")


class TestOrderByLimit:
    def test_order_by_ordinal(self, catalog):
        plan = bind(catalog, "SELECT a, b FROM t ORDER BY 2 DESC")
        (sort,) = [n for n in plan.walk() if isinstance(n, SortOp)]
        assert sort.keys[0][1] is False

    def test_order_by_alias(self, catalog):
        plan = bind(catalog, "SELECT a AS k FROM t ORDER BY k")
        assert isinstance(plan, SortOp)

    def test_order_by_hidden_column(self, catalog):
        plan = bind(catalog, "SELECT b FROM t ORDER BY a")
        # Hidden key forces project → sort → trim-project.
        assert isinstance(plan, ProjectOp)
        assert isinstance(plan.child, SortOp)
        assert [c.name for c in plan.output_columns] == ["b"]

    def test_order_by_hidden_with_distinct_rejected(self, catalog):
        with pytest.raises(BindError):
            bind(catalog, "SELECT DISTINCT b FROM t ORDER BY a")

    def test_order_by_aggregate(self, catalog):
        plan = bind(catalog, "SELECT b FROM t GROUP BY b ORDER BY COUNT(*) DESC")
        sorts = [n for n in plan.walk() if isinstance(n, SortOp)]
        assert sorts

    def test_order_ordinal_out_of_range(self, catalog):
        with pytest.raises(BindError):
            bind(catalog, "SELECT a FROM t ORDER BY 9")

    def test_limit_offset(self, catalog):
        plan = bind(catalog, "SELECT a FROM t LIMIT 5 OFFSET 2")
        assert isinstance(plan, LimitOp)
        assert plan.limit == 5 and plan.offset == 2

    def test_distinct_wraps_projection(self, catalog):
        plan = bind(catalog, "SELECT DISTINCT b FROM t")
        assert isinstance(plan, DistinctOp)


class TestViews:
    def test_view_expansion(self, catalog):
        catalog.register_view("v", "SELECT a AS x, b FROM t WHERE a > 1")
        plan = bind(catalog, "SELECT x FROM v")
        assert [c.name for c in plan.output_columns] == ["x"]

    def test_view_schema_cached(self, catalog):
        catalog.register_view("v", "SELECT a AS x FROM t")
        bind(catalog, "SELECT x FROM v")
        assert catalog.table("v").schema is not None
        assert catalog.table("v").schema.column("x").dtype == DataType.INTEGER

    def test_view_alias(self, catalog):
        catalog.register_view("v", "SELECT a FROM t")
        plan = bind(catalog, "SELECT w.a FROM v AS w")
        assert plan.output_columns[0].name == "a"

    def test_nested_views(self, catalog):
        catalog.register_view("v1", "SELECT a FROM t")
        catalog.register_view("v2", "SELECT a FROM v1 WHERE a > 0")
        plan = bind(catalog, "SELECT a FROM v2")
        assert plan.output_columns[0].dtype == DataType.INTEGER

    def test_circular_views_detected(self, catalog):
        catalog.register_view("v1", "SELECT a FROM v2")
        catalog.register_view("v2", "SELECT a FROM v1")
        with pytest.raises(BindError, match="circular"):
            bind(catalog, "SELECT a FROM v1")

    def test_view_used_twice_gets_fresh_columns(self, catalog):
        catalog.register_view("v", "SELECT a FROM t")
        plan = bind(catalog, "SELECT x.a, y.a FROM v x JOIN v y ON x.a = y.a")
        assert plan.output_columns[0] is not plan.output_columns[1]


class TestSetOperations:
    def test_union_all(self, catalog):
        plan = bind(catalog, "SELECT a FROM t UNION ALL SELECT a FROM u")
        assert isinstance(plan, UnionOp) and plan.all

    def test_union_distinct(self, catalog):
        plan = bind(catalog, "SELECT a FROM t UNION SELECT a FROM u")
        assert isinstance(plan, DistinctOp)
        assert isinstance(plan.child, UnionOp)

    def test_except_and_intersect(self, catalog):
        plan = bind(catalog, "SELECT a FROM t EXCEPT SELECT a FROM u")
        assert isinstance(plan, SetDifferenceOp) and plan.operation == "EXCEPT"
        plan = bind(catalog, "SELECT a FROM t INTERSECT SELECT a FROM u")
        assert plan.operation == "INTERSECT"

    def test_column_count_mismatch(self, catalog):
        with pytest.raises(BindError):
            bind(catalog, "SELECT a, b FROM t UNION ALL SELECT a FROM u")

    def test_type_widening_across_branches(self, catalog):
        plan = bind(catalog, "SELECT a FROM t UNION ALL SELECT c FROM t")
        assert plan.output_columns[0].dtype == DataType.FLOAT

    def test_incompatible_types_rejected(self, catalog):
        with pytest.raises(BindError):
            bind(catalog, "SELECT a FROM t UNION ALL SELECT b FROM t")

    def test_set_op_order_by_name(self, catalog):
        plan = bind(
            catalog, "SELECT a FROM t UNION ALL SELECT a FROM u ORDER BY a DESC"
        )
        assert isinstance(plan, SortOp)

    def test_set_op_limit(self, catalog):
        plan = bind(catalog, "SELECT a FROM t UNION ALL SELECT a FROM u LIMIT 3")
        assert isinstance(plan, LimitOp)

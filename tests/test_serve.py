"""The multi-tenant query service: protocol, admission, fidelity, fairness."""

import threading
import time
from typing import Iterator

import pytest

from repro import MemorySource, NetworkLink
from repro.catalog.schema import schema_from_pairs
from repro.core.fragments import Fragment
from repro.errors import (
    BindError,
    ProtocolError,
    QueryTimeoutError,
    ServerOverloadedError,
)
from repro.serve import QueryServer, ServeClient, ServerConfig, TenantConfig
from repro.serve.protocol import decode_row, encode_row

from .conftest import make_small_gis

SLOW_DELAY_S = 0.05


class SlowSource(MemorySource):
    """A source whose every fragment takes real wall-clock time."""

    def __init__(self, name: str, delay_s: float = SLOW_DELAY_S) -> None:
        super().__init__(name)
        self.delay_s = delay_s

    def execute(self, fragment: Fragment) -> Iterator[tuple]:
        time.sleep(self.delay_s)
        yield from super().execute(fragment)

    def execute_pages(self, fragment: Fragment, page_rows: int):
        time.sleep(self.delay_s)
        yield from super().execute_pages(fragment, page_rows)


def make_serve_gis(plan_cache_size=64, result_cache_size=0):
    """The conftest federation plus a genuinely slow source."""
    gis = make_small_gis()
    gis.plan_cache.capacity = plan_cache_size
    gis._result_cache_size = result_cache_size
    slow = SlowSource("slowsrc")
    slow.add_table(
        "events",
        schema_from_pairs("events", [("eid", "INT"), ("val", "FLOAT")]),
        [(i, i * 1.5) for i in range(40)],
    )
    gis.register_source("slowsrc", slow, link=NetworkLink(5.0, 1_000_000.0))
    gis.register_table("events", source="slowsrc")
    return gis


@pytest.fixture
def served():
    """A started server over a fresh federation; always shut down."""
    gis = make_serve_gis()
    server = QueryServer(gis, ServerConfig(max_workers=4))
    host, port = server.start_background()
    try:
        yield gis, server, host, port
    finally:
        server.stop_background()


def connect(served_fixture, tenant="t1", **kwargs):
    _gis, _server, host, port = served_fixture
    return ServeClient(host, port, tenant=tenant, **kwargs)


# ---------------------------------------------------------------------------
# protocol basics
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_handshake_and_ping(self, served):
        with connect(served) as client:
            assert client.ping()
            assert client.session_id is not None

    def test_query_before_hello_rejected(self, served):
        _gis, _server, host, port = served
        import socket

        from repro.serve.protocol import decode_message, encode_message

        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(encode_message({"op": "query", "sql": "SELECT 1"}))
            response = decode_message(sock.makefile("rb").readline())
        assert not response["ok"]
        assert response["error"]["code"] == "ProtocolError"
        assert "handshake" in response["error"]["message"]

    def test_tenant_token_enforced(self):
        gis = make_serve_gis()
        config = ServerConfig(
            max_workers=2,
            tenants={"secure": TenantConfig(name="secure", token="hunter2")},
        )
        server = QueryServer(gis, config)
        host, port = server.start_background()
        try:
            with pytest.raises(ProtocolError, match="bad token"):
                ServeClient(host, port, tenant="secure", token="wrong")
            with ServeClient(host, port, tenant="secure", token="hunter2") as ok:
                assert ok.ping()
        finally:
            server.stop_background()

    def test_unknown_tenant_rejected_when_required(self):
        gis = make_serve_gis()
        config = ServerConfig(
            max_workers=2,
            require_known_tenant=True,
            tenants={"known": TenantConfig(name="known")},
        )
        server = QueryServer(gis, config)
        host, port = server.start_background()
        try:
            with pytest.raises(ProtocolError, match="unknown tenant"):
                ServeClient(host, port, tenant="stranger")
        finally:
            server.stop_background()

    def test_typed_errors_cross_the_wire(self, served):
        with connect(served) as client:
            with pytest.raises(BindError):
                client.query("SELECT no_such_column FROM customers")

    def test_malformed_sql_is_not_fatal(self, served):
        with connect(served) as client:
            with pytest.raises(Exception):
                client.query("SELEKT nothing")
            # The connection survives a failed request.
            assert client.ping()


# ---------------------------------------------------------------------------
# result fidelity (satellite: partial/timeout metadata over the wire)
# ---------------------------------------------------------------------------


class TestWireFidelity:
    def test_rows_bit_identical_to_direct_mediator(self, served):
        gis, _server, _host, _port = served
        sql = (
            "SELECT c.name, o.total, o.odate FROM customers c "
            "JOIN orders o ON c.id = o.cust_id ORDER BY o.total DESC"
        )
        direct = gis.query(sql)
        with connect(served) as client:
            remote = client.query(sql)
        assert remote.column_names == direct.column_names
        assert remote.rows == [tuple(row) for row in direct.rows]

    def test_dates_round_trip(self, served):
        with connect(served) as client:
            remote = client.query("SELECT oid, odate FROM orders ORDER BY oid")
        import datetime

        assert all(
            isinstance(row[1], datetime.date) for row in remote.rows
        )

    def test_row_value_codec_is_lossless(self):
        import datetime

        row = (1, 2.5, "text", True, None, datetime.date(1989, 4, 1))
        assert decode_row(encode_row(row)) == row

    def test_partial_result_metadata_survives(self, served):
        with connect(served) as client:
            result = client.query(
                "SELECT c.name, o.total FROM customers c "
                "JOIN orders o ON c.id = o.cust_id",
                partial=True,
                faults={
                    "sources": {
                        "crm": {"fail_connect": 10, "permanent": True}
                    }
                },
            )
        assert not result.complete
        assert "crm" in result.excluded_sources

    def test_partial_results_never_enter_result_cache(self):
        gis = make_serve_gis(result_cache_size=8)
        server = QueryServer(gis, ServerConfig(max_workers=2))
        host, port = server.start_background()
        try:
            with ServeClient(host, port, tenant="t1") as client:
                partial = client.query(
                    "SELECT name FROM customers",
                    partial=True,
                    faults={
                        "sources": {
                            "crm": {"fail_connect": 10, "permanent": True}
                        }
                    },
                )
                assert not partial.complete
                assert len(gis._result_cache) == 0
                healthy = client.query("SELECT name FROM customers")
                assert healthy.complete and len(healthy.rows) == 5
        finally:
            server.stop_background()

    def test_timeout_attribution_survives(self, served):
        with connect(served) as client:
            with pytest.raises(QueryTimeoutError) as info:
                client.query("SELECT eid, val FROM events", deadline_ms=5)
        assert info.value.budget_ms == 5
        assert info.value.elapsed_ms >= 5

    def test_session_defaults_apply_and_override(self, served):
        with connect(served) as client:
            client.set_defaults(deadline_ms=5)
            with pytest.raises(QueryTimeoutError):
                client.query("SELECT eid FROM events")
            # Per-request override relaxes the session default.
            result = client.query("SELECT eid FROM events", deadline_ms=60_000)
            assert len(result.rows) == 40


# ---------------------------------------------------------------------------
# async submit / status / fetch
# ---------------------------------------------------------------------------


class TestAsyncProtocol:
    def test_submit_fetch_roundtrip(self, served):
        gis, *_ = served
        sql = "SELECT oid, total FROM orders ORDER BY oid"
        direct = gis.query(sql)
        with connect(served) as client:
            query_id = client.submit(sql)
            result = client.fetch_all(query_id)
        assert result.rows == [tuple(row) for row in direct.rows]

    def test_fetch_pages_incrementally(self, served):
        with connect(served) as client:
            query_id = client.submit("SELECT oid FROM orders ORDER BY oid")
            client.fetch_all(query_id, page_size=3)  # wait until done
            pages = list(client.iter_pages(query_id, page_size=3))
        assert [len(page) for page in pages] == [3, 3, 1]
        assert [row[0] for page in pages for row in page] == [
            100, 101, 102, 103, 104, 105, 106,
        ]

    def test_status_transitions_to_done(self, served):
        with connect(served) as client:
            query_id = client.submit("SELECT eid FROM events")
            status = client.status(query_id)
            assert status["state"] in ("queued", "running", "done")
            client.fetch_all(query_id)
            final = client.status(query_id)
        assert final["state"] == "done"
        assert final["row_count"] == 40
        assert final["complete"] is True

    def test_error_state_reported(self, served):
        with connect(served) as client:
            query_id = client.submit("SELECT nope FROM customers")
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                status = client.status(query_id)
                if status["state"] == "error":
                    break
                time.sleep(0.01)
        assert status["state"] == "error"
        assert status["error"]["code"] == "BindError"

    def test_unknown_query_id(self, served):
        with connect(served) as client:
            with pytest.raises(ProtocolError, match="unknown query_id"):
                client.status("q0-999")


# ---------------------------------------------------------------------------
# admission control and fairness
# ---------------------------------------------------------------------------


class TestAdmission:
    def test_queue_bound_gives_backpressure(self):
        gis = make_serve_gis()
        config = ServerConfig(
            max_workers=2,
            tenants={
                "flood": TenantConfig(
                    name="flood", max_concurrent=1, max_queued=2
                )
            },
        )
        server = QueryServer(gis, config)
        host, port = server.start_background()
        try:
            with ServeClient(host, port, tenant="flood") as client:
                rejections = []
                accepted = []
                for _ in range(12):
                    try:
                        accepted.append(
                            client.submit("SELECT eid, val FROM events")
                        )
                    except ServerOverloadedError as exc:
                        rejections.append(exc)
                assert rejections, "expected backpressure from a full queue"
                error = rejections[0]
                assert error.tenant == "flood"
                assert error.limit == 2
                assert error.retryable
                stats = client.stats()["tenants"]["flood"]
                # Never more buffered than the bound — that is the contract.
                assert stats["queued"] <= 2
                assert stats["rejected"] == len(rejections)
                for query_id in accepted:  # drain before shutdown
                    client.fetch_all(query_id, timeout=120)
        finally:
            server.stop_background()

    def test_flooding_tenant_cannot_starve_quiet_one(self):
        gis = make_serve_gis()
        config = ServerConfig(
            max_workers=4,
            tenants={
                "flood": TenantConfig(
                    name="flood", max_concurrent=2, max_queued=6
                ),
                "quiet": TenantConfig(
                    name="quiet", max_concurrent=2, max_queued=6
                ),
            },
        )
        server = QueryServer(gis, config)
        host, port = server.start_background()
        flood_rejections = [0]
        stop_flood = threading.Event()

        def flood() -> None:
            with ServeClient(host, port, tenant="flood") as client:
                pending = []
                while not stop_flood.is_set():
                    try:
                        pending.append(
                            client.submit("SELECT eid, val FROM events")
                        )
                    except ServerOverloadedError:
                        flood_rejections[0] += 1
                        time.sleep(0.005)
                for query_id in pending:
                    try:
                        client.fetch_all(query_id, timeout=120)
                    except Exception:
                        pass

        flooder = threading.Thread(target=flood)
        flooder.start()
        try:
            time.sleep(0.1)  # let the flood saturate its quota
            latencies = []
            with ServeClient(host, port, tenant="quiet") as client:
                for _ in range(20):
                    started = time.perf_counter()
                    result = client.query("SELECT name FROM customers")
                    latencies.append((time.perf_counter() - started) * 1000.0)
                    assert len(result.rows) == 5
                stats = client.stats()["tenants"]
        finally:
            stop_flood.set()
            flooder.join(timeout=120)
            server.stop_background()
        latencies.sort()
        p95 = latencies[int(len(latencies) * 0.95) - 1]
        # Quiet tenant latency stays bounded (its own quota + free workers);
        # the bound is generous for CI but far below flood queue drain time.
        assert p95 < 2_000.0, f"quiet tenant p95 {p95:.0f} ms"
        assert flood_rejections[0] > 0, "flood should see backpressure"
        assert stats["quiet"]["rejected"] == 0
        assert stats["flood"]["queued"] <= 6


# ---------------------------------------------------------------------------
# plan cache over the wire (acceptance: 4 tenants, >90% hit rate)
# ---------------------------------------------------------------------------


class TestServingPlanCache:
    def test_four_tenant_mixed_workload_hit_rate(self, served):
        gis, _server, host, port = served
        templates = [
            "SELECT name FROM customers WHERE balance > {}",
            "SELECT oid, total FROM orders WHERE total > {}",
            "SELECT c.name, o.total FROM customers c "
            "JOIN orders o ON c.id = o.cust_id WHERE o.total > {}",
            "SELECT status, COUNT(*) FROM orders GROUP BY status",
        ]
        shapes = [template.format(value) if "{}" in template else template
                  for template in templates for value in (0,)]
        # Warm every shape once so concurrent tenants race on hits, not on
        # the initial plan. These first runs are the genuinely cold plans
        # the warm-vs-cold assertion below compares against — measuring
        # "cold" after warming would compare cache hits to cache hits and
        # turn the assertion into a scheduling-noise coin flip.
        cold_planning = []
        for shape in shapes:
            cold_planning.append(gis.query(shape).metrics.planning_ms)
        base = gis.plan_cache.stats()

        mismatches = []
        warm_planning = []
        lock = threading.Lock()

        def tenant_worker(tenant: str) -> None:
            with ServeClient(host, port, tenant=tenant) as client:
                for repeat in range(6):
                    for template in templates:
                        sql = (
                            template.format((repeat * 7) % 3)
                            if "{}" in template
                            else template
                        )
                        remote = client.query(sql)
                        direct_rows = [tuple(r) for r in gis.query(sql).rows]
                        with lock:
                            warm_planning.append(
                                remote.metrics["planning_ms"]
                            )
                            if sorted(remote.rows) != sorted(direct_rows):
                                mismatches.append(sql)

        threads = [
            threading.Thread(target=tenant_worker, args=(f"tenant{i}",))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not mismatches, mismatches[:3]

        stats = gis.plan_cache.stats()
        lookups = (
            stats["hits"] + stats["misses"] + stats["fallbacks"]
            - (base["hits"] + base["misses"] + base["fallbacks"])
        )
        hits = stats["hits"] - base["hits"]
        assert lookups > 0
        hit_rate = hits / lookups
        assert hit_rate > 0.90, f"plan-cache hit rate {hit_rate:.2%}"
        # Warm planning must be measurably cheaper than full pipeline runs.
        mean_cold = sum(cold_planning) / len(cold_planning)
        mean_warm = sum(warm_planning) / len(warm_planning)
        assert mean_warm < mean_cold


# ---------------------------------------------------------------------------
# lifecycle
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_clean_shutdown_leaks_nothing(self):
        before = set(threading.enumerate())
        gis = make_serve_gis()
        server = QueryServer(gis, ServerConfig(max_workers=3))
        host, port = server.start_background()
        with ServeClient(host, port, tenant="t1") as client:
            client.query("SELECT COUNT(*) FROM orders")
            client.submit("SELECT eid FROM events")
        server.stop_background()
        time.sleep(0.1)
        leaked = [
            thread
            for thread in set(threading.enumerate()) - before
            if thread.is_alive()
        ]
        assert not leaked, [thread.name for thread in leaked]

    def test_stop_background_is_idempotent(self):
        gis = make_serve_gis()
        server = QueryServer(gis, ServerConfig(max_workers=2))
        server.start_background()
        server.stop_background()
        server.stop_background()  # second call is a no-op

    def test_stats_expose_plan_cache(self, served):
        with connect(served) as client:
            client.query("SELECT COUNT(*) FROM orders")
            stats = client.stats()
        assert "plan_cache" in stats
        assert stats["plan_cache"]["capacity"] == 64
        assert stats["workers"] == 4

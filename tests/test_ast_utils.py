"""AST helpers: traversal, conjunct handling, ref substitution."""

from repro.datatypes import DataType
from repro.core.logical import RelColumn
from repro.sql import ast
from repro.sql.parser import parse_select


def expr_of(text):
    return parse_select(f"SELECT {text}").items[0].expr


class TestConjuncts:
    def test_none_is_empty(self):
        assert ast.conjuncts(None) == []

    def test_single_predicate(self):
        expr = expr_of("a = 1")
        assert ast.conjuncts(expr) == [expr]

    def test_nested_ands_flatten(self):
        expr = expr_of("a = 1 AND b = 2 AND c = 3")
        parts = ast.conjuncts(expr)
        assert len(parts) == 3

    def test_or_is_not_split(self):
        expr = expr_of("a = 1 OR b = 2")
        assert ast.conjuncts(expr) == [expr]

    def test_conjoin_inverse(self):
        expr = expr_of("a = 1 AND b = 2")
        rebuilt = ast.conjoin(ast.conjuncts(expr))
        assert ast.conjuncts(rebuilt) == ast.conjuncts(expr)

    def test_conjoin_empty_is_none(self):
        assert ast.conjoin([]) is None


class TestWalk:
    def test_walk_visits_all_nodes(self):
        expr = expr_of("CASE WHEN a = 1 THEN b + 2 ELSE ABS(c) END")
        names = {
            node.name
            for node in ast.walk_expression(expr)
            if isinstance(node, ast.ColumnRef)
        }
        assert names == {"a", "b", "c"}

    def test_children_of_between(self):
        expr = expr_of("x BETWEEN lo AND hi")
        assert len(ast.expression_children(expr)) == 3

    def test_children_of_in_list(self):
        expr = expr_of("x IN (1, 2)")
        assert len(ast.expression_children(expr)) == 3


class TestTransform:
    def test_transform_replaces_leaves(self):
        expr = expr_of("a + b * a")

        def rename(node):
            if isinstance(node, ast.ColumnRef) and node.name == "a":
                return ast.ColumnRef(None, "z")
            return None

        result = ast.transform_expression(expr, rename)
        names = [
            n.name for n in ast.walk_expression(result) if isinstance(n, ast.ColumnRef)
        ]
        assert names.count("z") == 2 and "a" not in names

    def test_transform_shares_untouched_subtrees(self):
        expr = expr_of("a + (b * c)")
        result = ast.transform_expression(expr, lambda node: None)
        assert result is expr


class TestBoundRefs:
    def test_bound_ref_identity_equality(self):
        column = RelColumn("x", DataType.INTEGER)
        twin = RelColumn("x", DataType.INTEGER)
        assert ast.BoundRef(column) == ast.BoundRef(column)
        assert ast.BoundRef(column) != ast.BoundRef(twin)

    def test_referenced_columns(self):
        a = RelColumn("a", DataType.INTEGER)
        b = RelColumn("b", DataType.INTEGER)
        expr = ast.BinaryOp("+", a.ref(), ast.BinaryOp("*", b.ref(), a.ref()))
        refs = ast.referenced_columns(expr)
        assert refs.count(a) == 2 and refs.count(b) == 1

    def test_replace_refs_with_column(self):
        a = RelColumn("a", DataType.INTEGER)
        b = RelColumn("b", DataType.INTEGER)
        expr = ast.BinaryOp("=", a.ref(), ast.Literal(1, DataType.INTEGER))
        replaced = ast.replace_refs(expr, {a.column_id: b})
        assert ast.referenced_columns(replaced) == [b]

    def test_replace_refs_with_expression(self):
        a = RelColumn("a", DataType.INTEGER)
        replacement = ast.BinaryOp(
            "+", ast.Literal(1, DataType.INTEGER), ast.Literal(2, DataType.INTEGER)
        )
        expr = a.ref()
        replaced = ast.replace_refs(expr, {a.column_id: replacement})
        assert replaced == replacement

    def test_replace_refs_leaves_unmapped(self):
        a = RelColumn("a", DataType.INTEGER)
        expr = a.ref()
        assert ast.replace_refs(expr, {}) is expr


class TestContainsAggregate:
    def test_detects_aggregate(self):
        assert ast.contains_aggregate(expr_of("SUM(x) + 1"))
        assert ast.contains_aggregate(expr_of("COUNT(*)"))

    def test_scalar_only(self):
        assert not ast.contains_aggregate(expr_of("UPPER(x) || 'a'"))

"""Semijoin (bind-join) planning and execution."""

import pytest

from repro import (
    GlobalInformationSystem,
    MemorySource,
    NetworkLink,
    PlannerOptions,
    SQLiteSource,
)
from repro.catalog.schema import schema_from_pairs
from repro.core.logical import RemoteQueryOp

from .conftest import assert_same_rows


def build_gis(bandwidth=1_000.0, big_rows=2000, match_keys=5):
    """A tiny filtered probe side against a big remote side on a slow link.

    Low bandwidth makes shipping the big table expensive, so the semijoin
    should win in `auto` mode.
    """
    gis = GlobalInformationSystem()
    left = MemorySource("left")
    left_schema = schema_from_pairs("probe", [("k", "INT"), ("tag", "TEXT")])
    left.add_table(
        "probe", left_schema, [(i, f"tag{i}") for i in range(match_keys)]
    )
    right = SQLiteSource("right")
    right_schema = schema_from_pairs(
        "big", [("k", "INT"), ("payload", "TEXT")]
    )
    right.load_table(
        "big",
        right_schema,
        [(i % 100, "x" * 50) for i in range(big_rows)],
    )
    gis.register_source("left", left, link=NetworkLink(5.0, 10_000_000.0))
    gis.register_source("right", right, link=NetworkLink(20.0, bandwidth))
    gis.register_table("probe", source="left")
    gis.register_table("big", source="right")
    gis.analyze()
    return gis


QUERY = (
    "SELECT p.tag, b.payload FROM probe p JOIN big b ON p.k = b.k"
)


def bound_remotes(plan):
    return [
        n
        for n in plan.walk()
        if isinstance(n, RemoteQueryOp) and n.bind is not None
    ]


class TestPlanning:
    def test_auto_applies_on_slow_link(self):
        gis = build_gis(bandwidth=1_000.0)
        planned = gis.plan(QUERY)
        assert bound_remotes(planned.distributed)
        decision = [d for d in planned.semijoin_decisions if d.applied][0]
        assert decision.reduced_cost_ms < decision.full_cost_ms

    def test_auto_declines_when_probe_is_unselective(self):
        # Probe keys cover the remote key domain: no reduction is possible,
        # so the extra key-shipping round would be pure overhead.
        gis = build_gis(bandwidth=1_000_000_000.0, match_keys=200)
        planned = gis.plan(QUERY)
        assert not bound_remotes(planned.distributed)
        assert any(not d.applied for d in planned.semijoin_decisions)

    def test_off_mode_never_applies(self):
        gis = build_gis(bandwidth=1_000.0)
        planned = gis.plan(QUERY, PlannerOptions(semijoin="off"))
        assert not bound_remotes(planned.distributed)

    def test_force_mode_always_applies(self):
        gis = build_gis(bandwidth=1_000_000_000.0)
        planned = gis.plan(QUERY, PlannerOptions(semijoin="force"))
        assert bound_remotes(planned.distributed)

    def test_invalid_mode_rejected(self):
        from repro.errors import PlanError

        with pytest.raises(PlanError):
            PlannerOptions(semijoin="sometimes")


class TestExecution:
    def test_results_match_plain_join(self):
        gis = build_gis(bandwidth=1_000.0)
        reduced = gis.query(QUERY, PlannerOptions(semijoin="force"))
        plain = gis.query(QUERY, PlannerOptions(semijoin="off"))
        assert_same_rows(reduced.rows, plain.rows)

    def test_ships_fewer_rows(self):
        gis = build_gis(bandwidth=1_000.0)
        reduced = gis.query(QUERY, PlannerOptions(semijoin="force"))
        gis2 = build_gis(bandwidth=1_000.0)
        plain = gis2.query(QUERY, PlannerOptions(semijoin="off"))
        assert reduced.metrics.rows_shipped < plain.metrics.rows_shipped

    def test_batching_respects_in_list_cap(self):
        gis = build_gis(bandwidth=1_000.0, match_keys=60)
        # Shrink the source's IN-list cap to force multiple batches.
        adapter = gis.catalog.source("right")
        adapter._capabilities = adapter.capabilities().restricted(in_list_max=25)
        result = gis.query(QUERY, PlannerOptions(semijoin="force"))
        assert result.metrics.network.semijoin_batches == 3  # ceil(60/25)

    def test_empty_probe_side_skips_remote_entirely(self):
        gis = build_gis(bandwidth=1_000.0)
        result = gis.query(
            "SELECT p.tag, b.payload FROM probe p JOIN big b ON p.k = b.k "
            "WHERE p.tag = 'nothing-matches'",
            PlannerOptions(semijoin="force"),
        )
        assert result.rows == []
        # No page was fetched from the big table's source.
        assert result.metrics.network.per_source_rows.get("right", 0) == 0

    def test_null_probe_keys_ignored(self):
        gis = GlobalInformationSystem()
        left = MemorySource("left")
        schema = schema_from_pairs("probe", [("k", "INT")])
        left.add_table("probe", schema, [(1,), (None,), (2,)])
        right = SQLiteSource("right")
        right.load_table(
            "big", schema_from_pairs("big", [("k", "INT")]), [(1,), (3,)]
        )
        gis.register_source("left", left)
        gis.register_source("right", right)
        gis.register_table("probe", source="left")
        gis.register_table("big", source="right")
        gis.analyze()
        result = gis.query(
            "SELECT p.k FROM probe p JOIN big b ON p.k = b.k",
            PlannerOptions(semijoin="force"),
        )
        assert result.rows == [(1,)]

    def test_semi_join_from_in_subquery_binds(self):
        gis = build_gis(bandwidth=1_000.0)
        result = gis.query(
            "SELECT tag FROM probe WHERE k IN (SELECT k FROM big)",
            PlannerOptions(semijoin="force"),
        )
        names, reference = gis.reference_query(
            "SELECT tag FROM probe WHERE k IN (SELECT k FROM big)"
        )
        assert_same_rows(result.rows, reference)


class TestKeyValueBindJoin:
    def test_kv_source_answers_bind_join_by_key(self, federation):
        sql = (
            "SELECT c.c_name, p.u_tier FROM customers c "
            "JOIN profiles p ON c.c_id = p.u_cust_id WHERE c.c_balance > 8000"
        )
        planned = federation.gis.plan(sql, PlannerOptions(semijoin="force"))
        bound = bound_remotes(planned.distributed)
        assert bound and bound[0].source_name == "support"
        result = federation.gis.query(sql, PlannerOptions(semijoin="force"))
        names, reference = federation.gis.reference_query(sql)
        assert_same_rows(result.rows, reference)

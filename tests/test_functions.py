"""Scalar/aggregate function registry: signatures and reference kernels."""

import pytest

from repro.datatypes import DataType
from repro.errors import TypeCheckError
from repro.sql.functions import (
    aggregate_result_type,
    is_aggregate_name,
    is_scalar_name,
    lookup_scalar,
    scalar_names,
)


class TestRegistry:
    def test_aggregate_names(self):
        for name in ("count", "SUM", "Avg", "MIN", "max"):
            assert is_aggregate_name(name)
        assert not is_aggregate_name("UPPER")

    def test_scalar_lookup_case_insensitive(self):
        assert lookup_scalar("upper") is lookup_scalar("UPPER")

    def test_unknown_scalar(self):
        with pytest.raises(TypeCheckError):
            lookup_scalar("FROBNICATE")
        assert not is_scalar_name("FROBNICATE")

    def test_scalar_names_sorted_and_complete(self):
        names = scalar_names()
        assert names == sorted(names)
        for expected in ("UPPER", "COALESCE", "SUBSTR", "YEAR", "ROUND"):
            assert expected in names


class TestAggregateTypes:
    def test_count_is_integer(self):
        assert aggregate_result_type("COUNT", None) == DataType.INTEGER
        assert aggregate_result_type("COUNT", DataType.TEXT) == DataType.INTEGER

    def test_avg_is_float(self):
        assert aggregate_result_type("AVG", DataType.INTEGER) == DataType.FLOAT

    def test_sum_preserves_type(self):
        assert aggregate_result_type("SUM", DataType.INTEGER) == DataType.INTEGER
        assert aggregate_result_type("SUM", DataType.FLOAT) == DataType.FLOAT

    def test_min_max_preserve_type(self):
        assert aggregate_result_type("MIN", DataType.DATE) == DataType.DATE
        assert aggregate_result_type("MAX", DataType.TEXT) == DataType.TEXT

    def test_sum_rejects_text(self):
        with pytest.raises(TypeCheckError):
            aggregate_result_type("SUM", DataType.TEXT)

    def test_avg_requires_argument(self):
        with pytest.raises(TypeCheckError):
            aggregate_result_type("AVG", None)


class TestScalarKernels:
    def test_upper_lower_trim(self):
        assert lookup_scalar("UPPER").implementation("abc") == "ABC"
        assert lookup_scalar("LOWER").implementation("AbC") == "abc"
        assert lookup_scalar("TRIM").implementation("  x ") == "x"

    def test_length(self):
        assert lookup_scalar("LENGTH").implementation("hello") == 5

    def test_substr_one_based(self):
        substr = lookup_scalar("SUBSTR").implementation
        assert substr("federation", 1, 3) == "fed"
        assert substr("federation", 4) == "eration"

    def test_substr_negative_start(self):
        substr = lookup_scalar("SUBSTR").implementation
        assert substr("federation", -4) == "tion"

    def test_substr_negative_length_empty(self):
        substr = lookup_scalar("SUBSTR").implementation
        assert substr("abc", 1, -1) == ""

    def test_abs_and_round(self):
        assert lookup_scalar("ABS").implementation(-4) == 4
        assert lookup_scalar("ROUND").implementation(2.567, 1) == 2.6

    def test_floor_ceil_preserve_int(self):
        assert lookup_scalar("FLOOR").implementation(3) == 3
        assert isinstance(lookup_scalar("CEIL").implementation(3), int)
        assert lookup_scalar("FLOOR").implementation(2.7) == 2.0
        assert lookup_scalar("CEIL").implementation(2.1) == 3.0

    def test_mod_truncating(self):
        mod = lookup_scalar("MOD").implementation
        assert mod(7, 3) == 1
        assert mod(-7, 3) == -1  # SQL truncates toward zero

    def test_mod_by_zero_is_null(self):
        assert lookup_scalar("MOD").implementation(5, 0) is None

    def test_coalesce(self):
        coalesce = lookup_scalar("COALESCE").implementation
        assert coalesce(None, None, 3, 4) == 3
        assert coalesce(None, None) is None

    def test_nullif(self):
        nullif = lookup_scalar("NULLIF").implementation
        assert nullif(1, 1) is None
        assert nullif(1, 2) == 1

    def test_date_parts(self):
        import datetime

        date = datetime.date(1989, 2, 6)
        assert lookup_scalar("YEAR").implementation(date) == 1989
        assert lookup_scalar("MONTH").implementation(date) == 2
        assert lookup_scalar("DAY").implementation(date) == 6


class TestTypeRules:
    def test_upper_rejects_integer(self):
        with pytest.raises(TypeCheckError):
            lookup_scalar("UPPER").type_rule([DataType.INTEGER])

    def test_arity_errors(self):
        with pytest.raises(TypeCheckError):
            lookup_scalar("LENGTH").type_rule([DataType.TEXT, DataType.TEXT])
        with pytest.raises(TypeCheckError):
            lookup_scalar("SUBSTR").type_rule([DataType.TEXT])

    def test_coalesce_unifies(self):
        rule = lookup_scalar("COALESCE").type_rule
        assert rule([DataType.NULL, DataType.INTEGER, DataType.FLOAT]) == DataType.FLOAT
        with pytest.raises(TypeCheckError):
            rule([DataType.TEXT, DataType.INTEGER])

    def test_abs_identity_type(self):
        rule = lookup_scalar("ABS").type_rule
        assert rule([DataType.INTEGER]) == DataType.INTEGER
        assert rule([DataType.FLOAT]) == DataType.FLOAT
        assert rule([DataType.NULL]) == DataType.NULL

    def test_year_requires_date(self):
        with pytest.raises(TypeCheckError):
            lookup_scalar("YEAR").type_rule([DataType.TEXT])

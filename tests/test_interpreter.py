"""The reference interpreter: node-by-node semantics on a fixed catalog.

These tests pin down *semantics* (what SQL should return); the optimized
engine is then differential-tested against this interpreter elsewhere.
"""

import pytest

from repro import Catalog, MemorySource, TableMapping
from repro.catalog.schema import schema_from_pairs
from repro.core.analyzer import Analyzer
from repro.core.fragments import equi_join_keys, interpret_plan
from repro.core.logical import ScanOp
from repro.sql.parser import parse_select

PEOPLE = [
    (1, "Ann", "EU", 10.0),
    (2, "Bob", "US", None),
    (3, "Cy", "EU", 30.0),
    (4, "Dee", None, 5.0),
]
PETS = [
    (1, 1, "cat"),
    (2, 1, "dog"),
    (3, 3, "cat"),
    (4, 9, "fox"),  # dangling owner
    (5, None, "eel"),  # null owner
]


@pytest.fixture
def catalog():
    catalog = Catalog()
    source = MemorySource("mem")
    people_schema = schema_from_pairs(
        "people", [("id", "INT"), ("name", "TEXT"), ("region", "TEXT"), ("score", "FLOAT")]
    )
    pets_schema = schema_from_pairs(
        "pets", [("pid", "INT"), ("owner", "INT"), ("kind", "TEXT")]
    )
    source.add_table("people", people_schema, PEOPLE)
    source.add_table("pets", pets_schema, PETS)
    catalog.register_source("mem", source)
    catalog.register_table("people", people_schema, TableMapping("mem", "people"))
    catalog.register_table("pets", pets_schema, TableMapping("mem", "pets"))
    return catalog


def run(catalog, sql):
    plan = Analyzer(catalog).bind_statement(parse_select(sql))
    source = catalog.source("mem")

    def provide(scan: ScanOp):
        return source.scan(scan.table.mapping.remote_table)

    return list(interpret_plan(plan, provide))


class TestScanFilterProject:
    def test_plain_scan(self, catalog):
        assert len(run(catalog, "SELECT * FROM people")) == 4

    def test_filter(self, catalog):
        rows = run(catalog, "SELECT name FROM people WHERE region = 'EU'")
        assert sorted(rows) == [("Ann",), ("Cy",)]

    def test_null_region_excluded_by_any_comparison(self, catalog):
        rows = run(catalog, "SELECT name FROM people WHERE region <> 'EU'")
        assert rows == [("Bob",)]  # Dee's NULL region never matches

    def test_computed_projection(self, catalog):
        rows = run(catalog, "SELECT score * 2 FROM people WHERE id = 1")
        assert rows == [(20.0,)]

    def test_null_arithmetic_projection(self, catalog):
        rows = run(catalog, "SELECT score + 1 FROM people WHERE id = 2")
        assert rows == [(None,)]


class TestJoins:
    def test_inner_join(self, catalog):
        rows = run(
            catalog,
            "SELECT p.name, q.kind FROM people p JOIN pets q ON p.id = q.owner",
        )
        assert sorted(rows) == [("Ann", "cat"), ("Ann", "dog"), ("Cy", "cat")]

    def test_left_join_null_extension(self, catalog):
        rows = run(
            catalog,
            "SELECT p.name, q.kind FROM people p LEFT JOIN pets q ON p.id = q.owner",
        )
        assert ("Bob", None) in rows and ("Dee", None) in rows
        assert len(rows) == 5

    def test_cross_join_count(self, catalog):
        rows = run(catalog, "SELECT 1 FROM people CROSS JOIN pets")
        assert len(rows) == 20

    def test_non_equi_join(self, catalog):
        rows = run(
            catalog,
            "SELECT p.name FROM people p JOIN pets q ON p.id < q.owner",
        )
        expected = sum(
            1
            for person in PEOPLE
            for pet in PETS
            if pet[1] is not None and person[0] < pet[1]
        )
        assert len(rows) == expected

    def test_semi_join_via_in(self, catalog):
        rows = run(
            catalog, "SELECT name FROM people WHERE id IN (SELECT owner FROM pets)"
        )
        assert sorted(rows) == [("Ann",), ("Cy",)]

    def test_not_in_with_null_right_is_empty(self, catalog):
        rows = run(
            catalog,
            "SELECT name FROM people WHERE id NOT IN (SELECT owner FROM pets)",
        )
        assert rows == []  # pets.owner contains NULL → NOT IN yields nothing

    def test_not_in_without_nulls(self, catalog):
        rows = run(
            catalog,
            "SELECT name FROM people WHERE id NOT IN "
            "(SELECT owner FROM pets WHERE owner IS NOT NULL)",
        )
        assert sorted(rows) == [("Bob",), ("Dee",)]

    def test_exists(self, catalog):
        rows = run(
            catalog, "SELECT name FROM people WHERE EXISTS (SELECT 1 FROM pets)"
        )
        assert len(rows) == 4

    def test_not_exists_empty_subquery(self, catalog):
        rows = run(
            catalog,
            "SELECT name FROM people WHERE NOT EXISTS "
            "(SELECT 1 FROM pets WHERE kind = 'dragon')",
        )
        assert len(rows) == 4


class TestAggregation:
    def test_group_by_with_having(self, catalog):
        rows = run(
            catalog,
            "SELECT owner, COUNT(*) AS n FROM pets GROUP BY owner HAVING COUNT(*) > 1",
        )
        assert rows == [(1, 2)]

    def test_global_aggregate_on_empty_input(self, catalog):
        rows = run(catalog, "SELECT COUNT(*), SUM(score) FROM people WHERE id > 99")
        assert rows == [(0, None)]

    def test_group_on_empty_input_yields_no_rows(self, catalog):
        rows = run(
            catalog,
            "SELECT region, COUNT(*) FROM people WHERE id > 99 GROUP BY region",
        )
        assert rows == []

    def test_null_group_key_forms_a_group(self, catalog):
        rows = run(catalog, "SELECT region, COUNT(*) FROM people GROUP BY region")
        assert (None, 1) in rows

    def test_avg_skips_nulls(self, catalog):
        rows = run(catalog, "SELECT AVG(score) FROM people")
        assert rows == [(15.0,)]


class TestSortLimitDistinct:
    def test_order_by_desc_with_nulls(self, catalog):
        rows = run(catalog, "SELECT score FROM people ORDER BY score DESC")
        assert rows == [(None,), (30.0,), (10.0,), (5.0,)]

    def test_order_by_asc_nulls_last(self, catalog):
        rows = run(catalog, "SELECT score FROM people ORDER BY score")
        assert rows == [(5.0,), (10.0,), (30.0,), (None,)]

    def test_limit_offset(self, catalog):
        rows = run(catalog, "SELECT id FROM people ORDER BY id LIMIT 2 OFFSET 1")
        assert rows == [(2,), (3,)]

    def test_limit_zero(self, catalog):
        assert run(catalog, "SELECT id FROM people LIMIT 0") == []

    def test_distinct(self, catalog):
        rows = run(catalog, "SELECT DISTINCT kind FROM pets WHERE kind = 'cat'")
        assert rows == [("cat",)]

    def test_distinct_keeps_null_row(self, catalog):
        rows = run(catalog, "SELECT DISTINCT region FROM people")
        assert len(rows) == 3


class TestSetOperations:
    def test_union_all_keeps_duplicates(self, catalog):
        rows = run(
            catalog,
            "SELECT kind FROM pets WHERE kind = 'cat' "
            "UNION ALL SELECT kind FROM pets WHERE kind = 'cat'",
        )
        assert len(rows) == 4

    def test_union_dedupes(self, catalog):
        rows = run(
            catalog,
            "SELECT kind FROM pets UNION SELECT kind FROM pets",
        )
        assert sorted(rows) == [("cat",), ("dog",), ("eel",), ("fox",)]

    def test_except(self, catalog):
        rows = run(
            catalog,
            "SELECT kind FROM pets EXCEPT SELECT kind FROM pets WHERE kind = 'cat'",
        )
        assert sorted(rows) == [("dog",), ("eel",), ("fox",)]

    def test_intersect(self, catalog):
        rows = run(
            catalog,
            "SELECT kind FROM pets INTERSECT SELECT kind FROM pets WHERE owner = 1",
        )
        assert sorted(rows) == [("cat",), ("dog",)]


class TestEquiJoinKeyExtraction:
    def test_extracts_keys_and_residual(self, catalog):
        plan = Analyzer(catalog).bind_statement(
            parse_select(
                "SELECT 1 FROM people p JOIN pets q "
                "ON p.id = q.owner AND p.score > 1"
            )
        )
        from repro.core.logical import JoinOp

        (join,) = [n for n in plan.walk() if isinstance(n, JoinOp)]
        keys = equi_join_keys(
            join.condition, join.left.output_columns, join.right.output_columns
        )
        assert keys is not None
        left_keys, right_keys, residual = keys
        assert len(left_keys) == 1 and len(residual) == 1

    def test_no_equi_keys(self, catalog):
        plan = Analyzer(catalog).bind_statement(
            parse_select("SELECT 1 FROM people p JOIN pets q ON p.id < q.owner")
        )
        from repro.core.logical import JoinOp

        (join,) = [n for n in plan.walk() if isinstance(n, JoinOp)]
        assert (
            equi_join_keys(
                join.condition, join.left.output_columns, join.right.output_columns
            )
            is None
        )

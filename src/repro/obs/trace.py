"""Structured tracing core: explicit spans over a monotonic clock.

A :class:`Span` is one timed region of work — a mediator phase, a physical
operator's lifetime, a fragment fetch on a scheduler worker thread — with
parent/child links, key/value attributes, and point-in-time events
(retries, breaker trips, response pages). A :class:`Tracer` mints spans,
collects them as they finish, and optionally forwards each finished span to
a live sink (see :mod:`repro.obs.export`).

Design constraints, in priority order:

* **near-zero cost when disabled** — every instrumentation site holds a
  parent handle; when tracing is off that handle is the falsy
  :data:`NULL_SPAN` singleton and :meth:`Tracer.child` returns it again
  after a single attribute check. No allocation, no locking, no clock read.
* **explicit context propagation** — the scheduler hands fragments to
  worker threads, so thread-local "current span" state cannot carry the
  parent across. Instrumentation captures the parent span explicitly at
  submission time and passes it into the worker; a thread-local
  :meth:`Tracer.activate` stack exists for same-thread convenience only.
* **monotonic timing** — all timestamps are milliseconds since the
  tracer's origin on ``time.perf_counter()``; wall-clock never appears, so
  spans order correctly even across NTP steps.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Dict, Iterator, List, Optional, Tuple


class _NullSpan:
    """The no-op span: absorbs the full Span API, is falsy, and is shared.

    Instrumented code never branches on "is tracing on?" — it calls the
    same methods on whatever span it holds, and this singleton makes the
    disabled path free.
    """

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> bool:
        return False

    def set_attribute(self, name: str, value: Any) -> None:
        pass

    def event(self, name: str, **attributes: Any) -> None:
        pass

    def end(self) -> None:
        pass


#: The shared disabled span; every tracing call site tolerates it.
NULL_SPAN = _NullSpan()


class Span:
    """One timed region of work, linked to its parent.

    Spans are context managers (``with tracer.child(parent, "x") as span:``)
    but may also be ended explicitly with :meth:`end` when the region does
    not nest lexically (operator lifetimes, fragment fetches). ``end`` is
    idempotent; an exception inside the ``with`` block is recorded as an
    ``error`` attribute. Events may be appended from any thread.
    """

    __slots__ = (
        "tracer", "name", "category", "span_id", "parent_id", "trace_id",
        "thread_name", "start_ms", "end_ms", "attributes", "events",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        span_id: int,
        parent_id: Optional[int],
        trace_id: int,
        attributes: Dict[str, Any],
    ) -> None:
        self.tracer = tracer
        self.name = name
        self.category = category
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.thread_name = threading.current_thread().name
        self.start_ms = tracer.now_ms()
        self.end_ms: Optional[float] = None
        self.attributes = attributes
        self.events: List[Tuple[str, float, Dict[str, Any]]] = []

    def __bool__(self) -> bool:
        return True

    @property
    def duration_ms(self) -> float:
        """Elapsed milliseconds (to now for a still-open span)."""
        end = self.end_ms if self.end_ms is not None else self.tracer.now_ms()
        return end - self.start_ms

    def set_attribute(self, name: str, value: Any) -> None:
        self.attributes[name] = value

    def event(self, name: str, **attributes: Any) -> None:
        """Record a point-in-time occurrence inside this span."""
        self.events.append((name, self.tracer.now_ms(), attributes))

    def end(self) -> None:
        """Close the span and hand it to the tracer.

        Idempotent and race-safe: a fragment span may be ended by its
        producer thread (normal completion) and by the consumer (timeout)
        concurrently; exactly one of them wins.
        """
        self.tracer._finish(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc is not None:
            self.attributes.setdefault("error", repr(exc))
        self.end()
        return False

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (the JSON-lines export schema)."""
        return {
            "name": self.name,
            "category": self.category,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "thread": self.thread_name,
            "start_ms": round(self.start_ms, 3),
            "duration_ms": round(self.duration_ms, 3),
            "attributes": dict(self.attributes),
            "events": [
                {"name": name, "ts_ms": round(ts, 3), "attributes": attrs}
                for name, ts, attrs in self.events
            ],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"parent={self.parent_id}, {self.duration_ms:.2f} ms)"
        )


class Tracer:
    """Mints, activates, and collects spans for one mediator.

    Finished spans accumulate in an internal ring (bounded by
    ``max_spans``, oldest dropped first) until :meth:`drain` hands them to
    whoever exports them; a ``sink`` additionally sees every span the
    moment it finishes (streaming JSON-lines export).

    A disabled tracer still *exists* — :meth:`root_span` returns
    :data:`NULL_SPAN` and every child/event call collapses to a single
    check — so call sites are unconditional.
    """

    def __init__(
        self,
        enabled: bool = False,
        sink: Any = None,
        max_spans: int = 100_000,
    ) -> None:
        self._enabled = enabled
        self.sink = sink
        self.max_spans = max(max_spans, 1)
        self.origin = time.perf_counter()
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._trace_ids = itertools.count(1)
        self._finished: List[Span] = []
        self._dropped = 0
        self._local = threading.local()

    # -- switches ----------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # -- clock -------------------------------------------------------------

    def now_ms(self) -> float:
        """Milliseconds since this tracer's monotonic origin."""
        return (time.perf_counter() - self.origin) * 1000.0

    # -- span creation -----------------------------------------------------

    def root_span(
        self, name: str, category: str = "query", force: bool = False,
        **attributes: Any,
    ):
        """Start a new trace (a span with no parent).

        Returns :data:`NULL_SPAN` unless the tracer is enabled or ``force``
        is set (per-query tracing via ``PlannerOptions.trace``).
        """
        if not (self._enabled or force):
            return NULL_SPAN
        with self._lock:
            span_id = next(self._ids)
            trace_id = next(self._trace_ids)
        return Span(self, name, category, span_id, None, trace_id, attributes)

    def child(self, parent: Any, name: str, category: str = "", **attributes: Any):
        """Start a span under ``parent``; NULL parent begets NULL child.

        Because liveness flows from the parent handle, a trace forced on
        one query stays coherent even while the tracer itself is disabled,
        and a worker thread extends its submitter's trace without any
        shared mutable "current span" state.
        """
        if not parent:
            return NULL_SPAN
        with self._lock:
            span_id = next(self._ids)
        return Span(
            self, name, category, span_id, parent.span_id, parent.trace_id,
            attributes,
        )

    def start_span(self, name: str, category: str = "", **attributes: Any):
        """Start a span under the thread's active span (see
        :meth:`activate`), or a new root when none is active."""
        current = self.current
        if current is not None and current:
            return self.child(current, name, category, **attributes)
        return self.root_span(name, category, **attributes)

    # -- thread-local activation ------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        """The span most recently activated on *this* thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def activate(self, span: Any) -> "_Activation":
        """Context manager making ``span`` the thread's active span.

        Used by scheduler workers to re-establish the submitting thread's
        context: the parent is captured explicitly at submit time, then
        activated inside the worker so nested instrumentation (adapter page
        I/O, retries) parents correctly across the thread boundary.
        """
        return _Activation(self._local, span)

    # -- collection --------------------------------------------------------

    def _finish(self, span: Span) -> None:
        """Stamp the end time and collect the span exactly once."""
        with self._lock:
            if span.end_ms is not None:
                return  # already ended by another thread
            span.end_ms = self.now_ms()
            self._finished.append(span)
            if len(self._finished) > self.max_spans:
                overflow = len(self._finished) - self.max_spans
                del self._finished[:overflow]
                self._dropped += overflow
        sink = self.sink
        if sink is not None:
            sink.write(span)

    def drain(self) -> List[Span]:
        """Return and clear all finished spans (oldest first)."""
        with self._lock:
            spans, self._finished = self._finished, []
            return spans

    @property
    def dropped_spans(self) -> int:
        with self._lock:
            return self._dropped


class _Activation:
    """Pushes a span onto a thread-local stack for the ``with`` duration."""

    __slots__ = ("_local", "_span")

    def __init__(self, local: threading.local, span: Any) -> None:
        self._local = local
        self._span = span

    def __enter__(self) -> Any:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        stack.append(self._span)
        return self._span

    def __exit__(self, *exc_info: Any) -> bool:
        self._local.stack.pop()
        return False


#: A shared always-disabled tracer for call sites with no mediator handle.
NULL_TRACER = Tracer(enabled=False)


def walk_children(spans: List[Span], parent_id: Optional[int]) -> Iterator[Span]:
    """The spans directly under ``parent_id`` (None = trace roots)."""
    for span in spans:
        if span.parent_id == parent_id:
            yield span


def format_span_tree(spans: List[Span]) -> str:
    """Indented textual rendering of a span forest (debugging, tests)."""
    lines: List[str] = []

    def render(parent_id: Optional[int], indent: int) -> None:
        for span in walk_children(spans, parent_id):
            lines.append(
                "  " * indent
                + f"{span.name} [{span.duration_ms:.2f} ms]"
            )
            render(span.span_id, indent + 1)

    render(None, 0)
    return "\n".join(lines)

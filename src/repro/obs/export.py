"""Trace exporters and the slow-query log.

Three output paths:

* :class:`JsonLinesTraceSink` — streaming export: every finished span is
  written as one JSON object per line, immediately, so a crash still
  leaves a usable trace behind.
* :func:`chrome_trace_events` / :func:`write_chrome_trace` — batch export
  to the Chrome ``trace_event`` format (the ``{"traceEvents": [...]}``
  JSON object), loadable in ``chrome://tracing`` and Perfetto. Spans
  become complete (``"ph": "X"``) events on their recording thread's
  track; span events become instants (``"ph": "i"``).
* :class:`SlowQueryLog` — queries whose wall time crosses a configurable
  threshold are kept in a bounded in-memory ring and optionally appended
  to a JSON-lines file, with enough context (SQL, timings, transfer
  totals) to reconstruct what hurt.
"""

from __future__ import annotations

import json
import threading
from typing import IO, Any, Dict, List, Optional, Sequence

from .trace import Span


class JsonLinesTraceSink:
    """Writes each finished span as one JSON line (thread-safe).

    Accepts a path (opened for append) or any writable text stream. Used
    as a :class:`~repro.obs.trace.Tracer` sink for live streaming export.
    """

    def __init__(self, target: Any) -> None:
        if isinstance(target, str):
            self._handle: IO[str] = open(target, "a")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False
        self._lock = threading.Lock()

    def write(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), default=str)
        with self._lock:
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        if self._owns_handle:
            self._handle.close()


# ---------------------------------------------------------------------------
# Chrome trace_event format
# ---------------------------------------------------------------------------

#: Stable thread-name → numeric tid assignment for one export batch.
def _tid_table(spans: Sequence[Span]) -> Dict[str, int]:
    table: Dict[str, int] = {}
    for span in spans:
        if span.thread_name not in table:
            table[span.thread_name] = len(table) + 1
    return table


def chrome_trace_events(spans: Sequence[Span]) -> List[Dict[str, Any]]:
    """Spans as Chrome ``trace_event`` dictionaries.

    Timestamps are microseconds on the tracer's monotonic origin. Each
    distinct recording thread gets its own ``tid`` plus a metadata event
    naming the track, so Perfetto shows scheduler workers as separate
    lanes under one process. Parent links ride in ``args`` (the viewer
    nests by time/track; tooling can rebuild exact trees from the ids).
    """
    tids = _tid_table(spans)
    events: List[Dict[str, Any]] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": {"name": thread_name},
        }
        for thread_name, tid in tids.items()
    ]
    for span in spans:
        tid = tids[span.thread_name]
        args = dict(span.attributes)
        args["span_id"] = span.span_id
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        args["trace_id"] = span.trace_id
        events.append(
            {
                "name": span.name,
                "cat": span.category or "span",
                "ph": "X",
                "ts": round(span.start_ms * 1000.0, 1),
                "dur": round(span.duration_ms * 1000.0, 1),
                "pid": 1,
                "tid": tid,
                "args": args,
            }
        )
        for name, ts_ms, attributes in span.events:
            events.append(
                {
                    "name": name,
                    "cat": span.category or "span",
                    "ph": "i",
                    "ts": round(ts_ms * 1000.0, 1),
                    "pid": 1,
                    "tid": tid,
                    "s": "t",
                    "args": dict(attributes, span_id=span.span_id),
                }
            )
    return events


def write_chrome_trace(path: str, spans: Sequence[Span]) -> str:
    """Write ``{"traceEvents": [...]}`` for chrome://tracing; returns path."""
    document = {
        "traceEvents": chrome_trace_events(spans),
        "displayTimeUnit": "ms",
    }
    with open(path, "w") as handle:
        json.dump(document, handle, default=str)
    return path


# ---------------------------------------------------------------------------
# slow-query log
# ---------------------------------------------------------------------------


class SlowQueryLog:
    """Captures queries slower than a wall-clock threshold.

    ``threshold_ms <= 0`` disables the log entirely. Entries are plain
    dictionaries kept in a bounded ring (``max_entries``, oldest dropped)
    and, when ``path`` is set, appended to that file as JSON lines.
    """

    def __init__(
        self,
        threshold_ms: float = 0.0,
        path: Optional[str] = None,
        max_entries: int = 1000,
    ) -> None:
        self.threshold_ms = float(threshold_ms)
        self.path = path
        self.max_entries = max(max_entries, 1)
        self._lock = threading.Lock()
        self._entries: List[Dict[str, Any]] = []

    @property
    def enabled(self) -> bool:
        return self.threshold_ms > 0

    def record(
        self,
        sql: str,
        wall_ms: float,
        planning_ms: float = 0.0,
        rows: int = 0,
        detail: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Log the query if it crossed the threshold; returns whether it did."""
        if not self.enabled or wall_ms < self.threshold_ms:
            return False
        entry: Dict[str, Any] = {
            "sql": sql,
            "wall_ms": round(wall_ms, 3),
            "planning_ms": round(planning_ms, 3),
            "rows": rows,
            "threshold_ms": self.threshold_ms,
        }
        if detail:
            entry.update(detail)
        with self._lock:
            self._entries.append(entry)
            if len(self._entries) > self.max_entries:
                del self._entries[: len(self._entries) - self.max_entries]
        if self.path is not None:
            line = json.dumps(entry, default=str)
            with self._lock:
                with open(self.path, "a") as handle:
                    handle.write(line + "\n")
        return True

    @property
    def entries(self) -> List[Dict[str, Any]]:
        """A copy of the retained entries (oldest first)."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

"""Observability subsystem: tracing, metrics, and profiling for the mediator.

In a mediated federation every performance or failure question — which
source was slow, which operator dominated, did a breaker trip — can only
be answered *inside* the mediator, because the component systems are
autonomous black boxes. This package is that vantage point, with three
self-contained layers (none imports the engine, so the engine can import
all of them freely):

* :mod:`repro.obs.trace` — structured spans on a monotonic clock with
  parent/child links, events, and explicit cross-thread propagation;
* :mod:`repro.obs.registry` — named counters / gauges / bucketed
  histograms aggregating across queries, thread-safe, no-op when disabled;
* :mod:`repro.obs.export` — JSON-lines streaming export, Chrome
  ``trace_event`` batch export (chrome://tracing / Perfetto), and the
  slow-query log.

:class:`Observability` bundles one of each per mediator and owns the glue
the engine calls: fold a finished query's metrics into the registry,
collect its spans, publish circuit-breaker state, export traces.

Everything defaults to **off** and is engineered to cost nothing when off:
the disabled tracer returns a falsy shared span, the disabled registry
returns shared no-op instruments, and the slow-query log short-circuits on
its threshold.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .export import (
    JsonLinesTraceSink,
    SlowQueryLog,
    chrome_trace_events,
    write_chrome_trace,
)
from .registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import (
    NULL_SPAN,
    NULL_TRACER,
    Span,
    Tracer,
    format_span_tree,
)

#: Numeric encoding of breaker states for the ``breaker.<src>.state`` gauge.
BREAKER_STATE_CODES = {"closed": 0.0, "half-open": 1.0, "open": 2.0}


class Observability:
    """One mediator's tracer + metrics registry + slow-query log.

    Construction arms nothing by default; every layer switches on
    independently (config section ``observability``, REPL ``\\trace`` /
    ``\\metrics``, CLI ``--trace-out`` / ``--slow-query-ms``, or direct
    attribute access in code).
    """

    def __init__(
        self,
        trace: bool = False,
        metrics: bool = False,
        slow_query_ms: float = 0.0,
        trace_path: Optional[str] = None,
        trace_jsonl: Optional[str] = None,
        slow_query_path: Optional[str] = None,
        max_spans: int = 100_000,
    ) -> None:
        sink = JsonLinesTraceSink(trace_jsonl) if trace_jsonl else None
        self.tracer = Tracer(enabled=trace or bool(trace_path), sink=sink)
        self.registry = MetricsRegistry(enabled=metrics)
        self.slow_queries = SlowQueryLog(slow_query_ms, path=slow_query_path)
        self.trace_path = trace_path
        self.max_spans = max(max_spans, 1)
        self.spans: List[Span] = []

    # -- span collection ---------------------------------------------------

    def collect(self) -> List[Span]:
        """Drain the tracer into the retained span buffer (bounded)."""
        fresh = self.tracer.drain()
        if fresh:
            self.spans.extend(fresh)
            if len(self.spans) > self.max_spans:
                del self.spans[: len(self.spans) - self.max_spans]
        return fresh

    def clear_spans(self) -> None:
        self.tracer.drain()
        self.spans.clear()

    def export_chrome(self, path: Optional[str] = None) -> Optional[str]:
        """Write all retained spans as a Chrome trace; returns the path."""
        target = path or self.trace_path
        if target is None:
            return None
        return write_chrome_trace(target, self.spans)

    def maybe_export(self) -> None:
        """Refresh the Chrome trace file if one is configured."""
        if self.trace_path is not None and self.spans:
            write_chrome_trace(self.trace_path, self.spans)

    # -- query accounting --------------------------------------------------

    def record_query(
        self,
        sql: str,
        metrics: Any,
        failed: bool = False,
        excluded_sources: Optional[Dict[str, str]] = None,
    ) -> None:
        """Fold one finished query into the registry and slow-query log.

        ``metrics`` is a :class:`~repro.core.result.QueryMetrics` (duck
        typed — this package stays import-free of the engine). Failed
        queries still count: their transfer totals and breaker trips are
        real even though no result materialized. A non-empty
        ``excluded_sources`` marks a *partial* result (graceful
        degradation dropped those sources); partial queries count in
        ``queries_partial_total`` and carry their exclusions into the
        JSON-lines slow-query record so a degraded answer is visible in
        every sink.
        """
        excluded = excluded_sources or {}
        registry = self.registry
        if registry.enabled:
            net = metrics.network
            registry.counter("queries_total").inc()
            if failed:
                registry.counter("queries_failed_total").inc()
            if excluded:
                registry.counter("queries_partial_total").inc()
                registry.counter("sources_excluded_total").inc(len(excluded))
            if net.cache_hit:
                registry.counter("result_cache_hits_total").inc()
            if getattr(net, "plan_cache_hit", False):
                registry.counter("plan_cache_hits_total").inc()
            fragment_hits = getattr(net, "fragment_cache_hits", 0)
            fragment_misses = getattr(net, "fragment_cache_misses", 0)
            if fragment_hits:
                registry.counter("fragment_cache_hits_total").inc(fragment_hits)
            if fragment_misses:
                registry.counter("fragment_cache_misses_total").inc(
                    fragment_misses
                )
            bytes_saved = getattr(net, "fragment_cache_bytes_saved", 0.0)
            if bytes_saved:
                registry.counter("fragment_cache_bytes_saved_total").inc(
                    bytes_saved
                )
            mv_hits = getattr(net, "materialized_view_hits", 0)
            if mv_hits:
                registry.counter("materialized_view_hits_total").inc(mv_hits)
            registry.counter("rows_shipped_total").inc(net.rows_shipped)
            registry.counter("bytes_shipped_total").inc(net.bytes_shipped)
            registry.counter("messages_total").inc(net.messages)
            registry.counter("fragments_executed_total").inc(net.fragments_executed)
            registry.counter("fragment_retries_total").inc(net.fragment_retries)
            registry.counter("breaker_trips_total").inc(net.breaker_trips)
            registry.counter("breaker_fallbacks_total").inc(net.breaker_fallbacks)
            for field in (
                "hedges_launched", "hedges_won", "hedges_cancelled",
                "hedges_rows_shipped", "health_reroutes",
            ):
                value = getattr(net, field, 0)
                if value:
                    registry.counter(f"{field}_total").inc(value)
            registry.counter("rows_returned_total").inc(net.rows_output)
            registry.histogram("query_wall_ms").observe(metrics.wall_ms)
            registry.histogram("query_planning_ms").observe(metrics.planning_ms)
            registry.histogram("query_network_ms").observe(net.network_ms)
        if not failed:
            detail = {
                "rows_shipped": metrics.network.rows_shipped,
                "messages": metrics.network.messages,
                "network_ms": round(metrics.network.network_ms, 3),
                "complete": not excluded,
            }
            if excluded:
                detail["excluded_sources"] = dict(sorted(excluded.items()))
            self.slow_queries.record(
                sql,
                wall_ms=metrics.wall_ms,
                planning_ms=metrics.planning_ms,
                rows=metrics.network.rows_output,
                detail=detail,
            )

    def publish_cache_stats(
        self,
        result_cache: Optional[Dict[str, Any]] = None,
        fragment_cache: Optional[Dict[str, Any]] = None,
        materialized: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Mirror the mediator's cache-layer state into the registry.

        Each argument is a stats dict as produced by the owning cache
        (``GlobalInformationSystem.result_cache_stats()``,
        ``FragmentCache.stats()``, ``MaterializedViewRegistry.stats()``,
        all duck-typed). Cumulative counters land as
        ``<layer>.<name>`` gauges so the registry always shows the
        current totals without double counting across queries.
        """
        registry = self.registry
        if not registry.enabled:
            return
        for layer, stats in (
            ("result_cache", result_cache),
            ("fragment_cache", fragment_cache),
            ("materialized_views", materialized),
        ):
            if not stats:
                continue
            for name, value in stats.items():
                if isinstance(value, (int, float)) and not isinstance(
                    value, bool
                ):
                    registry.gauge(f"{layer}.{name}").set(float(value))

    def publish_breakers(self, breakers: Any) -> Dict[str, Dict[str, Any]]:
        """Mirror circuit-breaker state into the registry.

        ``breakers`` is a
        :class:`~repro.core.scheduler.CircuitBreakerRegistry`; its
        :meth:`snapshot` yields
        ``{source: {"state": ..., "trips": ..., "failures": ...}}``.
        Each source gets a ``breaker.<source>.state`` gauge (0 closed,
        1 half-open, 2 open), a ``breaker.<source>.trips`` gauge, and a
        ``breaker.<source>.failures`` gauge (consecutive recent failures).
        """
        states = breakers.snapshot()
        registry = self.registry
        if registry.enabled:
            for source, info in states.items():
                registry.gauge(f"breaker.{source}.state").set(
                    BREAKER_STATE_CODES.get(info["state"], -1.0)
                )
                registry.gauge(f"breaker.{source}.trips").set(info["trips"])
                registry.gauge(f"breaker.{source}.failures").set(
                    info.get("failures", 0)
                )
        return states

    def publish_health(self, health: Any) -> Dict[str, Dict[str, Any]]:
        """Mirror per-source health state into the registry.

        ``health`` is a
        :class:`~repro.core.health.SourceHealthRegistry`; each source
        gets ``health.<source>.<field>`` gauges for its latency EWMA and
        p50/p95/p99, error rate, sample count, and hedge win/launch
        counters (missing quantiles — a cold source — publish nothing).
        """
        states = health.snapshot()
        registry = self.registry
        if registry.enabled:
            for source, info in states.items():
                for name, value in info.items():
                    if isinstance(value, (int, float)) and not isinstance(
                        value, bool
                    ):
                        registry.gauge(f"health.{source}.{name}").set(
                            float(value)
                        )
        return states


__all__ = [
    "BREAKER_STATE_CODES",
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonLinesTraceSink",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "Observability",
    "SlowQueryLog",
    "Span",
    "Tracer",
    "chrome_trace_events",
    "format_span_tree",
    "write_chrome_trace",
]

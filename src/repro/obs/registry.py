"""Metrics registry: named counters, gauges, and bucketed histograms.

Unlike the per-query :class:`~repro.core.physical.ExecutionMetrics` bag
(which is born and dies with one execution), the registry aggregates
*across* queries for the lifetime of a mediator: total rows shipped,
query-latency distribution, circuit-breaker trips per source. The mediator
folds every query's execution metrics in at completion, and the REPL's
``\\metrics`` command prints a snapshot.

All instruments are thread-safe (scheduler workers and concurrent client
threads may record simultaneously) and near-zero cost when the registry is
disabled: instrument lookups then return shared no-op singletons, so
recording sites never branch.
"""

from __future__ import annotations

import bisect
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (milliseconds-flavored but
#: unit-agnostic): roughly logarithmic from sub-ms to a minute.
DEFAULT_BUCKETS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0, 30000.0, 60000.0,
)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Gauge:
    """A point-in-time value that may move either way."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def add(self, amount: float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def _reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram:
    """Bucketed distribution with cumulative-style bucket counts.

    ``buckets`` are upper bounds (inclusive) of each bucket; observations
    above the last bound land in the implicit +Inf bucket. The snapshot
    reports per-bucket counts (not cumulative), plus count/sum/min/max so
    averages and tail shares fall out directly.
    """

    __slots__ = ("name", "bounds", "_counts", "_count", "_sum", "_min",
                 "_max", "_lock")

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        bounds = sorted(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket")
        self.name = name
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            buckets: List[Tuple[float, int]] = [
                (bound, count)
                for bound, count in zip(self.bounds, self._counts)
                if count
            ]
            if self._counts[-1]:
                buckets.append((float("inf"), self._counts[-1]))
            return {
                "count": self._count,
                "sum": round(self._sum, 3),
                "min": self._min,
                "max": self._max,
                "avg": round(self._sum / self._count, 3) if self._count else None,
                "buckets": buckets,
            }

    def _reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = None
            self._max = None


class _NullCounter:
    __slots__ = ()
    name = ""
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NullGauge:
    __slots__ = ()
    name = ""
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def add(self, amount: float) -> None:
        pass


class _NullHistogram:
    __slots__ = ()
    name = ""
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        pass

    def snapshot(self) -> Dict[str, Any]:
        return {"count": 0, "sum": 0.0, "min": None, "max": None,
                "avg": None, "buckets": []}


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class MetricsRegistry:
    """Named instruments, created lazily, snapshotted atomically.

    When disabled, instrument accessors return shared no-op singletons —
    callers keep their unconditional ``registry.counter("x").inc()`` shape
    at effectively zero cost. Enabling later starts from zero; instruments
    recorded while disabled are (intentionally) lost.
    """

    def __init__(self, enabled: bool = False) -> None:
        self._enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # -- instruments -------------------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self._enabled:
            return _NULL_COUNTER  # type: ignore[return-value]
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = Counter(name)
                self._counters[name] = instrument
            return instrument

    def gauge(self, name: str) -> Gauge:
        if not self._enabled:
            return _NULL_GAUGE  # type: ignore[return-value]
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = Gauge(name)
                self._gauges[name] = instrument
            return instrument

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        if not self._enabled:
            return _NULL_HISTOGRAM  # type: ignore[return-value]
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = Histogram(name, buckets)
                self._histograms[name] = instrument
            return instrument

    # -- snapshot / reset --------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """All instruments' current values, as plain data."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {
                name: counters[name].value for name in sorted(counters)
            },
            "gauges": {name: gauges[name].value for name in sorted(gauges)},
            "histograms": {
                name: histograms[name].snapshot() for name in sorted(histograms)
            },
        }

    def reset(self) -> None:
        """Zero every instrument (they stay registered)."""
        with self._lock:
            instruments = (
                list(self._counters.values())
                + list(self._gauges.values())
                + list(self._histograms.values())
            )
        for instrument in instruments:
            instrument._reset()

    def format_snapshot(self) -> str:
        """Human-readable snapshot (the REPL's ``\\metrics`` tail)."""
        snap = self.snapshot()
        lines: List[str] = []
        if snap["counters"]:
            lines.append("counters:")
            for name, value in snap["counters"].items():
                rendered = f"{value:.0f}" if value == int(value) else f"{value:.2f}"
                lines.append(f"  {name} = {rendered}")
        if snap["gauges"]:
            lines.append("gauges:")
            for name, value in snap["gauges"].items():
                rendered = f"{value:.0f}" if value == int(value) else f"{value:.2f}"
                lines.append(f"  {name} = {rendered}")
        if snap["histograms"]:
            lines.append("histograms:")
            for name, data in snap["histograms"].items():
                if not data["count"]:
                    continue
                lines.append(
                    f"  {name}: count={data['count']} avg={data['avg']} "
                    f"min={data['min']:.2f} max={data['max']:.2f}"
                )
        return "\n".join(lines) if lines else "(registry empty)"

"""Named query catalog for the TPC-H-lite federation.

The end-to-end experiment (T5) and downstream users share this catalog;
each entry exercises a distinct slice of the mediator (pushdown shapes,
cross-source joins, semi-joins, key lookups, top-N).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

#: (name, sql) pairs over the schema of :func:`repro.workloads.build_federation`.
WORKLOAD_QUERIES: List[Tuple[str, str]] = [
    (
        "selective_scan",
        "SELECT o_id, o_total FROM orders WHERE o_total > 4800",
    ),
    (
        "single_source_agg",
        "SELECT o_status, COUNT(*), AVG(o_total) FROM orders GROUP BY o_status",
    ),
    (
        "two_way_join",
        "SELECT c.c_name, o.o_total FROM customers c "
        "JOIN orders o ON c.c_id = o.o_cust_id WHERE o.o_total > 4500",
    ),
    (
        "three_way_join_agg",
        "SELECT n.n_name, COUNT(*) AS cnt FROM nations n "
        "JOIN customers c ON n.n_id = c.c_nation_id "
        "JOIN orders o ON c.c_id = o.o_cust_id "
        "GROUP BY n.n_name ORDER BY cnt DESC LIMIT 5",
    ),
    (
        "star_revenue",
        "SELECT p.p_category, SUM(l.l_price * l.l_qty) AS rev FROM parts p "
        "JOIN lineitems l ON p.p_id = l.l_part_id GROUP BY p.p_category",
    ),
    (
        "semi_join",
        "SELECT c_name FROM customers WHERE c_id IN "
        "(SELECT o_cust_id FROM orders WHERE o_total > 4700)",
    ),
    (
        "kv_profile_join",
        "SELECT c.c_name, p.u_tier FROM customers c "
        "JOIN profiles p ON c.c_id = p.u_cust_id WHERE c.c_balance > 8500",
    ),
    (
        "top_n_orders",
        "SELECT o_id, o_date, o_total FROM orders "
        "ORDER BY o_total DESC LIMIT 10",
    ),
]


def queries_by_name() -> Dict[str, str]:
    """The catalog as a name → SQL mapping."""
    return dict(WORKLOAD_QUERIES)

"""Seeded random-data primitives.

Everything the workload builders draw flows through one
:class:`DataGenerator` so a (seed, scale) pair fully determines the
federation's contents — benchmarks are reproducible bit-for-bit.
"""

from __future__ import annotations

import datetime
import random
import string
from typing import Optional, Sequence, TypeVar

T = TypeVar("T")

_FIRST_NAMES = [
    "Alice", "Bruno", "Carmen", "Dmitri", "Elena", "Farid", "Grace", "Hiro",
    "Ingrid", "Javier", "Kyoko", "Liam", "Mona", "Nadia", "Olaf", "Priya",
    "Quentin", "Rosa", "Stefan", "Tara", "Umar", "Vera", "Wei", "Ximena",
    "Yusuf", "Zoe",
]
_LAST_NAMES = [
    "Anders", "Bauer", "Chen", "Diaz", "Eriksson", "Fischer", "Garcia",
    "Haddad", "Ivanov", "Jensen", "Kumar", "Larsen", "Moreau", "Nakamura",
    "Okafor", "Petrov", "Quinn", "Rossi", "Sato", "Tanaka", "Ueda", "Vogel",
    "Weber", "Xu", "Yamamoto", "Zhang",
]
_PART_ADJECTIVES = [
    "anodized", "brushed", "burnished", "chocolate", "cornflower", "forest",
    "frosted", "lavender", "metallic", "midnight", "polished", "powder",
    "smoked", "spring", "steel",
]
_PART_NOUNS = [
    "bearing", "bracket", "casing", "coupling", "dial", "flange", "gasket",
    "gear", "hinge", "lever", "rotor", "spindle", "valve", "washer", "widget",
]


class DataGenerator:
    """A seeded bundle of the draws the workload builders need."""

    def __init__(self, seed: int = 42) -> None:
        self._random = random.Random(seed)

    # -- numbers -----------------------------------------------------------

    def integer(self, low: int, high: int) -> int:
        """Uniform integer in [low, high]."""
        return self._random.randint(low, high)

    def money(self, low: float, high: float) -> float:
        """A price-like float rounded to cents, skewed toward the low end."""
        u = self._random.random() ** 2  # quadratic skew
        return round(low + (high - low) * u, 2)

    def zipf_index(self, n: int, skew: float = 1.2) -> int:
        """A Zipf-distributed index in [0, n): index 0 is most frequent.

        Uses inverse-CDF sampling over precomputed harmonic weights (cached
        per (n, skew) — the builders reuse a handful of shapes).
        """
        key = (n, skew)
        cdf = self._zipf_cache.get(key)
        if cdf is None:
            weights = [1.0 / (rank**skew) for rank in range(1, n + 1)]
            total = sum(weights)
            acc = 0.0
            cdf = []
            for weight in weights:
                acc += weight / total
                cdf.append(acc)
            self._zipf_cache[key] = cdf
        u = self._random.random()
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    #: (n, skew) -> CDF; contents are deterministic, so sharing across
    #: instances is safe and saves rebuilding for every generator.
    _zipf_cache: dict = {}

    # -- choices -----------------------------------------------------------

    def choice(self, items: Sequence[T]) -> T:
        return self._random.choice(items)

    def maybe_null(self, value: T, null_probability: float) -> Optional[T]:
        """Return None with the given probability, else the value."""
        if self._random.random() < null_probability:
            return None
        return value

    # -- domain values ------------------------------------------------------

    def person_name(self) -> str:
        return f"{self.choice(_FIRST_NAMES)} {self.choice(_LAST_NAMES)}"

    def part_name(self) -> str:
        return f"{self.choice(_PART_ADJECTIVES)} {self.choice(_PART_NOUNS)}"

    def code(self, prefix: str, width: int = 6) -> str:
        digits = "".join(self._random.choices(string.digits, k=width))
        return f"{prefix}{digits}"

    def date_between(self, start: datetime.date, end: datetime.date) -> datetime.date:
        """Uniform date in [start, end]."""
        span = (end - start).days
        return start + datetime.timedelta(days=self._random.randint(0, max(span, 0)))

"""TPC-H-lite: a deterministic retail federation over heterogeneous sources.

The global schema (and where each table physically lives):

===============  =====================  ==========================================
global table     source (adapter)       shape
===============  =====================  ==========================================
regions          refdata (Memory)       5 rows
nations          refdata (Memory)       25 rows, FK → regions
customers        crm (SQLite)           300·sf rows, FK → nations
orders           erp (SQLite)           1000·sf rows, Zipf FK → customers
lineitems        wms (SQLite)           3000·sf rows, Zipf FK → parts, FK → orders
parts            archive (Csv)          200·sf rows
suppliers        vendors (Rest)         60·sf rows, FK → nations
profiles         support (KeyValue)     one row per customer, keyed by cust_id
===============  =====================  ==========================================

``build_federation(scale, seed)`` is bit-for-bit deterministic; every
experiment and example builds on it. ``build_partitioned_orders`` makes the
scale-out variant for experiment F2 (orders horizontally ranged over N
SQLite sources behind a UNION ALL view).
"""

from __future__ import annotations

import datetime
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..catalog.schema import TableSchema, schema_from_pairs
from ..core.mediator import GlobalInformationSystem
from ..core.planner import PlannerOptions
from ..sources import (
    CsvSource,
    KeyValueSource,
    MemorySource,
    NetworkLink,
    RestSource,
    SimulatedNetwork,
    SQLiteSource,
)
from .generator import DataGenerator

DATE_LOW = datetime.date(1988, 1, 1)
DATE_HIGH = datetime.date(1989, 12, 31)

_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
_NATIONS = [
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "CHINA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "ROMANIA",
    "SAUDI ARABIA", "UNITED KINGDOM", "UNITED STATES", "VIETNAM", "RUSSIA",
]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
_STATUSES = ["OPEN", "SHIPPED", "DELIVERED", "RETURNED"]
_CATEGORIES = ["FASTENER", "FITTING", "GEARBOX", "HOUSING", "TOOLING"]
_TIERS = ["BASIC", "SILVER", "GOLD", "PLATINUM"]


@dataclass
class Federation:
    """A built federation: the mediator plus raw handles for tests/benches."""

    gis: GlobalInformationSystem
    sources: Dict[str, Any]
    row_counts: Dict[str, int]
    tables: Dict[str, TableSchema]
    rows: Dict[str, List[Tuple[Any, ...]]] = field(default_factory=dict)

    def query(self, sql: str, options: Optional[PlannerOptions] = None):
        """Convenience passthrough to the mediator."""
        return self.gis.query(sql, options)


def _schemas() -> Dict[str, TableSchema]:
    return {
        "regions": schema_from_pairs(
            "regions", [("r_id", "INT"), ("r_name", "TEXT")]
        ),
        "nations": schema_from_pairs(
            "nations",
            [("n_id", "INT"), ("n_name", "TEXT"), ("n_region_id", "INT")],
        ),
        "customers": schema_from_pairs(
            "customers",
            [
                ("c_id", "INT"),
                ("c_name", "TEXT"),
                ("c_nation_id", "INT"),
                ("c_segment", "TEXT"),
                ("c_since", "DATE"),
                ("c_balance", "FLOAT"),
            ],
        ),
        "orders": schema_from_pairs(
            "orders",
            [
                ("o_id", "INT"),
                ("o_cust_id", "INT"),
                ("o_date", "DATE"),
                ("o_total", "FLOAT"),
                ("o_status", "TEXT"),
            ],
        ),
        "lineitems": schema_from_pairs(
            "lineitems",
            [
                ("l_id", "INT"),
                ("l_order_id", "INT"),
                ("l_part_id", "INT"),
                ("l_supplier_id", "INT"),
                ("l_qty", "INT"),
                ("l_price", "FLOAT"),
                ("l_discount", "FLOAT"),
            ],
        ),
        "parts": schema_from_pairs(
            "parts",
            [
                ("p_id", "INT"),
                ("p_name", "TEXT"),
                ("p_category", "TEXT"),
                ("p_price", "FLOAT"),
            ],
        ),
        "suppliers": schema_from_pairs(
            "suppliers",
            [
                ("s_id", "INT"),
                ("s_name", "TEXT"),
                ("s_nation_id", "INT"),
                ("s_rating", "INT"),
            ],
        ),
        "profiles": schema_from_pairs(
            "profiles",
            [
                ("u_cust_id", "INT"),
                ("u_tier", "TEXT"),
                ("u_newsletter", "BOOLEAN"),
            ],
        ),
    }


def generate_rows(
    scale: float = 1.0, seed: int = 42
) -> Dict[str, List[Tuple[Any, ...]]]:
    """Generate all table contents for a (scale, seed) pair."""
    gen = DataGenerator(seed)
    n_customers = max(int(300 * scale), 10)
    n_orders = max(int(1000 * scale), 20)
    n_lineitems = max(int(3000 * scale), 40)
    n_parts = max(int(200 * scale), 10)
    n_suppliers = max(int(60 * scale), 5)

    regions = [(i + 1, name) for i, name in enumerate(_REGIONS)]
    nations = [
        (i + 1, name, (i % len(_REGIONS)) + 1) for i, name in enumerate(_NATIONS)
    ]
    customers = [
        (
            cid,
            gen.person_name(),
            gen.integer(1, len(_NATIONS)),
            gen.choice(_SEGMENTS),
            gen.date_between(datetime.date(1980, 1, 1), DATE_HIGH),
            gen.money(-500.0, 9000.0),
        )
        for cid in range(1, n_customers + 1)
    ]
    orders = [
        (
            oid,
            gen.zipf_index(n_customers, 1.1) + 1,  # skewed customer activity
            gen.date_between(DATE_LOW, DATE_HIGH),
            gen.money(5.0, 5000.0),
            gen.choice(_STATUSES),
        )
        for oid in range(1, n_orders + 1)
    ]
    parts = [
        (
            pid,
            gen.part_name(),
            gen.choice(_CATEGORIES),
            gen.money(1.0, 800.0),
        )
        for pid in range(1, n_parts + 1)
    ]
    suppliers = [
        (
            sid,
            f"Supplier {gen.code('S', 4)}",
            gen.integer(1, len(_NATIONS)),
            gen.integer(1, 5),
        )
        for sid in range(1, n_suppliers + 1)
    ]
    lineitems = [
        (
            lid,
            gen.integer(1, n_orders),
            gen.zipf_index(n_parts, 1.3) + 1,  # hot parts
            gen.integer(1, n_suppliers),
            gen.integer(1, 50),
            gen.money(1.0, 900.0),
            round(gen.integer(0, 10) / 100.0, 2),
        )
        for lid in range(1, n_lineitems + 1)
    ]
    profiles = [
        (
            cid,
            _TIERS[gen.zipf_index(len(_TIERS), 1.0)],
            gen.integer(0, 1) == 1,
        )
        for cid in range(1, n_customers + 1)
    ]
    return {
        "regions": regions,
        "nations": nations,
        "customers": customers,
        "orders": orders,
        "lineitems": lineitems,
        "parts": parts,
        "suppliers": suppliers,
        "profiles": profiles,
    }


def build_federation(
    scale: float = 1.0,
    seed: int = 42,
    network: Optional[SimulatedNetwork] = None,
    options: Optional[PlannerOptions] = None,
    csv_dir: Optional[str] = None,
    analyze: bool = True,
    keep_rows: bool = False,
) -> Federation:
    """Build the standard eight-table federation over six sources.

    ``csv_dir`` defaults to a fresh temporary directory (the CSV archive
    needs real files). With ``keep_rows`` the generated Python rows stay on
    the returned handle for oracle-style assertions.
    """
    schemas = _schemas()
    data = generate_rows(scale, seed)

    refdata = MemorySource("refdata")
    refdata.add_table("regions", schemas["regions"], data["regions"])
    refdata.add_table("nations", schemas["nations"], data["nations"])

    crm = SQLiteSource("crm")
    crm.load_table("customers", schemas["customers"], data["customers"])

    erp = SQLiteSource("erp")
    erp.load_table("orders", schemas["orders"], data["orders"])

    wms = SQLiteSource("wms")
    wms.load_table("lineitems", schemas["lineitems"], data["lineitems"])

    if csv_dir is None:
        csv_dir = tempfile.mkdtemp(prefix="gis_archive_")
    CsvSource.write_table(csv_dir, "parts", schemas["parts"], data["parts"])
    archive = CsvSource("archive", csv_dir, {"parts": schemas["parts"]})

    vendors = RestSource("vendors", page_rows=50)
    vendors.add_table("suppliers", schemas["suppliers"], data["suppliers"])

    support = KeyValueSource("support")
    support.add_table(
        "profiles", schemas["profiles"], "u_cust_id", data["profiles"]
    )

    gis = GlobalInformationSystem(network=network, options=options)
    gis.register_source("refdata", refdata, link=NetworkLink(5.0, 10_000_000.0))
    gis.register_source("crm", crm, link=NetworkLink(25.0, 1_000_000.0))
    gis.register_source("erp", erp, link=NetworkLink(30.0, 2_000_000.0))
    gis.register_source("wms", wms, link=NetworkLink(35.0, 2_000_000.0))
    gis.register_source("archive", archive, link=NetworkLink(15.0, 500_000.0))
    gis.register_source("vendors", vendors, link=NetworkLink(80.0, 250_000.0))
    gis.register_source("support", support, link=NetworkLink(10.0, 1_000_000.0))

    for table, source in [
        ("regions", "refdata"),
        ("nations", "refdata"),
        ("customers", "crm"),
        ("orders", "erp"),
        ("lineitems", "wms"),
        ("parts", "archive"),
        ("suppliers", "vendors"),
        ("profiles", "support"),
    ]:
        gis.register_table(table, source=source)

    if analyze:
        gis.analyze()

    federation = Federation(
        gis=gis,
        sources={
            "refdata": refdata,
            "crm": crm,
            "erp": erp,
            "wms": wms,
            "archive": archive,
            "vendors": vendors,
            "support": support,
        },
        row_counts={name: len(rows) for name, rows in data.items()},
        tables=schemas,
        rows=data if keep_rows else {},
    )
    return federation


def build_partitioned_orders(
    partitions: int,
    rows_per_partition: int = 500,
    seed: int = 42,
    network: Optional[SimulatedNetwork] = None,
    options: Optional[PlannerOptions] = None,
    latency_ms: float = 30.0,
    bandwidth: float = 1_000_000.0,
    analyze: bool = True,
    adapter_wrapper=None,
) -> Federation:
    """A federation whose ``orders`` are range-partitioned over N SQLite
    sources and reunified by the ``orders_all`` integration view (experiment
    F2's scale-out substrate).

    ``adapter_wrapper`` (shard adapter → adapter) lets benchmarks interpose
    per-shard behavior, e.g. injecting real wall-clock latency to measure
    parallel speedup."""
    schemas = _schemas()
    gen = DataGenerator(seed)
    total_rows = partitions * rows_per_partition
    all_orders = [
        (
            oid,
            gen.integer(1, 300),
            gen.date_between(DATE_LOW, DATE_HIGH),
            gen.money(5.0, 5000.0),
            gen.choice(_STATUSES),
        )
        for oid in range(1, total_rows + 1)
    ]
    gis = GlobalInformationSystem(network=network, options=options)
    sources: Dict[str, Any] = {}
    branch_sql: List[str] = []
    for index in range(partitions):
        source_name = f"erp{index}"
        shard = SQLiteSource(source_name)
        shard_rows = all_orders[
            index * rows_per_partition : (index + 1) * rows_per_partition
        ]
        shard.load_table("orders_shard", schemas["orders"], shard_rows)
        adapter = shard if adapter_wrapper is None else adapter_wrapper(shard)
        gis.register_source(
            source_name, adapter, link=NetworkLink(latency_ms, bandwidth)
        )
        table_name = f"orders_p{index}"
        gis.register_table(table_name, source=source_name, remote_table="orders_shard")
        branch_sql.append(f"SELECT * FROM {table_name}")
    gis.create_view("orders_all", " UNION ALL ".join(branch_sql))
    if analyze:
        gis.analyze()
    return Federation(
        gis=gis,
        sources=sources,
        row_counts={"orders_all": total_rows},
        tables={"orders": schemas["orders"]},
    )

"""Synthetic federated workloads for examples, tests, and benchmarks.

:mod:`repro.workloads.tpch_lite` builds a deterministic retail federation
(customers / orders / lineitems / parts / suppliers / reference data) spread
over heterogeneous sources — the standing workload of the experiment suite.
"""

from .generator import DataGenerator
from .queries import WORKLOAD_QUERIES, queries_by_name
from .tpch_lite import (
    Federation,
    build_federation,
    build_partitioned_orders,
)

__all__ = [
    "DataGenerator",
    "Federation",
    "WORKLOAD_QUERIES",
    "build_federation",
    "build_partitioned_orders",
    "queries_by_name",
]

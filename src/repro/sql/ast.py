"""Abstract syntax tree for the mediator's SQL dialect.

Two families of nodes live here:

* **Expressions** (:class:`Expr` subclasses) — shared between the syntactic
  phase (leaves are :class:`ColumnRef`) and the semantic phase (the analyzer
  rewrites every ``ColumnRef`` into a :class:`BoundRef` pointing at a
  :class:`~repro.core.logical.RelColumn`). All optimizer rewrites operate on
  bound expressions.
* **Statements** (:class:`Select`, :class:`SetOperation`) and their clause
  helpers (:class:`TableRef`, :class:`Join`, :class:`OrderItem`, ...).

Expression nodes are plain dataclasses compared by value, which makes
rewrite-rule tests straightforward. The generic traversal helpers
(:func:`walk_expression`, :func:`transform_expression`) keep rewrite code
free of per-node boilerplate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional, Sequence, Tuple, Union

from ..datatypes import DataType

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for all expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant value with its global type (NULL literal has type NULL).

    ``param_slot`` tags a literal as the i-th parameter of a normalized
    query shape (see :mod:`repro.core.prepared`); it never participates in
    equality, so rewrites that compare or deduplicate literals by value are
    unaffected. Planner passes that *create* new literals (constant
    folding, NULL simplification) naturally drop the tag — the prepared
    machinery treats those slots as plan-sensitive and replans when their
    value changes.
    """

    value: Any
    dtype: DataType
    param_slot: Optional[int] = field(default=None, compare=False)


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A *syntactic* column reference, e.g. ``orders.total`` or ``total``.

    Only the parser produces these; the analyzer replaces every one with a
    :class:`BoundRef`. Any ``ColumnRef`` reaching the planner is a bug.
    """

    table: Optional[str]
    name: str


@dataclass(frozen=True, eq=False)
class BoundRef(Expr):
    """A *semantic* column reference to a relation-instance column.

    ``column`` is a :class:`repro.core.logical.RelColumn`; its identity (not
    its name) is what the reference means, so self-joins and renamed views
    never alias each other. Equality is identity equality, which is exactly
    the semantics rewrites need.
    """

    column: Any  # RelColumn; typed loosely to avoid a circular import

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BoundRef) and other.column is self.column

    def __hash__(self) -> int:
        return hash(id(self.column))


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``alias.*`` in a select list (expanded away by the analyzer)."""

    table: Optional[str] = None


#: Binary operators grouped by family; the analyzer type-checks per family.
ARITHMETIC_OPS = ("+", "-", "*", "/", "%")
COMPARISON_OPS = ("=", "<>", "<", "<=", ">", ">=")
LOGICAL_OPS = ("AND", "OR")
STRING_OPS = ("LIKE", "||")


@dataclass(frozen=True)
class BinaryOp(Expr):
    """A binary expression. ``op`` is one of the operator constants above."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary minus (``-``) or logical ``NOT``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class FunctionCall(Expr):
    """A scalar or aggregate function call.

    ``name`` is stored upper-cased. ``distinct`` is only legal for
    aggregates (``COUNT(DISTINCT x)``); ``star`` marks ``COUNT(*)``.
    """

    name: str
    args: Tuple[Expr, ...]
    distinct: bool = False
    star: bool = False


@dataclass(frozen=True)
class WindowFunction(Expr):
    """``name(args) OVER (PARTITION BY … ORDER BY …)``.

    Supported names: ROW_NUMBER, RANK, DENSE_RANK (no arguments) and the
    five aggregates (one argument, or star for COUNT). Frames are not
    supported: aggregates compute over the whole partition.
    """

    name: str
    args: Tuple[Expr, ...]
    partition_by: Tuple[Expr, ...] = ()
    order_by: Tuple[Tuple[Expr, bool], ...] = ()
    star: bool = False


@dataclass(frozen=True)
class Case(Expr):
    """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``."""

    operand: Optional[Expr]
    whens: Tuple[Tuple[Expr, Expr], ...]
    else_result: Optional[Expr]


@dataclass(frozen=True)
class Cast(Expr):
    """``CAST(expr AS type)``."""

    operand: Expr
    dtype: DataType


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expr
    items: Tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(Expr):
    """``expr [NOT] IN (SELECT ...)`` — uncorrelated subqueries only."""

    operand: Expr
    subquery: "Select"
    negated: bool = False


@dataclass(frozen=True)
class Exists(Expr):
    """``[NOT] EXISTS (SELECT ...)`` — uncorrelated subqueries only."""

    subquery: "Select"
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class SelectItem:
    """One entry of a select list: an expression with an optional alias."""

    expr: Expr
    alias: Optional[str] = None


@dataclass
class TableRef:
    """A base-table reference in FROM, with an optional alias."""

    name: str
    alias: Optional[str] = None

    @property
    def binding_name(self) -> str:
        """The name this relation is known by inside the query."""
        return self.alias or self.name


@dataclass
class SubqueryRef:
    """A derived table: ``(SELECT ...) alias``."""

    select: Union["Select", "SetOperation"]
    alias: str

    @property
    def binding_name(self) -> str:
        return self.alias


@dataclass
class Join:
    """A join between two FROM items.

    ``kind`` is one of ``INNER``, ``LEFT``, ``CROSS``. Comma-separated FROM
    lists parse as CROSS joins with the conjunctive WHERE supplying the
    predicates (the optimizer recovers the join graph either way).
    """

    left: "FromItem"
    right: "FromItem"
    kind: str = "INNER"
    condition: Optional[Expr] = None


FromItem = Union[TableRef, SubqueryRef, Join]


@dataclass
class OrderItem:
    """One ORDER BY key."""

    expr: Expr
    ascending: bool = True


@dataclass
class Select:
    """A single SELECT block."""

    items: List[SelectItem]
    from_item: Optional[FromItem] = None
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None
    distinct: bool = False


@dataclass
class SetOperation:
    """``left UNION [ALL] right`` (also INTERSECT / EXCEPT, without ALL)."""

    op: str  # "UNION" | "INTERSECT" | "EXCEPT"
    left: Union[Select, "SetOperation"]
    right: Union[Select, "SetOperation"]
    all: bool = False
    order_by: List[OrderItem] = field(default_factory=list)
    limit: Optional[int] = None
    offset: Optional[int] = None


Statement = Union[Select, SetOperation]


# ---------------------------------------------------------------------------
# Generic traversal
# ---------------------------------------------------------------------------


def expression_children(expr: Expr) -> Tuple[Expr, ...]:
    """The direct sub-expressions of ``expr`` (subqueries are not descended)."""
    if isinstance(expr, BinaryOp):
        return (expr.left, expr.right)
    if isinstance(expr, UnaryOp):
        return (expr.operand,)
    if isinstance(expr, FunctionCall):
        return expr.args
    if isinstance(expr, Case):
        children: List[Expr] = []
        if expr.operand is not None:
            children.append(expr.operand)
        for when, then in expr.whens:
            children.extend((when, then))
        if expr.else_result is not None:
            children.append(expr.else_result)
        return tuple(children)
    if isinstance(expr, Cast):
        return (expr.operand,)
    if isinstance(expr, InList):
        return (expr.operand, *expr.items)
    if isinstance(expr, InSubquery):
        return (expr.operand,)
    if isinstance(expr, IsNull):
        return (expr.operand,)
    if isinstance(expr, Between):
        return (expr.operand, expr.low, expr.high)
    if isinstance(expr, WindowFunction):
        children = list(expr.args) + list(expr.partition_by)
        children.extend(key for key, _ in expr.order_by)
        return tuple(children)
    return ()


def walk_expression(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and all its sub-expressions, pre-order."""
    yield expr
    for child in expression_children(expr):
        yield from walk_expression(child)


def transform_expression(expr: Expr, fn: Callable[[Expr], Optional[Expr]]) -> Expr:
    """Bottom-up rewrite: apply ``fn`` to each node after its children.

    ``fn`` returns a replacement node or ``None`` to keep the (already
    child-rewritten) node. Untouched subtrees are shared, not copied.
    """
    rebuilt = _rebuild_with_children(expr, fn)
    replacement = fn(rebuilt)
    return replacement if replacement is not None else rebuilt


def _rebuild_with_children(expr: Expr, fn: Callable[[Expr], Optional[Expr]]) -> Expr:
    """Rewrite children recursively, rebuilding the node only on change."""
    if isinstance(expr, BinaryOp):
        left = transform_expression(expr.left, fn)
        right = transform_expression(expr.right, fn)
        if left is expr.left and right is expr.right:
            return expr
        return BinaryOp(expr.op, left, right)
    if isinstance(expr, UnaryOp):
        operand = transform_expression(expr.operand, fn)
        return expr if operand is expr.operand else UnaryOp(expr.op, operand)
    if isinstance(expr, FunctionCall):
        args = tuple(transform_expression(a, fn) for a in expr.args)
        if all(new is old for new, old in zip(args, expr.args)):
            return expr
        return FunctionCall(expr.name, args, expr.distinct, expr.star)
    if isinstance(expr, Case):
        operand = (
            transform_expression(expr.operand, fn) if expr.operand is not None else None
        )
        whens = tuple(
            (transform_expression(w, fn), transform_expression(t, fn))
            for w, t in expr.whens
        )
        else_result = (
            transform_expression(expr.else_result, fn)
            if expr.else_result is not None
            else None
        )
        return Case(operand, whens, else_result)
    if isinstance(expr, Cast):
        operand = transform_expression(expr.operand, fn)
        return expr if operand is expr.operand else Cast(operand, expr.dtype)
    if isinstance(expr, InList):
        operand = transform_expression(expr.operand, fn)
        items = tuple(transform_expression(i, fn) for i in expr.items)
        return InList(operand, items, expr.negated)
    if isinstance(expr, InSubquery):
        operand = transform_expression(expr.operand, fn)
        if operand is expr.operand:
            return expr
        return InSubquery(operand, expr.subquery, expr.negated)
    if isinstance(expr, IsNull):
        operand = transform_expression(expr.operand, fn)
        return expr if operand is expr.operand else IsNull(operand, expr.negated)
    if isinstance(expr, Between):
        operand = transform_expression(expr.operand, fn)
        low = transform_expression(expr.low, fn)
        high = transform_expression(expr.high, fn)
        return Between(operand, low, high, expr.negated)
    if isinstance(expr, WindowFunction):
        args = tuple(transform_expression(a, fn) for a in expr.args)
        partition = tuple(transform_expression(p, fn) for p in expr.partition_by)
        order = tuple(
            (transform_expression(key, fn), ascending)
            for key, ascending in expr.order_by
        )
        return WindowFunction(expr.name, args, partition, order, expr.star)
    return expr


def referenced_columns(expr: Expr) -> List[Any]:
    """All RelColumns referenced by a bound expression (with duplicates)."""
    return [node.column for node in walk_expression(expr) if isinstance(node, BoundRef)]


def contains_aggregate(expr: Expr) -> bool:
    """True if the expression contains an aggregate function call."""
    from .functions import is_aggregate_name  # local import: avoid cycle

    return any(
        isinstance(node, FunctionCall) and is_aggregate_name(node.name)
        for node in walk_expression(expr)
    )


def conjuncts(expr: Optional[Expr]) -> List[Expr]:
    """Split a predicate on top-level ANDs; ``None`` splits to ``[]``."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def conjoin(predicates: Sequence[Expr]) -> Optional[Expr]:
    """AND together a list of predicates; empty list yields ``None``."""
    result: Optional[Expr] = None
    for predicate in predicates:
        result = predicate if result is None else BinaryOp("AND", result, predicate)
    return result


def replace_refs(expr: Expr, mapping: dict) -> Expr:
    """Substitute RelColumns in a bound expression.

    ``mapping`` maps ``RelColumn.column_id`` either to another RelColumn or
    to a replacement :class:`Expr`. Used when predicates move through
    projections or into pushed-down fragments.
    """

    def substitute(node: Expr) -> Optional[Expr]:
        if isinstance(node, BoundRef):
            target = mapping.get(node.column.column_id)
            if target is None:
                return None
            if isinstance(target, Expr):
                return target
            return BoundRef(target)
        return None

    return transform_expression(expr, substitute)

"""Render AST fragments back into SQL text.

The pushdown planner hands each SQL-capable wrapper a *syntactic*
:class:`~repro.sql.ast.Select` whose column references already use the
source's native column names; this module turns that tree into a SQL string
in the source's dialect. Dialects differ in identifier quoting, boolean and
date literal syntax — exactly the heterogeneity a 1989 federation had to
paper over per component system.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..datatypes import DataType
from ..errors import PlanError
from . import ast


class SQLDialect:
    """Base dialect: ANSI-flavored quoting and literals."""

    name = "ansi"

    def quote_identifier(self, identifier: str) -> str:
        """Quote an identifier; always quotes to dodge keyword collisions."""
        escaped = identifier.replace('"', '""')
        return f'"{escaped}"'

    def literal(self, value: Any, dtype: DataType) -> str:
        """Render a constant in this dialect."""
        if value is None:
            return "NULL"
        if dtype == DataType.BOOLEAN:
            return "TRUE" if value else "FALSE"
        if dtype == DataType.TEXT:
            escaped = str(value).replace("'", "''")
            return f"'{escaped}'"
        if dtype == DataType.DATE:
            return f"DATE '{value.isoformat()}'"
        if dtype == DataType.FLOAT:
            return repr(float(value))
        return str(value)

    def cast_type_name(self, dtype: DataType) -> str:
        """Type name used in CAST expressions."""
        return dtype.value


class SQLitePrinterDialect(SQLDialect):
    """SQLite: no BOOLEAN/DATE types; booleans are 0/1, dates are ISO strings."""

    name = "sqlite"

    def literal(self, value: Any, dtype: DataType) -> str:
        if value is None:
            return "NULL"
        if dtype == DataType.BOOLEAN:
            return "1" if value else "0"
        if dtype == DataType.DATE:
            return f"'{value.isoformat()}'"
        return super().literal(value, dtype)

    def cast_type_name(self, dtype: DataType) -> str:
        mapping = {
            DataType.INTEGER: "INTEGER",
            DataType.FLOAT: "REAL",
            DataType.TEXT: "TEXT",
            DataType.BOOLEAN: "INTEGER",
            DataType.DATE: "TEXT",
        }
        return mapping.get(dtype, "TEXT")


_DEFAULT_DIALECT = SQLDialect()


def print_expression(expr: ast.Expr, dialect: Optional[SQLDialect] = None) -> str:
    """Render an expression tree as SQL text."""
    return _Printer(dialect or _DEFAULT_DIALECT).expression(expr)


def print_statement(
    statement: ast.Statement, dialect: Optional[SQLDialect] = None
) -> str:
    """Render a SELECT statement (or set-operation chain) as SQL text."""
    return _Printer(dialect or _DEFAULT_DIALECT).statement(statement)


class _Printer:
    def __init__(self, dialect: SQLDialect) -> None:
        self._dialect = dialect

    # -- statements --------------------------------------------------------

    def statement(self, statement: ast.Statement) -> str:
        if isinstance(statement, ast.SetOperation):
            return self._set_operation(statement)
        return self._select(statement)

    def _set_operation(self, op: ast.SetOperation) -> str:
        keyword = op.op + (" ALL" if op.all else "")
        text = f"{self.statement(op.left)} {keyword} {self.statement(op.right)}"
        text += self._order_limit(op.order_by, op.limit, op.offset)
        return text

    def _select(self, select: ast.Select) -> str:
        parts: List[str] = ["SELECT"]
        if select.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(self._select_item(item) for item in select.items))
        if select.from_item is not None:
            parts.append("FROM")
            parts.append(self._from_item(select.from_item))
        if select.where is not None:
            parts.append("WHERE")
            parts.append(self.expression(select.where))
        if select.group_by:
            parts.append("GROUP BY")
            parts.append(", ".join(self.expression(e) for e in select.group_by))
        if select.having is not None:
            parts.append("HAVING")
            parts.append(self.expression(select.having))
        text = " ".join(parts)
        text += self._order_limit(select.order_by, select.limit, select.offset)
        return text

    def _order_limit(
        self,
        order_by: List[ast.OrderItem],
        limit: Optional[int],
        offset: Optional[int],
    ) -> str:
        text = ""
        if order_by:
            keys = ", ".join(
                self.expression(item.expr) + ("" if item.ascending else " DESC")
                for item in order_by
            )
            text += f" ORDER BY {keys}"
        if limit is not None:
            text += f" LIMIT {limit}"
            if offset is not None:
                text += f" OFFSET {offset}"
        return text

    def _select_item(self, item: ast.SelectItem) -> str:
        text = self.expression(item.expr)
        if item.alias:
            text += f" AS {self._dialect.quote_identifier(item.alias)}"
        return text

    def _from_item(self, item: ast.FromItem) -> str:
        if isinstance(item, ast.TableRef):
            text = self._dialect.quote_identifier(item.name)
            if item.alias:
                text += f" AS {self._dialect.quote_identifier(item.alias)}"
            return text
        if isinstance(item, ast.SubqueryRef):
            return (
                f"({self.statement(item.select)}) AS "
                f"{self._dialect.quote_identifier(item.alias)}"
            )
        if isinstance(item, ast.Join):
            left = self._from_item(item.left)
            right = self._from_item(item.right)
            if item.kind == "CROSS":
                return f"{left} CROSS JOIN {right}"
            keyword = "JOIN" if item.kind == "INNER" else f"{item.kind} JOIN"
            condition = self.expression(item.condition) if item.condition else "TRUE"
            return f"{left} {keyword} {right} ON {condition}"
        raise PlanError(f"cannot print FROM item: {type(item).__name__}")

    # -- expressions ---------------------------------------------------------

    def expression(self, expr: ast.Expr) -> str:
        if isinstance(expr, ast.Literal):
            return self._dialect.literal(expr.value, expr.dtype)
        if isinstance(expr, ast.ColumnRef):
            name = self._dialect.quote_identifier(expr.name)
            if expr.table:
                return f"{self._dialect.quote_identifier(expr.table)}.{name}"
            return name
        if isinstance(expr, ast.BoundRef):
            # Bound refs should be rewritten to ColumnRefs before printing.
            raise PlanError("cannot print a BoundRef; rewrite to ColumnRef first")
        if isinstance(expr, ast.BinaryOp):
            left = self._parenthesize(expr.left)
            right = self._parenthesize(expr.right)
            return f"{left} {expr.op} {right}"
        if isinstance(expr, ast.UnaryOp):
            operand = self._parenthesize(expr.operand)
            return f"NOT {operand}" if expr.op == "NOT" else f"-{operand}"
        if isinstance(expr, ast.FunctionCall):
            if expr.star:
                return f"{expr.name}(*)"
            prefix = "DISTINCT " if expr.distinct else ""
            args = ", ".join(self.expression(a) for a in expr.args)
            return f"{expr.name}({prefix}{args})"
        if isinstance(expr, ast.Case):
            parts = ["CASE"]
            if expr.operand is not None:
                parts.append(self.expression(expr.operand))
            for when, then in expr.whens:
                parts.append(f"WHEN {self.expression(when)} THEN {self.expression(then)}")
            if expr.else_result is not None:
                parts.append(f"ELSE {self.expression(expr.else_result)}")
            parts.append("END")
            return " ".join(parts)
        if isinstance(expr, ast.Cast):
            type_name = self._dialect.cast_type_name(expr.dtype)
            return f"CAST({self.expression(expr.operand)} AS {type_name})"
        if isinstance(expr, ast.InList):
            operand = self._parenthesize(expr.operand)
            items = ", ".join(self.expression(i) for i in expr.items)
            keyword = "NOT IN" if expr.negated else "IN"
            return f"{operand} {keyword} ({items})"
        if isinstance(expr, ast.InSubquery):
            operand = self._parenthesize(expr.operand)
            keyword = "NOT IN" if expr.negated else "IN"
            return f"{operand} {keyword} ({self.statement(expr.subquery)})"
        if isinstance(expr, ast.Exists):
            keyword = "NOT EXISTS" if expr.negated else "EXISTS"
            return f"{keyword} ({self.statement(expr.subquery)})"
        if isinstance(expr, ast.IsNull):
            keyword = "IS NOT NULL" if expr.negated else "IS NULL"
            return f"{self._parenthesize(expr.operand)} {keyword}"
        if isinstance(expr, ast.Between):
            keyword = "NOT BETWEEN" if expr.negated else "BETWEEN"
            return (
                f"{self._parenthesize(expr.operand)} {keyword} "
                f"{self._parenthesize(expr.low)} AND {self._parenthesize(expr.high)}"
            )
        if isinstance(expr, ast.Star):
            if expr.table:
                return f"{self._dialect.quote_identifier(expr.table)}.*"
            return "*"
        if isinstance(expr, ast.WindowFunction):
            call = (
                f"{expr.name}(*)"
                if expr.star
                else f"{expr.name}({', '.join(self.expression(a) for a in expr.args)})"
            )
            clauses = []
            if expr.partition_by:
                clauses.append(
                    "PARTITION BY "
                    + ", ".join(self.expression(p) for p in expr.partition_by)
                )
            if expr.order_by:
                clauses.append(
                    "ORDER BY "
                    + ", ".join(
                        self.expression(key) + ("" if ascending else " DESC")
                        for key, ascending in expr.order_by
                    )
                )
            return f"{call} OVER ({' '.join(clauses)})"
        raise PlanError(f"cannot print expression: {type(expr).__name__}")

    def _parenthesize(self, expr: ast.Expr) -> str:
        """Wrap compound children in parentheses; atoms stay bare.

        Always parenthesizing compounds sidesteps precedence bookkeeping at
        the cost of a few extra parens — harmless for machine-consumed SQL.
        """
        text = self.expression(expr)
        if isinstance(
            expr,
            (ast.Literal, ast.ColumnRef, ast.FunctionCall, ast.Cast, ast.Case, ast.Star),
        ):
            return text
        return f"({text})"

"""SQL frontend: lexer, AST, recursive-descent parser, and SQL printer.

The mediator accepts a single global query language — a practical SQL subset
(SELECT with joins, aggregation, set operations, subqueries in FROM and IN).
Wrappers for SQL-speaking sources reuse :mod:`repro.sql.printer` to render
pushed-down fragments back into the source dialect.
"""

from .ast import (
    Between,
    BinaryOp,
    BoundRef,
    Case,
    Cast,
    ColumnRef,
    Exists,
    Expr,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Join,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    SetOperation,
    Star,
    SubqueryRef,
    TableRef,
    UnaryOp,
)
from .lexer import Lexer, Token, TokenType
from .parser import parse_select
from .printer import SQLDialect, SQLitePrinterDialect, print_expression, print_statement

__all__ = [
    "Between",
    "BinaryOp",
    "BoundRef",
    "Case",
    "Cast",
    "ColumnRef",
    "Exists",
    "Expr",
    "FunctionCall",
    "InList",
    "InSubquery",
    "IsNull",
    "Join",
    "Lexer",
    "Literal",
    "OrderItem",
    "Select",
    "SelectItem",
    "SetOperation",
    "SQLDialect",
    "SQLitePrinterDialect",
    "Star",
    "SubqueryRef",
    "TableRef",
    "Token",
    "TokenType",
    "UnaryOp",
    "parse_select",
    "print_expression",
    "print_statement",
]

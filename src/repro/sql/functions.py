"""Registry of scalar and aggregate functions known to the mediator.

A federation can only push a function to a source if the source declares it;
the registry therefore records, for each function, its type signature and a
reference Python implementation the mediator uses when it must *compensate*
(execute the function itself above a less-capable source).

Scalar functions here follow SQL NULL semantics: any NULL argument yields
NULL unless the function is explicitly NULL-aware (COALESCE, NULLIF).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..datatypes import DataType, is_numeric, unify
from ..errors import TypeCheckError

# ---------------------------------------------------------------------------
# Aggregates
# ---------------------------------------------------------------------------

AGGREGATE_NAMES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX"})


def is_aggregate_name(name: str) -> bool:
    """True if ``name`` (any case) denotes an aggregate function."""
    return name.upper() in AGGREGATE_NAMES


def aggregate_result_type(name: str, arg_type: Optional[DataType]) -> DataType:
    """Result type of aggregate ``name`` over inputs of ``arg_type``.

    ``arg_type`` is ``None`` for ``COUNT(*)``.
    """
    upper = name.upper()
    if upper == "COUNT":
        return DataType.INTEGER
    if arg_type is None:
        raise TypeCheckError(f"{upper} requires an argument")
    if upper == "AVG":
        if not (is_numeric(arg_type) or arg_type == DataType.NULL):
            raise TypeCheckError(f"AVG requires a numeric argument, got {arg_type}")
        return DataType.FLOAT
    if upper == "SUM":
        if not (is_numeric(arg_type) or arg_type == DataType.NULL):
            raise TypeCheckError(f"SUM requires a numeric argument, got {arg_type}")
        return arg_type if arg_type != DataType.NULL else DataType.FLOAT
    if upper in ("MIN", "MAX"):
        return arg_type
    raise TypeCheckError(f"unknown aggregate function: {name}")


# ---------------------------------------------------------------------------
# Scalar functions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ScalarFunction:
    """A scalar function's signature and reference implementation.

    ``type_rule`` maps argument types to the result type (raising
    :class:`TypeCheckError` on a mismatch); ``implementation`` is the
    NULL-unaware kernel — the evaluator short-circuits NULL arguments for
    functions with ``null_propagating=True``.
    """

    name: str
    min_args: int
    max_args: int  # -1 for variadic
    type_rule: Callable[[Sequence[DataType]], DataType]
    implementation: Callable[..., Any]
    null_propagating: bool = True


def _require_args(name: str, args: Sequence[DataType], low: int, high: int) -> None:
    count = len(args)
    if count < low or (high != -1 and count > high):
        expected = str(low) if low == high else f"{low}..{'*' if high == -1 else high}"
        raise TypeCheckError(f"{name} expects {expected} arguments, got {count}")


def _text_rule(name: str, *, arity: int = 1) -> Callable[[Sequence[DataType]], DataType]:
    def rule(args: Sequence[DataType]) -> DataType:
        _require_args(name, args, arity, arity)
        for arg in args:
            if arg not in (DataType.TEXT, DataType.NULL):
                raise TypeCheckError(f"{name} requires TEXT arguments, got {arg}")
        return DataType.TEXT

    return rule


def _numeric_identity_rule(name: str) -> Callable[[Sequence[DataType]], DataType]:
    def rule(args: Sequence[DataType]) -> DataType:
        _require_args(name, args, 1, 1)
        (arg,) = args
        if arg == DataType.NULL:
            return DataType.NULL
        if not is_numeric(arg):
            raise TypeCheckError(f"{name} requires a numeric argument, got {arg}")
        return arg

    return rule


def _instr_rule(args: Sequence[DataType]) -> DataType:
    _require_args("INSTR", args, 2, 2)
    for arg in args:
        if arg not in (DataType.TEXT, DataType.NULL):
            raise TypeCheckError(f"INSTR requires TEXT arguments, got {arg}")
    return DataType.INTEGER


def _length_rule(args: Sequence[DataType]) -> DataType:
    _require_args("LENGTH", args, 1, 1)
    if args[0] not in (DataType.TEXT, DataType.NULL):
        raise TypeCheckError(f"LENGTH requires a TEXT argument, got {args[0]}")
    return DataType.INTEGER


def _substr_rule(args: Sequence[DataType]) -> DataType:
    _require_args("SUBSTR", args, 2, 3)
    if args[0] not in (DataType.TEXT, DataType.NULL):
        raise TypeCheckError(f"SUBSTR requires a TEXT first argument, got {args[0]}")
    for arg in args[1:]:
        if arg not in (DataType.INTEGER, DataType.NULL):
            raise TypeCheckError("SUBSTR position/length must be INTEGER")
    return DataType.TEXT


def _substr_impl(value: str, start: int, length: Optional[int] = None) -> str:
    # SQL SUBSTR is 1-based; negative start counts from the end (SQLite rule).
    if start > 0:
        begin = start - 1
    elif start == 0:
        begin = 0
    else:
        begin = max(len(value) + start, 0)
    if length is None:
        return value[begin:]
    if length < 0:
        return ""
    return value[begin : begin + length]


def _round_rule(args: Sequence[DataType]) -> DataType:
    _require_args("ROUND", args, 1, 2)
    if args[0] != DataType.NULL and not is_numeric(args[0]):
        raise TypeCheckError(f"ROUND requires a numeric argument, got {args[0]}")
    if len(args) == 2 and args[1] not in (DataType.INTEGER, DataType.NULL):
        raise TypeCheckError("ROUND digit count must be INTEGER")
    return DataType.FLOAT


def _coalesce_rule(args: Sequence[DataType]) -> DataType:
    _require_args("COALESCE", args, 1, -1)
    result = DataType.NULL
    for arg in args:
        result = unify(result, arg)
    return result


def _coalesce_impl(*values: Any) -> Any:
    for value in values:
        if value is not None:
            return value
    return None


def _nullif_rule(args: Sequence[DataType]) -> DataType:
    _require_args("NULLIF", args, 2, 2)
    return unify(args[0], args[1])


def _nullif_impl(left: Any, right: Any) -> Any:
    return None if left == right else left


def _year_rule(name: str) -> Callable[[Sequence[DataType]], DataType]:
    def rule(args: Sequence[DataType]) -> DataType:
        _require_args(name, args, 1, 1)
        if args[0] not in (DataType.DATE, DataType.NULL):
            raise TypeCheckError(f"{name} requires a DATE argument, got {args[0]}")
        return DataType.INTEGER

    return rule


def _mod_rule(args: Sequence[DataType]) -> DataType:
    _require_args("MOD", args, 2, 2)
    for arg in args:
        if arg not in (DataType.INTEGER, DataType.NULL):
            raise TypeCheckError(f"MOD requires INTEGER arguments, got {arg}")
    return DataType.INTEGER


_REGISTRY: Dict[str, ScalarFunction] = {}


def _register(function: ScalarFunction) -> None:
    _REGISTRY[function.name] = function


_register(ScalarFunction("UPPER", 1, 1, _text_rule("UPPER"), str.upper))
_register(ScalarFunction("LOWER", 1, 1, _text_rule("LOWER"), str.lower))
_register(ScalarFunction("TRIM", 1, 1, _text_rule("TRIM"), str.strip))
_register(ScalarFunction("LTRIM", 1, 1, _text_rule("LTRIM"), str.lstrip))
_register(ScalarFunction("RTRIM", 1, 1, _text_rule("RTRIM"), str.rstrip))
_register(ScalarFunction("LENGTH", 1, 1, _length_rule, len))
_register(ScalarFunction("SUBSTR", 2, 3, _substr_rule, _substr_impl))
_register(
    ScalarFunction(
        "REPLACE",
        3,
        3,
        _text_rule("REPLACE", arity=3),
        lambda value, old, new: value.replace(old, new) if old else value,
    )
)
_register(
    ScalarFunction(
        "INSTR",
        2,
        2,
        _instr_rule,
        lambda haystack, needle: haystack.find(needle) + 1,  # 1-based, 0=absent
    )
)
_register(ScalarFunction("ABS", 1, 1, _numeric_identity_rule("ABS"), abs))
_register(
    ScalarFunction(
        "ROUND",
        1,
        2,
        _round_rule,
        lambda value, digits=0: float(round(value, digits)),
    )
)
_register(
    ScalarFunction(
        "FLOOR",
        1,
        1,
        _numeric_identity_rule("FLOOR"),
        lambda value: type(value)(math.floor(value)),
    )
)
_register(
    ScalarFunction(
        "CEIL",
        1,
        1,
        _numeric_identity_rule("CEIL"),
        lambda value: type(value)(math.ceil(value)),
    )
)
# SQL MOD truncates toward zero (Python's % floors, so compute directly).
_register(ScalarFunction("MOD", 2, 2, _mod_rule, lambda a, b: a - b * int(a / b) if b else None))
_register(
    ScalarFunction(
        "COALESCE", 1, -1, _coalesce_rule, _coalesce_impl, null_propagating=False
    )
)
_register(
    ScalarFunction("NULLIF", 2, 2, _nullif_rule, _nullif_impl, null_propagating=False)
)
_register(
    ScalarFunction(
        "YEAR", 1, 1, _year_rule("YEAR"), lambda date: date.year
    )
)
_register(
    ScalarFunction(
        "MONTH", 1, 1, _year_rule("MONTH"), lambda date: date.month
    )
)
_register(ScalarFunction("DAY", 1, 1, _year_rule("DAY"), lambda date: date.day))


def lookup_scalar(name: str) -> ScalarFunction:
    """Find a scalar function by name (any case); raise if unknown."""
    function = _REGISTRY.get(name.upper())
    if function is None:
        raise TypeCheckError(f"unknown function: {name}")
    return function


def is_scalar_name(name: str) -> bool:
    """True if ``name`` denotes a registered scalar function."""
    return name.upper() in _REGISTRY


def scalar_names() -> List[str]:
    """All registered scalar function names (for capability declarations)."""
    return sorted(_REGISTRY)

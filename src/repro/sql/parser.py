"""Recursive-descent parser for the mediator's SQL dialect.

Grammar (informal)::

    statement   := select_core (( UNION [ALL] | INTERSECT | EXCEPT ) select_core)*
                   [ORDER BY order_list] [LIMIT n [OFFSET m]]
    select_core := SELECT [DISTINCT] select_list [FROM from_list]
                   [WHERE expr] [GROUP BY expr_list] [HAVING expr]
                   [ORDER BY order_list] [LIMIT n [OFFSET m]]
    from_list   := from_item ("," from_item)*          -- comma = CROSS JOIN
    from_item   := table_primary (join_tail)*
    join_tail   := [INNER | LEFT [OUTER] | CROSS] JOIN table_primary [ON expr]
    table_primary := identifier [[AS] alias]
                   | "(" statement ")" [AS] alias

Expression precedence, loosest first: ``OR``, ``AND``, ``NOT``, comparison
(including ``IS [NOT] NULL``, ``[NOT] IN``, ``[NOT] BETWEEN``, ``[NOT]
LIKE``), additive (``+ - ||``), multiplicative (``* / %``), unary minus,
primary.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..datatypes import DataType, parse_type_name
from ..errors import ParseError, TypeCheckError
from . import ast
from .lexer import Lexer, Token, TokenType

_COMPARISON_OPS = frozenset({"=", "<>", "<", "<=", ">", ">="})
_ADDITIVE_OPS = frozenset({"+", "-", "||"})
_MULTIPLICATIVE_OPS = frozenset({"*", "/", "%"})


@dataclass(frozen=True)
class UtilityStatement:
    """A parsed cache-management DDL statement (not a SELECT).

    ``kind`` is one of ``create_materialized``, ``refresh_materialized``,
    ``drop_materialized``. ``staleness_ms`` / ``select_sql`` are only set
    for ``create_materialized``.
    """

    kind: str
    name: str
    staleness_ms: float = 0.0
    select_sql: Optional[str] = None


_UTILITY_PREFIX = re.compile(r"^\s*(CREATE|REFRESH|DROP)\b", re.IGNORECASE)
_CREATE_MATERIALIZED = re.compile(
    r"^\s*CREATE\s+MATERIALIZED\s+VIEW\s+([A-Za-z_][A-Za-z_0-9]*)\s+"
    r"(?:WITH\s+STALENESS\s+(\d+(?:\.\d+)?)\s+)?AS\s+(.+)$",
    re.IGNORECASE | re.DOTALL,
)
_REFRESH_MATERIALIZED = re.compile(
    r"^\s*REFRESH\s+MATERIALIZED\s+VIEW\s+([A-Za-z_][A-Za-z_0-9]*)\s*;?\s*$",
    re.IGNORECASE,
)
_DROP_MATERIALIZED = re.compile(
    r"^\s*DROP\s+MATERIALIZED\s+VIEW\s+([A-Za-z_][A-Za-z_0-9]*)\s*;?\s*$",
    re.IGNORECASE,
)


def parse_utility(sql: str) -> Optional[UtilityStatement]:
    """Recognize a materialized-view DDL statement, or ``None`` fast.

    The main grammar is SELECT-only; these statements are line-oriented
    enough that a regex front end keeps the hot query path untouched (a
    single cheap prefix test for non-DDL text). A ``CREATE``/``REFRESH``/
    ``DROP`` prefix that then fails to parse raises
    :class:`~repro.errors.ParseError` rather than falling through to the
    SELECT parser's (more confusing) error.
    """
    if _UTILITY_PREFIX.match(sql) is None:
        return None
    match = _CREATE_MATERIALIZED.match(sql)
    if match is not None:
        name, staleness, select_sql = match.groups()
        select_sql = select_sql.strip().rstrip(";").strip()
        if not select_sql:
            raise ParseError("CREATE MATERIALIZED VIEW requires an AS SELECT body")
        return UtilityStatement(
            kind="create_materialized",
            name=name,
            staleness_ms=float(staleness) if staleness is not None else 0.0,
            select_sql=select_sql,
        )
    match = _REFRESH_MATERIALIZED.match(sql)
    if match is not None:
        return UtilityStatement(kind="refresh_materialized", name=match.group(1))
    match = _DROP_MATERIALIZED.match(sql)
    if match is not None:
        return UtilityStatement(kind="drop_materialized", name=match.group(1))
    raise ParseError(
        "unsupported statement: expected SELECT, CREATE MATERIALIZED VIEW, "
        "REFRESH MATERIALIZED VIEW, or DROP MATERIALIZED VIEW"
    )


def parse_select(sql: str) -> ast.Statement:
    """Parse a SELECT statement (possibly a set-operation chain).

    Raises :class:`~repro.errors.ParseError` on any syntax error, including
    trailing garbage after a complete statement.
    """
    parser = _Parser(Lexer(sql).tokenize())
    statement = parser.parse_statement()
    parser.expect_eof()
    return statement


class _Parser:
    """Token-stream cursor with the usual expect/accept helpers."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- cursor ------------------------------------------------------------

    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _peek(self, offset: int = 1) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type != TokenType.EOF:
            self._pos += 1
        return token

    def _error(self, message: str) -> ParseError:
        token = self._current()
        return ParseError(message, token.line, token.column)

    def _accept_keyword(self, *keywords: str) -> Optional[Token]:
        if self._current().matches_keyword(*keywords):
            return self._advance()
        return None

    def _expect_keyword(self, keyword: str) -> Token:
        if not self._current().matches_keyword(keyword):
            raise self._error(f"expected {keyword}, found {self._describe_current()}")
        return self._advance()

    def _accept_punct(self, punct: str) -> bool:
        token = self._current()
        if token.type == TokenType.PUNCTUATION and token.value == punct:
            self._advance()
            return True
        return False

    def _expect_punct(self, punct: str) -> None:
        if not self._accept_punct(punct):
            raise self._error(f"expected {punct!r}, found {self._describe_current()}")

    def _accept_operator(self, *operators: str) -> Optional[str]:
        token = self._current()
        if token.type == TokenType.OPERATOR and token.value in operators:
            self._advance()
            return token.value
        return None

    def _expect_identifier(self, what: str) -> str:
        token = self._current()
        if token.type != TokenType.IDENTIFIER:
            raise self._error(f"expected {what}, found {self._describe_current()}")
        self._advance()
        return token.value

    def _describe_current(self) -> str:
        token = self._current()
        if token.type == TokenType.EOF:
            return "end of input"
        return repr(token.value)

    def expect_eof(self) -> None:
        if self._current().type != TokenType.EOF:
            raise self._error(f"unexpected input after statement: {self._describe_current()}")

    # -- statements ----------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        left: ast.Statement = self._parse_select_core()
        while True:
            if self._accept_keyword("UNION"):
                all_flag = self._accept_keyword("ALL") is not None
                operator = "UNION"
            elif self._accept_keyword("INTERSECT"):
                all_flag = self._accept_keyword("ALL") is not None
                operator = "INTERSECT"
            elif self._accept_keyword("EXCEPT"):
                all_flag = self._accept_keyword("ALL") is not None
                operator = "EXCEPT"
            else:
                break
            # A branch inside a set operation cannot carry its own ORDER BY
            # or LIMIT (SQL requires parentheses for that).
            self._reject_branch_decorations(left, operator)
            right = self._parse_select_core()
            left = ast.SetOperation(operator, left, right, all_flag)
        if isinstance(left, ast.SetOperation):
            # The final core's trailing ORDER BY / LIMIT bind to the whole
            # set operation; hoist them up.
            last = left.right
            if isinstance(last, ast.Select):
                left.order_by, last.order_by = last.order_by, []
                left.limit, last.limit = last.limit, None
                left.offset, last.offset = last.offset, None
            if self._accept_keyword("ORDER"):
                if left.order_by:
                    raise self._error("duplicate ORDER BY on set operation")
                self._expect_keyword("BY")
                left.order_by = self._parse_order_list()
            if left.limit is None:
                left.limit, left.offset = self._parse_limit_offset()
        return left

    def _reject_branch_decorations(self, branch: ast.Statement, operator: str) -> None:
        # The decoration, if any, sits on the rightmost core of the branch.
        node = branch
        while True:
            if node.order_by or node.limit is not None or node.offset is not None:
                raise self._error(
                    f"ORDER BY/LIMIT before {operator} must be parenthesized"
                )
            if isinstance(node, ast.SetOperation):
                node = node.right
            else:
                return

    def _parse_select_core(self) -> ast.Select:
        self._expect_keyword("SELECT")
        distinct = self._accept_keyword("DISTINCT") is not None
        if self._accept_keyword("ALL"):
            distinct = False
        items = self._parse_select_list()
        from_item: Optional[ast.FromItem] = None
        if self._accept_keyword("FROM"):
            from_item = self._parse_from_list()
        where = self.parse_expression() if self._accept_keyword("WHERE") else None
        group_by: List[ast.Expr] = []
        if self._accept_keyword("GROUP"):
            self._expect_keyword("BY")
            group_by.append(self.parse_expression())
            while self._accept_punct(","):
                group_by.append(self.parse_expression())
        having = self.parse_expression() if self._accept_keyword("HAVING") else None
        order_by: List[ast.OrderItem] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = self._parse_order_list()
        limit, offset = self._parse_limit_offset()
        return ast.Select(
            items=items,
            from_item=from_item,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def _parse_select_list(self) -> List[ast.SelectItem]:
        items = [self._parse_select_item()]
        while self._accept_punct(","):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> ast.SelectItem:
        token = self._current()
        # Bare `*`
        if token.type == TokenType.OPERATOR and token.value == "*":
            self._advance()
            return ast.SelectItem(ast.Star())
        # Qualified `alias.*`
        if (
            token.type == TokenType.IDENTIFIER
            and self._peek().type == TokenType.PUNCTUATION
            and self._peek().value == "."
        ):
            after_dot = self._peek(2)
            if after_dot.type == TokenType.OPERATOR and after_dot.value == "*":
                table = self._advance().value
                self._advance()  # '.'
                self._advance()  # '*'
                return ast.SelectItem(ast.Star(table))
        expr = self.parse_expression()
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias")
        elif self._current().type == TokenType.IDENTIFIER:
            alias = self._advance().value
        return ast.SelectItem(expr, alias)

    def _parse_order_list(self) -> List[ast.OrderItem]:
        items: List[ast.OrderItem] = []
        while True:
            expr = self.parse_expression()
            ascending = True
            if self._accept_keyword("ASC"):
                ascending = True
            elif self._accept_keyword("DESC"):
                ascending = False
            items.append(ast.OrderItem(expr, ascending))
            if not self._accept_punct(","):
                return items

    def _parse_limit_offset(self) -> Tuple[Optional[int], Optional[int]]:
        limit: Optional[int] = None
        offset: Optional[int] = None
        if self._accept_keyword("LIMIT"):
            limit = self._parse_nonnegative_integer("LIMIT")
            if self._accept_keyword("OFFSET"):
                offset = self._parse_nonnegative_integer("OFFSET")
        return limit, offset

    def _parse_nonnegative_integer(self, clause: str) -> int:
        token = self._current()
        if token.type != TokenType.INTEGER:
            raise self._error(f"{clause} requires an integer literal")
        self._advance()
        return token.value

    # -- FROM clause ---------------------------------------------------------

    def _parse_from_list(self) -> ast.FromItem:
        item = self._parse_from_item()
        while self._accept_punct(","):
            right = self._parse_from_item()
            item = ast.Join(item, right, "CROSS", None)
        return item

    def _parse_from_item(self) -> ast.FromItem:
        item: ast.FromItem = self._parse_table_primary()
        while True:
            kind: Optional[str] = None
            if self._accept_keyword("INNER"):
                kind = "INNER"
            elif self._accept_keyword("LEFT"):
                self._accept_keyword("OUTER")
                kind = "LEFT"
            elif self._accept_keyword("CROSS"):
                kind = "CROSS"
            elif self._current().matches_keyword("JOIN"):
                kind = "INNER"
            if kind is None:
                return item
            self._expect_keyword("JOIN")
            right = self._parse_table_primary()
            condition: Optional[ast.Expr] = None
            if kind != "CROSS":
                self._expect_keyword("ON")
                condition = self.parse_expression()
            item = ast.Join(item, right, kind, condition)

    def _parse_table_primary(self) -> ast.FromItem:
        if self._accept_punct("("):
            statement = self.parse_statement()
            self._expect_punct(")")
            self._accept_keyword("AS")
            alias = self._expect_identifier("subquery alias")
            return ast.SubqueryRef(statement, alias)
        name = self._expect_identifier("table name")
        alias: Optional[str] = None
        if self._accept_keyword("AS"):
            alias = self._expect_identifier("alias")
        elif self._current().type == TokenType.IDENTIFIER:
            alias = self._advance().value
        return ast.TableRef(name, alias)

    # -- expressions ---------------------------------------------------------

    def parse_expression(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._accept_keyword("OR"):
            right = self._parse_and()
            left = ast.BinaryOp("OR", left, right)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._accept_keyword("AND"):
            right = self._parse_not()
            left = ast.BinaryOp("AND", left, right)
        return left

    def _parse_not(self) -> ast.Expr:
        if self._accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        while True:
            operator = self._accept_operator(*_COMPARISON_OPS)
            if operator is not None:
                right = self._parse_additive()
                left = ast.BinaryOp(operator, left, right)
                continue
            if self._accept_keyword("IS"):
                negated = self._accept_keyword("NOT") is not None
                self._expect_keyword("NULL")
                left = ast.IsNull(left, negated)
                continue
            negated = False
            if self._current().matches_keyword("NOT") and self._peek().matches_keyword(
                "IN", "BETWEEN", "LIKE"
            ):
                self._advance()
                negated = True
            if self._accept_keyword("IN"):
                left = self._parse_in_tail(left, negated)
                continue
            if self._accept_keyword("BETWEEN"):
                low = self._parse_additive()
                self._expect_keyword("AND")
                high = self._parse_additive()
                left = ast.Between(left, low, high, negated)
                continue
            if self._accept_keyword("LIKE"):
                pattern = self._parse_additive()
                like = ast.BinaryOp("LIKE", left, pattern)
                left = ast.UnaryOp("NOT", like) if negated else like
                continue
            if negated:
                raise self._error("expected IN, BETWEEN, or LIKE after NOT")
            return left

    def _parse_in_tail(self, operand: ast.Expr, negated: bool) -> ast.Expr:
        self._expect_punct("(")
        if self._current().matches_keyword("SELECT"):
            subquery = self.parse_statement()
            self._expect_punct(")")
            if not isinstance(subquery, ast.Select):
                raise self._error("set operations are not supported in IN subqueries")
            return ast.InSubquery(operand, subquery, negated)
        items = [self.parse_expression()]
        while self._accept_punct(","):
            items.append(self.parse_expression())
        self._expect_punct(")")
        return ast.InList(operand, tuple(items), negated)

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while True:
            operator = self._accept_operator(*_ADDITIVE_OPS)
            if operator is None:
                return left
            right = self._parse_multiplicative()
            left = ast.BinaryOp(operator, left, right)

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while True:
            operator = self._accept_operator(*_MULTIPLICATIVE_OPS)
            if operator is None:
                return left
            right = self._parse_unary()
            left = ast.BinaryOp(operator, left, right)

    def _parse_unary(self) -> ast.Expr:
        if self._accept_operator("-"):
            operand = self._parse_unary()
            # Fold negative numeric literals immediately; keeps plans tidy.
            if isinstance(operand, ast.Literal) and operand.dtype in (
                DataType.INTEGER,
                DataType.FLOAT,
            ):
                return ast.Literal(-operand.value, operand.dtype)
            return ast.UnaryOp("-", operand)
        if self._accept_operator("+"):
            return self._parse_unary()
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._current()
        if token.type == TokenType.INTEGER:
            self._advance()
            return ast.Literal(token.value, DataType.INTEGER)
        if token.type == TokenType.FLOAT:
            self._advance()
            return ast.Literal(token.value, DataType.FLOAT)
        if token.type == TokenType.STRING:
            self._advance()
            return ast.Literal(token.value, DataType.TEXT)
        if token.matches_keyword("NULL"):
            self._advance()
            return ast.Literal(None, DataType.NULL)
        if token.matches_keyword("TRUE"):
            self._advance()
            return ast.Literal(True, DataType.BOOLEAN)
        if token.matches_keyword("FALSE"):
            self._advance()
            return ast.Literal(False, DataType.BOOLEAN)
        if token.matches_keyword("DATE"):
            return self._parse_date_literal()
        if token.matches_keyword("CAST"):
            return self._parse_cast()
        if token.matches_keyword("CASE"):
            return self._parse_case()
        if token.matches_keyword("EXISTS"):
            self._advance()
            self._expect_punct("(")
            subquery = self.parse_statement()
            self._expect_punct(")")
            if not isinstance(subquery, ast.Select):
                raise self._error("set operations are not supported in EXISTS")
            return ast.Exists(subquery, negated=False)
        if token.type == TokenType.PUNCTUATION and token.value == "(":
            self._advance()
            expr = self.parse_expression()
            self._expect_punct(")")
            return expr
        if token.type == TokenType.IDENTIFIER:
            return self._parse_identifier_expression()
        raise self._error(f"unexpected token {self._describe_current()} in expression")

    def _parse_date_literal(self) -> ast.Expr:
        import datetime

        self._advance()  # DATE keyword
        token = self._current()
        if token.type != TokenType.STRING:
            raise self._error("DATE literal requires a string, e.g. DATE '1989-02-06'")
        self._advance()
        try:
            value = datetime.date.fromisoformat(token.value)
        except ValueError:
            raise self._error(f"invalid DATE literal {token.value!r}") from None
        return ast.Literal(value, DataType.DATE)

    def _parse_cast(self) -> ast.Expr:
        self._advance()  # CAST
        self._expect_punct("(")
        operand = self.parse_expression()
        self._expect_keyword("AS")
        token = self._current()
        if token.type == TokenType.IDENTIFIER or token.matches_keyword("DATE"):
            type_name = str(token.value)
            self._advance()
        else:
            raise self._error("expected type name in CAST")
        self._expect_punct(")")
        try:
            dtype = parse_type_name(type_name)
        except TypeCheckError:
            raise self._error(f"unknown type name {type_name!r} in CAST") from None
        return ast.Cast(operand, dtype)

    def _parse_case(self) -> ast.Expr:
        self._advance()  # CASE
        operand: Optional[ast.Expr] = None
        if not self._current().matches_keyword("WHEN"):
            operand = self.parse_expression()
        whens: List[Tuple[ast.Expr, ast.Expr]] = []
        while self._accept_keyword("WHEN"):
            condition = self.parse_expression()
            self._expect_keyword("THEN")
            result = self.parse_expression()
            whens.append((condition, result))
        if not whens:
            raise self._error("CASE requires at least one WHEN clause")
        else_result: Optional[ast.Expr] = None
        if self._accept_keyword("ELSE"):
            else_result = self.parse_expression()
        self._expect_keyword("END")
        return ast.Case(operand, tuple(whens), else_result)

    def _parse_identifier_expression(self) -> ast.Expr:
        name = self._advance().value
        # Function call?
        if self._current().type == TokenType.PUNCTUATION and self._current().value == "(":
            return self._parse_function_call(name)
        # Qualified column reference?
        if self._current().type == TokenType.PUNCTUATION and self._current().value == ".":
            self._advance()
            column = self._expect_identifier("column name")
            return ast.ColumnRef(name, column)
        return ast.ColumnRef(None, name)

    def _parse_function_call(self, name: str) -> ast.Expr:
        self._expect_punct("(")
        upper = name.upper()
        token = self._current()
        star = False
        distinct = False
        args: List[ast.Expr] = []
        if token.type == TokenType.OPERATOR and token.value == "*":
            self._advance()
            self._expect_punct(")")
            star = True
        else:
            distinct = self._accept_keyword("DISTINCT") is not None
            if not (
                self._current().type == TokenType.PUNCTUATION
                and self._current().value == ")"
            ):
                args.append(self.parse_expression())
                while self._accept_punct(","):
                    args.append(self.parse_expression())
            self._expect_punct(")")
        if self._current().matches_keyword("OVER"):
            if distinct:
                raise self._error("DISTINCT is not supported in window functions")
            return self._parse_over(upper, tuple(args), star)
        return ast.FunctionCall(upper, tuple(args), distinct=distinct, star=star)

    def _parse_over(
        self, name: str, args: Tuple[ast.Expr, ...], star: bool
    ) -> ast.Expr:
        self._expect_keyword("OVER")
        self._expect_punct("(")
        partition: List[ast.Expr] = []
        if self._accept_keyword("PARTITION"):
            self._expect_keyword("BY")
            partition.append(self.parse_expression())
            while self._accept_punct(","):
                partition.append(self.parse_expression())
        order: List[Tuple[ast.Expr, bool]] = []
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            for item in self._parse_order_list():
                order.append((item.expr, item.ascending))
        self._expect_punct(")")
        return ast.WindowFunction(name, args, tuple(partition), tuple(order), star)

"""Hand-written tokenizer for the mediator's SQL dialect.

Produces a flat token stream with line/column positions so that parse errors
point at the offending text. Keywords are case-insensitive; identifiers keep
their case but compare case-insensitively downstream (double-quoted
identifiers preserve case exactly and may contain keywords).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, List

from ..errors import ParseError


class TokenType(enum.Enum):
    """Lexical token categories."""

    KEYWORD = "KEYWORD"
    IDENTIFIER = "IDENTIFIER"
    INTEGER = "INTEGER"
    FLOAT = "FLOAT"
    STRING = "STRING"
    OPERATOR = "OPERATOR"
    PUNCTUATION = "PUNCTUATION"
    EOF = "EOF"


#: Reserved words recognized by the parser. Anything else is an identifier.
KEYWORDS = frozenset(
    {
        "SELECT", "DISTINCT", "FROM", "WHERE", "GROUP", "BY", "HAVING",
        "ORDER", "LIMIT", "OFFSET", "AS", "AND", "OR", "NOT", "IN", "IS",
        "NULL", "TRUE", "FALSE", "BETWEEN", "LIKE", "CASE", "WHEN", "THEN",
        "ELSE", "END", "CAST", "JOIN", "INNER", "LEFT", "RIGHT", "OUTER",
        "CROSS", "ON", "UNION", "INTERSECT", "EXCEPT", "ALL", "ASC", "DESC",
        "EXISTS", "DATE", "OVER", "PARTITION",
    }
)

#: Multi-character operators must be matched before their prefixes.
_OPERATORS = ("<>", "!=", "<=", ">=", "||", "=", "<", ">", "+", "-", "*", "/", "%")

_PUNCTUATION = "(),."


def _is_ascii_digit(char: str) -> bool:
    """ASCII-only digit test: ``str.isdigit`` accepts Unicode digits (e.g.
    superscripts) that ``int()`` rejects."""
    return "0" <= char <= "9"


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based)."""

    type: TokenType
    value: Any
    line: int
    column: int

    def matches_keyword(self, *keywords: str) -> bool:
        """True if this token is one of the given keywords."""
        return self.type == TokenType.KEYWORD and self.value in keywords

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.type.name}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Converts SQL text into a list of :class:`Token`.

    Usage::

        tokens = Lexer("SELECT 1").tokenize()
    """

    def __init__(self, text: str) -> None:
        self._text = text
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> List[Token]:
        """Tokenize the whole input, appending a trailing EOF token."""
        tokens: List[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.type == TokenType.EOF:
                return tokens

    # -- internals ---------------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        return self._text[index] if index < len(self._text) else ""

    def _advance(self, count: int = 1) -> str:
        consumed = self._text[self._pos : self._pos + count]
        for char in consumed:
            if char == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
        self._pos += count
        return consumed

    def _skip_whitespace_and_comments(self) -> None:
        while self._pos < len(self._text):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "-" and self._peek(1) == "-":
                while self._pos < len(self._text) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._pos < len(self._text):
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance(2)
                        break
                    self._advance()
                else:
                    raise ParseError("unterminated block comment", self._line, self._column)
            else:
                return

    def _next_token(self) -> Token:
        self._skip_whitespace_and_comments()
        line, column = self._line, self._column
        if self._pos >= len(self._text):
            return Token(TokenType.EOF, None, line, column)
        char = self._peek()
        if _is_ascii_digit(char) or (char == "." and _is_ascii_digit(self._peek(1))):
            return self._lex_number(line, column)
        if char == "'":
            return self._lex_string(line, column)
        if char == '"':
            return self._lex_quoted_identifier(line, column)
        if char.isalpha() or char == "_":
            return self._lex_word(line, column)
        for operator in _OPERATORS:
            if self._text.startswith(operator, self._pos):
                self._advance(len(operator))
                # Normalize != to the SQL-standard spelling.
                value = "<>" if operator == "!=" else operator
                return Token(TokenType.OPERATOR, value, line, column)
        if char in _PUNCTUATION:
            self._advance()
            return Token(TokenType.PUNCTUATION, char, line, column)
        raise ParseError(f"unexpected character {char!r}", line, column)

    def _lex_number(self, line: int, column: int) -> Token:
        start = self._pos
        saw_dot = False
        saw_exponent = False
        while self._pos < len(self._text):
            char = self._peek()
            if _is_ascii_digit(char):
                self._advance()
            elif char == "." and not saw_dot and not saw_exponent:
                # A dot not followed by a digit is punctuation (e.g. "1.e"?
                # we accept "1." as float, matching SQL lexers).
                saw_dot = True
                self._advance()
            elif (
                char in "eE"
                and not saw_exponent
                and (
                    _is_ascii_digit(self._peek(1))
                    or (self._peek(1) in "+-" and _is_ascii_digit(self._peek(2)))
                )
            ):
                saw_exponent = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
            else:
                break
        text = self._text[start : self._pos]
        if saw_dot or saw_exponent:
            return Token(TokenType.FLOAT, float(text), line, column)
        return Token(TokenType.INTEGER, int(text), line, column)

    def _lex_string(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        pieces: List[str] = []
        while True:
            if self._pos >= len(self._text):
                raise ParseError("unterminated string literal", line, column)
            char = self._peek()
            if char == "'":
                if self._peek(1) == "'":  # doubled quote = escaped quote
                    pieces.append("'")
                    self._advance(2)
                else:
                    self._advance()
                    return Token(TokenType.STRING, "".join(pieces), line, column)
            else:
                pieces.append(char)
                self._advance()

    def _lex_quoted_identifier(self, line: int, column: int) -> Token:
        self._advance()  # opening quote
        pieces: List[str] = []
        while True:
            if self._pos >= len(self._text):
                raise ParseError("unterminated quoted identifier", line, column)
            char = self._peek()
            if char == '"':
                if self._peek(1) == '"':
                    pieces.append('"')
                    self._advance(2)
                else:
                    self._advance()
                    if not pieces:
                        raise ParseError("empty quoted identifier", line, column)
                    return Token(TokenType.IDENTIFIER, "".join(pieces), line, column)
            else:
                pieces.append(char)
                self._advance()

    def _lex_word(self, line: int, column: int) -> Token:
        start = self._pos
        while self._pos < len(self._text) and (self._peek().isalnum() or self._peek() == "_"):
            self._advance()
        word = self._text[start : self._pos]
        upper = word.upper()
        if upper in KEYWORDS:
            return Token(TokenType.KEYWORD, upper, line, column)
        return Token(TokenType.IDENTIFIER, word, line, column)

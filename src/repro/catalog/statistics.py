"""Table and column statistics for cost-based distributed optimization.

Statistics are gathered by the mediator's ``ANALYZE`` (which scans each
source once through its wrapper) or supplied directly by sources that
maintain their own. The estimator consumes:

* table row counts,
* per-column null fraction, distinct count, min/max, average width,
* optional **equi-depth histograms** for skew-aware selectivity.

Equi-depth (equi-height) histograms were the state of the art of the era
(Piatetsky-Shapiro & Connell, SIGMOD 1984) and remain what most engines use;
experiment T4 ablates them against the uniform-distribution assumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import date
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..datatypes import DataType, wire_width
from ..errors import GISError
from .schema import TableSchema

#: Default number of histogram buckets gathered by ANALYZE.
DEFAULT_HISTOGRAM_BUCKETS = 32


@dataclass(frozen=True)
class _Bucket:
    """One equi-depth bucket: values in (lower, upper], with lower inclusive
    for the first bucket."""

    lower: Any
    upper: Any
    count: int
    distinct: int


class EquiDepthHistogram:
    """An equi-depth histogram over one column's non-null values.

    Buckets hold (approximately) equal row counts, so frequent values occupy
    many narrow buckets — range selectivity on skewed data stays accurate
    where it matters.
    """

    def __init__(self, buckets: Sequence[_Bucket]) -> None:
        if not buckets:
            raise GISError("histogram requires at least one bucket")
        self._buckets = list(buckets)
        self._uppers = [b.upper for b in self._buckets]
        self._total = sum(b.count for b in self._buckets)

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)

    @property
    def total_rows(self) -> int:
        """Non-null rows summarized by this histogram."""
        return self._total

    @staticmethod
    def build(values: Sequence[Any], buckets: int = DEFAULT_HISTOGRAM_BUCKETS) -> Optional["EquiDepthHistogram"]:
        """Build from a column's non-null values; None for empty input."""
        data = sorted(v for v in values if v is not None)
        if not data:
            return None
        buckets = max(1, min(buckets, len(data)))
        per_bucket = len(data) / buckets
        result: List[_Bucket] = []
        start = 0
        for i in range(buckets):
            end = len(data) if i == buckets - 1 else int(round((i + 1) * per_bucket))
            end = max(end, start + 1)
            end = min(end, len(data))
            chunk = data[start:end]
            if not chunk:
                break
            distinct = 1
            for prev, cur in zip(chunk, chunk[1:]):
                if cur != prev:
                    distinct += 1
            result.append(_Bucket(chunk[0], chunk[-1], len(chunk), distinct))
            start = end
            if start >= len(data):
                break
        return EquiDepthHistogram(result)

    # -- persistence (catalog journal) ---------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form; bucket bounds round-trip exactly."""
        return {
            "buckets": [
                [
                    _encode_value(b.lower),
                    _encode_value(b.upper),
                    b.count,
                    b.distinct,
                ]
                for b in self._buckets
            ]
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "EquiDepthHistogram":
        """Rebuild a histogram from its :meth:`to_dict` form."""
        return EquiDepthHistogram(
            [
                _Bucket(
                    _decode_value(lower), _decode_value(upper),
                    int(count), int(distinct),
                )
                for lower, upper, count, distinct in data["buckets"]
            ]
        )

    # -- selectivity estimates ---------------------------------------------
    #
    # All return a fraction of the *non-null* rows in [0, 1].

    def selectivity_eq(self, value: Any) -> float:
        """Estimated fraction of rows equal to ``value``."""
        matched = 0.0
        for bucket in self._buckets:
            if bucket.lower <= value <= bucket.upper:
                matched += bucket.count / max(bucket.distinct, 1)
        return min(matched / self._total, 1.0)

    def selectivity_le(self, value: Any) -> float:
        """Estimated fraction of rows with column <= value."""
        rows = 0.0
        for bucket in self._buckets:
            if bucket.upper <= value:
                rows += bucket.count
            elif bucket.lower > value:
                break
            else:
                rows += bucket.count * _fraction_within(bucket, value)
        return min(rows / self._total, 1.0)

    def selectivity_lt(self, value: Any) -> float:
        """Estimated fraction of rows with column < value."""
        return max(self.selectivity_le(value) - self.selectivity_eq(value), 0.0)

    def selectivity_range(
        self,
        low: Optional[Any],
        high: Optional[Any],
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> float:
        """Estimated fraction of rows within [low, high] (open ends = None)."""
        upper = 1.0
        if high is not None:
            upper = self.selectivity_le(high) if high_inclusive else self.selectivity_lt(high)
        lower = 0.0
        if low is not None:
            lower = self.selectivity_lt(low) if low_inclusive else self.selectivity_le(low)
        return max(upper - lower, 0.0)


def _encode_value(value: Any) -> Any:
    """JSON-encode one statistics value (dates get a type tag)."""
    if isinstance(value, date):
        return {"$date": value.isoformat()}
    return value


def _decode_value(value: Any) -> Any:
    """Invert :func:`_encode_value`."""
    if isinstance(value, dict) and "$date" in value:
        return date.fromisoformat(value["$date"])
    return value


def _fraction_within(bucket: _Bucket, value: Any) -> float:
    """Fraction of a bucket's rows at or below ``value`` (linear interpolation
    for numerics; half-bucket fallback otherwise)."""
    lower, upper = bucket.lower, bucket.upper
    if isinstance(lower, (int, float)) and isinstance(upper, (int, float)) and upper > lower:
        return min(max((value - lower) / (upper - lower), 0.0), 1.0)
    return 0.5


@dataclass
class ColumnStatistics:
    """Summary statistics for one column."""

    null_fraction: float = 0.0
    distinct_count: float = 1.0
    min_value: Optional[Any] = None
    max_value: Optional[Any] = None
    avg_width: float = 8.0
    histogram: Optional[EquiDepthHistogram] = None

    @staticmethod
    def from_values(
        values: Sequence[Any],
        dtype: DataType,
        histogram_buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
    ) -> "ColumnStatistics":
        """Compute statistics from a full column scan."""
        total = len(values)
        non_null = [v for v in values if v is not None]
        null_fraction = (total - len(non_null)) / total if total else 0.0
        distinct = float(len(set(non_null))) if non_null else 0.0
        min_value = min(non_null) if non_null else None
        max_value = max(non_null) if non_null else None
        if dtype == DataType.TEXT and non_null:
            avg_width = sum(len(v) for v in non_null) / len(non_null)
        else:
            avg_width = wire_width(dtype)
        histogram = (
            EquiDepthHistogram.build(non_null, histogram_buckets)
            if histogram_buckets > 0
            else None
        )
        return ColumnStatistics(
            null_fraction=null_fraction,
            distinct_count=max(distinct, 1.0) if total else 1.0,
            min_value=min_value,
            max_value=max_value,
            avg_width=avg_width,
            histogram=histogram,
        )

    # -- persistence (catalog journal) ---------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form for the catalog journal."""
        return {
            "null_fraction": self.null_fraction,
            "distinct_count": self.distinct_count,
            "min_value": _encode_value(self.min_value),
            "max_value": _encode_value(self.max_value),
            "avg_width": self.avg_width,
            "histogram": (
                self.histogram.to_dict() if self.histogram is not None else None
            ),
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "ColumnStatistics":
        """Rebuild column statistics from their :meth:`to_dict` form."""
        histogram = data.get("histogram")
        return ColumnStatistics(
            null_fraction=float(data["null_fraction"]),
            distinct_count=float(data["distinct_count"]),
            min_value=_decode_value(data.get("min_value")),
            max_value=_decode_value(data.get("max_value")),
            avg_width=float(data["avg_width"]),
            histogram=(
                EquiDepthHistogram.from_dict(histogram)
                if histogram is not None
                else None
            ),
        )


@dataclass
class TableStatistics:
    """Statistics for one (global or source) table."""

    row_count: float
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)

    @staticmethod
    def from_rows(
        schema: TableSchema,
        rows: Sequence[Tuple[Any, ...]],
        histogram_buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
    ) -> "TableStatistics":
        """Compute full statistics from a table scan.

        Column keys are stored lower-cased; use :meth:`column` for lookups.
        """
        stats: Dict[str, ColumnStatistics] = {}
        for index, column in enumerate(schema.columns):
            values = [row[index] for row in rows]
            stats[column.name.lower()] = ColumnStatistics.from_values(
                values, column.dtype, histogram_buckets
            )
        return TableStatistics(row_count=float(len(rows)), columns=stats)

    def column(self, name: str) -> Optional[ColumnStatistics]:
        """Look up column statistics by (case-insensitive) name."""
        return self.columns.get(name.lower())

    # -- persistence (catalog journal) ---------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form; round-trips exactly, so plans costed from
        recovered statistics are identical to pre-crash plans."""
        return {
            "row_count": self.row_count,
            "columns": {
                name: stats.to_dict() for name, stats in self.columns.items()
            },
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "TableStatistics":
        """Rebuild table statistics from their :meth:`to_dict` form."""
        return TableStatistics(
            row_count=float(data["row_count"]),
            columns={
                name: ColumnStatistics.from_dict(stats)
                for name, stats in dict(data.get("columns", {})).items()
            },
        )

    def average_row_width(self, schema: TableSchema) -> float:
        """Estimated bytes per row on the simulated wire."""
        total = 0.0
        for column in schema.columns:
            stats = self.column(column.name)
            if stats is not None:
                total += stats.avg_width
            else:
                total += wire_width(column.dtype)
        return total

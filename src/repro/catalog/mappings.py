"""Mappings from global tables to source-native tables.

A :class:`TableMapping` records where a global table physically lives: the
owning source, the table's *native* name there, and per-column renames. The
pushdown planner uses it to translate fragment plans into each component
system's own vocabulary — the wrapper half of schema integration.

Integration views (global virtual tables defined over other global tables,
e.g. a UNION ALL over horizontal partitions) are stored as SQL text on the
catalog entry and expanded by the analyzer, so they need no class here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..errors import CatalogError
from .schema import TableSchema


@dataclass
class TableMapping:
    """Binding of a global table to one source's native table.

    ``column_map`` maps *global* column names (case-insensitive) to the
    source's native column names; unmapped columns keep their global name.

    Example::

        TableMapping(source="crm", remote_table="CUST_MASTER",
                     column_map={"customer_id": "CM_ID", "name": "CM_NAME"})
    """

    source: str
    remote_table: str
    column_map: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Normalize keys for case-insensitive lookup, keep values verbatim.
        self.column_map = {k.lower(): v for k, v in self.column_map.items()}

    def remote_column(self, global_name: str) -> str:
        """Native column name for a global column."""
        return self.column_map.get(global_name.lower(), global_name)

    def validate_against(self, schema: TableSchema) -> None:
        """Reject mappings that rename columns the schema doesn't declare."""
        for global_name in self.column_map:
            if not schema.has_column(global_name):
                raise CatalogError(
                    f"mapping for table {schema.name!r} renames unknown column "
                    f"{global_name!r}"
                )

    # -- persistence (catalog journal) ---------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form for the catalog journal."""
        return {
            "source": self.source,
            "remote_table": self.remote_table,
            "column_map": dict(self.column_map),
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "TableMapping":
        """Rebuild a mapping from its :meth:`to_dict` form."""
        return TableMapping(
            source=str(data["source"]),
            remote_table=str(data["remote_table"]),
            column_map=dict(data.get("column_map") or {}),  # type: ignore[arg-type]
        )

"""The mediator's live global catalog.

Holds three registries, all keyed case-insensitively:

* **sources** — wrapper adapters for component systems;
* **tables** — global base tables (each with a :class:`TableMapping` to its
  source) and integration views (stored as SQL text, expanded at bind time);
* **statistics** — per-table :class:`TableStatistics` gathered by ANALYZE.

The catalog is *live*: it is the system of record for what the federation
looks like right now, and every mutation is versioned and observable.

* :attr:`Catalog.versions` (:class:`~repro.catalog.versions.CatalogVersions`)
  is the single invalidation authority — per-source epochs, per-table
  schema and statistics versions, and a global catalog epoch, all bumped
  here, in the mutation, never by callers.
* Every mutation publishes a typed
  :class:`~repro.catalog.events.CatalogEvent` to subscribers *after* the
  state change commits. The mediator subscribes to drop affected cached
  state; the catalog journal subscribes to persist the operation.

Runtime lifecycle goes beyond build-time registration:
:meth:`unregister_source` detaches a component system mid-flight
(promoting surviving replicas to primaries, dropping tables with no other
copy, and cleaning up dangling replicas), :meth:`alter_table` swaps in a
new schema/mapping, and :meth:`notify_source_changed` advances a source's
epoch when its data moved out of band.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import CatalogError, DuplicateObjectError, UnknownObjectError
from . import events as ev
from .events import CatalogEvent
from .mappings import TableMapping
from .schema import TableSchema
from .statistics import TableStatistics
from .versions import CatalogVersions


@dataclass
class CatalogTable:
    """A catalog entry: either a mapped base table or an integration view.

    Exactly one of ``mapping`` / ``view_sql`` is set. Views carry their
    schema too once first bound (the analyzer derives and caches it).

    ``replicas`` lists *additional* copies of a base table on other
    sources; ``mapping`` stays the primary (used by ANALYZE and as the
    default when replica selection is off).
    """

    name: str
    schema: Optional[TableSchema]
    mapping: Optional[TableMapping] = None
    view_sql: Optional[str] = None
    replicas: List[TableMapping] = field(default_factory=list)

    @property
    def is_view(self) -> bool:
        return self.view_sql is not None

    def all_mappings(self) -> List[TableMapping]:
        """Primary mapping plus every replica (empty for views)."""
        if self.mapping is None:
            return []
        return [self.mapping, *self.replicas]


class Catalog:
    """Live registry of sources, global tables, views, and statistics."""

    def __init__(self, versions: Optional[CatalogVersions] = None) -> None:
        self._sources: Dict[str, Any] = {}
        self._source_display: Dict[str, str] = {}
        self._source_specs: Dict[str, Optional[Dict[str, Any]]] = {}
        self._tables: Dict[str, CatalogTable] = {}
        self._statistics: Dict[str, TableStatistics] = {}
        self.versions = versions or CatalogVersions()
        self._subscribers: List[Callable[[CatalogEvent], None]] = []
        self._subscribers_lock = threading.Lock()

    # -- events ---------------------------------------------------------------

    def subscribe(self, callback: Callable[[CatalogEvent], None]) -> None:
        """Register an event subscriber (called after each mutation,
        on the mutating thread, in mutation order)."""
        with self._subscribers_lock:
            self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[CatalogEvent], None]) -> None:
        with self._subscribers_lock:
            if callback in self._subscribers:
                self._subscribers.remove(callback)

    def publish(
        self,
        kind: str,
        name: str = "",
        source: str = "",
        payload: Optional[Dict[str, Any]] = None,
    ) -> CatalogEvent:
        """Bump the catalog epoch and notify subscribers of one event.

        Mutations call this last, after their state change commits. The
        mediator also publishes its own catalog-adjacent events here
        (materialized-view DDL), so the journal sees one ordered stream.
        """
        event = CatalogEvent(
            kind=kind,
            name=name,
            source=source.lower(),
            payload=payload or {},
            catalog_epoch=self.versions.bump_catalog(),
        )
        with self._subscribers_lock:
            subscribers = list(self._subscribers)
        for callback in subscribers:
            callback(event)
        return event

    # -- sources -------------------------------------------------------------

    def register_source(
        self, name: str, adapter: Any, spec: Optional[Dict[str, Any]] = None
    ) -> None:
        """Register a component system's wrapper under a federation-unique
        name.

        ``spec`` is the optional declarative connector spec (the
        ``config.py`` source dictionary). It is what the catalog journal
        records, and what recovery uses to reattach the source after a
        restart — a source registered without one is *ephemeral*: fully
        functional, but skipped by recovery.
        """
        key = name.lower()
        if key in self._sources:
            raise DuplicateObjectError(f"source {name!r} is already registered")
        self._sources[key] = adapter
        self._source_display[key] = name
        self._source_specs[key] = dict(spec) if spec is not None else None
        self.publish(
            ev.SOURCE_REGISTERED, name=name, source=name,
            payload={"spec": self._source_specs[key]},
        )

    def unregister_source(self, name: str) -> Dict[str, List[str]]:
        """Detach a component system at runtime, cleaning up everything
        that pointed at it.

        Base tables whose *primary* mapping lives on the source are
        re-pointed at a surviving replica when one exists (promotion —
        the table stays queryable) and dropped otherwise. Replicas on the
        source are dropped from surviving tables, so no dangling replica
        outlives its source. The source's epoch is bumped, so any cached
        state keyed on it dies even if the name is later reused.

        Returns a report of the cascade: ``{"dropped_tables": [...],
        "promoted_tables": [...], "dropped_replicas": [...]}``.
        """
        key = name.lower()
        if key not in self._sources:
            raise UnknownObjectError(f"unknown source: {name!r}")
        display = self._source_display[key]
        report: Dict[str, List[str]] = {
            "dropped_tables": [],
            "promoted_tables": [],
            "dropped_replicas": [],
        }
        for table_key in list(self._tables):
            entry = self._tables.get(table_key)
            if entry is None or entry.mapping is None:
                continue
            survivors = [
                m for m in entry.replicas if m.source.lower() != key
            ]
            lost_replicas = len(entry.replicas) - len(survivors)
            if entry.mapping.source.lower() == key:
                if survivors:
                    # Promote the first surviving replica to primary.
                    entry.mapping = survivors[0]
                    entry.replicas = survivors[1:]
                    self.versions.bump_schema(entry.name)
                    self.versions.bump(entry.mapping.source)
                    report["promoted_tables"].append(entry.name)
                    self.publish(
                        ev.TABLE_ALTERED, name=entry.name,
                        source=entry.mapping.source,
                        payload={
                            "cascade": True, "promoted_from": display,
                            **self._table_payload(entry),
                        },
                    )
                else:
                    del self._tables[table_key]
                    self._statistics.pop(table_key, None)
                    report["dropped_tables"].append(entry.name)
                    self.publish(
                        ev.TABLE_DROPPED, name=entry.name, source=display,
                        payload={
                            "cascade": True,
                            "mapping": entry.mapping.to_dict(),
                        },
                    )
            elif lost_replicas:
                entry.replicas = survivors
                report["dropped_replicas"].extend(
                    [entry.name] * lost_replicas
                )
                self.publish(
                    ev.REPLICA_DROPPED, name=entry.name, source=display,
                    payload={"cascade": True, "count": lost_replicas},
                )
        del self._sources[key]
        del self._source_display[key]
        self._source_specs.pop(key, None)
        self.versions.bump(key)
        self.publish(
            ev.SOURCE_UNREGISTERED, name=display, source=display,
            payload={"report": report},
        )
        return report

    def source(self, name: str) -> Any:
        """Look up a source adapter by name."""
        adapter = self._sources.get(name.lower())
        if adapter is None:
            raise UnknownObjectError(f"unknown source: {name!r}")
        return adapter

    def source_spec(self, name: str) -> Optional[Dict[str, Any]]:
        """The declarative connector spec a source was registered with
        (None for ephemeral, programmatically attached sources)."""
        self.source(name)  # validate
        return self._source_specs.get(name.lower())

    def has_source(self, name: str) -> bool:
        return name.lower() in self._sources

    def source_names(self) -> List[str]:
        """Registered source names in registration order."""
        return list(self._source_display.values())

    def notify_source_changed(self, source: str) -> int:
        """Record that a source's data moved out of band: bump its epoch
        (lazily invalidating fragment-cache entries and materialized
        snapshots built on the old one) and publish the event."""
        self.source(source)  # validate the name
        epoch = self.versions.bump(source)
        self.publish(
            ev.SOURCE_CHANGED, name=source, source=source,
            payload={"source_epoch": epoch},
        )
        return epoch

    # -- tables and views ------------------------------------------------------

    def register_table(
        self, name: str, schema: TableSchema, mapping: TableMapping
    ) -> None:
        """Register a global base table mapped onto one source."""
        key = name.lower()
        if key in self._tables:
            raise DuplicateObjectError(f"table or view {name!r} is already registered")
        if not self.has_source(mapping.source):
            raise UnknownObjectError(
                f"table {name!r} maps to unknown source {mapping.source!r}"
            )
        mapping.validate_against(schema)
        entry = CatalogTable(name=name, schema=schema, mapping=mapping)
        self._tables[key] = entry
        self.versions.bump_schema(name)
        self.versions.bump(mapping.source)
        self.publish(
            ev.TABLE_REGISTERED, name=name, source=mapping.source,
            payload=self._table_payload(entry),
        )

    def alter_table(
        self,
        name: str,
        schema: TableSchema,
        mapping: Optional[TableMapping] = None,
        replicas: Optional[List[TableMapping]] = None,
    ) -> None:
        """Swap in a new schema (and optionally mapping/replicas) for a
        base table — the catalog half of reacting to a source-side schema
        change.

        Statistics gathered under the old schema are dropped (they may
        describe columns that no longer exist); the table's schema
        version and the owning source's epoch advance, so every cached
        plan and fragment dies.
        """
        entry = self.table(name)
        if entry.is_view:
            raise CatalogError(f"cannot alter view {name!r}")
        new_mapping = mapping if mapping is not None else entry.mapping
        assert new_mapping is not None
        if not self.has_source(new_mapping.source):
            raise UnknownObjectError(
                f"table {name!r} maps to unknown source {new_mapping.source!r}"
            )
        new_mapping.validate_against(schema)
        new_replicas = replicas if replicas is not None else entry.replicas
        for replica in new_replicas:
            if not self.has_source(replica.source):
                raise UnknownObjectError(
                    f"replica of {name!r} maps to unknown source "
                    f"{replica.source!r}"
                )
        old_source = entry.mapping.source if entry.mapping else None
        entry.schema = schema
        entry.mapping = new_mapping
        entry.replicas = list(new_replicas)
        self._statistics.pop(name.lower(), None)
        self.versions.bump_schema(name)
        self.versions.bump(new_mapping.source)
        if old_source and old_source.lower() != new_mapping.source.lower():
            # The table moved: fragments cached from the old home die too.
            self.versions.bump(old_source)
        self.publish(
            ev.TABLE_ALTERED, name=entry.name, source=new_mapping.source,
            payload=self._table_payload(entry),
        )

    def add_replica(self, table_name: str, mapping: TableMapping) -> None:
        """Attach an additional physical copy of a base table."""
        entry = self.table(table_name)
        if entry.is_view or entry.schema is None:
            raise CatalogError(f"cannot add a replica to view {table_name!r}")
        if not self.has_source(mapping.source):
            raise UnknownObjectError(
                f"replica of {table_name!r} maps to unknown source "
                f"{mapping.source!r}"
            )
        mapping.validate_against(entry.schema)
        entry.replicas.append(mapping)
        self.versions.bump(mapping.source)
        self.publish(
            ev.REPLICA_ADDED, name=entry.name, source=mapping.source,
            payload={"mapping": mapping.to_dict()},
        )

    def register_view(self, name: str, sql: str) -> None:
        """Register an integration view (GAV) defined by a SQL query.

        The view's schema is derived lazily on first bind; registration only
        checks name uniqueness so views may reference tables registered later.
        """
        key = name.lower()
        if key in self._tables:
            raise DuplicateObjectError(f"table or view {name!r} is already registered")
        self._tables[key] = CatalogTable(name=name, schema=None, view_sql=sql)
        self.publish(ev.VIEW_REGISTERED, name=name, payload={"sql": sql})

    def drop(self, name: str) -> None:
        """Remove a table or view (and its statistics)."""
        key = name.lower()
        entry = self._tables.get(key)
        if entry is None:
            raise UnknownObjectError(f"unknown table or view: {name!r}")
        del self._tables[key]
        self._statistics.pop(key, None)
        if entry.is_view:
            self.publish(ev.VIEW_DROPPED, name=entry.name)
        else:
            assert entry.mapping is not None
            for mapping in entry.all_mappings():
                self.versions.bump(mapping.source)
            self.publish(
                ev.TABLE_DROPPED, name=entry.name,
                source=entry.mapping.source,
                payload={"mapping": entry.mapping.to_dict()},
            )

    def table(self, name: str) -> CatalogTable:
        """Look up a table or view entry by name."""
        entry = self._tables.get(name.lower())
        if entry is None:
            raise UnknownObjectError(f"unknown table or view: {name!r}")
        return entry

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> List[str]:
        """All registered table and view names."""
        return [entry.name for entry in self._tables.values()]

    def tables_on_source(self, source_name: str) -> List[CatalogTable]:
        """Base tables mapped onto a given source."""
        key = source_name.lower()
        return [
            entry
            for entry in self._tables.values()
            if entry.mapping is not None and entry.mapping.source.lower() == key
        ]

    def cache_view_schema(self, name: str, schema: TableSchema) -> None:
        """Cache a derived view schema (set by the analyzer on first bind).

        A derived cache, not a semantic change: no version bump, no event.
        """
        self.table(name).schema = schema

    @staticmethod
    def _table_payload(entry: CatalogTable) -> Dict[str, Any]:
        """Serialize a table entry for event payloads / the journal."""
        return {
            "schema": entry.schema.to_dict() if entry.schema else None,
            "mapping": entry.mapping.to_dict() if entry.mapping else None,
            "replicas": [m.to_dict() for m in entry.replicas],
        }

    # -- statistics -----------------------------------------------------------

    def set_statistics(self, table_name: str, statistics: TableStatistics) -> None:
        """Attach statistics to a table (normally via mediator.analyze()).

        Bumps the table's statistics version and the owning source's
        epoch — cost models baked into cached plans are stale now.
        """
        entry = self._tables.get(table_name.lower())
        if entry is None:
            raise UnknownObjectError(f"unknown table or view: {table_name!r}")
        self._statistics[table_name.lower()] = statistics
        self.versions.bump_stats(entry.name)
        source = ""
        if entry.mapping is not None:
            source = entry.mapping.source
            self.versions.bump(source)
        self.publish(
            ev.STATS_UPDATED, name=entry.name, source=source,
            payload={"statistics": statistics.to_dict()},
        )

    def statistics(self, table_name: str) -> Optional[TableStatistics]:
        """Statistics for a table, or None if never analyzed."""
        return self._statistics.get(table_name.lower())

    def clear_statistics(self) -> None:
        """Drop all gathered statistics (used by the stats-ablation bench)."""
        self._statistics.clear()
        self.publish(ev.STATS_CLEARED)

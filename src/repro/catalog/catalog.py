"""The mediator's global catalog.

Holds three registries, all keyed case-insensitively:

* **sources** — wrapper adapters for component systems;
* **tables** — global base tables (each with a :class:`TableMapping` to its
  source) and integration views (stored as SQL text, expanded at bind time);
* **statistics** — per-table :class:`TableStatistics` gathered by ANALYZE.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..errors import CatalogError, DuplicateObjectError, UnknownObjectError
from .mappings import TableMapping
from .schema import TableSchema
from .statistics import TableStatistics


@dataclass
class CatalogTable:
    """A catalog entry: either a mapped base table or an integration view.

    Exactly one of ``mapping`` / ``view_sql`` is set. Views carry their
    schema too once first bound (the analyzer derives and caches it).

    ``replicas`` lists *additional* copies of a base table on other
    sources; ``mapping`` stays the primary (used by ANALYZE and as the
    default when replica selection is off).
    """

    name: str
    schema: Optional[TableSchema]
    mapping: Optional[TableMapping] = None
    view_sql: Optional[str] = None
    replicas: List[TableMapping] = field(default_factory=list)

    @property
    def is_view(self) -> bool:
        return self.view_sql is not None

    def all_mappings(self) -> List[TableMapping]:
        """Primary mapping plus every replica (empty for views)."""
        if self.mapping is None:
            return []
        return [self.mapping, *self.replicas]


class Catalog:
    """Registry of sources, global tables, views, and statistics."""

    def __init__(self) -> None:
        self._sources: Dict[str, Any] = {}
        self._source_display: Dict[str, str] = {}
        self._tables: Dict[str, CatalogTable] = {}
        self._statistics: Dict[str, TableStatistics] = {}

    # -- sources -------------------------------------------------------------

    def register_source(self, name: str, adapter: Any) -> None:
        """Register a component system's wrapper under a federation-unique name."""
        key = name.lower()
        if key in self._sources:
            raise DuplicateObjectError(f"source {name!r} is already registered")
        self._sources[key] = adapter
        self._source_display[key] = name

    def source(self, name: str) -> Any:
        """Look up a source adapter by name."""
        adapter = self._sources.get(name.lower())
        if adapter is None:
            raise UnknownObjectError(f"unknown source: {name!r}")
        return adapter

    def has_source(self, name: str) -> bool:
        return name.lower() in self._sources

    def source_names(self) -> List[str]:
        """Registered source names in registration order."""
        return list(self._source_display.values())

    # -- tables and views ------------------------------------------------------

    def register_table(
        self, name: str, schema: TableSchema, mapping: TableMapping
    ) -> None:
        """Register a global base table mapped onto one source."""
        key = name.lower()
        if key in self._tables:
            raise DuplicateObjectError(f"table or view {name!r} is already registered")
        if not self.has_source(mapping.source):
            raise UnknownObjectError(
                f"table {name!r} maps to unknown source {mapping.source!r}"
            )
        mapping.validate_against(schema)
        self._tables[key] = CatalogTable(name=name, schema=schema, mapping=mapping)

    def add_replica(self, table_name: str, mapping: TableMapping) -> None:
        """Attach an additional physical copy of a base table."""
        entry = self.table(table_name)
        if entry.is_view or entry.schema is None:
            raise CatalogError(f"cannot add a replica to view {table_name!r}")
        if not self.has_source(mapping.source):
            raise UnknownObjectError(
                f"replica of {table_name!r} maps to unknown source "
                f"{mapping.source!r}"
            )
        mapping.validate_against(entry.schema)
        entry.replicas.append(mapping)

    def register_view(self, name: str, sql: str) -> None:
        """Register an integration view (GAV) defined by a SQL query.

        The view's schema is derived lazily on first bind; registration only
        checks name uniqueness so views may reference tables registered later.
        """
        key = name.lower()
        if key in self._tables:
            raise DuplicateObjectError(f"table or view {name!r} is already registered")
        self._tables[key] = CatalogTable(name=name, schema=None, view_sql=sql)

    def drop(self, name: str) -> None:
        """Remove a table or view (and its statistics)."""
        key = name.lower()
        if key not in self._tables:
            raise UnknownObjectError(f"unknown table or view: {name!r}")
        del self._tables[key]
        self._statistics.pop(key, None)

    def table(self, name: str) -> CatalogTable:
        """Look up a table or view entry by name."""
        entry = self._tables.get(name.lower())
        if entry is None:
            raise UnknownObjectError(f"unknown table or view: {name!r}")
        return entry

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> List[str]:
        """All registered table and view names."""
        return [entry.name for entry in self._tables.values()]

    def tables_on_source(self, source_name: str) -> List[CatalogTable]:
        """Base tables mapped onto a given source."""
        key = source_name.lower()
        return [
            entry
            for entry in self._tables.values()
            if entry.mapping is not None and entry.mapping.source.lower() == key
        ]

    def cache_view_schema(self, name: str, schema: TableSchema) -> None:
        """Cache a derived view schema (set by the analyzer on first bind)."""
        self.table(name).schema = schema

    # -- statistics -----------------------------------------------------------

    def set_statistics(self, table_name: str, statistics: TableStatistics) -> None:
        """Attach statistics to a table (normally via mediator.analyze())."""
        if table_name.lower() not in self._tables:
            raise UnknownObjectError(f"unknown table or view: {table_name!r}")
        self._statistics[table_name.lower()] = statistics

    def statistics(self, table_name: str) -> Optional[TableStatistics]:
        """Statistics for a table, or None if never analyzed."""
        return self._statistics.get(table_name.lower())

    def clear_statistics(self) -> None:
        """Drop all gathered statistics (used by the stats-ablation bench)."""
        self._statistics.clear()

"""Typed catalog events: the notification stream every layer reacts to.

Each mutation of the live catalog commits its state change, bumps the
relevant :class:`~repro.catalog.versions.CatalogVersions` counters, and
then publishes one :class:`CatalogEvent` to every subscriber. Subscribers
react by dropping exactly the affected cached state: the mediator clears
the plan/result caches, evicts the dead source's fragment-cache entries,
forgets its circuit breaker, and the catalog journal appends the event as
its persistence record.

Events fire *after* the mutation is visible, on the mutating thread, in
mutation order. Cascade events (payload ``cascade: true``) describe side
effects of a parent operation — e.g. the tables dropped by
``unregister_source`` — and are skipped by the journal because replaying
the parent op re-derives them deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

# -- event kinds -------------------------------------------------------------

SOURCE_REGISTERED = "source_registered"
SOURCE_UNREGISTERED = "source_unregistered"
SOURCE_CHANGED = "source_changed"
TABLE_REGISTERED = "table_registered"
TABLE_ALTERED = "table_altered"
TABLE_DROPPED = "table_dropped"
VIEW_REGISTERED = "view_registered"
VIEW_DROPPED = "view_dropped"
REPLICA_ADDED = "replica_added"
REPLICA_DROPPED = "replica_dropped"
STATS_UPDATED = "stats_updated"
STATS_CLEARED = "stats_cleared"
MATERIALIZED_CREATED = "materialized_created"
MATERIALIZED_DROPPED = "materialized_dropped"
CATALOG_RECOVERED = "catalog_recovered"

ALL_KINDS = (
    SOURCE_REGISTERED,
    SOURCE_UNREGISTERED,
    SOURCE_CHANGED,
    TABLE_REGISTERED,
    TABLE_ALTERED,
    TABLE_DROPPED,
    VIEW_REGISTERED,
    VIEW_DROPPED,
    REPLICA_ADDED,
    REPLICA_DROPPED,
    STATS_UPDATED,
    STATS_CLEARED,
    MATERIALIZED_CREATED,
    MATERIALIZED_DROPPED,
    CATALOG_RECOVERED,
)


@dataclass(frozen=True)
class CatalogEvent:
    """One catalog state change, as published to subscribers.

    ``name`` is the affected object (table, view, or source name as the
    operator spelled it); ``source`` is the owning component system,
    lower-cased, when the event is source-scoped. ``payload`` carries the
    event's JSON-ready details (serialized schema/mapping/spec/stats —
    everything the journal needs to replay the operation).
    ``catalog_epoch`` is the global epoch *after* the mutation.
    """

    kind: str
    name: str = ""
    source: str = ""
    payload: Mapping[str, Any] = field(default_factory=dict)
    catalog_epoch: int = 0

    @property
    def is_cascade(self) -> bool:
        """True for side-effect events implied by a parent operation."""
        return bool(self.payload.get("cascade"))

"""Catalog persistence: an append-only journal with compacted snapshots.

The journal subscribes to the live catalog's event stream and appends one
JSON line per semantic operation — source/table/view registration and
removal, schema alterations, replica changes, ANALYZE results,
materialized-view DDL. Cascade events (``payload.cascade``) are *not*
journaled: replaying the parent operation re-derives them
deterministically, so persisting both would double-apply the cascade.

Every record carries the full catalog version vector *after* the event,
so recovery can restore a clock that is never behind the pre-crash one
(max-merge in :meth:`~repro.catalog.versions.CatalogVersions.restore`) —
epochs are **monotone across restarts** and recovered cache state can
never be mistaken for fresh.

Every ``snapshot_interval`` records the journal also appends a compacted
**snapshot record** capturing the whole catalog (declarative source
specs, table entries verbatim, statistics, materialized-view definitions,
versions). Recovery replays from the last snapshot forward, then rewrites
the file as one fresh snapshot, so the journal's length is bounded by the
interval, not by the mediator's uptime.

Sources are reattached through their **declarative connector specs** (the
``config.py`` source dictionaries, recorded at registration). A source
registered programmatically without a spec is *ephemeral*: recovery skips
it (and everything mapped onto it) and reports the skip, rather than
guessing at adapter construction.
"""

from __future__ import annotations

import json
import os
import threading
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..errors import GISError
from . import events as ev
from .events import CatalogEvent
from .mappings import TableMapping
from .schema import TableSchema
from .statistics import TableStatistics

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.mediator import GlobalInformationSystem

#: Journal records whose event kind is never persisted.
_UNJOURNALED = frozenset({ev.CATALOG_RECOVERED})

#: Default number of event records between compacted snapshots.
DEFAULT_SNAPSHOT_INTERVAL = 64


class CatalogJournal:
    """Append-only JSONL catalog journal with periodic snapshots.

    Attach one to a mediator (normally via the ``catalog`` config section
    or the mediator's ``catalog_journal_path`` argument); it then records
    every non-cascade catalog event. :meth:`recover` rebuilds a fresh
    mediator's catalog to the exact journaled state.
    """

    def __init__(
        self, path: str, snapshot_interval: int = DEFAULT_SNAPSHOT_INTERVAL
    ) -> None:
        if snapshot_interval < 1:
            raise GISError(
                f"journal snapshot_interval must be >= 1 (got {snapshot_interval})"
            )
        self.path = path
        self.snapshot_interval = snapshot_interval
        self._lock = threading.Lock()
        self._gis: Optional["GlobalInformationSystem"] = None
        self._suspended = False
        self._seq = 0
        self._last_snapshot_seq = 0
        self._since_snapshot = 0

    # -- recording -------------------------------------------------------------

    def attach(self, gis: "GlobalInformationSystem") -> None:
        """Subscribe to the mediator's catalog and start journaling."""
        self._gis = gis
        gis.catalog.subscribe(self._on_event)

    def _on_event(self, event: CatalogEvent) -> None:
        if self._suspended or event.is_cascade or event.kind in _UNJOURNALED:
            return
        gis = self._gis
        assert gis is not None
        with self._lock:
            self._seq += 1
            record = {
                "seq": self._seq,
                "kind": event.kind,
                "name": event.name,
                "source": event.source,
                "payload": dict(event.payload),
                "versions": gis.catalog.versions.state(),
            }
            self._append(record)
            self._since_snapshot += 1
            if self._since_snapshot >= self.snapshot_interval:
                self._write_snapshot_locked()

    def _append(self, record: Dict[str, Any]) -> None:
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def _write_snapshot_locked(self) -> None:
        gis = self._gis
        assert gis is not None
        self._seq += 1
        self._append(
            {"seq": self._seq, "kind": "snapshot", "state": self._capture(gis)}
        )
        self._last_snapshot_seq = self._seq
        self._since_snapshot = 0

    def checkpoint(self) -> None:
        """Force a snapshot record now (used after recovery compaction)."""
        with self._lock:
            self._write_snapshot_locked()

    def position(self) -> Dict[str, Any]:
        """Where the journal stands (for ``\\catalog`` and the serve op)."""
        with self._lock:
            return {
                "path": self.path,
                "seq": self._seq,
                "last_snapshot_seq": self._last_snapshot_seq,
                "records_since_snapshot": self._since_snapshot,
                "snapshot_interval": self.snapshot_interval,
            }

    # -- snapshot capture ------------------------------------------------------

    @staticmethod
    def _capture(gis: "GlobalInformationSystem") -> Dict[str, Any]:
        """Serialize the whole catalog: everything recovery needs, nothing
        derived (no cache contents, no adapter state)."""
        catalog = gis.catalog
        tables: List[Dict[str, Any]] = []
        statistics: Dict[str, Any] = {}
        for name in catalog.table_names():
            entry = catalog.table(name)
            tables.append(
                {
                    "name": entry.name,
                    "view_sql": entry.view_sql,
                    "schema": entry.schema.to_dict() if entry.schema else None,
                    "mapping": (
                        entry.mapping.to_dict() if entry.mapping else None
                    ),
                    "replicas": [m.to_dict() for m in entry.replicas],
                }
            )
            stats = catalog.statistics(name)
            if stats is not None:
                statistics[entry.name] = stats.to_dict()
        materialized = [
            {
                "name": view.name,
                "sql": view.select_sql,
                "staleness_ms": view.staleness_ms,
            }
            for view in (gis.materialized.get(n) for n in gis.materialized.names())
        ]
        return {
            "sources": [
                {"name": name, "spec": catalog.source_spec(name)}
                for name in catalog.source_names()
            ],
            "tables": tables,
            "statistics": statistics,
            "materialized": materialized,
            "versions": catalog.versions.state(),
        }

    # -- recovery --------------------------------------------------------------

    def recover(self) -> Dict[str, Any]:
        """Replay the journal into the attached (fresh) mediator.

        Applies the last snapshot, then every event after it, with
        journaling suspended; finally max-merges the journaled version
        vector (epochs stay monotone), publishes ``catalog_recovered``,
        and rewrites the journal as one compacted snapshot.

        Returns a report: records replayed, sources skipped for lack of a
        connector spec, and per-record replay errors (a journal written by
        a newer build never aborts recovery wholesale).
        """
        gis = self._gis
        if gis is None:
            raise GISError("journal is not attached to a mediator")
        report: Dict[str, Any] = {
            "recovered": False,
            "records_replayed": 0,
            "snapshot_used": False,
            "skipped_sources": [],
            "skipped": [],
            "errors": [],
        }
        records = self._read_records(report)
        if not records:
            return report
        start = 0
        snapshot: Optional[Dict[str, Any]] = None
        for index in range(len(records) - 1, -1, -1):
            if records[index].get("kind") == "snapshot":
                snapshot = records[index].get("state") or {}
                start = index + 1
                break
        self._suspended = True
        try:
            if snapshot is not None:
                report["snapshot_used"] = True
                self._apply_snapshot(gis, snapshot, report)
            for record in records[start:]:
                try:
                    self._apply_event(gis, record, report)
                except Exception as exc:  # keep replaying past bad records
                    report["errors"].append(
                        f"seq {record.get('seq')}: {exc}"
                    )
                report["records_replayed"] += 1
            last_versions = self._last_versions(records, snapshot)
            if last_versions:
                gis.catalog.versions.restore(last_versions)
        finally:
            self._suspended = False
        gis.catalog.publish(
            ev.CATALOG_RECOVERED,
            payload={
                "records_replayed": report["records_replayed"],
                "skipped_sources": list(report["skipped_sources"]),
            },
        )
        # Compact: the replayed history collapses into one fresh snapshot.
        self._compact()
        report["recovered"] = True
        return report

    def _read_records(self, report: Dict[str, Any]) -> List[Dict[str, Any]]:
        if not os.path.exists(self.path):
            return []
        records: List[Dict[str, Any]] = []
        with open(self.path, encoding="utf-8") as handle:
            for line_no, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    # A torn final write (crash mid-append) is expected;
                    # anything before it replays fine.
                    report["errors"].append(
                        f"line {line_no}: truncated or corrupt record dropped"
                    )
        return records

    @staticmethod
    def _last_versions(
        records: List[Dict[str, Any]], snapshot: Optional[Dict[str, Any]]
    ) -> Optional[Dict[str, Any]]:
        for record in reversed(records):
            if record.get("kind") == "snapshot":
                state = record.get("state") or {}
                return state.get("versions")
            if "versions" in record:
                return record["versions"]
        if snapshot is not None:
            return snapshot.get("versions")
        return None

    def _compact(self) -> None:
        with self._lock:
            temp = self.path + ".tmp"
            gis = self._gis
            assert gis is not None
            self._seq += 1
            record = {
                "seq": self._seq,
                "kind": "snapshot",
                "state": self._capture(gis),
            }
            with open(temp, "w", encoding="utf-8") as handle:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp, self.path)
            self._last_snapshot_seq = self._seq
            self._since_snapshot = 0

    # -- replay application ----------------------------------------------------

    def _attach_source(
        self,
        gis: "GlobalInformationSystem",
        name: str,
        spec: Optional[Dict[str, Any]],
        report: Dict[str, Any],
    ) -> bool:
        """Rebuild one source from its declarative spec; False if skipped."""
        if gis.catalog.has_source(name):
            return True
        if spec is None:
            report["skipped_sources"].append(name)
            return False
        # Imported lazily: config imports the mediator, which imports this
        # package — a module-level import would cycle.
        from ..config import _build_link, _build_source

        adapter = _build_source(name, spec)
        gis.register_source(
            name, adapter, link=_build_link(spec.get("link")), spec=spec
        )
        return True

    def _restore_table(
        self,
        gis: "GlobalInformationSystem",
        entry: Dict[str, Any],
        report: Dict[str, Any],
    ) -> None:
        """Re-register one journaled table/view entry verbatim (no adapter
        re-derivation: the journaled schema *is* the pre-crash schema)."""
        name = entry["name"]
        catalog = gis.catalog
        if catalog.has_table(name):
            catalog.drop(name)
        if entry.get("view_sql") is not None:
            catalog.register_view(name, entry["view_sql"])
            return
        mapping = TableMapping.from_dict(entry["mapping"])
        if not catalog.has_source(mapping.source):
            report["skipped"].append(f"table {name} (source {mapping.source})")
            return
        catalog.register_table(
            name, TableSchema.from_dict(entry["schema"]), mapping
        )
        for replica in entry.get("replicas", []):
            replica_mapping = TableMapping.from_dict(replica)
            if catalog.has_source(replica_mapping.source):
                catalog.add_replica(name, replica_mapping)
            else:
                report["skipped"].append(
                    f"replica {name}@{replica_mapping.source}"
                )

    def _apply_snapshot(
        self,
        gis: "GlobalInformationSystem",
        state: Dict[str, Any],
        report: Dict[str, Any],
    ) -> None:
        for source in state.get("sources", []):
            self._attach_source(gis, source["name"], source.get("spec"), report)
        for entry in state.get("tables", []):
            self._restore_table(gis, entry, report)
        for name, stats in dict(state.get("statistics", {})).items():
            if gis.catalog.has_table(name):
                gis.catalog.set_statistics(
                    name, TableStatistics.from_dict(stats)
                )
        for view in state.get("materialized", []):
            self._restore_materialized(gis, view, report)

    @staticmethod
    def _restore_materialized(
        gis: "GlobalInformationSystem",
        view: Dict[str, Any],
        report: Dict[str, Any],
    ) -> None:
        """Re-create a materialized view (re-executes its SELECT — the
        snapshot rows themselves are data, not catalog, and rebuild from
        the recovered sources)."""
        name = view["name"]
        # create_materialized_view registers the backing integration view
        # itself; a replayed VIEW_REGISTERED may already have done so.
        if gis.catalog.has_table(name) and not gis.materialized.has(name):
            gis.catalog.drop(name)
        if gis.materialized.has(name):
            return
        try:
            gis.create_materialized_view(
                name, view["sql"], staleness_ms=float(view.get("staleness_ms", 0.0))
            )
        except Exception as exc:
            report["skipped"].append(f"materialized view {name} ({exc})")

    def _apply_event(
        self,
        gis: "GlobalInformationSystem",
        record: Dict[str, Any],
        report: Dict[str, Any],
    ) -> None:
        kind = record.get("kind")
        name = record.get("name", "")
        payload = record.get("payload", {}) or {}
        catalog = gis.catalog
        if kind == ev.SOURCE_REGISTERED:
            self._attach_source(gis, name, payload.get("spec"), report)
        elif kind == ev.SOURCE_UNREGISTERED:
            if catalog.has_source(name):
                gis.unregister_source(name)
        elif kind == ev.SOURCE_CHANGED:
            # Structural no-op: the version-vector restore at the end of
            # recovery carries the epoch bump.
            pass
        elif kind in (ev.TABLE_REGISTERED, ev.TABLE_ALTERED):
            self._restore_table(
                gis,
                {
                    "name": name,
                    "view_sql": None,
                    "schema": payload.get("schema"),
                    "mapping": payload.get("mapping"),
                    "replicas": payload.get("replicas", []),
                },
                report,
            )
        elif kind in (ev.TABLE_DROPPED, ev.VIEW_DROPPED):
            if catalog.has_table(name):
                catalog.drop(name)
        elif kind == ev.VIEW_REGISTERED:
            if not catalog.has_table(name):
                catalog.register_view(name, payload["sql"])
        elif kind == ev.REPLICA_ADDED:
            mapping = TableMapping.from_dict(payload["mapping"])
            if not catalog.has_table(name):
                report["skipped"].append(f"replica {name}@{mapping.source}")
            elif catalog.has_source(mapping.source):
                already = any(
                    m.source.lower() == mapping.source.lower()
                    and m.remote_table == mapping.remote_table
                    for m in catalog.table(name).replicas
                )
                if not already:
                    catalog.add_replica(name, mapping)
            else:
                report["skipped"].append(f"replica {name}@{mapping.source}")
        elif kind == ev.STATS_UPDATED:
            if catalog.has_table(name):
                catalog.set_statistics(
                    name, TableStatistics.from_dict(payload["statistics"])
                )
        elif kind == ev.STATS_CLEARED:
            catalog.clear_statistics()
        elif kind == ev.MATERIALIZED_CREATED:
            self._restore_materialized(
                gis,
                {
                    "name": name,
                    "sql": payload["sql"],
                    "staleness_ms": payload.get("staleness_ms", 0.0),
                },
                report,
            )
        elif kind == ev.MATERIALIZED_DROPPED:
            if gis.materialized.has(name):
                gis.drop_materialized_view(name)
            elif catalog.has_table(name):
                catalog.drop(name)
        # Unknown kinds (a journal from a newer build) are ignored.

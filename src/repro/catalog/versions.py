"""Unified catalog versions: the single invalidation authority.

Every cached artifact in the mediator — prepared plans, the result cache,
semantic fragment-cache entries, materialized-view snapshots — keys its
freshness off state tracked here. One clock, four granularities:

* **source epochs** — a monotone counter per component system, bumped by
  any event the mediator can observe for that source (table or replica
  registration, ``ANALYZE``, schema alteration, explicit
  ``notify_source_changed``). This is the clock the fragment cache and
  materialized views compare against; it subsumes the old
  ``repro.cache.epochs.SourceEpochs`` (that module is gone — the cache
  package re-exports this class under the old name).
* **schema versions** — per global table, bumped when the table's schema
  or mapping changes (``alter_table``, replica promotion).
* **statistics versions** — per global table, bumped by ``ANALYZE``.
* **catalog epoch** — one global counter bumped by *every* catalog
  mutation; the plan cache and result cache invalidate off it through
  the mediator's event subscription.

Invalidation stays lazy everywhere: nothing walks cache entries on a
bump; an entry remembers the version it was filled under and dies the
next time it is looked up against a newer one.

For bounded-stale reads (``WITH STALENESS <ms>``) the tracker also
records *when* each source bump happened, so a materialized view can
answer "how long ago did this source first move past my snapshot?" — the
staleness window anchors at the first invalidating bump, not the most
recent one.

Versions persist: :meth:`state` captures the whole vector for the
catalog journal and :meth:`restore` merges a journaled vector back in,
taking the maximum per counter so versions are **monotone across
restarts** — recovered cache state can never be mistaken for fresh.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

#: Bump timestamps remembered per source; older bumps age out (a view
#: whose snapshot predates the window is simply treated as unbounded-old).
HISTORY_LIMIT = 64


class CatalogVersions:
    """Thread-safe catalog version vector with bump-time history.

    A source or table that has never been bumped is at version 0, so
    snapshots taken before an object is first touched still compare
    correctly.
    """

    def __init__(self, clock=time.monotonic) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._epochs: Dict[str, int] = {}
        self._history: Dict[str, Deque[Tuple[int, float]]] = {}
        self._schema_versions: Dict[str, int] = {}
        self._stats_versions: Dict[str, int] = {}
        self._catalog_epoch = 0
        self.bumps = 0

    # -- source epochs (the SourceEpochs-compatible surface) -----------------

    def current(self, source: str) -> int:
        """The source's current epoch (0 if never bumped)."""
        with self._lock:
            return self._epochs.get(source.lower(), 0)

    def snapshot(self) -> Dict[str, int]:
        """A point-in-time copy of every known source's epoch.

        Sources absent from the snapshot are implicitly at epoch 0 —
        compare with ``snapshot.get(source, 0)``.
        """
        with self._lock:
            return dict(self._epochs)

    def bump(self, source: str) -> int:
        """Advance one source's epoch; returns the new value."""
        with self._lock:
            return self._bump_locked(source.lower(), self._clock())

    def bump_all(self) -> None:
        """Advance every known source (conservative catalog-wide change)."""
        with self._lock:
            now = self._clock()
            for key in list(self._epochs):
                self._bump_locked(key, now)

    def first_bump_after(self, source: str, snapshot_epoch: int) -> Optional[float]:
        """Clock time of the first bump past ``snapshot_epoch``, or None.

        None means the source has not moved past the snapshot — the
        snapshot is still exactly current. A bump that aged out of the
        bounded history returns 0.0 (infinitely long ago), which errs on
        the side of treating the snapshot as too stale to serve.
        """
        key = source.lower()
        with self._lock:
            if self._epochs.get(key, 0) <= snapshot_epoch:
                return None
            for epoch, at in self._history.get(key, ()):
                if epoch > snapshot_epoch:
                    return at
            return 0.0

    def _bump_locked(self, key: str, now: float) -> int:
        epoch = self._epochs.get(key, 0) + 1
        self._epochs[key] = epoch
        history = self._history.setdefault(key, deque(maxlen=HISTORY_LIMIT))
        history.append((epoch, now))
        self.bumps += 1
        return epoch

    # -- per-table versions ---------------------------------------------------

    def schema_version(self, table: str) -> int:
        """The table's schema version (0 if never registered/altered)."""
        with self._lock:
            return self._schema_versions.get(table.lower(), 0)

    def bump_schema(self, table: str) -> int:
        """Advance a table's schema version; returns the new value.

        Versions survive a drop: re-registering a name continues its
        counter, so a cached artifact keyed on (name, version) from a
        previous incarnation can never alias the new one.
        """
        key = table.lower()
        with self._lock:
            version = self._schema_versions.get(key, 0) + 1
            self._schema_versions[key] = version
            return version

    def stats_version(self, table: str) -> int:
        """The table's statistics version (0 if never analyzed)."""
        with self._lock:
            return self._stats_versions.get(table.lower(), 0)

    def bump_stats(self, table: str) -> int:
        """Advance a table's statistics version; returns the new value."""
        key = table.lower()
        with self._lock:
            version = self._stats_versions.get(key, 0) + 1
            self._stats_versions[key] = version
            return version

    # -- the global catalog epoch --------------------------------------------

    @property
    def catalog_epoch(self) -> int:
        with self._lock:
            return self._catalog_epoch

    def bump_catalog(self) -> int:
        """Advance the global catalog epoch; returns the new value."""
        with self._lock:
            self._catalog_epoch += 1
            return self._catalog_epoch

    # -- persistence ----------------------------------------------------------

    def state(self) -> Dict[str, Any]:
        """The whole version vector as plain JSON-ready data."""
        with self._lock:
            return {
                "catalog_epoch": self._catalog_epoch,
                "sources": dict(self._epochs),
                "schemas": dict(self._schema_versions),
                "statistics": dict(self._stats_versions),
            }

    def restore(self, state: Dict[str, Any]) -> None:
        """Merge a journaled version vector, keeping the maximum per
        counter — the recovered clock is never behind the pre-crash one,
        however many replay-side bumps happened in between."""
        with self._lock:
            self._catalog_epoch = max(
                self._catalog_epoch, int(state.get("catalog_epoch", 0))
            )
            now = self._clock()
            for key, epoch in dict(state.get("sources", {})).items():
                key = key.lower()
                if int(epoch) > self._epochs.get(key, 0):
                    self._epochs[key] = int(epoch)
                    history = self._history.setdefault(
                        key, deque(maxlen=HISTORY_LIMIT)
                    )
                    history.append((int(epoch), now))
            for key, version in dict(state.get("schemas", {})).items():
                key = key.lower()
                self._schema_versions[key] = max(
                    self._schema_versions.get(key, 0), int(version)
                )
            for key, version in dict(state.get("statistics", {})).items():
                key = key.lower()
                self._stats_versions[key] = max(
                    self._stats_versions.get(key, 0), int(version)
                )

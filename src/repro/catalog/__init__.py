"""Global catalog: schemas, source mappings, integration views, statistics.

The catalog is the mediator's picture of the federation. It records, for
every *global* table, which component system holds it and under what native
names (a :class:`~repro.catalog.mappings.TableMapping`), plus integration
views (GAV: a global virtual table defined by a query over other global
tables) and per-table statistics gathered by ``ANALYZE``.
"""

from .catalog import Catalog, CatalogTable
from .events import CatalogEvent
from .journal import CatalogJournal
from .mappings import TableMapping
from .schema import Column, TableSchema
from .statistics import ColumnStatistics, EquiDepthHistogram, TableStatistics
from .versions import CatalogVersions

__all__ = [
    "Catalog",
    "CatalogEvent",
    "CatalogJournal",
    "CatalogTable",
    "CatalogVersions",
    "Column",
    "ColumnStatistics",
    "EquiDepthHistogram",
    "TableMapping",
    "TableSchema",
    "TableStatistics",
]

"""Global catalog: schemas, source mappings, integration views, statistics.

The catalog is the mediator's picture of the federation. It records, for
every *global* table, which component system holds it and under what native
names (a :class:`~repro.catalog.mappings.TableMapping`), plus integration
views (GAV: a global virtual table defined by a query over other global
tables) and per-table statistics gathered by ``ANALYZE``.
"""

from .catalog import Catalog
from .mappings import TableMapping
from .schema import Column, TableSchema
from .statistics import ColumnStatistics, EquiDepthHistogram, TableStatistics

__all__ = [
    "Catalog",
    "Column",
    "ColumnStatistics",
    "EquiDepthHistogram",
    "TableMapping",
    "TableSchema",
    "TableStatistics",
]

"""Relation schemas for the global schema and for source-native tables.

Names compare case-insensitively (SQL identifier semantics for unquoted
names) but preserve their declared spelling for display and pushdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple, Union

from ..datatypes import DataType, parse_type_name
from ..errors import CatalogError


@dataclass(frozen=True)
class Column:
    """A named, typed attribute of a relation."""

    name: str
    dtype: DataType

    @staticmethod
    def of(name: str, type_name: Union[str, DataType]) -> "Column":
        """Convenience constructor accepting a type name string."""
        if isinstance(type_name, DataType):
            return Column(name, type_name)
        return Column(name, parse_type_name(type_name))


class TableSchema:
    """An ordered collection of columns with unique (case-insensitive) names.

    Example::

        schema = TableSchema("customers", [
            Column.of("id", "INTEGER"),
            Column.of("name", "TEXT"),
        ])
    """

    def __init__(self, name: str, columns: Sequence[Column]) -> None:
        if not columns:
            raise CatalogError(f"table {name!r} must have at least one column")
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._by_name: Dict[str, int] = {}
        for index, column in enumerate(self.columns):
            key = column.name.lower()
            if key in self._by_name:
                raise CatalogError(
                    f"table {name!r} declares duplicate column {column.name!r}"
                )
            self._by_name[key] = index

    # -- lookups -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def column_names(self) -> List[str]:
        """Declared column names, in order."""
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        """Case-insensitive membership test."""
        return name.lower() in self._by_name

    def column(self, name: str) -> Column:
        """Look up a column by (case-insensitive) name."""
        index = self._by_name.get(name.lower())
        if index is None:
            raise CatalogError(f"table {self.name!r} has no column {name!r}")
        return self.columns[index]

    def index_of(self, name: str) -> int:
        """Ordinal position of a column by (case-insensitive) name."""
        index = self._by_name.get(name.lower())
        if index is None:
            raise CatalogError(f"table {self.name!r} has no column {name!r}")
        return index

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        cols = ", ".join(f"{c.name} {c.dtype}" for c in self.columns)
        return f"TableSchema({self.name!r}: {cols})"

    # -- persistence (catalog journal) ---------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form for the catalog journal."""
        return {
            "name": self.name,
            "columns": [[c.name, c.dtype.name] for c in self.columns],
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "TableSchema":
        """Rebuild a schema from its :meth:`to_dict` form."""
        return TableSchema(
            str(data["name"]),
            [Column.of(str(n), str(t)) for n, t in data["columns"]],  # type: ignore[union-attr]
        )


def schema_from_pairs(
    name: str, pairs: Sequence[Tuple[str, Union[str, DataType]]]
) -> TableSchema:
    """Build a TableSchema from ``(column_name, type_name)`` pairs."""
    return TableSchema(name, [Column.of(n, t) for n, t in pairs])

"""Morsel-driven intra-operator parallelism: a shared page-range worker pool.

A *morsel* is a contiguous run of input pages — the unit one worker
processes before asking for more (Leis et al., "Morsel-Driven Parallelism",
SIGMOD 2014). The :class:`MorselPool` is created once per query (by the
mediator, when ``PlannerOptions.morsel_workers > 1``) and shared by every
operator in the plan: large hash-join builds/probes and aggregation inputs
split into morsels, workers produce *partial states*, and the operator
merges the partials **in morsel order** so results are deterministic and
bit-identical to the single-threaded engine:

* join build: per-morsel partial hash tables merge by appending row lists
  in morsel (= page = row) order — the merged table's per-key row order is
  exactly the sequential build order;
* join probe: probe pages map to output pages independently and are
  emitted in input order;
* aggregation: workers only evaluate the key/argument kernels per morsel;
  the *accumulation* stays on the coordinator in global row order, because
  merging per-worker float SUM/AVG partials would re-associate additions
  and break bit-identity. (This is also the honest split under CPython:
  kernel evaluation is where the C loops are.)

Honesty note on speedups: workers are **threads**. Under CPython's GIL,
stages dominated by Python bytecode gain little wall-clock from the pool;
stages that spend their time in C loops (typed-column kernels, ``map``/
``zip`` pipelines) release the interpreter only between calls, so today
the pool is primarily an *architecture* for intra-operator scaling — the
measured wins in BENCH_F6 come from typed columns and fusion, and the
morsel path is verified for correctness (bit-identity), not celebrated
for speed. A free-threaded build or process pool can swap in behind the
same interface.
"""

from __future__ import annotations

import itertools
import queue
import threading
from typing import (
    Any,
    Callable,
    Generic,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    TypeVar,
)

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["MorselPool", "morsel_ranges"]

#: Pool shutdown sentinel (never a valid task).
_STOP = object()


def morsel_ranges(total: int, morsel_size: int) -> List[range]:
    """Split ``total`` items into contiguous ranges of ``morsel_size``."""
    if morsel_size < 1:
        raise ValueError("morsel_size must be >= 1")
    return [
        range(start, min(start + morsel_size, total))
        for start in range(0, total, morsel_size)
    ]


class MorselPool:
    """A small shared thread pool with *ordered* result collection.

    Tasks are plain callables; :meth:`ordered_map` is the workhorse:
    it dispatches ``fn(item)`` for every item while yielding results in
    input order (a sliding window of at most ``2 * workers`` in flight,
    so memory stays bounded for long page streams). Worker exceptions
    propagate to the caller at the position where the failing item would
    have been yielded — same observable behavior as the sequential loop.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._tasks: "queue.Queue[Any]" = queue.Queue()
        self._threads: List[threading.Thread] = []
        self._closed = False
        for index in range(workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"morsel-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    # -- worker side ---------------------------------------------------

    def _worker_loop(self) -> None:
        while True:
            task = self._tasks.get()
            if task is _STOP:
                return
            fn, args, box, done = task
            try:
                box.append(fn(*args))
            except BaseException as exc:  # delivered to the collector
                box.append(_Failure(exc))
            finally:
                done.set()

    # -- caller side ---------------------------------------------------

    def submit(self, fn: Callable[..., R], *args: Any) -> "_Pending[R]":
        """Queue one task; returns a handle whose ``.result()`` blocks."""
        if self._closed:
            raise RuntimeError("morsel pool is closed")
        pending: _Pending[R] = _Pending()
        self._tasks.put((fn, args, pending.box, pending.done))
        return pending

    def ordered_map(
        self, fn: Callable[[T], R], items: Iterable[T]
    ) -> Iterator[R]:
        """Map ``fn`` over ``items`` in parallel, yield results in order."""
        window = max(2 * self.workers, 2)
        pending: List[Any] = []
        iterator = iter(items)
        for item in itertools.islice(iterator, window):
            pending.append(self.submit(fn, item))
        position = 0
        for item in iterator:
            yield pending[position].result()
            pending[position] = None  # free the yielded result
            position += 1
            pending.append(self.submit(fn, item))
        while position < len(pending):
            yield pending[position].result()
            position += 1

    def map_all(
        self, fn: Callable[[T], R], items: Sequence[T]
    ) -> List[R]:
        """Dispatch every item at once and collect all results in order."""
        handles = [self.submit(fn, item) for item in items]
        return [handle.result() for handle in handles]

    def close(self) -> None:
        """Stop the workers (idempotent). In-flight tasks finish first."""
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._tasks.put(_STOP)
        for thread in self._threads:
            thread.join()

    def __enter__(self) -> "MorselPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class _Failure:
    """Wraps a worker exception for re-raise at the collection point."""

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


class _Pending(Generic[R]):
    """A minimal single-result future (no cancellation, no callbacks)."""

    __slots__ = ("box", "done")

    def __init__(self) -> None:
        self.box: List[Any] = []
        self.done = threading.Event()

    def result(self, timeout: Optional[float] = None) -> Any:
        if not self.done.wait(timeout):
            raise TimeoutError("morsel task did not complete in time")
        value = self.box[0]
        if type(value) is _Failure:
            raise value.exc
        return value

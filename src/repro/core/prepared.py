"""Prepared statements and the plan-shape cache.

The serving layer (and any repeat-heavy client) pays the full
parse → analyze → rewrite → join-order → pushdown → semijoin pipeline for
every query even when only the literals change between calls. This module
makes that cost once-per-*shape*:

* :func:`parameterize` normalizes a parsed statement — every literal is
  tagged with a parameter slot and the statement is serialized with the
  literal *values* masked out, yielding a shape key under which all
  executions of the same query template collide.
* :class:`PreparedPlan` wraps one planned shape. Binding it to a new
  literal vector clones the distributed plan with the tagged literals
  substituted (untouched subtrees are shared, column identity is
  preserved) and rebuilds only the physical tree — the optimizer phases
  are skipped entirely.
* :class:`PlanCache` is the thread-safe LRU of prepared plans keyed by
  (shape, planner options), with epoch-based invalidation: catalog
  changes bump the epoch and stale entries die lazily on lookup.

Correctness over cleverness: a literal that the optimizer *consumed*
(constant folding, IS NULL simplification) does not survive into the
distributed plan, so its slot cannot be rebound. Binding detects this —
if such a slot's value differs from the value the shape was planned with,
``bind`` refuses and the caller replans from scratch. A reused plan is
therefore always executable verbatim; at worst it is the "generic plan"
for the shape (planned under the first-seen literals), never a wrong one.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..sql import ast
from .logical import (
    AggregateCall,
    AggregateOp,
    BindSpec,
    FilterOp,
    JoinOp,
    LogicalPlan,
    ProjectOp,
    RemoteQueryOp,
    SortOp,
    WindowOp,
    WindowSpec,
)

# ---------------------------------------------------------------------------
# statement parameterization
# ---------------------------------------------------------------------------


@dataclass
class ParameterizedStatement:
    """A parsed statement with its literals lifted out as parameters.

    ``statement`` is the original tree with every literal tagged
    (``Literal.param_slot``); ``values``/``dtypes`` are the literal vector
    in slot order; ``shape_key`` is the value-independent serialization
    that identifies the query template.
    """

    statement: ast.Statement
    shape_key: str
    values: List[Any]
    dtypes: List[Any]

    @property
    def parameter_count(self) -> int:
        return len(self.values)


def parameterize(statement: ast.Statement) -> ParameterizedStatement:
    """Tag every literal with a parameter slot and derive the shape key.

    Slot numbering follows one fixed traversal, so two parses of the same
    template always assign identical slots; the shape key embeds slot and
    type but never the value.
    """
    values: List[Any] = []
    dtypes: List[Any] = []

    def tag(expr: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(expr, ast.Literal) and expr.param_slot is None:
            slot = len(values)
            values.append(expr.value)
            dtypes.append(expr.dtype)
            return ast.Literal(expr.value, expr.dtype, param_slot=slot)
        return None

    tagged = transform_statement(statement, tag)

    def mask(expr: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(expr, ast.Literal):
            return ast.Literal(None, expr.dtype, param_slot=expr.param_slot)
        return None

    masked = transform_statement(tagged, mask)
    return ParameterizedStatement(tagged, repr(masked), values, dtypes)


def bind_statement_values(
    statement: ast.Statement, values: Sequence[Any]
) -> ast.Statement:
    """A copy of a tagged statement with new values at every slot."""

    def substitute(expr: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(expr, ast.Literal) and expr.param_slot is not None:
            return ast.Literal(
                values[expr.param_slot], expr.dtype, param_slot=expr.param_slot
            )
        return None

    return transform_statement(statement, substitute)


def transform_statement(
    statement: ast.Statement, fn: Callable[[ast.Expr], Optional[ast.Expr]]
) -> ast.Statement:
    """Rebuild a statement applying ``fn`` to every expression node.

    Unlike :func:`ast.transform_expression` this descends into subqueries
    (IN/EXISTS and derived tables), so a literal anywhere in the statement
    is visited exactly once, in a deterministic order.
    """
    if isinstance(statement, ast.SetOperation):
        return ast.SetOperation(
            op=statement.op,
            left=transform_statement(statement.left, fn),
            right=transform_statement(statement.right, fn),
            all=statement.all,
            order_by=[
                ast.OrderItem(_tx(item.expr, fn), item.ascending)
                for item in statement.order_by
            ],
            limit=statement.limit,
            offset=statement.offset,
        )
    select = statement
    return ast.Select(
        items=[
            ast.SelectItem(_tx(item.expr, fn), item.alias)
            for item in select.items
        ],
        from_item=(
            _transform_from(select.from_item, fn)
            if select.from_item is not None
            else None
        ),
        where=_tx(select.where, fn) if select.where is not None else None,
        group_by=[_tx(expr, fn) for expr in select.group_by],
        having=_tx(select.having, fn) if select.having is not None else None,
        order_by=[
            ast.OrderItem(_tx(item.expr, fn), item.ascending)
            for item in select.order_by
        ],
        limit=select.limit,
        offset=select.offset,
        distinct=select.distinct,
    )


def _transform_from(item: ast.FromItem, fn) -> ast.FromItem:
    if isinstance(item, ast.TableRef):
        return item
    if isinstance(item, ast.SubqueryRef):
        return ast.SubqueryRef(transform_statement(item.select, fn), item.alias)
    join = item
    return ast.Join(
        left=_transform_from(join.left, fn),
        right=_transform_from(join.right, fn),
        kind=join.kind,
        condition=(
            _tx(join.condition, fn) if join.condition is not None else None
        ),
    )


def _tx(expr: ast.Expr, fn) -> ast.Expr:
    """Transform one expression, descending into subquery statements."""

    def wrapper(node: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(node, ast.InSubquery):
            return ast.InSubquery(
                node.operand,
                transform_statement(node.subquery, fn),
                node.negated,
            )
        if isinstance(node, ast.Exists):
            return ast.Exists(
                transform_statement(node.subquery, fn), node.negated
            )
        return fn(node)

    return ast.transform_expression(expr, wrapper)


# ---------------------------------------------------------------------------
# plan-side rebinding
# ---------------------------------------------------------------------------


def walk_plan_with_fragments(plan: LogicalPlan):
    """Pre-order walk that, unlike ``LogicalPlan.walk``, descends into
    remote-fragment subtrees (they are deliberately not ``children()``)."""
    yield plan
    if isinstance(plan, RemoteQueryOp):
        yield from walk_plan_with_fragments(plan.fragment)
    for child in plan.children():
        yield from walk_plan_with_fragments(child)


def _node_expressions(node: LogicalPlan):
    """Every expression tree hanging off one plan node."""
    if isinstance(node, FilterOp):
        yield node.predicate
    elif isinstance(node, ProjectOp):
        yield from node.expressions
    elif isinstance(node, JoinOp):
        if node.condition is not None:
            yield node.condition
    elif isinstance(node, AggregateOp):
        yield from node.group_expressions
        for call in node.aggregates:
            if call.argument is not None:
                yield call.argument
    elif isinstance(node, WindowOp):
        for spec in node.specs:
            if spec.argument is not None:
                yield spec.argument
            yield from spec.partition_by
            for key, _ in spec.order_keys:
                yield key
    elif isinstance(node, SortOp):
        for key, _ in node.keys:
            yield key
    if isinstance(node, RemoteQueryOp) and node.bind is not None:
        yield node.bind.probe_key


def collect_param_slots(plan: LogicalPlan) -> Set[int]:
    """Parameter slots whose tagged literal survived into the plan."""
    slots: Set[int] = set()
    for node in walk_plan_with_fragments(plan):
        for expr in _node_expressions(node):
            for sub in ast.walk_expression(expr):
                if isinstance(sub, ast.Literal) and sub.param_slot is not None:
                    slots.add(sub.param_slot)
    return slots


def rebind_plan(plan: LogicalPlan, values: Sequence[Any]) -> LogicalPlan:
    """Clone a tagged plan with new literal values at every surviving slot.

    Untouched subtrees (and all column/schema objects) are shared with the
    original, so column identity — which physical planning relies on —
    is preserved across the copy, and concurrent executions of different
    bindings never observe each other.
    """

    def substitute(node: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(node, ast.Literal) and node.param_slot is not None:
            new_value = values[node.param_slot]
            if new_value == node.value and type(new_value) is type(node.value):
                return None
            return ast.Literal(new_value, node.dtype, param_slot=node.param_slot)
        return None

    def rx(expr: ast.Expr) -> ast.Expr:
        return ast.transform_expression(expr, substitute)

    return _rebind_node(plan, rx)


def _rebind_node(node: LogicalPlan, rx) -> LogicalPlan:
    children = node.children()
    new_children = [_rebind_node(child, rx) for child in children]
    if any(new is not old for new, old in zip(new_children, children)):
        node = node.with_children(new_children)

    if isinstance(node, FilterOp):
        predicate = rx(node.predicate)
        if predicate is not node.predicate:
            return FilterOp(node.child, predicate)
        return node
    if isinstance(node, ProjectOp):
        expressions = [rx(expr) for expr in node.expressions]
        if any(new is not old for new, old in zip(expressions, node.expressions)):
            return ProjectOp(node.child, expressions, node.columns)
        return node
    if isinstance(node, JoinOp):
        if node.condition is None:
            return node
        condition = rx(node.condition)
        if condition is not node.condition:
            return JoinOp(
                node.left, node.right, node.kind, condition, node.null_aware
            )
        return node
    if isinstance(node, AggregateOp):
        groups = [rx(expr) for expr in node.group_expressions]
        calls = [
            AggregateCall(
                call.function,
                rx(call.argument) if call.argument is not None else None,
                call.distinct,
            )
            for call in node.aggregates
        ]
        changed = any(
            new is not old for new, old in zip(groups, node.group_expressions)
        ) or any(
            new.argument is not old.argument
            for new, old in zip(calls, node.aggregates)
        )
        if changed:
            return AggregateOp(
                node.child, groups, node.group_columns, calls,
                node.aggregate_columns,
            )
        return node
    if isinstance(node, WindowOp):
        specs = [
            WindowSpec(
                spec.function,
                rx(spec.argument) if spec.argument is not None else None,
                tuple(rx(expr) for expr in spec.partition_by),
                tuple((rx(key), asc) for key, asc in spec.order_keys),
            )
            for spec in node.specs
        ]
        if any(new != old for new, old in zip(specs, node.specs)):
            return WindowOp(node.child, specs, node.window_columns)
        return node
    if isinstance(node, SortOp):
        keys = [(rx(key), asc) for key, asc in node.keys]
        if any(new[0] is not old[0] for new, old in zip(keys, node.keys)):
            return SortOp(node.child, keys)
        return node
    if isinstance(node, RemoteQueryOp):
        fragment = _rebind_node(node.fragment, rx)
        bind = node.bind
        if bind is not None:
            probe = rx(bind.probe_key)
            if probe is not bind.probe_key:
                bind = BindSpec(probe, bind.fragment_key, bind.batch_size)
        if fragment is not node.fragment or bind is not node.bind:
            return RemoteQueryOp(
                node.source_name, fragment, node.columns,
                node.estimated_rows, bind,
            )
        return node
    return node


# ---------------------------------------------------------------------------
# prepared plans
# ---------------------------------------------------------------------------


class PreparedPlan:
    """One cached query shape, bindable to fresh literal vectors.

    The plan was produced for ``first_values``; ``bound_slots`` are the
    parameter slots that survived optimization and can be rebound.
    Binding is re-entrant: it never mutates the cached plan, so any number
    of executor threads may bind (and execute) the same shape concurrently.
    """

    def __init__(
        self,
        shape_key: str,
        options: Any,
        planned: Any,
        values: Sequence[Any],
        dtypes: Sequence[Any],
        epoch: int,
        statement: Optional[ast.Statement] = None,
    ) -> None:
        self.shape_key = shape_key
        self.options = options
        self.planned = planned
        self.first_values = list(values)
        self.dtypes = list(dtypes)
        self.bound_slots = collect_param_slots(planned.distributed)
        self.epoch = epoch
        self.statement = statement
        self.executions = 0

    @property
    def parameter_count(self) -> int:
        return len(self.first_values)

    def bindable(self, values: Sequence[Any]) -> bool:
        """True when the cached plan is valid verbatim for ``values``.

        Slots the optimizer consumed (their literal no longer appears in
        the distributed plan) cannot be rebound; a changed value there
        requires a fresh plan.
        """
        if len(values) != len(self.first_values):
            return False
        for slot, (new, old) in enumerate(zip(values, self.first_values)):
            if slot in self.bound_slots:
                continue
            if not (new == old and type(new) is type(old)):
                return False
        return True

    def bind(
        self,
        sql: str,
        values: Sequence[Any],
        catalog: Any,
        options: Any,
    ) -> Optional[Any]:
        """A fresh ``PlannedQuery`` for ``values``, or None if not bindable."""
        from .physical import PhysicalPlanner
        from .planner import PlannedQuery

        if not self.bindable(values):
            return None
        started = time.perf_counter()
        if list(values) == self.first_values:
            distributed = self.planned.distributed
        else:
            distributed = rebind_plan(self.planned.distributed, values)
        physical = PhysicalPlanner(
            catalog,
            join_algorithm=options.join_algorithm,
            parallel_fragments=options.max_parallel_fragments,
            vectorized=options.vectorize,
            fuse=options.fuse,
        ).build(distributed)
        planning_ms = (time.perf_counter() - started) * 1000.0
        self.executions += 1
        return PlannedQuery(
            sql=sql,
            bound=self.planned.bound,
            optimized=self.planned.optimized,
            distributed=distributed,
            physical=physical,
            output_names=list(self.planned.output_names),
            planning_ms=planning_ms,
            ordering_stats=self.planned.ordering_stats,
            semijoin_decisions=list(self.planned.semijoin_decisions),
            replica_decisions=list(self.planned.replica_decisions),
            estimates=self.planned.estimates,
        )


# ---------------------------------------------------------------------------
# the cache
# ---------------------------------------------------------------------------


class PlanCache:
    """Thread-safe LRU of :class:`PreparedPlan` with epoch invalidation.

    ``capacity`` 0 disables the cache (every operation is a cheap no-op).
    Invalidation bumps an epoch instead of walking entries; a stale entry
    is discarded the next time it is looked up. Statistics distinguish
    *hits* (plan reused), *misses* (shape never seen / evicted / stale)
    and *fallbacks* (shape cached but a plan-sensitive literal changed, so
    the query was replanned — the entry is refreshed with the new plan).
    """

    def __init__(self, capacity: int = 0) -> None:
        if capacity < 0:
            raise ValueError(f"plan cache capacity must be >= 0 (got {capacity})")
        self.capacity = capacity
        self._entries: "Dict[Tuple[str, Any], PreparedPlan]" = {}
        self._order: List[Tuple[str, Any]] = []
        self._lock = threading.Lock()
        self._epoch = 0
        self.hits = 0
        self.misses = 0
        self.fallbacks = 0
        self.invalidations = 0
        self.evictions = 0

    @property
    def enabled(self) -> bool:
        return self.capacity > 0

    @property
    def epoch(self) -> int:
        return self._epoch

    def lookup(self, shape_key: str, options: Any) -> Optional[PreparedPlan]:
        """The live entry for a shape, refreshing its LRU position."""
        if not self.enabled:
            return None
        key = (shape_key, options)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return None
            if entry.epoch != self._epoch:
                del self._entries[key]
                self._order.remove(key)
                return None
            self._order.remove(key)
            self._order.append(key)
            return entry

    def store(self, entry: PreparedPlan) -> None:
        if not self.enabled:
            return
        key = (entry.shape_key, entry.options)
        with self._lock:
            if key in self._entries:
                self._order.remove(key)
            self._entries[key] = entry
            self._order.append(key)
            while len(self._order) > self.capacity:
                victim = self._order.pop(0)
                del self._entries[victim]
                self.evictions += 1

    def invalidate(self) -> int:
        """Epoch hook: every cached plan becomes stale immediately.

        Called by the mediator whenever the catalog changes underneath
        (table/view/replica registration, ANALYZE, explicit cache clear).
        Returns the new epoch so callers can stamp dependent state.
        """
        with self._lock:
            self._epoch += 1
            self.invalidations += 1
            return self._epoch

    def record_hit(self) -> None:
        with self._lock:
            self.hits += 1

    def record_miss(self) -> None:
        with self._lock:
            self.misses += 1

    def record_fallback(self) -> None:
        with self._lock:
            self.fallbacks += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, Any]:
        """A consistent snapshot of cache effectiveness counters."""
        with self._lock:
            lookups = self.hits + self.misses + self.fallbacks
            return {
                "capacity": self.capacity,
                "entries": len(self._entries),
                "epoch": self._epoch,
                "hits": self.hits,
                "misses": self.misses,
                "fallbacks": self.fallbacks,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
            }

"""Rule-based logical rewrites.

Applied after binding and before join ordering/pushdown:

1. **constant folding** — literal-only subexpressions collapse to literals;
2. **predicate simplification** — ``TRUE`` conjuncts vanish, ``FALSE``
   filters become empty relations, double negation cancels;
3. **filter merging & pushdown** — conjuncts sink through projections,
   joins (populating join conditions), unions, aggregates, sorts, and
   distincts until they sit directly on the relation that can absorb them;
4. **projection pruning** — only the columns a parent actually consumes
   survive below it; scans get narrowing projections (the pushdown planner
   later turns those into source-side projection);
5. **limit pushdown** — LIMIT copies into UNION ALL branches (keeping the
   outer limit).

Everything here is semantics-preserving on bags of rows; the differential
tests check each rule against the reference interpreter.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from ..datatypes import DataType
from ..errors import ExecutionError
from ..sql import ast

#: Shorthand for the NULL literal's type in the null-rejection analysis.
_NULL_TYPE = DataType.NULL
from .expressions import evaluate_constant, infer_type
from .logical import (
    AggregateOp,
    DistinctOp,
    FilterOp,
    JoinOp,
    LimitOp,
    LogicalPlan,
    ProjectOp,
    RelColumn,
    RemoteQueryOp,
    ScanOp,
    SetDifferenceOp,
    SortOp,
    UnionOp,
    ValuesOp,
    WindowOp,
    transform_plan,
)

_MAX_PASSES = 10


def rewrite(plan: LogicalPlan) -> LogicalPlan:
    """Run the full rewrite pipeline to a (bounded) fixpoint."""
    for _ in range(_MAX_PASSES):
        before = plan
        plan = fold_constants(plan)
        plan = simplify_filters(plan)
        plan = push_down_predicates(plan)
        plan = merge_adjacent(plan)
        plan = push_down_limits(plan)
        plan = push_down_distinct(plan)
        if _plan_fingerprint(plan) == _plan_fingerprint(before):
            break
    plan = prune_columns(plan)
    plan = merge_adjacent(plan)
    return plan


# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------


def fold_expression(expr: ast.Expr) -> ast.Expr:
    """Collapse literal-only subexpressions bottom-up.

    Expressions that would error at runtime (e.g. a failing CAST) are left
    as-is so the error surfaces during execution, as SQL requires.
    """

    def fold(node: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(node, (ast.Literal, ast.BoundRef)):
            return None
        if isinstance(node, (ast.InSubquery, ast.Exists)):
            return None
        if any(
            not isinstance(leaf, (ast.Literal,))
            for leaf in ast.walk_expression(node)
            if not ast.expression_children(leaf)
        ):
            return None
        try:
            value = evaluate_constant(node)
            dtype = infer_type(node)
        except ExecutionError:
            return None
        except Exception:
            return None
        return ast.Literal(value, dtype)

    return ast.transform_expression(expr, fold)


def fold_constants(plan: LogicalPlan) -> LogicalPlan:
    """Apply :func:`fold_expression` to every expression in the plan."""

    def fold_node(node: LogicalPlan) -> Optional[LogicalPlan]:
        if isinstance(node, FilterOp):
            return FilterOp(node.child, fold_expression(node.predicate))
        if isinstance(node, ProjectOp):
            return ProjectOp(
                node.child,
                [fold_expression(e) for e in node.expressions],
                node.columns,
            )
        if isinstance(node, JoinOp) and node.condition is not None:
            return JoinOp(
                node.left,
                node.right,
                node.kind,
                fold_expression(node.condition),
                node.null_aware,
            )
        if isinstance(node, SortOp):
            return SortOp(
                node.child,
                [(fold_expression(e), asc) for e, asc in node.keys],
            )
        return None

    return transform_plan(plan, fold_node)


# ---------------------------------------------------------------------------
# filter simplification
# ---------------------------------------------------------------------------


def simplify_filters(plan: LogicalPlan) -> LogicalPlan:
    """Remove TRUE filters; short-circuit FALSE/NULL filters to empty input."""

    def simplify(node: LogicalPlan) -> Optional[LogicalPlan]:
        if not isinstance(node, FilterOp):
            return None
        conjuncts = [
            c
            for c in ast.conjuncts(node.predicate)
            if not (isinstance(c, ast.Literal) and c.value is True)
        ]
        for conjunct in conjuncts:
            if isinstance(conjunct, ast.Literal) and conjunct.value in (False, None):
                return ValuesOp([], list(node.output_columns))
        if not conjuncts:
            return node.child
        predicate = ast.conjoin(conjuncts)
        assert predicate is not None
        if predicate == node.predicate:
            return None
        return FilterOp(node.child, predicate)

    return transform_plan(plan, simplify)


# ---------------------------------------------------------------------------
# predicate pushdown
# ---------------------------------------------------------------------------


def push_down_predicates(plan: LogicalPlan) -> LogicalPlan:
    """Sink filter conjuncts as deep as the plan's semantics allow."""

    def push(node: LogicalPlan) -> Optional[LogicalPlan]:
        if not isinstance(node, FilterOp):
            return None
        replacement = _push_filter(node)
        return replacement if replacement is not node else None

    # Repeated bottom-up passes let conjuncts sink several levels per call.
    for _ in range(_MAX_PASSES):
        new_plan = transform_plan(plan, push)
        if _plan_fingerprint(new_plan) == _plan_fingerprint(plan):
            return new_plan
        plan = new_plan
    return plan


def _push_filter(node: FilterOp) -> LogicalPlan:
    child = node.child
    conjuncts = ast.conjuncts(node.predicate)

    if isinstance(child, FilterOp):
        merged = ast.conjoin(ast.conjuncts(child.predicate) + conjuncts)
        assert merged is not None
        return FilterOp(child.child, merged)

    if isinstance(child, ProjectOp):
        mapping = {
            column.column_id: expression
            for column, expression in zip(child.columns, child.expressions)
        }
        pushed: List[ast.Expr] = []
        kept: List[ast.Expr] = []
        for conjunct in conjuncts:
            rewritten = ast.replace_refs(conjunct, mapping)
            if _is_deterministic(rewritten):
                pushed.append(rewritten)
            else:
                kept.append(conjunct)
        if not pushed:
            return node
        new_child = ProjectOp(
            FilterOp(child.child, _conjoin(pushed)),
            child.expressions,
            child.columns,
        )
        return FilterOp(new_child, _conjoin(kept)) if kept else new_child

    if isinstance(child, JoinOp):
        return _push_into_join(node, child, conjuncts)

    if isinstance(child, UnionOp):
        new_inputs = []
        for branch in child.inputs:
            mapping = {
                column.column_id: branch_column.ref()
                for column, branch_column in zip(child.columns, branch.output_columns)
            }
            branch_predicate = _conjoin(
                [ast.replace_refs(c, mapping) for c in conjuncts]
            )
            new_inputs.append(FilterOp(branch, branch_predicate))
        return UnionOp(new_inputs, child.columns, child.all)

    if isinstance(child, AggregateOp):
        group_mapping = {
            column.column_id: expression
            for column, expression in zip(child.group_columns, child.group_expressions)
        }
        aggregate_ids = {c.column_id for c in child.aggregate_columns}
        pushed, kept = [], []
        for conjunct in conjuncts:
            refs = ast.referenced_columns(conjunct)
            if any(c.column_id in aggregate_ids for c in refs):
                kept.append(conjunct)
            else:
                pushed.append(ast.replace_refs(conjunct, group_mapping))
        if not pushed:
            return node
        new_child = AggregateOp(
            FilterOp(child.child, _conjoin(pushed)),
            child.group_expressions,
            child.group_columns,
            child.aggregates,
            child.aggregate_columns,
        )
        return FilterOp(new_child, _conjoin(kept)) if kept else new_child

    if isinstance(child, (SortOp, DistinctOp)):
        inner = FilterOp(child.children()[0], node.predicate)
        return child.with_children([inner])

    return node


def _push_into_join(node: FilterOp, join: JoinOp, conjuncts: List[ast.Expr]) -> LogicalPlan:
    left_ids = {c.column_id for c in join.left.output_columns}
    right_ids = {c.column_id for c in join.right.output_columns}

    kind = join.kind
    if kind == "LEFT":
        # Outer-join simplification: a WHERE conjunct that can never be TRUE
        # when the null-extended side is all-NULL eliminates exactly the
        # rows the outer join adds, so the join degrades to INNER — which
        # then lets every right-side conjunct sink below it.
        for conjunct in conjuncts:
            refs = {c.column_id for c in ast.referenced_columns(conjunct)}
            if refs & right_ids and _rejects_nulls(conjunct, right_ids):
                kind = "INNER"
                break

    to_left: List[ast.Expr] = []
    to_right: List[ast.Expr] = []
    to_condition: List[ast.Expr] = []
    kept: List[ast.Expr] = []
    for conjunct in conjuncts:
        refs = {c.column_id for c in ast.referenced_columns(conjunct)}
        if refs and refs <= left_ids:
            to_left.append(conjunct)
        elif refs and refs <= right_ids:
            if kind == "LEFT":
                # Filtering the null-extended side above a LEFT join is not
                # the same as filtering below it; keep it above.
                kept.append(conjunct)
            else:
                to_right.append(conjunct)
        elif kind in ("INNER", "CROSS") and refs:
            to_condition.append(conjunct)
        else:
            kept.append(conjunct)
    if not (to_left or to_right or to_condition) and kind == join.kind:
        return node
    left = FilterOp(join.left, _conjoin(to_left)) if to_left else join.left
    right = FilterOp(join.right, _conjoin(to_right)) if to_right else join.right
    condition = join.condition
    if to_condition:
        pieces = ast.conjuncts(condition) if condition is not None else []
        condition = _conjoin(pieces + to_condition)
        if kind == "CROSS":
            kind = "INNER"
    new_join = JoinOp(left, right, kind, condition, join.null_aware)
    return FilterOp(new_join, _conjoin(kept)) if kept else new_join


def _rejects_nulls(predicate: ast.Expr, side_ids: Set[int]) -> bool:
    """True if ``predicate`` can never be TRUE when every column of the
    given side is NULL (the outer-join simplification condition).

    Substitutes NULL for the side's references, propagates NULLs through
    strict operators, then checks the residual can never be TRUE.
    """

    def substitute(node: ast.Expr) -> Optional[ast.Expr]:
        if isinstance(node, ast.BoundRef) and node.column.column_id in side_ids:
            return ast.Literal(None, _NULL_TYPE)
        return None

    nullified = ast.transform_expression(predicate, substitute)
    return _never_true(_propagate_nulls(nullified))


def _propagate_nulls(expr: ast.Expr) -> ast.Expr:
    """Collapse strict operators with a literal-NULL operand to NULL."""

    def propagate(node: ast.Expr) -> Optional[ast.Expr]:
        null = ast.Literal(None, _NULL_TYPE)
        if isinstance(node, ast.BinaryOp) and node.op not in ("AND", "OR"):
            if _is_null_literal(node.left) or _is_null_literal(node.right):
                return null
        if isinstance(node, ast.UnaryOp) and _is_null_literal(node.operand):
            return null
        if isinstance(node, ast.Between) and (
            _is_null_literal(node.operand)
            or _is_null_literal(node.low)
            or _is_null_literal(node.high)
        ):
            return null
        if isinstance(node, ast.InList) and _is_null_literal(node.operand):
            return null
        if isinstance(node, ast.IsNull) and _is_null_literal(node.operand):
            # IS NULL(NULL) = TRUE; IS NOT NULL(NULL) = FALSE.
            return ast.Literal(not node.negated, DataType.BOOLEAN)
        if isinstance(node, ast.FunctionCall):
            from ..sql.functions import is_scalar_name, lookup_scalar

            if is_scalar_name(node.name):
                function = lookup_scalar(node.name)
                if function.null_propagating and any(
                    _is_null_literal(arg) for arg in node.args
                ):
                    return null
        return None

    return ast.transform_expression(expr, propagate)


def _is_null_literal(expr: ast.Expr) -> bool:
    return isinstance(expr, ast.Literal) and expr.value is None


def _never_true(expr: ast.Expr) -> bool:
    """Conservatively: can this (partially folded) predicate ever be TRUE?"""
    if isinstance(expr, ast.Literal):
        return expr.value is not True
    if isinstance(expr, ast.BinaryOp):
        if expr.op == "AND":
            return _never_true(expr.left) or _never_true(expr.right)
        if expr.op == "OR":
            return _never_true(expr.left) and _never_true(expr.right)
    if isinstance(expr, ast.UnaryOp) and expr.op == "NOT":
        # NOT(NULL) is NULL; NOT(TRUE) is FALSE.
        operand = expr.operand
        if isinstance(operand, ast.Literal):
            return operand.value in (True, None)
    return False


# ---------------------------------------------------------------------------
# merging / cleanup
# ---------------------------------------------------------------------------


def merge_adjacent(plan: LogicalPlan) -> LogicalPlan:
    """Collapse Project(Project), trivial projections, and Limit(Limit)."""

    def merge(node: LogicalPlan) -> Optional[LogicalPlan]:
        if isinstance(node, UnionOp) and node.all:
            # Flatten nested UNION ALLs (binary parses of N-ary unions) so
            # per-branch rules (partial aggregation, limit pushdown) see
            # every branch at once. Positional alignment makes this sound.
            new_inputs: List[LogicalPlan] = []
            changed = False
            for branch in node.inputs:
                if isinstance(branch, UnionOp) and branch.all:
                    new_inputs.extend(branch.inputs)
                    changed = True
                else:
                    new_inputs.append(branch)
            if changed:
                return UnionOp(new_inputs, node.columns, True)
        if isinstance(node, ProjectOp):
            child = node.child
            # An identity projection (forwards the child's own column
            # objects under their own names) is pure noise: drop it.
            if len(node.expressions) == len(child.output_columns) and all(
                isinstance(expr, ast.BoundRef)
                and expr.column is child_column
                and out is child_column
                for expr, child_column, out in zip(
                    node.expressions, child.output_columns, node.columns
                )
            ):
                return child
            if isinstance(child, ProjectOp):
                mapping = {
                    column.column_id: expression
                    for column, expression in zip(child.columns, child.expressions)
                }
                merged = [
                    ast.replace_refs(expression, mapping)
                    for expression in node.expressions
                ]
                return ProjectOp(child.child, merged, node.columns)
        if isinstance(node, LimitOp) and isinstance(node.child, ProjectOp):
            # Projection is row-wise: LIMIT slides below it, where it can
            # merge with other limits or sink into UNION ALL branches.
            project = node.child
            return ProjectOp(
                LimitOp(project.child, node.limit, node.offset),
                project.expressions,
                project.columns,
            )
        if isinstance(node, LimitOp) and isinstance(node.child, LimitOp):
            inner = node.child
            offset = inner.offset + node.offset
            limits = []
            if inner.limit is not None:
                limits.append(max(inner.limit - node.offset, 0))
            if node.limit is not None:
                limits.append(node.limit)
            limit = min(limits) if limits else None
            return LimitOp(inner.child, limit, offset)
        return None

    return transform_plan(plan, merge)


# ---------------------------------------------------------------------------
# projection pruning
# ---------------------------------------------------------------------------


def prune_columns(plan: LogicalPlan) -> LogicalPlan:
    """Narrow every subtree to the columns its consumers actually read.

    The root keeps all of its output columns. Scans whose columns are only
    partly consumed get a narrowing projection directly above them (which
    the pushdown planner later folds into the source fragment).
    """
    required = {c.column_id for c in plan.output_columns}
    return _prune(plan, required)


def _prune(plan: LogicalPlan, required: Set[int]) -> LogicalPlan:
    if isinstance(plan, ScanOp):
        kept = [c for c in plan.columns if c.column_id in required]
        if not kept:
            kept = [plan.columns[0]]  # keep one column to preserve cardinality
        if len(kept) == len(plan.columns):
            return plan
        return ProjectOp(plan, [c.ref() for c in kept], kept)
    if isinstance(plan, ProjectOp):
        kept_indices = [
            i for i, c in enumerate(plan.columns) if c.column_id in required
        ]
        if not kept_indices:
            kept_indices = [0]
        expressions = [plan.expressions[i] for i in kept_indices]
        columns = [plan.columns[i] for i in kept_indices]
        child_required = {
            c.column_id for e in expressions for c in ast.referenced_columns(e)
        }
        child = _prune(plan.child, child_required)
        return ProjectOp(child, expressions, columns)
    if isinstance(plan, FilterOp):
        if isinstance(plan.child, ScanOp):
            # Narrow *above* the filter, keeping Filter(Scan) adjacent: a
            # filter-capable but projection-less source (REST, key-value)
            # can then still absorb the predicate.
            filtered = FilterOp(plan.child, plan.predicate)
            kept = [c for c in plan.child.columns if c.column_id in required]
            if not kept:
                kept = [plan.child.columns[0]]
            if len(kept) < len(plan.child.columns):
                return ProjectOp(filtered, [c.ref() for c in kept], kept)
            return filtered
        child_required = set(required)
        child_required.update(
            c.column_id for c in ast.referenced_columns(plan.predicate)
        )
        return FilterOp(_prune(plan.child, child_required), plan.predicate)
    if isinstance(plan, JoinOp):
        condition_refs = (
            {c.column_id for c in ast.referenced_columns(plan.condition)}
            if plan.condition is not None
            else set()
        )
        needed = set(required) | condition_refs
        left_ids = {c.column_id for c in plan.left.output_columns}
        right_ids = {c.column_id for c in plan.right.output_columns}
        left = _prune(plan.left, needed & left_ids)
        right = _prune(plan.right, needed & right_ids)
        return JoinOp(left, right, plan.kind, plan.condition, plan.null_aware)
    if isinstance(plan, AggregateOp):
        kept_aggregates: List = []
        kept_agg_columns: List[RelColumn] = []
        for call, column in zip(plan.aggregates, plan.aggregate_columns):
            if column.column_id in required or not plan.aggregates:
                kept_aggregates.append(call)
                kept_agg_columns.append(column)
        if not kept_aggregates and not plan.group_expressions:
            # A global aggregate must keep at least one call to produce a row.
            kept_aggregates = list(plan.aggregates[:1])
            kept_agg_columns = list(plan.aggregate_columns[:1])
        child_required: Set[int] = set()
        for expression in plan.group_expressions:
            child_required.update(
                c.column_id for c in ast.referenced_columns(expression)
            )
        for call in kept_aggregates:
            if call.argument is not None:
                child_required.update(
                    c.column_id for c in ast.referenced_columns(call.argument)
                )
        if not child_required and plan.child.output_columns:
            child_required = {plan.child.output_columns[0].column_id}
        child = _prune(plan.child, child_required)
        return AggregateOp(
            child,
            plan.group_expressions,
            plan.group_columns,
            kept_aggregates,
            kept_agg_columns,
        )
    if isinstance(plan, SortOp):
        child_required = set(required)
        for expression, _ in plan.keys:
            child_required.update(
                c.column_id for c in ast.referenced_columns(expression)
            )
        return SortOp(_prune(plan.child, child_required), plan.keys)
    if isinstance(plan, WindowOp):
        window_ids = {c.column_id for c in plan.window_columns}
        child_required = {cid for cid in required if cid not in window_ids}
        for spec in plan.specs:
            for expression in (
                [spec.argument] if spec.argument is not None else []
            ) + list(spec.partition_by) + [key for key, _ in spec.order_keys]:
                child_required.update(
                    c.column_id for c in ast.referenced_columns(expression)
                )
        if not child_required and plan.child.output_columns:
            child_required = {plan.child.output_columns[0].column_id}
        return WindowOp(
            _prune(plan.child, child_required), plan.specs, plan.window_columns
        )
    if isinstance(plan, LimitOp):
        return LimitOp(_prune(plan.child, required), plan.limit, plan.offset)
    if isinstance(plan, DistinctOp):
        # DISTINCT semantics depend on the full row: nothing prunes below it.
        full = {c.column_id for c in plan.child.output_columns}
        return DistinctOp(_prune(plan.child, full))
    if isinstance(plan, UnionOp):
        kept_indices = [
            i for i, c in enumerate(plan.columns) if c.column_id in required
        ]
        if not kept_indices:
            kept_indices = [0]
        if len(kept_indices) == len(plan.columns):
            new_inputs = [
                _prune(child, {c.column_id for c in child.output_columns})
                for child in plan.inputs
            ]
            return UnionOp(new_inputs, plan.columns, plan.all)
        new_inputs = []
        for child in plan.inputs:
            child_columns = child.output_columns
            kept_child = [child_columns[i] for i in kept_indices]
            pruned = _prune(child, {c.column_id for c in kept_child})
            new_inputs.append(
                ProjectOp(
                    pruned,
                    [c.ref() for c in kept_child],
                    kept_child,
                )
            )
        return UnionOp(new_inputs, [plan.columns[i] for i in kept_indices], plan.all)
    if isinstance(plan, SetDifferenceOp):
        left = _prune(plan.left, {c.column_id for c in plan.left.output_columns})
        right = _prune(plan.right, {c.column_id for c in plan.right.output_columns})
        return SetDifferenceOp(left, right, plan.operation, plan.columns, plan.all)
    if isinstance(plan, (ValuesOp, RemoteQueryOp)):
        return plan
    children = [
        _prune(child, {c.column_id for c in child.output_columns})
        for child in plan.children()
    ]
    return plan.with_children(children)


# ---------------------------------------------------------------------------
# limit pushdown
# ---------------------------------------------------------------------------


def push_down_limits(plan: LogicalPlan) -> LogicalPlan:
    """Copy LIMIT (and top-N: ORDER BY + LIMIT) into UNION ALL branches.

    The outer limit/sort always stays — branches only pre-reduce. A branch
    that is already limited to within budget is left alone, which is also
    what makes the rewrite idempotent.
    """

    def push(node: LogicalPlan) -> Optional[LogicalPlan]:
        if not isinstance(node, LimitOp) or node.limit is None:
            return None
        child = node.child
        budget = node.limit + node.offset
        if isinstance(child, SortOp):
            return _push_top_n(node, child, budget)
        if isinstance(child, UnionOp) and child.all:
            new_inputs = []
            changed = False
            for branch in child.inputs:
                if isinstance(branch, LimitOp) and (
                    branch.limit is not None and branch.limit <= budget
                ):
                    new_inputs.append(branch)
                    continue
                new_inputs.append(LimitOp(branch, budget, 0))
                changed = True
            if not changed:
                return None
            return LimitOp(
                UnionOp(new_inputs, child.columns, child.all),
                node.limit,
                node.offset,
            )
        return None

    return transform_plan(plan, push)


def push_down_distinct(plan: LogicalPlan) -> LogicalPlan:
    """Duplicate-eliminate UNION ALL branches early.

    ``Distinct(UnionAll(b…))`` keeps its global dedup but each branch
    dedups locally first — cross-branch duplicates survive the branch pass,
    so semantics are unchanged while per-source transfer shrinks.
    """

    def push(node: LogicalPlan) -> Optional[LogicalPlan]:
        if not isinstance(node, DistinctOp):
            return None
        child = node.child
        if not (isinstance(child, UnionOp) and child.all and len(child.inputs) > 1):
            return None
        if all(isinstance(branch, DistinctOp) for branch in child.inputs):
            return None  # already applied
        new_inputs = [
            branch if isinstance(branch, DistinctOp) else DistinctOp(branch)
            for branch in child.inputs
        ]
        return DistinctOp(UnionOp(new_inputs, child.columns, True))

    return transform_plan(plan, push)


def _push_top_n(
    limit: LimitOp, sort: SortOp, budget: int
) -> Optional[LogicalPlan]:
    """Limit(Sort(…Union ALL…)) → per-branch top-N, outer sort+limit kept.

    Handles an intervening deterministic projection by rewriting the sort
    keys through it onto the union's columns.
    """
    target = sort.child
    project: Optional[ProjectOp] = None
    if isinstance(target, ProjectOp) and isinstance(target.child, UnionOp):
        project = target
        union = target.child
        projection_map = {
            column.column_id: expression
            for column, expression in zip(project.columns, project.expressions)
        }
        keys_on_union = [
            (ast.replace_refs(key, projection_map), ascending)
            for key, ascending in sort.keys
        ]
    elif isinstance(target, UnionOp):
        union = target
        keys_on_union = list(sort.keys)
    else:
        return None
    if not union.all or len(union.inputs) < 2:
        return None
    union_ids = {column.column_id for column in union.columns}
    for key, _ in keys_on_union:
        if any(
            column.column_id not in union_ids
            for column in ast.referenced_columns(key)
        ):
            return None

    new_branches: List[LogicalPlan] = []
    changed = False
    for branch in union.inputs:
        if (
            isinstance(branch, LimitOp)
            and branch.limit is not None
            and branch.limit <= budget
        ):
            new_branches.append(branch)
            continue
        branch_map = {
            union_column.column_id: branch_column
            for union_column, branch_column in zip(
                union.columns, branch.output_columns
            )
        }
        branch_keys = [
            (ast.replace_refs(key, branch_map), ascending)
            for key, ascending in keys_on_union
        ]
        new_branches.append(LimitOp(SortOp(branch, branch_keys), budget, 0))
        changed = True
    if not changed:
        return None
    new_union = UnionOp(new_branches, union.columns, True)
    rebuilt: LogicalPlan = new_union
    if project is not None:
        rebuilt = ProjectOp(new_union, project.expressions, project.columns)
    return LimitOp(SortOp(rebuilt, sort.keys), limit.limit, limit.offset)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _conjoin(predicates: Sequence[ast.Expr]) -> ast.Expr:
    joined = ast.conjoin(list(predicates))
    assert joined is not None
    return joined


def _is_deterministic(expr: ast.Expr) -> bool:
    """All our expressions are deterministic today; hook for future RANDOM()."""
    return True


def _plan_fingerprint(plan: LogicalPlan) -> str:
    """Cheap structural fingerprint used to detect rewrite fixpoints."""
    from .logical import explain_plan

    return explain_plan(plan)

"""Columnar pages: the batch currency of the execution engine.

A :class:`Page` is a fixed set of column vectors (plain Python lists) plus
a row count. Operators exchange pages instead of ``list[tuple]`` row
batches so that vectorized kernels (``repro.core.expressions``) can run
column-at-a-time: one tight loop per column instead of one Python-level
closure call per row per expression node.

Design notes
------------

* **Validity / NULLs.** SQL NULL is represented in-band as ``None``
  inside the column vectors — there is no separate validity bitmap.
  Every vectorized kernel treats ``None`` as NULL and propagates it
  (three-valued logic for booleans). This keeps the representation
  bridgeable to row tuples for free: ``to_rows()`` is a single
  ``zip(*columns)``.

* **Typed vectors.** A column vector is either a plain Python list
  (the object vector: any dtype, NULLs in-band) or, when the column is
  null-free and homogeneous for its declared type, a compact
  ``array.array`` — typecode ``'q'`` (int64) for INTEGER, ``'d'``
  (C double) for FLOAT. Typed vectors are a pure storage/speed
  optimization: iteration, indexing and ``zip`` yield exactly the same
  Python ``int``/``float`` objects a list would (Python floats *are* C
  doubles, and int64-range ints round-trip exactly), so results stay
  bit-identical with the object-vector and row engines. Columns that
  carry a NULL, a bool, an out-of-range int, or mixed types simply stay
  object vectors — the in-band NULL representation means no separate
  mask is ever needed. :func:`typed_column` is the single gatekeeper
  for this decision.

* **Row semantics for compatibility.** ``Page`` deliberately behaves
  like a sequence of row tuples: ``len(page)`` is the row count,
  iterating yields row tuples, ``page[3]`` is a row, ``page[2:5]`` is a
  smaller :class:`Page`, and a page compares equal to the equivalent
  ``list[tuple]``. Legacy operators written against the PR 2 row-batch
  contract — and tests asserting on raw page contents — keep working
  unchanged.

* **Zero-column pages.** A projection of no columns (e.g. the inner
  input of ``COUNT(*)`` after pruning) still carries a row count;
  ``to_rows()`` yields ``num_rows`` empty tuples.

This module is dependency-free (no imports from the rest of the engine)
so adapters and the core can both use it without cycles.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

Row = Tuple[Any, ...]

#: A column vector: plain list (object vector) or typed ``array.array``.
Column = Union[List[Any], "array[Any]"]

__all__ = [
    "Column",
    "Page",
    "Row",
    "as_page",
    "chunk_rows",
    "pages_from_rows",
    "paginate_rows",
    "plain_column",
    "split_batches",
    "typed_column",
]

#: array typecodes per global dtype name (``DataType.value`` spelling).
#: Only null-free INTEGER/FLOAT columns have a typed representation;
#: TEXT/BOOLEAN/DATE and anything NULL-bearing stay object vectors.
_TYPE_CODES = {"INTEGER": "q", "FLOAT": "d"}


def typed_column(values: Column, dtype: Any) -> Column:
    """Return a typed ``array`` vector for ``values`` when eligible.

    ``dtype`` is a global-schema type (``DataType`` or its ``.value``
    string). Eligibility is strict so typing is semantically invisible:

    * INTEGER: every value is exactly ``int`` (``bool`` is excluded —
      ``type(True) is bool``) and fits int64; otherwise unchanged.
    * FLOAT: every value is exactly ``float``. Int-valued FLOAT columns
      are *not* coerced — that would change ``2`` into ``2.0`` and
      diverge from the row engine.
    * Everything else (or any ``None`` present): returned unchanged.

    The homogeneity test is a single C-speed ``set(map(type, values))``
    pass, so retyping a freshly transposed page is cheap.
    """
    code = _TYPE_CODES.get(getattr(dtype, "value", dtype))
    if code is None or type(values) is array:
        return values
    if not values:
        return array(code)
    kinds = set(map(type, values))
    if code == "q":
        if kinds == {int}:
            try:
                return array("q", values)
            except OverflowError:  # out of int64 range: keep object vector
                return values
        return values
    if kinds == {float}:
        return array("d", values)
    return values


def plain_column(values: Column) -> List[Any]:
    """Downgrade a column vector to a plain list (no-op for lists)."""
    return list(values) if type(values) is array else values  # type: ignore[return-value]


class Page:
    """A columnar batch: per-column value vectors plus a row count."""

    __slots__ = ("columns", "num_rows")

    def __init__(self, columns: List[Column], num_rows: int) -> None:
        self.columns = columns
        self.num_rows = num_rows

    # -- construction / bridging --------------------------------------

    @classmethod
    def from_rows(
        cls,
        rows: Sequence[Row],
        width: Optional[int] = None,
        dtypes: Optional[Sequence[Any]] = None,
    ) -> "Page":
        """Transpose a row batch into a page.

        ``width`` (column count) is required to shape *empty* batches
        correctly — with at least one row the width is inferred, and an
        empty batch falls back to ``len(dtypes)`` when dtypes are given.
        ``dtypes`` (global-schema types, one per column) additionally
        opts eligible columns into typed ``array`` storage.
        """
        num_rows = len(rows)
        if num_rows:
            columns: List[Column] = [list(column) for column in zip(*rows)]
        else:
            if width is None and dtypes is not None:
                width = len(dtypes)
            columns = [[] for _ in range(width or 0)]
        if dtypes is not None:
            columns = [
                typed_column(column, dtype)
                for column, dtype in zip(columns, dtypes)
            ]
        return cls(columns, num_rows)

    @classmethod
    def empty(cls, width: int) -> "Page":
        """A zero-row page with ``width`` (empty) column vectors."""
        return cls([[] for _ in range(width)], 0)

    def to_rows(self) -> List[Row]:
        """Transpose back to a list of row tuples."""
        if not self.columns:
            return [()] * self.num_rows
        return list(zip(*self.columns))

    def plain(self) -> "Page":
        """A view of this page with every typed vector downgraded to a
        plain list. Returns ``self`` when nothing is typed."""
        if any(type(column) is array for column in self.columns):
            return Page([plain_column(column) for column in self.columns], self.num_rows)
        return self

    def retyped(self, dtypes: Sequence[Any]) -> "Page":
        """A view with eligible columns upgraded to typed vectors (see
        :func:`typed_column`). Returns ``self`` when nothing changes."""
        columns = [
            typed_column(column, dtype)
            for column, dtype in zip(self.columns, dtypes)
        ]
        if all(new is old for new, old in zip(columns, self.columns)):
            return self
        return Page(columns, self.num_rows)

    # -- shape ---------------------------------------------------------

    @property
    def width(self) -> int:
        return len(self.columns)

    def column(self, index: int) -> Column:
        return self.columns[index]

    def __len__(self) -> int:
        return self.num_rows

    def __bool__(self) -> bool:
        return self.num_rows > 0

    # -- selection -----------------------------------------------------

    def take(self, indices: Sequence[int]) -> "Page":
        """Gather the given row positions into a new page.

        ``map(column.__getitem__, indices)`` keeps the gather loop in C;
        typed vectors stay typed (same typecode) across a take.
        """
        columns: List[Column] = []
        for column in self.columns:
            if type(column) is array:
                columns.append(array(column.typecode, map(column.__getitem__, indices)))
            else:
                columns.append(list(map(column.__getitem__, indices)))
        return Page(columns, len(indices))

    def __getitem__(self, item: Union[int, slice]) -> Union[Row, "Page"]:
        if isinstance(item, slice):
            start, stop, step = item.indices(self.num_rows)
            return Page(
                [column[item] for column in self.columns],
                len(range(start, stop, step)),
            )
        index = item if item >= 0 else item + self.num_rows
        if not 0 <= index < self.num_rows:
            raise IndexError("page row index out of range")
        return tuple(column[index] for column in self.columns)

    # -- row-compatible protocol ----------------------------------------

    def __iter__(self) -> Iterator[Row]:
        if not self.columns:
            return iter([()] * self.num_rows)
        return iter(zip(*self.columns))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Page):
            if self.num_rows != other.num_rows:
                return False
            if self.columns == other.columns:
                return True
            # A typed vector never compares equal to an equivalent list
            # (array.__eq__ with a list is NotImplemented), so normalize
            # before declaring pages different.
            if len(self.columns) != len(other.columns):
                return False
            return all(
                plain_column(mine) == plain_column(theirs)
                for mine, theirs in zip(self.columns, other.columns)
            )
        if isinstance(other, (list, tuple)):
            return self.to_rows() == list(other)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]  # mutable container

    def __repr__(self) -> str:
        return f"Page({self.num_rows} rows x {self.width} cols)"


def as_page(batch: Union[Page, Sequence[Row]], width: Optional[int] = None) -> Page:
    """Normalize a batch to a :class:`Page` (no-op when already one)."""
    if isinstance(batch, Page):
        return batch
    return Page.from_rows(batch, width)


# ---------------------------------------------------------------------------
# chunking helpers — the single home for batch/page slicing logic
# ---------------------------------------------------------------------------


def chunk_rows(rows: Iterable[Row], size: int) -> Iterator[Page]:
    """Chunk a row *stream* into non-empty pages of at most ``size`` rows.

    Dataflow chunker: used to adapt legacy row-at-a-time ``iterate()``
    operators to the page protocol. Never yields an empty page (an empty
    stream yields nothing) — empty pages are an adapter wire-protocol
    artifact, not a dataflow one.
    """
    buffer: List[Row] = []
    for row in rows:
        buffer.append(row)
        if len(buffer) >= size:
            yield Page.from_rows(buffer)
            buffer = []
    if buffer:
        yield Page.from_rows(buffer)


def pages_from_rows(
    rows: Sequence[Row],
    size: int,
    width: Optional[int] = None,
    dtypes: Optional[Sequence[Any]] = None,
) -> Iterator[Page]:
    """Slice a materialized row list into non-empty pages of ``size`` rows."""
    for start in range(0, len(rows), size):
        yield Page.from_rows(rows[start : start + size], width, dtypes)


def split_batches(batches: Iterable[Page], size: int) -> Iterator[Page]:
    """Re-slice a page stream so no page exceeds ``size`` rows.

    Pages are only ever *split*, never coalesced: network accounting
    charges the adapter's pages as shipped, and splitting afterwards
    keeps row order and transfer totals bit-identical while honouring
    the executor's ``batch_size``. Empty input pages are dropped (they
    exist only for wire accounting, which happens before this point).
    """
    for batch in batches:
        if len(batch) <= size:
            if batch:
                yield batch
            continue
        for start in range(0, len(batch), size):
            yield batch[start : start + size]


def paginate_rows(
    rows: Iterable[Row],
    page_rows: int,
    width: int,
    dtypes: Optional[Sequence[Any]] = None,
) -> Iterator[Page]:
    """Chunk adapter output into wire pages (the adapter page contract).

    Yields zero or more *full* pages of exactly ``page_rows`` rows,
    followed by exactly one final partial — possibly empty — page. The
    trailing short page is what tells the mediator the result is
    complete, so it is always emitted (and charged as a network
    message) even when the row count is an exact multiple of
    ``page_rows``. ``width`` shapes the column vectors of empty pages.
    """
    if page_rows < 1:
        raise ValueError("page_rows must be >= 1")
    buffer: List[Row] = []
    for row in rows:
        buffer.append(row)
        if len(buffer) == page_rows:
            yield Page.from_rows(buffer, width, dtypes)
            buffer = []
    yield Page.from_rows(buffer, width, dtypes)

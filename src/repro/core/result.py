"""Query results and metrics as seen by mediator clients."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .physical import ExecutionMetrics


@dataclass
class QueryMetrics:
    """End-to-end measurements for one query execution.

    ``network`` holds exact transfer accounting from the simulated network;
    ``simulated_ms`` is the virtual network time (deterministic across
    machines), ``wall_ms`` the real elapsed time on this machine, and
    ``planning_ms`` the optimizer's share of it.
    """

    network: ExecutionMetrics
    wall_ms: float = 0.0
    planning_ms: float = 0.0

    @property
    def simulated_ms(self) -> float:
        return self.network.network_ms

    @property
    def rows_shipped(self) -> int:
        return self.network.rows_shipped

    @property
    def bytes_shipped(self) -> float:
        return self.network.bytes_shipped

    @property
    def messages(self) -> int:
        return self.network.messages

    def summary(self) -> str:
        lines = [
            f"{self.network.rows_shipped} rows / "
            f"{self.network.bytes_shipped:.0f} bytes shipped in "
            f"{self.network.messages} messages; "
            f"simulated network {self.simulated_ms:.1f} ms; "
            f"wall {self.wall_ms:.1f} ms (planning {self.planning_ms:.1f} ms)"
        ]
        net = self.network
        if net.batches_output:
            lines.append(
                f"{net.rows_output} result rows in {net.batches_output} "
                f"batches (avg {net.batch_rows_avg:.1f} rows/batch)"
            )
        if net.scheduler_mode != "sequential":
            lines.append(
                f"scheduler {net.scheduler_mode}: "
                f"peak {net.fragments_in_flight_peak} fragments in flight, "
                f"{net.scheduler_stalls} stalls; "
                f"simulated critical path {net.parallel_ms:.1f} ms"
            )
        if (
            net.fragment_cache_hits
            or net.fragment_cache_misses
            or net.materialized_view_hits
        ):
            lines.append(
                f"semantic cache: {net.fragment_cache_hits} fragment "
                f"hit(s) / {net.fragment_cache_misses} miss(es), "
                f"{net.fragment_cache_bytes_saved:.0f} bytes saved; "
                f"{net.materialized_view_hits} materialized view hit(s)"
            )
        if net.breaker_trips or net.breaker_fallbacks:
            lines.append(
                f"circuit breakers: {net.breaker_trips} trips, "
                f"{net.breaker_fallbacks} replica fallbacks"
            )
        return "\n".join(lines)


class QueryResult:
    """Materialized result rows plus column names, metrics, and plan text.

    ``complete`` is first-class completeness metadata: False means one or
    more sources failed past their retry/breaker/replica envelope under
    ``on_source_failure="partial"`` and their rows are missing;
    ``excluded_sources`` maps each such source to the reason it was
    dropped. A partial answer is never silently mistaken for a full one —
    callers, the REPL banner, EXPLAIN ANALYZE, and the obs sink all
    surface this flag.
    """

    def __init__(
        self,
        column_names: List[str],
        rows: List[Tuple[Any, ...]],
        metrics: QueryMetrics,
        explain_text: str = "",
        complete: bool = True,
        excluded_sources: Optional[Dict[str, str]] = None,
    ) -> None:
        self.column_names = column_names
        self.rows = rows
        self.metrics = metrics
        self.explain_text = explain_text
        self.complete = complete
        self.excluded_sources = dict(excluded_sources or {})

    def __iter__(self) -> Iterator[Tuple[Any, ...]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def first(self) -> Optional[Tuple[Any, ...]]:
        """The first row, or None for an empty result."""
        return self.rows[0] if self.rows else None

    def scalar(self) -> Any:
        """The single value of a 1×1 result (raises otherwise)."""
        if len(self.rows) != 1 or len(self.column_names) != 1:
            raise ValueError(
                f"scalar() needs a 1x1 result, got "
                f"{len(self.rows)}x{len(self.column_names)}"
            )
        return self.rows[0][0]

    def to_dicts(self) -> List[Dict[str, Any]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.column_names, row)) for row in self.rows]

    def format_table(self, max_rows: int = 20) -> str:
        """Fixed-width textual rendering (for examples and the README)."""
        shown = self.rows[:max_rows]
        cells = [[_render(v) for v in row] for row in shown]
        widths = [len(name) for name in self.column_names]
        for row in cells:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        header = " | ".join(
            name.ljust(width) for name, width in zip(self.column_names, widths)
        )
        rule = "-+-".join("-" * width for width in widths)
        body = [
            " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
            for row in cells
        ]
        lines = [header, rule, *body]
        if len(self.rows) > max_rows:
            lines.append(f"... (+{len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        partial = "" if self.complete else ", partial"
        return (
            f"QueryResult({len(self.rows)} rows, "
            f"columns={self.column_names}{partial})"
        )


def _render(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)

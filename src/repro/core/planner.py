"""The end-to-end planning pipeline.

``Planner.plan`` drives: parse → bind → rewrite → join-order → pushdown →
semijoin → physicalize, returning a :class:`PlannedQuery` that records every
intermediate stage for EXPLAIN, tests, and benchmarks.

:class:`PlannerOptions` switches individual phases off — that is how the
experiment suite constructs its baselines (ship-everything mediator,
canonical join order, semijoins disabled, histogram-free estimation).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import List, Optional

from ..catalog.catalog import Catalog
from ..errors import PlanError
from ..sources.faults import FaultPlan
from ..sources.network import SimulatedNetwork
from ..sql.parser import parse_select
from .analyzer import Analyzer
from .cardinality import Estimator
from .cost import DEFAULT_CPU_ROW_MS, CostModel
from .join_order import DEFAULT_DP_LIMIT, JOIN_STRATEGIES, JoinOrderer, OrderingStats
from ..obs.trace import NULL_SPAN, NULL_TRACER
from .logical import LogicalPlan, explain_plan
from .physical import JOIN_ALGORITHMS, PhysicalOperator, PhysicalPlanner
from .pushdown import PUSHDOWN_LEVELS, PushdownPlanner
from .rewriter import rewrite
from .semijoin import SEMIJOIN_MODES, SemijoinDecision, SemijoinPlanner


#: Accepted query behaviors when a source fails past its whole envelope.
ON_SOURCE_FAILURE_MODES = ("fail", "partial")


@dataclass(frozen=True)
class PlannerOptions:
    """Optimizer configuration; every field is an experiment knob.

    Attributes:
        rewrites: run the rule-based rewriter (constant folding, predicate
            pushdown, projection pruning). Off = the naive mediator.
        join_strategy: ``auto`` | ``dp`` | ``greedy`` | ``canonical``.
        pushdown: ``full`` (capability envelope) | ``scans-only`` (ship
            every base table whole).
        semijoin: ``auto`` (cost-gated) | ``off`` | ``force``.
        use_histograms: feed histograms to the estimator (T4 ablation).
        partial_aggregation: decompose aggregates over UNION ALL into
            per-branch partial aggregates (local/global aggregation).
        dp_limit: region size above which DP falls back to greedy.
        cpu_row_ms: virtual CPU cost per mediator row (cost model unit).
        max_parallel_fragments: worker threads fetching independent
            fragments concurrently; 1 = classic sequential execution.
        max_parallel_per_source: concurrent fragments allowed against any
            one component system (autonomy: don't stampede a site).
        fragment_timeout_ms: fail a fragment whose source makes no progress
            for this long; 0 disables the timeout.
        retry_backoff_ms: base delay before a fragment retry (grows by
            ``retry_backoff_multiplier`` per attempt up to
            ``retry_backoff_max_ms``); 0 retries immediately.
        retry_jitter: spread each backoff uniformly over ±this fraction.
        breaker_failure_threshold: consecutive source failures that trip the
            per-source circuit breaker; 0 disables breakers.
        breaker_reset_ms: how long a tripped breaker stays open before
            admitting a half-open probe.
        batch_size: rows per columnar page handed between physical
            operators (batch-at-a-time execution); 1 degenerates to
            classic row-at-a-time pulls. Purely an executor knob — plans,
            results, and simulated network accounting are identical at
            every value.
        vectorize: evaluate expressions with column-at-a-time kernels
            (default) or with the row-at-a-time closures looped per page
            (the PR 2 engine, kept as a benchmark baseline and
            equivalence oracle). Purely an executor knob — results and
            metrics are identical either way.
        typed_columns: let exchanges serve typed column vectors
            (``array``-backed int64/double for null-free INTEGER/FLOAT
            columns) so expression/join/aggregate kernels run C loops
            without per-value NULL screening; off downgrades every page
            to plain object vectors at the exchange. Purely an executor
            knob — results and network accounting are identical either
            way.
        fuse: collapse scan→filter→project chains into a single fused
            pipeline operator (mask + gather + project in one pass per
            page, no intermediate operator hops). Changes the physical
            plan shape (visible in EXPLAIN) but never results or
            metrics.
        morsel_workers: worker threads for intra-operator parallelism:
            large hash-join builds/probes and aggregation inputs split
            into page-range morsels processed by a shared pool, with
            per-worker partial states merged deterministically (results
            stay bit-identical). 1 = no pool, classic single-threaded
            operators. Complements ``max_parallel_fragments``, which
            only parallelizes *fetching*.
        trace: force tracing for queries planned with these options even
            when the mediator's tracer is globally disabled (per-query
            tracing). Purely observational — never changes the plan.
        deadline_ms: wall-clock budget for the whole query; past it the
            engine cancels cooperatively (page boundaries, retry gates)
            with an attributed QueryTimeoutError. 0 disables deadlines.
        on_source_failure: ``fail`` (a source failing past its
            retry/breaker/replica envelope aborts the query — classic
            behavior) or ``partial`` (the dead source's scans degrade to
            empty and the result is flagged ``complete=False`` with the
            excluded sources and reasons attached).
        faults: a seeded :class:`~repro.sources.faults.FaultPlan` applied
            to this query's source calls with a fresh injector per
            execution — deterministic fault scripts for tests and chaos
            runs. None (default) injects nothing.
        adaptive_timeout: derive each source's no-progress timeout from
            its observed page-fetch latency quantiles —
            ``clamp(timeout_multiplier * p99, timeout_floor_ms,
            timeout_ceiling_ms)`` — instead of the fixed
            ``fragment_timeout_ms`` (which remains the cold-start
            fallback until enough samples exist). Purely an execution
            knob.
        timeout_multiplier: the ``k`` in the adaptive budget ``k * p99``.
        timeout_floor_ms: lower clamp of the adaptive timeout (a fast
            source must not collapse its own budget to nothing).
        timeout_ceiling_ms: upper clamp of the adaptive timeout (a slow
            source must not grant itself an unbounded budget).
        hedge_fragments: arm hedged fragment fetches: a fragment whose
            source produces no page within its hedge delay (~observed
            p95 latency, ``hedge_delay_ms`` while cold) gets a duplicate
            fetch launched on a healthy replica; the first stream to
            produce wins, the loser is cooperatively cancelled. Rows are
            bit-identical to unhedged execution; duplicate traffic is
            charged honestly and reported under ``hedges_*`` metrics.
        hedge_delay_ms: static cold-start hedge delay, and the floor of
            the adaptive (quantile-derived) delay.
        hedge_quantile: the observed-latency quantile used as the hedge
            delay once the source's health window is warm.
        health_routing: pick each fragment's serving source by health
            score (EWMA latency inflated by error rate) across the
            primary and its replicas at dispatch time, instead of only
            falling back when a circuit breaker opens. Route decisions
            emit trace events and count in ``health_reroutes``.
    """

    rewrites: bool = True
    join_strategy: str = "auto"
    join_algorithm: str = "auto"
    pushdown: str = "full"
    semijoin: str = "auto"
    replicas: str = "cost"
    use_histograms: bool = True
    partial_aggregation: bool = True
    dp_limit: int = DEFAULT_DP_LIMIT
    cpu_row_ms: float = DEFAULT_CPU_ROW_MS
    max_parallel_fragments: int = 1
    max_parallel_per_source: int = 2
    fragment_timeout_ms: float = 0.0
    retry_backoff_ms: float = 0.0
    retry_backoff_multiplier: float = 2.0
    retry_backoff_max_ms: float = 5000.0
    retry_jitter: float = 0.0
    breaker_failure_threshold: int = 0
    breaker_reset_ms: float = 30000.0
    batch_size: int = 1024
    vectorize: bool = True
    typed_columns: bool = True
    fuse: bool = True
    morsel_workers: int = 1
    trace: bool = False
    deadline_ms: float = 0.0
    on_source_failure: str = "fail"
    faults: Optional["FaultPlan"] = None
    adaptive_timeout: bool = False
    timeout_multiplier: float = 3.0
    timeout_floor_ms: float = 50.0
    timeout_ceiling_ms: float = 30000.0
    hedge_fragments: bool = False
    hedge_delay_ms: float = 50.0
    hedge_quantile: float = 0.95
    health_routing: bool = False

    def __post_init__(self) -> None:
        if self.join_strategy not in JOIN_STRATEGIES:
            raise PlanError(f"unknown join strategy {self.join_strategy!r}")
        if self.join_algorithm not in JOIN_ALGORITHMS:
            raise PlanError(f"unknown join algorithm {self.join_algorithm!r}")
        if self.pushdown not in PUSHDOWN_LEVELS:
            raise PlanError(f"unknown pushdown level {self.pushdown!r}")
        if self.semijoin not in SEMIJOIN_MODES:
            raise PlanError(f"unknown semijoin mode {self.semijoin!r}")
        if self.replicas not in ("cost", "primary"):
            raise PlanError(f"unknown replica mode {self.replicas!r}")
        if self.max_parallel_fragments < 1:
            raise PlanError(
                "max_parallel_fragments must be >= 1 "
                f"(got {self.max_parallel_fragments!r})"
            )
        if self.max_parallel_per_source < 1:
            raise PlanError(
                "max_parallel_per_source must be >= 1 "
                f"(got {self.max_parallel_per_source!r})"
            )
        if self.fragment_timeout_ms < 0:
            raise PlanError(
                f"fragment_timeout_ms must be >= 0 (got {self.fragment_timeout_ms!r})"
            )
        if self.retry_backoff_ms < 0:
            raise PlanError(
                f"retry_backoff_ms must be >= 0 (got {self.retry_backoff_ms!r})"
            )
        if self.batch_size < 1:
            raise PlanError(
                f"batch_size must be >= 1 (got {self.batch_size!r})"
            )
        if self.morsel_workers < 1:
            raise PlanError(
                f"morsel_workers must be >= 1 (got {self.morsel_workers!r})"
            )
        if self.retry_backoff_multiplier < 1:
            raise PlanError(
                "retry_backoff_multiplier must be >= 1 "
                f"(got {self.retry_backoff_multiplier!r})"
            )
        if self.retry_backoff_max_ms < 0:
            raise PlanError(
                f"retry_backoff_max_ms must be >= 0 (got {self.retry_backoff_max_ms!r})"
            )
        if not 0 <= self.retry_jitter < 1:
            raise PlanError(
                f"retry_jitter must be in [0, 1) (got {self.retry_jitter!r})"
            )
        if self.breaker_failure_threshold < 0:
            raise PlanError(
                "breaker_failure_threshold must be >= 0 "
                f"(got {self.breaker_failure_threshold!r})"
            )
        if self.breaker_reset_ms < 0:
            raise PlanError(
                f"breaker_reset_ms must be >= 0 (got {self.breaker_reset_ms!r})"
            )
        if self.deadline_ms < 0:
            raise PlanError(
                f"deadline_ms must be >= 0 (got {self.deadline_ms!r})"
            )
        if self.on_source_failure not in ON_SOURCE_FAILURE_MODES:
            raise PlanError(
                f"unknown on_source_failure mode {self.on_source_failure!r} "
                f"(expected one of {ON_SOURCE_FAILURE_MODES})"
            )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise PlanError(
                f"faults must be a FaultPlan or None (got {self.faults!r})"
            )
        if self.timeout_multiplier <= 0:
            raise PlanError(
                f"timeout_multiplier must be > 0 (got {self.timeout_multiplier!r})"
            )
        if self.timeout_floor_ms < 0:
            raise PlanError(
                f"timeout_floor_ms must be >= 0 (got {self.timeout_floor_ms!r})"
            )
        if self.timeout_ceiling_ms < self.timeout_floor_ms:
            raise PlanError(
                "timeout_ceiling_ms must be >= timeout_floor_ms "
                f"(got {self.timeout_ceiling_ms!r} < {self.timeout_floor_ms!r})"
            )
        if self.hedge_delay_ms < 0:
            raise PlanError(
                f"hedge_delay_ms must be >= 0 (got {self.hedge_delay_ms!r})"
            )
        if not 0 < self.hedge_quantile < 1:
            raise PlanError(
                f"hedge_quantile must be in (0, 1) (got {self.hedge_quantile!r})"
            )

    def but(self, **changes) -> "PlannerOptions":
        """A copy with some options changed (bench/baseline convenience)."""
        return replace(self, **changes)


#: The ship-everything, no-optimizer configuration used as the baseline
#: mediator throughout the experiment suite.
NAIVE_OPTIONS = PlannerOptions(
    rewrites=False,
    join_strategy="canonical",
    pushdown="scans-only",
    semijoin="off",
    use_histograms=False,
    partial_aggregation=False,
)


@dataclass
class PlannedQuery:
    """Everything the planner produced for one statement."""

    sql: str
    bound: LogicalPlan
    optimized: LogicalPlan
    distributed: LogicalPlan
    physical: PhysicalOperator
    output_names: List[str]
    planning_ms: float
    ordering_stats: OrderingStats
    semijoin_decisions: List[SemijoinDecision] = field(default_factory=list)
    replica_decisions: List[str] = field(default_factory=list)
    estimates: dict = field(default_factory=dict)

    def explain(self) -> str:
        """Multi-stage EXPLAIN text with per-node cardinality estimates."""
        sections = [
            "== distributed plan ==",
            explain_plan(self.distributed, estimates=self.estimates),
            "",
            "== physical plan ==",
            self.physical.explain(),
        ]
        return "\n".join(sections)


class Planner:
    """Plans statements against one catalog + network configuration."""

    def __init__(
        self,
        catalog: Catalog,
        network: SimulatedNetwork,
        options: Optional[PlannerOptions] = None,
    ) -> None:
        self.catalog = catalog
        self.network = network
        self.options = options or PlannerOptions()

    def plan(
        self,
        sql: str,
        options: Optional[PlannerOptions] = None,
        tracer=None,
        parent=None,
    ) -> PlannedQuery:
        """Produce a fully optimized, executable plan for ``sql``.

        ``tracer``/``parent`` attach planning-phase spans (parse, analyze,
        rewrite, plan) to an enclosing query trace; both default to the
        no-op singletons so untraced callers pay nothing.
        """
        if tracer is None:
            tracer = NULL_TRACER
        if parent is None:
            parent = NULL_SPAN
        with tracer.child(parent, "phase:parse", "phase"):
            statement = parse_select(sql)
        return self.plan_statement(statement, sql, options, tracer, parent)

    def plan_statement(
        self,
        statement,
        sql: str,
        options: Optional[PlannerOptions] = None,
        tracer=None,
        parent=None,
    ) -> PlannedQuery:
        """Plan an already-parsed statement (prepared-statement entry point).

        The prepared machinery parses and normalizes statements itself, so
        this skips the parse phase but runs the full optimizer pipeline.
        """
        opts = options or self.options
        if tracer is None:
            tracer = NULL_TRACER
        if parent is None:
            parent = NULL_SPAN
        started = time.perf_counter()
        with tracer.child(parent, "phase:analyze", "phase"):
            analyzer = Analyzer(self.catalog)
            bound = analyzer.bind_statement(statement)
        output_names = [column.name for column in bound.output_columns]

        with tracer.child(parent, "phase:rewrite", "phase", enabled=opts.rewrites):
            optimized = rewrite(bound) if opts.rewrites else bound

        plan_span = tracer.child(parent, "phase:plan", "phase")
        with plan_span:
            estimator = Estimator(self.catalog, use_histograms=opts.use_histograms)
            cost_model = CostModel(self.network, estimator, cpu_row_ms=opts.cpu_row_ms)
            orderer = JoinOrderer(
                self.catalog,
                estimator,
                cost_model,
                strategy=opts.join_strategy,
                dp_limit=opts.dp_limit,
            )
            with tracer.child(plan_span, "join-order", "phase",
                              strategy=opts.join_strategy):
                optimized = orderer.reorder(optimized)
                if opts.rewrites:
                    # Reordering moves predicates around; re-prune projections.
                    optimized = rewrite(optimized)
            if opts.partial_aggregation:
                from .partial_agg import push_partial_aggregation

                optimized = push_partial_aggregation(optimized)
            replica_decisions: List[str] = []
            if opts.replicas == "cost":
                from .replicas import ReplicaSelector

                selector = ReplicaSelector(self.catalog, estimator, cost_model)
                optimized = selector.apply(optimized)
                replica_decisions = selector.decisions

            with tracer.child(plan_span, "pushdown", "phase", level=opts.pushdown):
                pushdown = PushdownPlanner(
                    self.catalog, estimator, level=opts.pushdown
                )
                distributed = pushdown.apply(optimized)

            with tracer.child(plan_span, "semijoin", "phase", mode=opts.semijoin):
                semijoin = SemijoinPlanner(
                    self.catalog, estimator, cost_model, mode=opts.semijoin
                )
                distributed = semijoin.apply(distributed)

            with tracer.child(plan_span, "physical", "phase"):
                physical = PhysicalPlanner(
                    self.catalog,
                    join_algorithm=opts.join_algorithm,
                    parallel_fragments=opts.max_parallel_fragments,
                    vectorized=opts.vectorize,
                    fuse=opts.fuse,
                ).build(distributed)

        estimates = {}
        for node in distributed.walk():
            estimates[id(node)] = estimator.estimate_rows(node)
        planning_ms = (time.perf_counter() - started) * 1000.0
        return PlannedQuery(
            sql=sql,
            bound=bound,
            optimized=optimized,
            distributed=distributed,
            physical=physical,
            output_names=output_names,
            planning_ms=planning_ms,
            ordering_stats=orderer.last_stats,
            semijoin_decisions=semijoin.decisions,
            replica_decisions=replica_decisions,
            estimates=estimates,
        )

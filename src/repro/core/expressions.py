"""Expression type inference and compilation to Python closures.

Bound expressions (leaves are :class:`~repro.sql.ast.BoundRef` /
:class:`~repro.sql.ast.Literal`) are compiled once per physical operator
into nested closures over row tuples. NULL is represented by ``None`` and
the compiled code implements SQL three-valued logic:

* comparisons and arithmetic propagate NULL;
* ``AND`` / ``OR`` follow Kleene logic;
* ``IN`` returns NULL (not FALSE) when no element matches but one is NULL;
* division by zero yields NULL (SQLite-compatible; documented deviation
  from engines that raise).
"""

from __future__ import annotations

import operator
import re
from array import array
from itertools import compress, repeat
from typing import Any, Callable, Dict, List, Sequence, Tuple, Union

from ..datatypes import (
    DataType,
    arithmetic_result,
    coerce_value,
    is_comparable,
    unify,
)
from ..errors import ExecutionError, TypeCheckError
from ..sql import ast
from ..sql.functions import is_aggregate_name, lookup_scalar
from .pages import Page, as_page

RowFunction = Callable[[Tuple[Any, ...]], Any]

#: What batch kernels accept: a columnar page, or (for legacy callers) a
#: plain row-tuple batch that gets transposed on the way in.
BatchInput = Union[Page, Sequence[Tuple[Any, ...]]]

#: Batch kernel: a whole column of values for a batch of rows.
BatchFunction = Callable[[BatchInput], List[Any]]

#: Batch predicate kernel: the surviving rows of a batch, as a page.
BatchPredicate = Callable[[BatchInput], Page]

#: Internal vectorized form: page in, column vector out.
VectorFunction = Callable[[Page], List[Any]]

# ---------------------------------------------------------------------------
# Type inference
# ---------------------------------------------------------------------------


def infer_type(expr: ast.Expr) -> DataType:
    """Static type of a bound expression; raises TypeCheckError on misuse.

    Aggregate function calls are rejected here — the analyzer replaces them
    with references to aggregate output columns before any residual
    expression reaches type checking.
    """
    if isinstance(expr, ast.Literal):
        return expr.dtype
    if isinstance(expr, ast.BoundRef):
        return expr.column.dtype
    if isinstance(expr, ast.ColumnRef):
        raise TypeCheckError(f"unresolved column reference: {expr.name!r}")
    if isinstance(expr, ast.BinaryOp):
        return _infer_binary(expr)
    if isinstance(expr, ast.UnaryOp):
        operand = infer_type(expr.operand)
        if expr.op == "NOT":
            if operand not in (DataType.BOOLEAN, DataType.NULL):
                raise TypeCheckError(f"NOT requires a BOOLEAN operand, got {operand}")
            return DataType.BOOLEAN
        if operand == DataType.NULL:
            return DataType.NULL
        if operand not in (DataType.INTEGER, DataType.FLOAT):
            raise TypeCheckError(f"unary minus requires a numeric operand, got {operand}")
        return operand
    if isinstance(expr, ast.FunctionCall):
        if is_aggregate_name(expr.name):
            raise TypeCheckError(
                f"aggregate {expr.name} is not allowed in this context"
            )
        function = lookup_scalar(expr.name)
        return function.type_rule([infer_type(arg) for arg in expr.args])
    if isinstance(expr, ast.Case):
        return _infer_case(expr)
    if isinstance(expr, ast.Cast):
        infer_type(expr.operand)  # operand must itself be well-typed
        return expr.dtype
    if isinstance(expr, (ast.InList, ast.InSubquery)):
        operand = infer_type(expr.operand)
        if isinstance(expr, ast.InList):
            for item in expr.items:
                item_type = infer_type(item)
                if not is_comparable(operand, item_type):
                    raise TypeCheckError(
                        f"IN list item type {item_type} is not comparable to {operand}"
                    )
        return DataType.BOOLEAN
    if isinstance(expr, ast.Exists):
        return DataType.BOOLEAN
    if isinstance(expr, ast.IsNull):
        infer_type(expr.operand)
        return DataType.BOOLEAN
    if isinstance(expr, ast.Between):
        operand = infer_type(expr.operand)
        for bound in (expr.low, expr.high):
            bound_type = infer_type(bound)
            if not is_comparable(operand, bound_type):
                raise TypeCheckError(
                    f"BETWEEN bound type {bound_type} is not comparable to {operand}"
                )
        return DataType.BOOLEAN
    if isinstance(expr, ast.WindowFunction):
        return window_result_type(expr)
    raise TypeCheckError(f"cannot type expression node {type(expr).__name__}")


RANKING_WINDOW_FUNCTIONS = frozenset({"ROW_NUMBER", "RANK", "DENSE_RANK"})


def window_result_type(window: "ast.WindowFunction") -> DataType:
    """Static result type of a window function (also validates its shape)."""
    from ..sql.functions import aggregate_result_type

    name = window.name.upper()
    if name in RANKING_WINDOW_FUNCTIONS:
        if window.args or window.star:
            raise TypeCheckError(f"{name} takes no arguments")
        if not window.order_by:
            raise TypeCheckError(f"{name} requires an ORDER BY in its OVER clause")
        return DataType.INTEGER
    if is_aggregate_name(name):
        if window.star:
            return aggregate_result_type(name, None)
        if len(window.args) != 1:
            raise TypeCheckError(f"{name} OVER takes exactly one argument")
        return aggregate_result_type(name, infer_type(window.args[0]))
    raise TypeCheckError(f"unknown window function: {window.name}")


def _infer_binary(expr: ast.BinaryOp) -> DataType:
    left = infer_type(expr.left)
    right = infer_type(expr.right)
    op = expr.op
    if op in ast.ARITHMETIC_OPS:
        return arithmetic_result(left, right, op)
    if op in ast.COMPARISON_OPS:
        if not is_comparable(left, right):
            raise TypeCheckError(f"cannot compare {left} with {right}")
        return DataType.BOOLEAN
    if op in ast.LOGICAL_OPS:
        for side in (left, right):
            if side not in (DataType.BOOLEAN, DataType.NULL):
                raise TypeCheckError(f"{op} requires BOOLEAN operands, got {side}")
        return DataType.BOOLEAN
    if op == "LIKE":
        for side in (left, right):
            if side not in (DataType.TEXT, DataType.NULL):
                raise TypeCheckError(f"LIKE requires TEXT operands, got {side}")
        return DataType.BOOLEAN
    if op == "||":
        for side in (left, right):
            if side not in (DataType.TEXT, DataType.NULL):
                raise TypeCheckError(f"|| requires TEXT operands, got {side}")
        return DataType.TEXT
    raise TypeCheckError(f"unknown binary operator {op!r}")


def _infer_case(expr: ast.Case) -> DataType:
    if expr.operand is not None:
        operand = infer_type(expr.operand)
        for when, _ in expr.whens:
            when_type = infer_type(when)
            if not is_comparable(operand, when_type):
                raise TypeCheckError(
                    f"CASE operand type {operand} is not comparable to {when_type}"
                )
    else:
        for when, _ in expr.whens:
            when_type = infer_type(when)
            if when_type not in (DataType.BOOLEAN, DataType.NULL):
                raise TypeCheckError("CASE WHEN condition must be BOOLEAN")
    result = DataType.NULL
    for _, then in expr.whens:
        result = unify(result, infer_type(then))
    if expr.else_result is not None:
        result = unify(result, infer_type(expr.else_result))
    return result


# ---------------------------------------------------------------------------
# Compilation
# ---------------------------------------------------------------------------


def build_layout(columns: Sequence[Any]) -> Dict[int, int]:
    """Map RelColumn ids to row positions for a physical operator's input."""
    return {column.column_id: index for index, column in enumerate(columns)}


def compile_expression(expr: ast.Expr, layout: Dict[int, int]) -> RowFunction:
    """Compile a bound expression into ``fn(row) -> value``.

    ``layout`` maps :attr:`RelColumn.column_id` to row positions; a reference
    to a column missing from the layout is a physical-planning bug and raises
    immediately (not at run time).
    """
    return _compile(expr, layout)


def compile_predicate(expr: ast.Expr, layout: Dict[int, int]) -> RowFunction:
    """Compile a predicate; NULL results collapse to False (WHERE semantics)."""
    fn = _compile(expr, layout)

    def predicate(row: Tuple[Any, ...]) -> bool:
        return fn(row) is True

    return predicate


def compile_batch_expression(
    expr: ast.Expr, layout: Dict[int, int], vectorized: bool = True
) -> BatchFunction:
    """Compile a bound expression into ``fn(page) -> [value, ...]``.

    The kernel evaluates the expression over a whole page column-at-a-time:
    literals broadcast, column references return the page's column vector
    (zero copy), and compound expressions run one tight loop per node over
    the operand vectors instead of one closure call per row per node. NULL
    (``None``) propagates inside each loop.

    With ``vectorized=False`` the kernel instead wraps the row-compiled
    closure in a per-row loop — the PR 2 row-tuple engine, kept as the
    benchmark baseline and as an equivalence oracle for the fuzzers.

    Kernels accept a :class:`~repro.core.pages.Page` or a plain row-tuple
    list (transposed on entry for legacy callers).
    """
    width = len(layout)
    if not vectorized:
        fn = _compile(expr, layout)

        def row_kernel(batch: BatchInput) -> List[Any]:
            return [fn(row) for row in as_page(batch, width)]

        return row_kernel
    vector = _compile_vector(expr, layout)

    def kernel(batch: BatchInput) -> List[Any]:
        return vector(as_page(batch, width))

    return kernel


def compile_batch_predicate(
    expr: ast.Expr, layout: Dict[int, int], vectorized: bool = True
) -> BatchPredicate:
    """Compile a predicate into ``fn(page) -> page of surviving rows``.

    WHERE semantics: rows whose predicate evaluates to NULL are dropped,
    exactly like :func:`compile_predicate` row by row. The vectorized form
    computes a boolean mask column, normalizes it to strict ``is True``
    selectors in one C pass, then slices every column with
    ``itertools.compress`` — no index vector, no per-row gather calls,
    and typed vectors stay typed. A fully-passing page is returned as-is
    (zero copy).
    """
    width = len(layout)
    if not vectorized:
        fn = _compile(expr, layout)

        def row_select(batch: BatchInput) -> Page:
            page = as_page(batch, width)
            rows = [row for row in page if fn(row) is True]
            return Page.from_rows(rows, page.width)

        return row_select
    vector = _compile_vector(expr, layout)
    is_ = operator.is_

    def select(batch: BatchInput) -> Page:
        page = as_page(batch, width)
        mask = vector(page)
        # `is True` (not truthiness) drops NULLs, per WHERE semantics.
        selectors = list(map(is_, mask, repeat(True)))
        selected = selectors.count(True)
        if selected == page.num_rows:
            return page
        columns: List[Any] = [
            array(column.typecode, compress(column, selectors))
            if type(column) is array
            else list(compress(column, selectors))
            for column in page.columns
        ]
        return Page(columns, selected)

    return select


def evaluate_constant(expr: ast.Expr) -> Any:
    """Evaluate an expression with no column references (for constant folding)."""
    return _compile(expr, {})(())


def _layout_position(expr: "ast.BoundRef", layout: Dict[int, int]) -> int:
    position = layout.get(expr.column.column_id)
    if position is None:
        raise ExecutionError(
            f"column {expr.column.name!r} (id {expr.column.column_id}) "
            "is not available in this operator's input"
        )
    return position


def _compile(expr: ast.Expr, layout: Dict[int, int]) -> RowFunction:
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda row: value
    if isinstance(expr, ast.BoundRef):
        position = _layout_position(expr, layout)
        return lambda row: row[position]
    if isinstance(expr, ast.BinaryOp):
        return _compile_binary(expr, layout)
    if isinstance(expr, ast.UnaryOp):
        operand = _compile(expr.operand, layout)
        if expr.op == "NOT":
            def negate(row: Tuple[Any, ...]) -> Any:
                value = operand(row)
                return None if value is None else (not value)

            return negate

        def minus(row: Tuple[Any, ...]) -> Any:
            value = operand(row)
            return None if value is None else -value

        return minus
    if isinstance(expr, ast.FunctionCall):
        return _compile_function(expr, layout)
    if isinstance(expr, ast.Case):
        return _compile_case(expr, layout)
    if isinstance(expr, ast.Cast):
        operand = _compile(expr.operand, layout)
        target = expr.dtype

        def cast(row: Tuple[Any, ...]) -> Any:
            return cast_value(operand(row), target)

        return cast
    if isinstance(expr, ast.InList):
        return _compile_in_list(expr, layout)
    if isinstance(expr, ast.IsNull):
        operand = _compile(expr.operand, layout)
        if expr.negated:
            return lambda row: operand(row) is not None
        return lambda row: operand(row) is None
    if isinstance(expr, ast.Between):
        return _compile_between(expr, layout)
    if isinstance(expr, (ast.InSubquery, ast.Exists)):
        raise ExecutionError(
            "subquery expressions must be decorrelated into joins before execution"
        )
    if isinstance(expr, ast.WindowFunction):
        raise ExecutionError(
            "window functions must be planned into a WindowOp before execution"
        )
    raise ExecutionError(f"cannot compile expression node {type(expr).__name__}")


def _compile_binary(expr: ast.BinaryOp, layout: Dict[int, int]) -> RowFunction:
    op = expr.op
    if op == "AND":
        left = _compile(expr.left, layout)
        right = _compile(expr.right, layout)

        def kleene_and(row: Tuple[Any, ...]) -> Any:
            lhs = left(row)
            if lhs is False:
                return False
            rhs = right(row)
            if rhs is False:
                return False
            if lhs is None or rhs is None:
                return None
            return True

        return kleene_and
    if op == "OR":
        left = _compile(expr.left, layout)
        right = _compile(expr.right, layout)

        def kleene_or(row: Tuple[Any, ...]) -> Any:
            lhs = left(row)
            if lhs is True:
                return True
            rhs = right(row)
            if rhs is True:
                return True
            if lhs is None or rhs is None:
                return None
            return False

        return kleene_or
    left = _compile(expr.left, layout)
    right = _compile(expr.right, layout)
    if op == "LIKE":
        return _compile_like(left, expr.right, right)
    if op == "||":
        def concat(row: Tuple[Any, ...]) -> Any:
            lhs, rhs = left(row), right(row)
            if lhs is None or rhs is None:
                return None
            return lhs + rhs

        return concat
    kernel = _BINARY_KERNELS.get(op)
    if kernel is None:
        raise ExecutionError(f"unknown binary operator {op!r}")

    def apply(row: Tuple[Any, ...]) -> Any:
        lhs, rhs = left(row), right(row)
        if lhs is None or rhs is None:
            return None
        return kernel(lhs, rhs)

    return apply


def _div(a: Any, b: Any) -> Any:
    if b == 0:
        return None  # SQLite-compatible: x / 0 is NULL
    result = a / b
    return result


def _mod(a: Any, b: Any) -> Any:
    if b == 0:
        return None
    # SQL MOD truncates toward zero (unlike Python's floor semantics).
    return a - b * int(a / b)


_BINARY_KERNELS: Dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": _div,
    "%": _mod,
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

# The vectorized path calls its kernel once per value inside a tight list
# comprehension, so each call's frame overhead is the dominant cost; the
# C-implemented ``operator`` functions halve it versus Python lambdas.
# ``/`` and ``%`` keep the Python kernels for NULL-on-zero semantics, and
# ``||`` maps to ``operator.add`` (NULL operands are screened before the
# kernel runs in both engines).
_VECTOR_KERNELS: Dict[str, Callable[[Any, Any], Any]] = {
    **_BINARY_KERNELS,
    "+": operator.add,
    "-": operator.sub,
    "*": operator.mul,
    "=": operator.eq,
    "<>": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
    "||": operator.add,
}

_LIKE_CACHE: Dict[str, "re.Pattern[str]"] = {}


def like_pattern_to_regex(pattern: str) -> "re.Pattern[str]":
    """Translate a SQL LIKE pattern to a compiled anchored regex.

    ``%`` matches any run (including empty); ``_`` matches one character;
    everything else is literal. Case-sensitive, per the SQL standard.
    """
    compiled = _LIKE_CACHE.get(pattern)
    if compiled is not None:
        return compiled
    pieces: List[str] = []
    for char in pattern:
        if char == "%":
            pieces.append(".*")
        elif char == "_":
            pieces.append(".")
        else:
            pieces.append(re.escape(char))
    compiled = re.compile("".join(pieces) + r"\Z", re.DOTALL)
    if len(_LIKE_CACHE) < 1024:
        _LIKE_CACHE[pattern] = compiled
    return compiled


def _compile_like(
    left: RowFunction, pattern_expr: ast.Expr, right: RowFunction
) -> RowFunction:
    if isinstance(pattern_expr, ast.Literal) and isinstance(pattern_expr.value, str):
        regex = like_pattern_to_regex(pattern_expr.value)

        def like_constant(row: Tuple[Any, ...]) -> Any:
            value = left(row)
            if value is None:
                return None
            return regex.match(value) is not None

        return like_constant

    def like_dynamic(row: Tuple[Any, ...]) -> Any:
        value, pattern = left(row), right(row)
        if value is None or pattern is None:
            return None
        return like_pattern_to_regex(pattern).match(value) is not None

    return like_dynamic


def _compile_function(expr: ast.FunctionCall, layout: Dict[int, int]) -> RowFunction:
    if is_aggregate_name(expr.name):
        raise ExecutionError(
            f"aggregate {expr.name} reached the scalar compiler; "
            "the analyzer must rewrite aggregates into aggregate columns"
        )
    function = lookup_scalar(expr.name)
    arg_fns = [_compile(arg, layout) for arg in expr.args]
    implementation = function.implementation
    if function.null_propagating:
        def call(row: Tuple[Any, ...]) -> Any:
            args = [fn(row) for fn in arg_fns]
            if any(arg is None for arg in args):
                return None
            return implementation(*args)

        return call

    def call_null_aware(row: Tuple[Any, ...]) -> Any:
        return implementation(*(fn(row) for fn in arg_fns))

    return call_null_aware


def _compile_case(expr: ast.Case, layout: Dict[int, int]) -> RowFunction:
    whens = [
        (_compile(when, layout), _compile(then, layout)) for when, then in expr.whens
    ]
    else_fn = (
        _compile(expr.else_result, layout) if expr.else_result is not None else None
    )
    if expr.operand is not None:
        operand = _compile(expr.operand, layout)

        def simple_case(row: Tuple[Any, ...]) -> Any:
            value = operand(row)
            for when_fn, then_fn in whens:
                candidate = when_fn(row)
                if value is not None and candidate is not None and value == candidate:
                    return then_fn(row)
            return else_fn(row) if else_fn is not None else None

        return simple_case

    def searched_case(row: Tuple[Any, ...]) -> Any:
        for when_fn, then_fn in whens:
            if when_fn(row) is True:
                return then_fn(row)
        return else_fn(row) if else_fn is not None else None

    return searched_case


def _compile_in_list(expr: ast.InList, layout: Dict[int, int]) -> RowFunction:
    operand = _compile(expr.operand, layout)
    all_literals = all(isinstance(item, ast.Literal) for item in expr.items)
    negated = expr.negated
    if all_literals:
        values = [item.value for item in expr.items]  # type: ignore[union-attr]
        has_null = any(value is None for value in values)
        try:
            lookup = frozenset(v for v in values if v is not None)
        except TypeError:  # unhashable? fall back to list scan
            lookup = None  # type: ignore[assignment]

        def in_constant_3vl(row: Tuple[Any, ...]) -> Any:
            value = operand(row)
            if value is None:
                return None
            if lookup is not None:
                found = value in lookup
            else:
                found = any(value == v for v in values if v is not None)
            if found:
                result: Any = True
            elif has_null:
                result = None
            else:
                result = False
            if result is None:
                return None
            return (not result) if negated else result

        return in_constant_3vl

    item_fns = [_compile(item, layout) for item in expr.items]

    def in_dynamic(row: Tuple[Any, ...]) -> Any:
        value = operand(row)
        if value is None:
            return None
        saw_null = False
        for fn in item_fns:
            candidate = fn(row)
            if candidate is None:
                saw_null = True
            elif candidate == value:
                return False if negated else True
        if saw_null:
            return None
        return True if negated else False

    return in_dynamic


def _compile_between(expr: ast.Between, layout: Dict[int, int]) -> RowFunction:
    operand = _compile(expr.operand, layout)
    low = _compile(expr.low, layout)
    high = _compile(expr.high, layout)
    negated = expr.negated

    def between(row: Tuple[Any, ...]) -> Any:
        value = operand(row)
        low_value = low(row)
        high_value = high(row)
        if value is None or low_value is None or high_value is None:
            return None
        result = low_value <= value <= high_value
        return (not result) if negated else result

    return between


def cast_value(value: Any, dtype: DataType) -> Any:
    """SQL CAST semantics (NULL passes through; FLOAT→INTEGER truncates)."""
    if value is None:
        return None
    if dtype == DataType.INTEGER and isinstance(value, float):
        return int(value)  # truncation toward zero, per SQL CAST
    try:
        return coerce_value(value, dtype)
    except TypeCheckError as exc:
        raise ExecutionError(str(exc)) from exc


# ---------------------------------------------------------------------------
# Vectorized compilation: page in, column vector out
# ---------------------------------------------------------------------------
#
# The vector compiler mirrors _compile node for node, but each node emits a
# kernel over column vectors. NULL handling is identical (None in-band).
# One observable difference is evaluation *strategy*, never results:
# AND/OR/CASE evaluate eagerly per column instead of short-circuiting per
# row. All expression evaluation is pure and total (division by zero is
# NULL, not an error), so eager evaluation cannot change a result.


def _compile_vector(expr: ast.Expr, layout: Dict[int, int]) -> VectorFunction:
    if isinstance(expr, ast.Literal):
        value = expr.value
        return lambda page: [value] * page.num_rows
    if isinstance(expr, ast.BoundRef):
        position = _layout_position(expr, layout)
        return lambda page: page.columns[position]
    if isinstance(expr, ast.BinaryOp):
        return _vector_binary(expr, layout)
    if isinstance(expr, ast.UnaryOp):
        operand = _compile_vector(expr.operand, layout)
        if expr.op == "NOT":
            return lambda page: [
                None if value is None else (not value) for value in operand(page)
            ]

        def negate(page: Page) -> List[Any]:
            column = operand(page)
            if type(column) is array:  # null-free typed vector: pure C loop
                return list(map(operator.neg, column))
            return [None if value is None else -value for value in column]

        return negate
    if isinstance(expr, ast.FunctionCall):
        return _vector_function(expr, layout)
    if isinstance(expr, ast.Case):
        return _vector_case(expr, layout)
    if isinstance(expr, ast.Cast):
        operand = _compile_vector(expr.operand, layout)
        target = expr.dtype
        return lambda page: [cast_value(value, target) for value in operand(page)]
    if isinstance(expr, ast.InList):
        return _vector_in_list(expr, layout)
    if isinstance(expr, ast.IsNull):
        operand = _compile_vector(expr.operand, layout)
        if expr.negated:
            return lambda page: [value is not None for value in operand(page)]
        return lambda page: [value is None for value in operand(page)]
    if isinstance(expr, ast.Between):
        return _vector_between(expr, layout)
    # Unsupported nodes (subqueries, window functions, unknown): delegate to
    # the row compiler so they raise the same compile-time error.
    fn = _compile(expr, layout)
    return lambda page: [fn(row) for row in page]


def _vector_binary(expr: ast.BinaryOp, layout: Dict[int, int]) -> VectorFunction:
    op = expr.op
    if op == "AND":
        left = _compile_vector(expr.left, layout)
        right = _compile_vector(expr.right, layout)

        def kleene_and(page: Page) -> List[Any]:
            return [
                False
                if (lhs is False or rhs is False)
                else (None if (lhs is None or rhs is None) else True)
                for lhs, rhs in zip(left(page), right(page))
            ]

        return kleene_and
    if op == "OR":
        left = _compile_vector(expr.left, layout)
        right = _compile_vector(expr.right, layout)

        def kleene_or(page: Page) -> List[Any]:
            return [
                True
                if (lhs is True or rhs is True)
                else (None if (lhs is None or rhs is None) else False)
                for lhs, rhs in zip(left(page), right(page))
            ]

        return kleene_or
    if op == "LIKE":
        return _vector_like(expr, layout)
    kernel = _VECTOR_KERNELS.get(op)
    if kernel is None:
        raise ExecutionError(f"unknown binary operator {op!r}")
    # Constant folding: a literal operand broadcasts as a bound scalar
    # instead of materializing a constant column. When the operand vector
    # is a typed ``array`` (null-free by construction) the None screen is
    # skipped entirely and map() runs the whole loop in C — with the
    # C-implemented ``operator`` kernels this is the object-dispatch-free
    # hot path the typed pages exist for.
    if isinstance(expr.right, ast.Literal):
        constant = expr.right.value
        left = _compile_vector(expr.left, layout)
        if constant is None:
            return lambda page: [None] * page.num_rows

        def const_right(page: Page) -> List[Any]:
            column = left(page)
            if type(column) is array:
                return list(map(kernel, column, repeat(constant)))
            return [
                None if value is None else kernel(value, constant)
                for value in column
            ]

        return const_right
    if isinstance(expr.left, ast.Literal):
        constant = expr.left.value
        right = _compile_vector(expr.right, layout)
        if constant is None:
            return lambda page: [None] * page.num_rows

        def const_left(page: Page) -> List[Any]:
            column = right(page)
            if type(column) is array:
                return list(map(kernel, repeat(constant), column))
            return [
                None if value is None else kernel(constant, value)
                for value in column
            ]

        return const_left
    left = _compile_vector(expr.left, layout)
    right = _compile_vector(expr.right, layout)

    def binary(page: Page) -> List[Any]:
        lhs_col, rhs_col = left(page), right(page)
        lhs_typed = type(lhs_col) is array
        rhs_typed = type(rhs_col) is array
        if lhs_typed and rhs_typed:
            return list(map(kernel, lhs_col, rhs_col))
        if lhs_typed:  # only the untyped side can hold NULLs
            return [
                None if rhs is None else kernel(lhs, rhs)
                for lhs, rhs in zip(lhs_col, rhs_col)
            ]
        if rhs_typed:
            return [
                None if lhs is None else kernel(lhs, rhs)
                for lhs, rhs in zip(lhs_col, rhs_col)
            ]
        return [
            None if (lhs is None or rhs is None) else kernel(lhs, rhs)
            for lhs, rhs in zip(lhs_col, rhs_col)
        ]

    return binary


def _vector_like(expr: ast.BinaryOp, layout: Dict[int, int]) -> VectorFunction:
    left = _compile_vector(expr.left, layout)
    pattern_expr = expr.right
    if isinstance(pattern_expr, ast.Literal) and isinstance(pattern_expr.value, str):
        match = like_pattern_to_regex(pattern_expr.value).match
        return lambda page: [
            None if value is None else match(value) is not None
            for value in left(page)
        ]
    right = _compile_vector(pattern_expr, layout)

    def like_dynamic(page: Page) -> List[Any]:
        return [
            None
            if (value is None or pattern is None)
            else like_pattern_to_regex(pattern).match(value) is not None
            for value, pattern in zip(left(page), right(page))
        ]

    return like_dynamic


def _vector_function(expr: ast.FunctionCall, layout: Dict[int, int]) -> VectorFunction:
    if is_aggregate_name(expr.name):
        raise ExecutionError(
            f"aggregate {expr.name} reached the scalar compiler; "
            "the analyzer must rewrite aggregates into aggregate columns"
        )
    function = lookup_scalar(expr.name)
    arg_vectors = [_compile_vector(arg, layout) for arg in expr.args]
    implementation = function.implementation
    if not arg_vectors:
        return lambda page: [implementation() for _ in range(page.num_rows)]
    if function.null_propagating:
        if len(arg_vectors) == 1:
            arg0 = arg_vectors[0]

            def call_unary(page: Page) -> List[Any]:
                column = arg0(page)
                if type(column) is array:  # null-free: skip the None screen
                    return list(map(implementation, column))
                return [
                    None if value is None else implementation(value)
                    for value in column
                ]

            return call_unary

        def call(page: Page) -> List[Any]:
            columns = [vector(page) for vector in arg_vectors]
            return [
                None
                if any(value is None for value in values)
                else implementation(*values)
                for values in zip(*columns)
            ]

        return call

    def call_null_aware(page: Page) -> List[Any]:
        columns = [vector(page) for vector in arg_vectors]
        return [implementation(*values) for values in zip(*columns)]

    return call_null_aware


def _vector_case(expr: ast.Case, layout: Dict[int, int]) -> VectorFunction:
    whens = [
        (_compile_vector(when, layout), _compile_vector(then, layout))
        for when, then in expr.whens
    ]
    else_vector = (
        _compile_vector(expr.else_result, layout)
        if expr.else_result is not None
        else None
    )
    operand_vector = (
        _compile_vector(expr.operand, layout) if expr.operand is not None else None
    )

    def case(page: Page) -> List[Any]:
        # Start from the ELSE column (copied: it may alias a page column),
        # then resolve each WHEN in order over the still-unmatched rows.
        out = (
            list(else_vector(page))
            if else_vector is not None
            else [None] * page.num_rows
        )
        operand_col = operand_vector(page) if operand_vector is not None else None
        unmatched = list(range(page.num_rows))
        for when_vector, then_vector in whens:
            if not unmatched:
                break
            condition = when_vector(page)
            then_col: List[Any] = []
            still_unmatched: List[int] = []
            for index in unmatched:
                if operand_col is not None:
                    value, candidate = operand_col[index], condition[index]
                    matched = (
                        value is not None
                        and candidate is not None
                        and value == candidate
                    )
                else:
                    matched = condition[index] is True
                if matched:
                    if not then_col:
                        then_col = then_vector(page)
                    out[index] = then_col[index]
                else:
                    still_unmatched.append(index)
            unmatched = still_unmatched
        return out

    return case


def _vector_in_list(expr: ast.InList, layout: Dict[int, int]) -> VectorFunction:
    operand = _compile_vector(expr.operand, layout)
    negated = expr.negated
    if all(isinstance(item, ast.Literal) for item in expr.items):
        values = [item.value for item in expr.items]  # type: ignore[union-attr]
        has_null = any(value is None for value in values)
        try:
            lookup = frozenset(v for v in values if v is not None)
        except TypeError:  # unhashable? fall back to list scan
            lookup = None  # type: ignore[assignment]

        def in_constant_3vl(page: Page) -> List[Any]:
            out: List[Any] = []
            for value in operand(page):
                if value is None:
                    out.append(None)
                    continue
                if lookup is not None:
                    found = value in lookup
                else:
                    found = any(value == v for v in values if v is not None)
                if found:
                    out.append(False if negated else True)
                elif has_null:
                    out.append(None)
                else:
                    out.append(True if negated else False)
            return out

        return in_constant_3vl

    item_vectors = [_compile_vector(item, layout) for item in expr.items]

    def in_dynamic(page: Page) -> List[Any]:
        operand_col = operand(page)
        item_cols = [vector(page) for vector in item_vectors]
        out: List[Any] = []
        for index, value in enumerate(operand_col):
            if value is None:
                out.append(None)
                continue
            saw_null = found = False
            for column in item_cols:
                candidate = column[index]
                if candidate is None:
                    saw_null = True
                elif candidate == value:
                    found = True
                    break
            if found:
                out.append(False if negated else True)
            elif saw_null:
                out.append(None)
            else:
                out.append(True if negated else False)
        return out

    return in_dynamic


def _vector_between(expr: ast.Between, layout: Dict[int, int]) -> VectorFunction:
    operand = _compile_vector(expr.operand, layout)
    low = _compile_vector(expr.low, layout)
    high = _compile_vector(expr.high, layout)
    negated = expr.negated

    def between(page: Page) -> List[Any]:
        out: List[Any] = []
        for value, low_value, high_value in zip(
            operand(page), low(page), high(page)
        ):
            if value is None or low_value is None or high_value is None:
                out.append(None)
            else:
                result = low_value <= value <= high_value
                out.append((not result) if negated else result)
        return out

    return between
